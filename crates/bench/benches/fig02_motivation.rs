//! Figure 2: motivation — average request latency of prior policies vs
//! the Oracle, normalized to Fast-Only, under H&M and H&L.
//!
//! The paper's takeaway: every baseline is far from the Oracle on most
//! workloads (41.1 %/32.6 % average loss in H&M/H&L), and no single
//! policy wins everywhere.

use sibyl_bench::{
    banner, hl_config, hm_config, latency_row, motivation_workloads, seed, trace_len,
};
use sibyl_sim::report::Table;
use sibyl_sim::{run_suite, PolicyKind};
use sibyl_trace::msrc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(25_000);
    let policies = vec![
        PolicyKind::SlowOnly,
        PolicyKind::Cde,
        PolicyKind::Hps,
        PolicyKind::Archivist,
        PolicyKind::RnnHss,
        PolicyKind::Oracle,
    ];
    banner(
        "Figure 2",
        "Average request latency normalized to Fast-Only (baselines vs Oracle)",
    );
    for (name, cfg) in [("(a) H&M", hm_config()), ("(b) H&L", hl_config())] {
        let mut headers = vec!["workload".to_string()];
        headers.extend(policies.iter().map(|p| p.name().to_string()));
        let mut table = Table::new(headers);
        let mut rows = Vec::new();
        for wl in motivation_workloads() {
            let trace = msrc::generate(wl, n, seed());
            let suite = run_suite(&cfg, &trace, &policies)?;
            let row = latency_row(&suite);
            table.add_row(row.clone());
            rows.push(row);
        }
        sibyl_bench::append_avg_row(&mut table, &rows);
        println!("{name} HSS configuration");
        println!("{}", table.render());
    }
    Ok(())
}
