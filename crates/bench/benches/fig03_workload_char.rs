//! Figure 3: randomness and hotness characteristics of the fourteen
//! MSRC workloads — average request size (KiB) vs average access count.

use sibyl_bench::{all_workloads, banner, seed, trace_len};
use sibyl_sim::report::Table;
use sibyl_trace::{msrc, stats::TraceStats};

fn main() {
    let n = trace_len(30_000);
    banner(
        "Figure 3",
        "Hotness (avg access count) vs randomness (avg request size) per workload",
    );
    let mut table = Table::new(vec![
        "workload".into(),
        "avg access count".into(),
        "avg request size (KiB)".into(),
        "character".into(),
    ]);
    for wl in all_workloads() {
        let st = TraceStats::measure(&msrc::generate(wl, n, seed()));
        let hot = if st.avg_access_count >= 10.0 {
            "hot"
        } else {
            "cold"
        };
        let seq = if st.avg_request_size_kib >= 20.0 {
            "sequential"
        } else {
            "random"
        };
        table.add_row(vec![
            st.name.clone(),
            format!("{:.1}", st.avg_access_count),
            format!("{:.1}", st.avg_request_size_kib),
            format!("{hot}/{seq}"),
        ]);
    }
    println!("{}", table.render());
}
