//! Figure 4: execution timeline of `rsrch_0` — accessed logical
//! addresses and request sizes over time, showing the phase dynamics
//! that motivate online adaptation.

use sibyl_bench::{banner, seed, trace_len};
use sibyl_trace::msrc;

fn main() {
    let n = trace_len(30_000);
    let trace = msrc::generate(msrc::Workload::Rsrch0, n, seed());
    banner(
        "Figure 4",
        "rsrch_0 timeline: per-time-bucket address range and request size",
    );
    let duration = trace.duration_us().max(1);
    const BUCKETS: usize = 24;
    let mut lo = [u64::MAX; BUCKETS];
    let mut hi = [0u64; BUCKETS];
    let mut size_sum = [0u64; BUCKETS];
    let mut count = [0u64; BUCKETS];
    let t0 = trace.requests()[0].timestamp_us;
    for r in trace.iter() {
        let b = (((r.timestamp_us - t0) as u128 * BUCKETS as u128 / (duration as u128 + 1))
            as usize)
            .min(BUCKETS - 1);
        lo[b] = lo[b].min(r.lpn);
        hi[b] = hi[b].max(r.last_lpn());
        size_sum[b] += r.size_pages as u64;
        count[b] += 1;
    }
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>8}",
        "bucket", "min lpn", "max lpn", "avg KiB", "reqs"
    );
    for b in 0..BUCKETS {
        if count[b] == 0 {
            continue;
        }
        println!(
            "{:>6} {:>12} {:>12} {:>10.1} {:>8}",
            b,
            lo[b],
            hi[b],
            size_sum[b] as f64 * 4.0 / count[b] as f64,
            count[b]
        );
    }
    println!(
        "\n(The shifting address window across buckets reproduces the paper's drifting hot set.)"
    );
}
