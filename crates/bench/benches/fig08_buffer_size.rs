//! Figure 8: effect of the experience-buffer size on Sibyl's average
//! request latency (normalized to Fast-Only) in the H&M configuration.
//! The paper observes saturation at 1000 entries.

use sibyl_bench::{banner, hm_config, seed, trace_len};
use sibyl_core::SibylConfig;
use sibyl_sim::report::Table;
use sibyl_sim::{run_suite, PolicyKind};
use sibyl_trace::msrc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(25_000);
    banner(
        "Figure 8",
        "Sibyl normalized latency vs experience-buffer size (H&M)",
    );
    let workloads = [msrc::Workload::Rsrch0, msrc::Workload::Prxy1];
    let sizes = [1usize, 10, 100, 1_000, 10_000];
    let mut table = Table::new(
        std::iter::once("buffer size".to_string())
            .chain(workloads.iter().map(|w| w.name().to_string()))
            .collect(),
    );
    for &size in &sizes {
        let mut row = vec![size.to_string()];
        for &wl in &workloads {
            let trace = msrc::generate(wl, n, seed());
            let cfg = SibylConfig {
                buffer_capacity: size,
                ..Default::default()
            };
            let suite = run_suite(&hm_config(), &trace, &[PolicyKind::sibyl_with(cfg)])?;
            row.push(format!("{:.2}", suite.normalized_latency(0)));
        }
        table.add_row(row);
    }
    println!("{}", table.render());
    println!("(The paper selects 1000 entries, where performance saturates.)");
    Ok(())
}
