//! Figure 9: the paper's main result — average request latency of all
//! seven policies on all fourteen workloads under H&M and H&L, normalized
//! to Fast-Only.
//!
//! Headline claims being reproduced in shape: Sibyl outperforms the
//! heuristic and supervised baselines on average, and reaches ~80 % of
//! the Oracle.

use sibyl_bench::{all_workloads, banner, hl_config, hm_config, latency_row, seed, trace_len};
use sibyl_sim::report::Table;
use sibyl_sim::{run_suite, PolicyKind};
use sibyl_trace::msrc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(25_000);
    let policies = PolicyKind::standard_suite();
    banner(
        "Figure 9",
        "Average request latency normalized to Fast-Only (all policies, all workloads)",
    );
    for (name, cfg) in [("(a) H&M", hm_config()), ("(b) H&L", hl_config())] {
        let mut headers = vec!["workload".to_string()];
        headers.extend(policies.iter().map(|p| p.name().to_string()));
        let mut table = Table::new(headers);
        let mut rows = Vec::new();
        for wl in all_workloads() {
            let trace = msrc::generate(wl, n, seed());
            let suite = run_suite(&cfg, &trace, &policies)?;
            let row = latency_row(&suite);
            table.add_row(row.clone());
            rows.push(row);
        }
        sibyl_bench::append_avg_row(&mut table, &rows);
        println!("{name} HSS configuration");
        println!("{}", table.render());
    }
    Ok(())
}
