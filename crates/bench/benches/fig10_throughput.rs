//! Figure 10: request throughput (IOPS) of all policies normalized to
//! Fast-Only, under H&M and H&L.
//!
//! Throughput differentiates under load, so this bench replays the traces
//! with compressed think time (`Experiment::with_time_scale`), putting
//! the system in the device-bound regime the paper measures.

use sibyl_bench::{all_workloads, banner, hl_config, hm_config, seed, trace_len};
use sibyl_sim::report::Table;
use sibyl_sim::{Experiment, PolicyKind};
use sibyl_trace::msrc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(15_000);
    let policies = PolicyKind::standard_suite();
    banner(
        "Figure 10",
        "Request throughput (IOPS) normalized to Fast-Only under accelerated replay",
    );
    for (name, cfg) in [("(a) H&M", hm_config()), ("(b) H&L", hl_config())] {
        let mut headers = vec!["workload".to_string()];
        headers.extend(policies.iter().map(|p| p.name().to_string()));
        let mut table = Table::new(headers);
        let mut rows = Vec::new();
        for wl in all_workloads() {
            let trace = msrc::generate(wl, n, seed());
            let exp = Experiment::new(cfg.clone(), trace.clone()).with_time_scale(40.0);
            let fast = exp.run(PolicyKind::FastOnly)?;
            let mut row = vec![trace.name().to_string()];
            for p in &policies {
                let out = exp.run(p.clone())?;
                row.push(format!(
                    "{:.3}",
                    out.metrics.iops / fast.metrics.iops.max(1e-9)
                ));
            }
            table.add_row(row.clone());
            rows.push(row);
        }
        sibyl_bench::append_avg_row(&mut table, &rows);
        println!("{name} HSS configuration");
        println!("{}", table.render());
    }
    Ok(())
}
