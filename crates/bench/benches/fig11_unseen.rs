//! Figure 11: performance on unseen (FileBench) workloads that no policy
//! — including Sibyl — was tuned on, under H&M and H&L.

use sibyl_bench::{banner, hl_config, hm_config, latency_row, seed, trace_len};
use sibyl_sim::report::Table;
use sibyl_sim::{run_suite, PolicyKind};
use sibyl_trace::filebench::{self, Unseen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(25_000);
    // The paper's Fig. 11 legend: Slow-Only, Archivist, RNN-HSS, Sibyl,
    // Oracle.
    let policies = vec![
        PolicyKind::SlowOnly,
        PolicyKind::Archivist,
        PolicyKind::RnnHss,
        PolicyKind::sibyl(),
        PolicyKind::Oracle,
    ];
    banner(
        "Figure 11",
        "Average request latency on unseen FileBench workloads (normalized to Fast-Only)",
    );
    for (name, cfg) in [("(a) H&M", hm_config()), ("(b) H&L", hl_config())] {
        let mut headers = vec!["workload".to_string()];
        headers.extend(policies.iter().map(|p| p.name().to_string()));
        let mut table = Table::new(headers);
        let mut rows = Vec::new();
        for wl in Unseen::FILEBENCH {
            let trace = filebench::generate(wl, n, seed());
            let suite = run_suite(&cfg, &trace, &policies)?;
            let row = latency_row(&suite);
            table.add_row(row.clone());
            rows.push(row);
        }
        sibyl_bench::append_avg_row(&mut table, &rows);
        println!("{name} HSS configuration");
        println!("{}", table.render());
    }
    Ok(())
}
