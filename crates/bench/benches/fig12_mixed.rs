//! Figure 12: mixed workloads (Table 5's mix1–mix6) with default and
//! mixed-optimized Sibyl hyper-parameters, under H&M and H&L.

use sibyl_bench::{banner, hl_config, hm_config, latency_row, seed, trace_len};
use sibyl_sim::report::Table;
use sibyl_sim::{run_suite, PolicyKind};
use sibyl_trace::mix::Mix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_per_component = trace_len(10_000);
    let mut policies = vec![
        PolicyKind::SlowOnly,
        PolicyKind::Cde,
        PolicyKind::Hps,
        PolicyKind::Archivist,
        PolicyKind::RnnHss,
    ];
    policies.push(PolicyKind::sibyl()); // Sibyl_Def
    policies.push(PolicyKind::sibyl_opt()); // Sibyl_Opt (α = 1e-5)
    policies.push(PolicyKind::Oracle);
    banner(
        "Figure 12",
        "Average request latency on mixed workloads (normalized to Fast-Only)",
    );
    for (name, cfg) in [("(a) H&M", hm_config()), ("(b) H&L", hl_config())] {
        let mut headers = vec!["mix".to_string()];
        headers.extend(policies.iter().map(|p| p.name().to_string()));
        // Distinguish the two Sibyl columns.
        let mut seen_sibyl = false;
        for h in headers.iter_mut() {
            if h == "Sibyl" {
                *h = if seen_sibyl {
                    "Sibyl_Opt".into()
                } else {
                    "Sibyl_Def".into()
                };
                seen_sibyl = true;
            }
        }
        let mut table = Table::new(headers);
        let mut rows = Vec::new();
        for m in Mix::ALL {
            let trace = m.generate(n_per_component, seed());
            let suite = run_suite(&cfg, &trace, &policies)?;
            let row = latency_row(&suite);
            table.add_row(row.clone());
            rows.push(row);
        }
        sibyl_bench::append_avg_row(&mut table, &rows);
        println!("{name} HSS configuration");
        println!("{}", table.render());
    }
    Ok(())
}
