//! Figure 13: feature ablation — Sibyl with subsets of the Table 1 state
//! features on the H&L configuration (rt = request size, ft = access
//! count, mt = access interval, pt = current placement, All = all six).

use sibyl_bench::{banner, hl_config, motivation_workloads, seed, trace_len};
use sibyl_core::{FeatureMask, SibylConfig};
use sibyl_sim::report::Table;
use sibyl_sim::{run_suite, PolicyKind};
use sibyl_trace::msrc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(25_000);
    let masks: Vec<(&str, FeatureMask)> = vec![
        ("rt", FeatureMask::RT),
        ("ft", FeatureMask::FT),
        ("rt+ft", FeatureMask::RT_FT),
        ("rt+ft+mt", FeatureMask::RT_FT_MT),
        ("rt+ft+pt", FeatureMask::RT_FT_PT),
        ("All", FeatureMask::ALL),
    ];
    banner(
        "Figure 13",
        "Sibyl normalized latency with different state-feature subsets (H&L)",
    );
    let mut headers = vec!["workload".to_string()];
    headers.extend(masks.iter().map(|(n, _)| n.to_string()));
    let mut table = Table::new(headers);
    let mut rows = Vec::new();
    for wl in motivation_workloads() {
        let trace = msrc::generate(wl, n, seed());
        let mut row = vec![trace.name().to_string()];
        for (_, mask) in &masks {
            let cfg = SibylConfig {
                feature_mask: *mask,
                ..Default::default()
            };
            let suite = run_suite(&hl_config(), &trace, &[PolicyKind::sibyl_with(cfg)])?;
            row.push(format!("{:.2}", suite.normalized_latency(0)));
        }
        table.add_row(row.clone());
        rows.push(row);
    }
    sibyl_bench::append_avg_row(&mut table, &rows);
    println!("{}", table.render());
    println!(
        "(The paper: using all six features is consistently best — up to 43.6 % lower latency.)"
    );
    Ok(())
}
