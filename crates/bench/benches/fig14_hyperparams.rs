//! Figure 14: sensitivity of Sibyl's throughput to the discount factor
//! (γ), learning rate (α), and exploration rate (ε), averaged across
//! workloads, under H&M.

use sibyl_bench::{banner, hm_config, seed, trace_len};
use sibyl_core::SibylConfig;
use sibyl_sim::report::Table;
use sibyl_sim::{Experiment, PolicyKind};
use sibyl_trace::msrc;

fn sweep<F>(
    name: &str,
    values: &[f64],
    mut mutate: F,
    n: usize,
) -> Result<(), Box<dyn std::error::Error>>
where
    F: FnMut(&mut SibylConfig, f64),
{
    let workloads = [
        msrc::Workload::Rsrch0,
        msrc::Workload::Prxy1,
        msrc::Workload::Usr0,
    ];
    let mut table = Table::new(vec![name.to_string(), "normalized IOPS (avg)".to_string()]);
    for &v in values {
        let mut acc = 0.0f64;
        for &wl in &workloads {
            let trace = msrc::generate(wl, n, seed());
            let exp = Experiment::new(hm_config(), trace).with_time_scale(40.0);
            let fast = exp.run(PolicyKind::FastOnly)?;
            let mut cfg = SibylConfig::default();
            mutate(&mut cfg, v);
            let out = exp.run(PolicyKind::sibyl_with(cfg))?;
            acc += out.metrics.iops / fast.metrics.iops.max(1e-9);
        }
        table.add_row(vec![
            format!("{v}"),
            format!("{:.3}", acc / workloads.len() as f64),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(12_000);
    banner(
        "Figure 14",
        "Sibyl throughput sensitivity to γ, α, ε (H&M, normalized to Fast-Only)",
    );
    println!("(a) discount factor γ");
    sweep(
        "gamma",
        &[0.0, 0.1, 0.5, 0.9, 0.95, 1.0],
        |c, v| c.discount = v as f32,
        n,
    )?;
    println!("(b) learning rate α");
    sweep(
        "alpha",
        &[1e-5, 1e-4, 1e-3, 1e-2, 1e-1],
        |c, v| c.learning_rate = v as f32,
        n,
    )?;
    println!("(c) exploration rate ε");
    sweep(
        "epsilon",
        &[1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0],
        |c, v| {
            c.exploration = v;
            c.exploration_initial = c.exploration_initial.max(v);
        },
        n,
    )?;
    println!("(Paper: γ = 0 and ε ≥ 0.1 hurt sharply; mid-range α is best.)");
    Ok(())
}
