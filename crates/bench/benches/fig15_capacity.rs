//! Figure 15: average request latency while sweeping the fast device's
//! available capacity from 1 % to 90 % of the working set, under H&M and
//! H&L.

use sibyl_bench::{banner, hl_config, hm_config, seed, trace_len};
use sibyl_sim::report::Table;
use sibyl_sim::sweeps::fast_capacity_sweep;
use sibyl_sim::PolicyKind;
use sibyl_trace::msrc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(15_000);
    let policies = vec![
        PolicyKind::Cde,
        PolicyKind::Hps,
        PolicyKind::Archivist,
        PolicyKind::sibyl(),
        PolicyKind::Oracle,
    ];
    let fractions = [0.01, 0.05, 0.10, 0.20, 0.40, 0.90];
    let workloads = [msrc::Workload::Rsrch0, msrc::Workload::Prxy1];
    banner(
        "Figure 15",
        "Normalized latency vs available fast-device capacity (fraction of working set)",
    );
    for (name, cfg) in [("(a) H&M", hm_config()), ("(b) H&L", hl_config())] {
        let mut headers = vec!["capacity".to_string()];
        headers.extend(policies.iter().map(|p| p.name().to_string()));
        let mut table = Table::new(headers);
        for &frac in &fractions {
            // Average the normalized latency across workloads per point.
            let mut sums = vec![0.0f64; policies.len()];
            for &wl in &workloads {
                let trace = msrc::generate(wl, n, seed());
                let pts = fast_capacity_sweep(&cfg, &trace, &policies, &[frac])?;
                for (i, (_, v)) in pts[0].normalized_latency.iter().enumerate() {
                    sums[i] += v;
                }
            }
            let mut row = vec![format!("{:.0}%", frac * 100.0)];
            for s in sums {
                row.push(format!("{:.2}", s / workloads.len() as f64));
            }
            table.add_row(row);
        }
        println!("{name} HSS configuration");
        println!("{}", table.render());
    }
    println!("(Paper: latencies approach Fast-Only as capacity grows, except Archivist.)");
    Ok(())
}
