//! Figure 16: tri-hybrid storage systems — the hot/cold/frozen heuristic
//! vs Sibyl on H&M&L and H&M&Lssd (normalized to Fast-Only).
//!
//! Extending Sibyl needed only (1) one more action and (2) the remaining
//! capacity of M as a state feature — both happen automatically from the
//! device count (§8.7).

use sibyl_bench::{
    all_workloads, banner, hml_config, hml_ssd_config, latency_row, seed, trace_len,
};
use sibyl_sim::report::Table;
use sibyl_sim::{run_suite, PolicyKind};
use sibyl_trace::msrc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(25_000);
    let policies = vec![PolicyKind::TriHybridHeuristic, PolicyKind::sibyl()];
    banner(
        "Figure 16",
        "Tri-HSS average request latency normalized to Fast-Only",
    );
    for (name, cfg) in [
        ("(a) H&M&L", hml_config()),
        ("(b) H&M&Lssd", hml_ssd_config()),
    ] {
        let mut headers = vec!["workload".to_string()];
        headers.extend(policies.iter().map(|p| p.name().to_string()));
        let mut table = Table::new(headers);
        let mut rows = Vec::new();
        for wl in all_workloads() {
            let trace = msrc::generate(wl, n, seed());
            let suite = run_suite(&cfg, &trace, &policies)?;
            let row = latency_row(&suite);
            table.add_row(row.clone());
            rows.push(row);
        }
        sibyl_bench::append_avg_row(&mut table, &rows);
        println!("{name} configuration");
        println!("{}", table.render());
    }
    Ok(())
}
