//! Figure 17: explainability — Sibyl's preference for the fast device
//! (fraction of placements targeting it) per workload, under H&M and
//! H&L.
//!
//! The paper's reading: with a large inter-device gap (H&L) Sibyl
//! aggressively prefers fast storage; with a small gap (H&M) it places
//! only performance-critical pages there.

use sibyl_bench::{all_workloads, banner, hl_config, hm_config, seed, trace_len};
use sibyl_sim::report::Table;
use sibyl_sim::{Experiment, PolicyKind};
use sibyl_trace::msrc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(25_000);
    banner(
        "Figure 17",
        "Sibyl's preference for fast storage: #fast placements / #all placements",
    );
    let mut table = Table::new(vec!["workload".into(), "H&M".into(), "H&L".into()]);
    let mut sums = [0.0f64; 2];
    let mut count = 0usize;
    for wl in all_workloads() {
        let trace = msrc::generate(wl, n, seed());
        let mut row = vec![trace.name().to_string()];
        for (i, cfg) in [hm_config(), hl_config()].into_iter().enumerate() {
            let exp = Experiment::new(cfg, trace.clone());
            let out = exp.run(PolicyKind::sibyl())?;
            let pref = out.metrics.fast_placement_fraction;
            sums[i] += pref;
            row.push(format!("{pref:.2}"));
        }
        count += 1;
        table.add_row(row);
    }
    table.add_row(vec![
        "AVG".into(),
        format!("{:.2}", sums[0] / count as f64),
        format!("{:.2}", sums[1] / count as f64),
    ]);
    println!("{}", table.render());
    Ok(())
}
