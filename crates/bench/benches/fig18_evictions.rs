//! Figure 18: evictions from fast to slow storage as a fraction of all
//! requests, per policy, under H&M and H&L.
//!
//! The paper's reading: CDE's aggressive fast placement causes the most
//! evictions; Sibyl evicts far less in H&M but willingly evicts in H&L
//! where fast service is worth the churn.

use sibyl_bench::{all_workloads, banner, hl_config, hm_config, seed, trace_len};
use sibyl_sim::report::Table;
use sibyl_sim::{Experiment, PolicyKind};
use sibyl_trace::msrc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(15_000);
    let policies = vec![
        PolicyKind::Cde,
        PolicyKind::Hps,
        PolicyKind::Archivist,
        PolicyKind::RnnHss,
        PolicyKind::sibyl(),
    ];
    banner(
        "Figure 18",
        "Eviction events as a fraction of all storage requests",
    );
    for (name, cfg) in [("(a) H&M", hm_config()), ("(b) H&L", hl_config())] {
        let mut headers = vec!["workload".to_string()];
        headers.extend(policies.iter().map(|p| p.name().to_string()));
        let mut table = Table::new(headers);
        let mut rows = Vec::new();
        for wl in all_workloads() {
            let trace = msrc::generate(wl, n, seed());
            let exp = Experiment::new(cfg.clone(), trace.clone());
            let mut row = vec![trace.name().to_string()];
            for p in &policies {
                let out = exp.run(p.clone())?;
                row.push(format!("{:.3}", out.metrics.eviction_fraction));
            }
            table.add_row(row.clone());
            rows.push(row);
        }
        sibyl_bench::append_avg_row(&mut table, &rows);
        println!("{name} HSS configuration");
        println!("{}", table.render());
    }
    Ok(())
}
