//! §10 overhead analysis: inference latency, training-step latency, and
//! storage accounting.
//!
//! The paper reports ~780 MACs ≈ tens of nanoseconds per inference on a
//! desktop CPU, a training step well under the I/O latency of a fast SSD,
//! and a 124.4 KiB total storage overhead.
//!
//! Measured with a self-contained timing loop (median of batched runs)
//! so the target builds offline with `harness = false` like every other
//! figure bench.

use std::time::Instant;

use rand::SeedableRng;
use sibyl_bench::{hm_config, seed, trace_len, BenchJson, TwoTermFit};
use sibyl_core::{Experience, ExperienceBuffer, OverheadReport, SibylConfig};
use sibyl_nn::{Activation, Mlp};
use sibyl_serve::{DecideCost, ServeConfig, TelemetryConfig};
use sibyl_sim::report::Table;
use sibyl_sim::ServeExperiment;
use sibyl_trace::mix::Mix;

/// Times `f` over batched runs and prints the median ns/iter.
fn bench_function(name: &str, mut f: impl FnMut()) {
    const BATCH: u32 = 10_000;
    const RUNS: usize = 31;
    // Warm-up.
    for _ in 0..BATCH {
        f();
    }
    let mut per_iter_ns: Vec<f64> = (0..RUNS)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..BATCH {
                f();
            }
            start.elapsed().as_nanos() as f64 / BATCH as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{name:<40} {:>10.1} ns/iter (median of {RUNS} x {BATCH})",
        per_iter_ns[RUNS / 2]
    );
}

fn inference_benchmark() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // The paper's §10 network: 6-20-30-2.
    let paper_net = Mlp::new(
        &[6, 20, 30, 2],
        Activation::Swish,
        Activation::Linear,
        &mut rng,
    );
    let obs = [0.3f32, 1.0, 0.4, 0.6, 0.9, 0.0];
    bench_function("inference_paper_network_780_macs", || {
        std::hint::black_box(paper_net.infer(std::hint::black_box(&obs)));
    });

    // Our default C51 head (6-20-30-102).
    let c51_net = Mlp::new(
        &[6, 20, 30, 102],
        Activation::Swish,
        Activation::Linear,
        &mut rng,
    );
    bench_function("inference_c51_network", || {
        std::hint::black_box(c51_net.infer(std::hint::black_box(&obs)));
    });
}

fn training_benchmark() {
    // One full training step (8 batches × 128) through the public agent
    // machinery is exercised indirectly; here we measure the raw
    // forward+backward cost the paper counts (1,597,440 MACs).
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut net = Mlp::new(
        &[6, 20, 30, 2],
        Activation::Swish,
        Activation::Linear,
        &mut rng,
    );
    let obs = [0.3f32, 1.0, 0.4, 0.6, 0.9, 0.0];
    bench_function("train_sample_forward_backward", || {
        let y = net.forward(std::hint::black_box(&obs));
        let grad: Vec<f32> = y.iter().map(|v| 2.0 * v).collect();
        net.zero_grad();
        std::hint::black_box(net.backward(&grad));
    });
}

/// §10's training-step cost, swept over replay-batch sizes: the modeled
/// per-sample latency (deterministic — two weight streams per replay
/// batch, amortized over the batch) next to measured wall-clock numbers
/// for the per-sample reference loop and the batched path that replaced
/// it. The per-sample columns drop monotonically from batch 1 → 32: the
/// batched kernels stream each weight matrix once per batch.
fn training_step_table() -> Table {
    const NS_PER_MAC: f64 = 20.0;
    println!("--- §10.1 training-step latency (C51 net, {NS_PER_MAC} ns/MAC model) ---");
    let mut table = Table::new(
        [
            "batch",
            "model step (us)",
            "model/sample (us)",
            "seq ns/sample",
            "batched ns/sample",
        ]
        .map(String::from)
        .to_vec(),
    );
    for row in sibyl_bench::train_step_latency_rows(&[1, 8, 32], NS_PER_MAC) {
        table.add_row(vec![
            row.batch.to_string(),
            format!("{:.2}", row.modeled_step_us),
            format!("{:.3}", row.modeled_per_sample_us),
            format!("{:.1}", row.seq_ns_per_sample),
            format!("{:.1}", row.batched_ns_per_sample),
        ]);
    }
    println!("{}", table.render());
    table
}

/// The decide-path kernel table: measured ns/MAC through the retained
/// scalar references (the pre-tiling "before"), the tiled f32 kernels
/// (the autovectorized "after"), and the f16 fast path (binary16 weight
/// storage, f32 compute), next to the deterministic modeled per-request
/// decide cost. The scalar→tiled delta is the §10 win this PR claims;
/// the tiled ≤ scalar pin is asserted by the bench-crate regression test
/// in release builds.
fn inference_kernel_table() -> (TwoTermFit, Table) {
    const NS_PER_MAC: f64 = 20.0;
    const BATCHES: [usize; 4] = [1, 8, 16, 32];
    println!("--- §10.1 decide-path kernels (C51 net, {NS_PER_MAC} ns/MAC model) ---");
    let mut table = Table::new(
        [
            "batch",
            "model/req (us)",
            "scalar ns/MAC",
            "tiled ns/MAC",
            "f16 ns/MAC",
        ]
        .map(String::from)
        .to_vec(),
    );
    let rows = sibyl_bench::infer_kernel_rows(&BATCHES, NS_PER_MAC);
    for row in &rows {
        table.add_row(vec![
            row.batch.to_string(),
            format!("{:.3}", row.modeled_per_req_us),
            format!("{:.3}", row.scalar_ns_per_mac),
            format!("{:.3}", row.tiled_ns_per_mac),
            format!("{:.3}", row.f16_ns_per_mac),
        ]);
    }
    println!("{}", table.render());

    // Calibrate the ROADMAP's two-term rider from the tiled measurements:
    // total decide µs per call = setup + per_row · batch. The fit itself
    // is exact least squares (deterministic given the measured points).
    const MACS: f64 = 1380.0;
    let points: Vec<(usize, f64)> = rows
        .iter()
        .map(|r| {
            (
                r.batch,
                r.tiled_ns_per_mac * MACS * r.batch as f64 / 1_000.0,
            )
        })
        .collect();
    let fit = sibyl_bench::calibrate_two_term(&points);
    println!(
        "two-term decide model (tiled, measured): {:.3} µs setup + {:.4} µs/row",
        fit.setup_us, fit.per_row_us
    );
    println!(
        "  equivalent single-rate at batch 32: {:.2} ns/MAC (model uses {NS_PER_MAC})",
        fit.step_us(32) * 1_000.0 / (MACS * 32.0)
    );
    (fit, table)
}

/// The calibrated fit, driven through the serving engine: the same mix2
/// replay billed once under the flat per-MAC model and once under the
/// measured two-term fit, with telemetry reporting the billed decide
/// cost per batch (the `serve.decide_ns` histogram — exactly what the
/// engine charged, not a recomputation).
fn decide_bill_table(fit: TwoTermFit) -> Table {
    const NS_PER_MAC: f64 = 20.0;
    let n = trace_len(2_000);
    let trace = Mix::Mix2.generate(n, seed());
    println!("--- §10.3 engine decide bill (mix2, {n} requests, 2 shards x batch 16) ---");
    let mut table = Table::new(
        [
            "model",
            "batches",
            "billed us/batch",
            "nn busy (us)",
            "avg lat (us)",
        ]
        .map(String::from)
        .to_vec(),
    );
    let models: [(&str, DecideCost); 2] = [
        ("per-MAC flat", DecideCost::PerMac),
        ("two-term (measured)", fit.decide_cost()),
    ];
    for (name, decide_cost) in models {
        let config = ServeConfig::new(hm_config())
            .with_shards(2)
            .with_max_batch(16)
            .with_time_scale(40.0)
            .with_nn_ns_per_mac(NS_PER_MAC)
            .with_decide_cost(decide_cost)
            .with_telemetry(TelemetryConfig::full());
        let outcome = ServeExperiment::new(config, trace.clone())
            .run()
            .expect("non-empty trace");
        let merged = outcome
            .report
            .telemetry
            .as_ref()
            .expect("telemetry enabled")
            .merged_registry();
        let batches = merged.counter("serve.batches");
        let billed_us = merged
            .histogram("serve.decide_ns")
            .map_or(0.0, |h| h.mean() / 1_000.0);
        let nn_us: f64 = outcome.report.shards.iter().map(|s| s.nn_busy_us).sum();
        table.add_row(vec![
            name.to_string(),
            batches.to_string(),
            format!("{billed_us:.3}"),
            format!("{nn_us:.1}"),
            format!("{:.1}", outcome.aggregate.avg_latency_us),
        ]);
    }
    println!("{}", table.render());
    table
}

fn buffer_benchmark() {
    let mut buf = ExperienceBuffer::new(1000);
    let mut i = 0u32;
    bench_function("experience_buffer_push", || {
        i = i.wrapping_add(1);
        buf.push(Experience {
            obs: vec![i as f32 * 1e-3; 6],
            action: (i % 2) as usize,
            reward: i as f32 * 1e-4,
            next_obs: vec![i as f32 * 1e-3 + 0.5; 6],
        });
    });
}

fn print_storage_accounting() {
    let report = OverheadReport::paper_network(2);
    let (net, buf, total) = report.paper_accounting_kib();
    println!("--- §10.2 storage accounting (paper arithmetic) ---");
    println!("weights: {} (paper: 780)", report.weights);
    println!("inference MACs: {} (paper: 780)", report.inference_macs);
    println!(
        "training-step MACs fwd+bwd: {} (paper: 1,597,440)",
        2 * report.training_step_macs_forward
    );
    println!("per network: {net:.1} KiB (paper: 12.2)");
    println!("experience buffer: {buf:.1} KiB (paper: 100)");
    println!("total: {total:.1} KiB (paper: 124.4)");
    let c51 = OverheadReport::for_config(&SibylConfig::default(), 2, 6);
    println!(
        "our default C51 head: {} weights, {} strict bytes total",
        c51.weights, c51.total_bytes
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    print_storage_accounting();
    inference_benchmark();
    let (fit, kernels) = inference_kernel_table();
    training_benchmark();
    let train = training_step_table();
    buffer_benchmark();
    let bill = decide_bill_table(fit);

    let mut json = BenchJson::new("sec10_overhead", trace_len(2_000), seed());
    json.table("infer_kernels", &kernels);
    json.table("train_step", &train);
    json.table("decide_bill", &bill);
    json.note("two_term_setup_us", format!("{:.3}", fit.setup_us));
    json.note("two_term_per_row_us", format!("{:.4}", fit.per_row_us));
    if let Some(path) = json.write()? {
        println!("bench JSON written to {path}");
    }
    Ok(())
}
