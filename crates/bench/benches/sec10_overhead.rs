//! §10 overhead analysis: inference latency, training-step latency, and
//! storage accounting, measured with Criterion.
//!
//! The paper reports ~780 MACs ≈ tens of nanoseconds per inference on a
//! desktop CPU, a training step well under the I/O latency of a fast SSD,
//! and a 124.4 KiB total storage overhead.

use criterion::{criterion_group, criterion_main, Criterion};

use rand::SeedableRng;
use sibyl_core::{Experience, OverheadReport, SibylConfig};
use sibyl_nn::{Activation, Mlp};

fn inference_benchmark(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // The paper's §10 network: 6-20-30-2.
    let paper_net = Mlp::new(&[6, 20, 30, 2], Activation::Swish, Activation::Linear, &mut rng);
    let obs = [0.3f32, 1.0, 0.4, 0.6, 0.9, 0.0];
    c.bench_function("inference_paper_network_780_macs", |b| {
        b.iter(|| std::hint::black_box(paper_net.infer(std::hint::black_box(&obs))))
    });

    // Our default C51 head (6-20-30-102).
    let c51_net = Mlp::new(&[6, 20, 30, 102], Activation::Swish, Activation::Linear, &mut rng);
    c.bench_function("inference_c51_network", |b| {
        b.iter(|| std::hint::black_box(c51_net.infer(std::hint::black_box(&obs))))
    });
}

fn training_benchmark(c: &mut Criterion) {
    // One full training step (8 batches × 128) through the public agent
    // machinery is exercised indirectly; here we measure the raw
    // forward+backward cost the paper counts (1,597,440 MACs).
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut net = Mlp::new(&[6, 20, 30, 2], Activation::Swish, Activation::Linear, &mut rng);
    let obs = [0.3f32, 1.0, 0.4, 0.6, 0.9, 0.0];
    c.bench_function("train_sample_forward_backward", |b| {
        b.iter(|| {
            let y = net.forward(std::hint::black_box(&obs));
            let grad: Vec<f32> = y.iter().map(|v| 2.0 * v).collect();
            net.zero_grad();
            std::hint::black_box(net.backward(&grad));
        })
    });
}

fn buffer_benchmark(c: &mut Criterion) {
    use sibyl_core::ExperienceBuffer;
    let mut buf = ExperienceBuffer::new(1000);
    let mut i = 0u32;
    c.bench_function("experience_buffer_push", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            buf.push(Experience {
                obs: vec![i as f32 * 1e-3; 6],
                action: (i % 2) as usize,
                reward: i as f32 * 1e-4,
                next_obs: vec![i as f32 * 1e-3 + 0.5; 6],
            });
        })
    });
}

fn print_storage_accounting() {
    let report = OverheadReport::paper_network(2);
    let (net, buf, total) = report.paper_accounting_kib();
    println!("--- §10.2 storage accounting (paper arithmetic) ---");
    println!("weights: {} (paper: 780)", report.weights);
    println!("inference MACs: {} (paper: 780)", report.inference_macs);
    println!(
        "training-step MACs fwd+bwd: {} (paper: 1,597,440)",
        2 * report.training_step_macs_forward
    );
    println!("per network: {net:.1} KiB (paper: 12.2)");
    println!("experience buffer: {buf:.1} KiB (paper: 100)");
    println!("total: {total:.1} KiB (paper: 124.4)");
    let c51 = OverheadReport::for_config(&SibylConfig::default(), 2, 6);
    println!(
        "our default C51 head: {} weights, {} strict bytes total",
        c51.weights, c51.total_bytes
    );
}

fn benches(c: &mut Criterion) {
    print_storage_accounting();
    inference_benchmark(c);
    training_benchmark(c);
    buffer_benchmark(c);
}

criterion_group! {
    name = overhead;
    config = Criterion::default().sample_size(50).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(overhead);
