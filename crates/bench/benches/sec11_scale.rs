//! §11 scale-out: aggregate throughput of the sharded serving engine as
//! shard count and inference batch size grow.
//!
//! The paper serves placement decisions online for a single HSS node;
//! this target measures the reproduction's serving layer beyond that —
//! `sibyl-serve` routes a mixed workload (Table 5's mix2) across N
//! worker shards, each an independent HSS + agent deciding batches of
//! requests with one batched C51 inference pass. Replay runs with
//! compressed think time so device capacity, not arrival rate, bounds
//! IOPS (the Fig. 10 regime). Aggregate IOPS should rise monotonically
//! with the shard count: each shard brings its own devices, so the
//! engine models scale-out across storage nodes.
//!
//! NN inference time is charged through the §10 overhead model
//! (`nn_ns_per_mac`), amortized per batch — so growing the batch size
//! shows up as *lower average latency*, not just higher IOPS: at batch 1
//! every request pays a full forward pass, at batch 32 a thirty-second
//! of one.

use sibyl_bench::{banner, hm_config, seed, trace_len, BenchJson};
use sibyl_core::SibylConfig;
use sibyl_serve::{ServeConfig, TelemetryConfig};
use sibyl_sim::report::Table;
use sibyl_sim::ServeExperiment;
use sibyl_trace::mix::Mix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(6_000);
    let trace = Mix::Mix2.generate(n, seed());
    banner(
        "§11 scale-out",
        "Sharded serving engine: aggregate IOPS and latency vs shard count and batch size",
    );
    println!(
        "workload {} ({} requests), accelerated replay\n",
        trace.name(),
        trace.len()
    );

    // Shorter train interval than the paper's 1000 so every shard still
    // trains a useful number of steps on its partition of the trace.
    let sibyl = SibylConfig {
        train_interval: 250,
        ..Default::default()
    };

    // 20 ns per MAC ≈ 76 µs per C51 forward pass — software inference on
    // a busy core. Charged per batch and amortized, so the batch-size
    // sweep shows the win in the latency column, not just IOPS.
    const NN_NS_PER_MAC: f64 = 20.0;

    let mut json = BenchJson::new("sec11_scale", n, seed());
    for batch in [1usize, 8, 32] {
        let mut table = Table::new(
            [
                "shards",
                "agg IOPS",
                "speedup",
                "avg lat (us)",
                "nn us/req",
                "fast frac",
            ]
            .map(String::from)
            .to_vec(),
        );
        let mut base_iops = 0.0f64;
        for shards in [1usize, 2, 4, 8] {
            let config = ServeConfig::new(hm_config())
                .with_shards(shards)
                .with_max_batch(batch)
                .with_time_scale(40.0)
                .with_nn_ns_per_mac(NN_NS_PER_MAC)
                .with_sibyl(sibyl.clone());
            let outcome = ServeExperiment::new(config, trace.clone()).run()?;
            let agg = outcome.aggregate;
            let nn_us: f64 = outcome.report.shards.iter().map(|s| s.nn_busy_us).sum();
            if shards == 1 {
                base_iops = agg.iops;
            }
            table.add_row(vec![
                shards.to_string(),
                format!("{:.0}", agg.iops),
                format!("{:.2}x", agg.iops / base_iops.max(1e-9)),
                format!("{:.1}", agg.avg_latency_us),
                format!("{:.2}", nn_us / agg.total_requests.max(1) as f64),
                format!("{:.2}", agg.fast_placement_fraction),
            ]);
        }
        println!("inference batch size {batch}");
        println!("{}", table.render());
        json.table(&format!("batch{batch}"), &table);
    }

    // CI determinism gate: when SIBYL_TELEMETRY_OUT names a file, rerun
    // the 4-shard × batch-16 point with full telemetry and dump the
    // deterministic JSONL export there. The export is keyed on logical
    // time only (wall-clock lives in the excluded `measured.*`
    // namespace), so two invocations must produce byte-identical files —
    // CI runs this twice and diffs the dumps with `cmp`.
    if let Ok(path) = std::env::var("SIBYL_TELEMETRY_OUT") {
        let config = ServeConfig::new(hm_config())
            .with_shards(4)
            .with_max_batch(16)
            .with_time_scale(40.0)
            .with_nn_ns_per_mac(NN_NS_PER_MAC)
            .with_curve_every(8)
            .with_sibyl(sibyl.clone())
            .with_telemetry(TelemetryConfig::full());
        let outcome = ServeExperiment::new(config, trace).run()?;
        let jsonl = outcome.telemetry_jsonl().expect("telemetry enabled");
        std::fs::write(&path, &jsonl)?;
        println!(
            "telemetry JSONL ({} lines) written to {path}",
            jsonl.lines().count()
        );
    }
    if let Some(path) = json.write()? {
        println!("bench JSON written to {path}");
    }
    Ok(())
}
