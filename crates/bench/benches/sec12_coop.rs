//! §12 cooperation: multi-agent learning across shards of the serving
//! engine (the Harmonia direction, beyond the paper).
//!
//! The paper trains one agent on one HSS node. Once traffic is
//! partitioned across shards (`sec11_scale`), each shard's private agent
//! sees only its slice — and on a skew-partitioned workload, data-poor
//! shards relearn slowly what data-rich shards already know. This target
//! sweeps the four cooperation modes of `sibyl-coop` (independent /
//! shared replay / federated weight averaging / both) against shard
//! counts on a skew-partitioned hot/cold mix, reporting aggregate
//! latency (normalized to the independent baseline), fast-placement
//! preference ("hit rate"), and the learning curves that show *why*
//! cooperation wins: cooperative shards pull the knee of the curve
//! earlier. NN inference time is charged via the §10 overhead model, so
//! the latency columns include the decision cost cooperation has to
//! amortize.

use sibyl_bench::{banner, hm_config, seed, skewed_coop_trace, trace_len, BenchJson};
use sibyl_core::SibylConfig;
use sibyl_serve::{CoopConfig, CoopMode, ServeConfig};
use sibyl_sim::report::Table;
use sibyl_sim::CoopExperiment;

fn base_config(shards: usize) -> ServeConfig {
    // Shorter train interval than the paper's 1000 so every shard still
    // trains a useful number of steps on its partition of the trace; the
    // coop knobs (sync every 8 batches, publish half the experiences)
    // are shared by all cooperative modes.
    let sibyl = SibylConfig {
        train_interval: 250,
        ..Default::default()
    };
    ServeConfig::new(hm_config())
        .with_shards(shards)
        .with_max_batch(16)
        .with_time_scale(40.0)
        .with_nn_ns_per_mac(20.0)
        .with_curve_every(8)
        .with_coop(
            CoopConfig::default()
                .with_sync_period(8)
                .with_share_fraction(0.5),
        )
        .with_sibyl(sibyl)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(8_000);
    let trace = skewed_coop_trace(n, seed());
    banner(
        "§12 cooperation",
        "Multi-agent cooperation across shards: modes × shard counts on a skew-partitioned mix",
    );
    println!(
        "workload {} ({} requests), accelerated replay, NN cost charged\n",
        trace.name(),
        trace.len()
    );

    // The 4-shard sweep report doubles as the foreign-weight ablation's
    // baseline and weight-1.0 row (the default weight *is* 1.0), saving
    // two full serve runs.
    let mut json = BenchJson::new("sec12_coop", n, seed());
    let mut four_shard: Option<sibyl_sim::CoopReport> = None;
    for shards in [1usize, 2, 4, 8] {
        let exp = CoopExperiment::new(base_config(shards), trace.clone());
        let report = exp.run_all()?;
        if shards == 4 {
            four_shard = Some(report.clone());
        }
        let mut table = Table::new(
            [
                "mode",
                "avg lat (us)",
                "norm lat",
                "fast frac",
                "hit gain",
                "syncs",
                "shared exps",
            ]
            .map(String::from)
            .to_vec(),
        );
        for outcome in &report.outcomes {
            let syncs: u64 = outcome.report.shards.iter().map(|s| s.coop_syncs).sum();
            let shared: u64 = outcome
                .report
                .shards
                .iter()
                .map(|s| s.agent.shared_absorbed)
                .sum();
            table.add_row(vec![
                outcome.mode.to_string(),
                format!("{:.1}", outcome.aggregate.avg_latency_us),
                format!("{:.3}", report.normalized_latency(outcome.mode)),
                format!("{:.3}", outcome.aggregate.fast_placement_fraction),
                format!("{:+.3}", report.hit_rate_gain(outcome.mode)),
                syncs.to_string(),
                shared.to_string(),
            ]);
        }
        println!("{shards} shard(s)");
        println!("{}", table.render());
        json.table(&format!("shards{shards}"), &table);
        let best = report.best_cooperative_mode();
        println!(
            "best cooperative mode: {best} (norm lat {:.3}, hit gain {:+.3})\n",
            report.normalized_latency(best),
            report.hit_rate_gain(best),
        );
        json.note(&format!("best_coop_shards{shards}"), best);

        // Learning curves explain the win: print the aggregate curve of
        // the baseline vs the best cooperative mode at the widest sweep
        // point.
        if shards == 8 {
            let indep = report
                .outcome(CoopMode::Independent)
                .expect("run_all covers every mode");
            let coop = report.outcome(best).expect("run_all covers every mode");
            let mut curve = Table::new(
                [
                    "requests",
                    "indep lat",
                    "coop lat",
                    "indep fast",
                    "coop fast",
                ]
                .map(String::from)
                .to_vec(),
            );
            for (a, b) in indep.curve.iter().zip(&coop.curve) {
                curve.add_row(vec![
                    a.requests.to_string(),
                    format!("{:.1}", a.avg_latency_us),
                    format!("{:.1}", b.avg_latency_us),
                    format!("{:.3}", a.fast_placement_fraction),
                    format!("{:.3}", b.fast_placement_fraction),
                ]);
            }
            println!("learning curves, {shards} shards (cumulative): independent vs {best}");
            println!("{}", curve.render());
            json.table("curves_shards8", &curve);
        }
    }

    // Shared-replay importance weighting (ROADMAP item): absorbed foreign
    // experiences enter the replay buffer on equal terms at
    // foreign_weight 1.0 (bit-identical to the pre-knob engine); 0.5
    // halves their loss/gradient contribution, damping stale
    // off-partition transitions without changing what is shared or how
    // sampling draws.
    println!("foreign-weight ablation (shared replay, 4 shards)");
    let mut ablation = Table::new(
        ["foreign weight", "avg lat (us)", "norm lat", "shared exps"]
            .map(String::from)
            .to_vec(),
    );
    // Only SharedReplay depends on the weight, and the sweep above
    // already ran the 4-shard Independent baseline and the
    // default-weight (1.0) SharedReplay point — reuse both and run only
    // the 0.5 point fresh.
    let four_shard = four_shard.expect("4-shard sweep ran");
    let baseline = four_shard
        .outcome(CoopMode::Independent)
        .expect("run_all covers every mode")
        .aggregate
        .avg_latency_us;
    let mut row = |weight: f64, outcome: &sibyl_sim::CoopOutcome| {
        let shared: u64 = outcome
            .report
            .shards
            .iter()
            .map(|s| s.agent.shared_absorbed)
            .sum();
        ablation.add_row(vec![
            format!("{weight:.1}"),
            format!("{:.1}", outcome.aggregate.avg_latency_us),
            format!(
                "{:.3}",
                outcome.aggregate.avg_latency_us / baseline.max(1e-9)
            ),
            shared.to_string(),
        ]);
    };
    row(
        1.0,
        four_shard
            .outcome(CoopMode::SharedReplay)
            .expect("run_all covers every mode"),
    );
    let mut cfg = base_config(4);
    cfg.coop = cfg.coop.with_foreign_weight(0.5);
    let halved = CoopExperiment::new(cfg, trace.clone()).run_mode(CoopMode::SharedReplay)?;
    row(0.5, &halved);
    println!("{}", ablation.render());
    json.table("foreign_weight_ablation", &ablation);
    if let Some(path) = json.write()? {
        println!("bench JSON written to {path}");
    }
    Ok(())
}
