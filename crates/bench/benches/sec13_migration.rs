//! §13 background migration: the Harmonia-style second agent (beyond the
//! paper).
//!
//! Sibyl only decides where a page lands on first write; once placed,
//! pages move only reactively (on-access promotion, capacity eviction).
//! On a phase-shifting (diurnal) workload that staleness costs latency:
//! after each phase rotation the new hot set serves from slow storage
//! until the placement agent relearns it, one slow access at a time.
//! This target sweeps the three `sibyl-migrate` policies — no migration
//! / hot-cold threshold heuristic / the second C51 agent — on the
//! `synth::diurnal` trace, reporting aggregate latency (normalized to
//! the no-migration baseline), migration volume, and the device time the
//! migration I/O consumed (charged against the same device clocks the
//! foreground requests queue on, so the win is net of its own cost).

use sibyl_bench::{banner, migration_config, seed, trace_len, BenchJson};
use sibyl_sim::report::Table;
use sibyl_sim::MigrationExperiment;
use sibyl_trace::synth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(10_000);
    let phases = 5;
    let trace = synth::diurnal(n, phases, seed());
    banner(
        "§13 background migration",
        "Proactive migration policies on a phase-shifting (diurnal) workload",
    );
    println!(
        "workload {} ({} requests, {} phases), accelerated replay, NN cost charged\n",
        trace.name(),
        trace.len(),
        phases
    );

    let exp = MigrationExperiment::new(migration_config(), trace);
    let report = exp.run_all()?;
    let mut table = Table::new(
        [
            "policy",
            "avg lat (us)",
            "norm lat",
            "p99 (us)",
            "fast frac",
            "promoted",
            "demoted",
            "migr busy (ms)",
            "evicted",
        ]
        .map(String::from)
        .to_vec(),
    );
    for run in &report.runs {
        table.add_row(vec![
            run.policy.to_string(),
            format!("{:.1}", run.aggregate.avg_latency_us),
            format!("{:.3}", report.normalized_latency(run.policy)),
            format!(
                "{:.0}",
                run.shard_metrics
                    .iter()
                    .map(|m| m.p99_latency_us)
                    .fold(0.0, f64::max)
            ),
            format!("{:.3}", run.aggregate.fast_placement_fraction),
            run.promoted_pages.to_string(),
            run.demoted_pages.to_string(),
            format!("{:.1}", run.migration_busy_us / 1_000.0),
            run.aggregate.evicted_pages.to_string(),
        ]);
    }
    println!("{}", table.render());
    let best = report.best_active_policy();
    println!(
        "best active policy: {best} (norm lat {:.3}, hit gain {:+.3})",
        report.normalized_latency(best),
        report.hit_rate_gain(best),
    );

    let mut json = BenchJson::new("sec13_migration", n, seed());
    json.table("policies", &table);
    json.note("best_active_policy", best);
    if let Some(path) = json.write()? {
        println!("bench JSON written to {path}");
    }
    Ok(())
}
