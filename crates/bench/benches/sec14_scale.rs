//! §14 scale: streamed 10M-request serving runs with footprint-bounded
//! memory.
//!
//! Everything before this target materialized its workload as a
//! `Vec<IoRequest>` (24 bytes per request — 240 MB for a 10M-request
//! run) and tracked pages in a `HashMap` + per-device `BTreeMap`
//! directory. This target exercises the scale path end to end: the
//! workload is Table 5's mix2 as a seeded *infinite stream*
//! ([`Mix::stream`]) fed straight into [`sibyl_serve::serve_stream`]'s
//! bounded router queues, and each shard's compact page directory
//! (dense entry arena + open-addressing index + intrusive LRU lists)
//! reports its exact resident bytes.
//!
//! The sweep holds the stream's horizon — and therefore the workload's
//! page footprint — fixed while growing the request count 1×/10×/100×
//! (1e5 → 1e7 at default size). Two invariants are asserted, so this
//! bench doubles as the CI peak-directory-bytes gate (smoke-run with a
//! low `SIBYL_REQS`):
//!
//! - **Compactness**: resident directory bytes per tracked page stay
//!   under 96 (entry arena 40 B/page + index slot + Vec-doubling slack;
//!   the old map-of-maps layout sat well above 130 B/page before
//!   per-allocation overhead).
//! - **Sublinearity**: serving 100× the requests grows the directory by
//!   < 4× — metadata tracks the *footprint*, not the trace length.

use std::time::Instant;

use sibyl_bench::{banner, hm_config, seed, trace_len, BenchJson};
use sibyl_core::SibylConfig;
use sibyl_serve::ServeConfig;
use sibyl_sim::report::Table;
use sibyl_sim::ServeExperiment;
use sibyl_trace::mix::Mix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Per-component horizon: fixes the calibrated footprint every scale
    // point streams over. Default 50k/component → 100k-request base
    // sweep point (2 components), ×100 → 10M.
    let horizon = trace_len(50_000);
    banner(
        "§14 scale",
        "Streamed serving at 1x/10x/100x the horizon: IOPS and resident directory bytes",
    );
    println!(
        "workload mix2 streamed (horizon {horizon}/component, footprint fixed), \
         4 shards x batch 16, accelerated replay\n"
    );

    let sibyl = SibylConfig {
        train_interval: 250,
        ..Default::default()
    };
    let config = ServeConfig::new(hm_config())
        .with_shards(4)
        .with_max_batch(16)
        .with_time_scale(40.0)
        .with_nn_ns_per_mac(20.0)
        .with_sibyl(sibyl);

    let mut table = Table::new(
        [
            "requests",
            "agg IOPS",
            "avg lat (us)",
            "dir peak (KiB)",
            "dir total (KiB)",
            "B/page",
            "wall (s)",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut dir_totals: Vec<u64> = Vec::new();
    let mut request_totals: Vec<u64> = Vec::new();
    for scale in [1usize, 10, 100] {
        let total = 2 * horizon * scale;
        let stream = Mix::Mix2.stream(horizon, seed()).take(total);
        let t = Instant::now();
        let outcome = ServeExperiment::run_stream(&config, stream)?;
        let wall = t.elapsed().as_secs_f64();
        let agg = outcome.aggregate;
        let peak = outcome.report.peak_directory_bytes();
        let dir_bytes = outcome.report.total_directory_bytes();
        let dir_pages = outcome.report.total_directory_pages();
        let bytes_per_page = dir_bytes as f64 / dir_pages.max(1) as f64;
        table.add_row(vec![
            total.to_string(),
            format!("{:.0}", agg.iops),
            format!("{:.1}", agg.avg_latency_us),
            format!("{:.0}", peak as f64 / 1024.0),
            format!("{:.0}", dir_bytes as f64 / 1024.0),
            format!("{bytes_per_page:.1}"),
            format!("{wall:.2}"),
        ]);
        assert_eq!(agg.total_requests, total as u64, "every request served");
        assert!(
            bytes_per_page <= 96.0,
            "directory not compact: {bytes_per_page:.1} bytes per tracked page"
        );
        dir_totals.push(dir_bytes);
        request_totals.push(agg.total_requests);
    }
    println!("{}", table.render());

    let (first, last) = (dir_totals[0], *dir_totals.last().unwrap());
    let growth = last as f64 / first.max(1) as f64;
    let req_growth = *request_totals.last().unwrap() as f64 / request_totals[0].max(1) as f64;
    println!(
        "directory growth {growth:.2}x across a {req_growth:.0}x request sweep \
         (metadata tracks footprint, not trace length)"
    );
    assert!(
        growth < 4.0,
        "directory bytes must be sublinear in trace length: {first} -> {last} bytes \
         over a {req_growth:.0}x request sweep"
    );

    let mut json = BenchJson::new("sec14_scale", horizon, seed());
    json.table("scale", &table);
    json.note("directory_growth", format!("{growth:.2}"));
    json.note("request_growth", format!("{req_growth:.0}"));
    if let Some(path) = json.write()? {
        println!("bench JSON written to {path}");
    }
    Ok(())
}
