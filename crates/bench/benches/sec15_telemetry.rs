//! §15 telemetry overhead: what observability costs, measured end to end
//! through the serving engine.
//!
//! The same mix2 replay (4 shards × inference batch 16, the sec11
//! reference point) runs at each [`TelemetryConfig`] level — `Off` (no
//! sink allocated), `Events` (counters, gauges, series, and the bounded
//! event ring), and `Full` (adds histograms and the per-`curve_every` RL
//! introspection probe). The timing arms are interleaved round-robin and
//! compared by median, so load drift on a busy machine hits every level
//! equally instead of biasing one.
//!
//! Two invariants hold by construction and are asserted here (and pinned
//! by the bench-crate regression test and the serve-crate goldens):
//! every level produces bit-identical per-shard reports — telemetry
//! observes, it never decides — and the deterministic JSONL export is
//! byte-identical across runs. The companion wall-clock pin bounds the
//! enabled-telemetry overhead at 3% of measured throughput in release
//! builds.

use std::time::Instant;

use sibyl_bench::{banner, hm_config, seed, trace_len, BenchJson};
use sibyl_core::SibylConfig;
use sibyl_serve::{serve_trace, ServeConfig, ServeReport, TelemetryConfig};
use sibyl_sim::report::Table;
use sibyl_trace::mix::Mix;

/// Timing rounds per level (median reported).
const RUNS: usize = 9;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(4_000);
    let trace = Mix::Mix2.generate(n, seed());
    banner(
        "§15 telemetry",
        "Observability overhead by level: Off vs Events vs Full through the serving engine",
    );
    println!(
        "workload {} ({} requests), 4 shards x batch 16, median of {RUNS} interleaved rounds\n",
        trace.name(),
        trace.len()
    );

    let sibyl = SibylConfig {
        train_interval: 250,
        ..Default::default()
    };
    let base = ServeConfig::new(hm_config())
        .with_shards(4)
        .with_max_batch(16)
        .with_time_scale(40.0)
        .with_nn_ns_per_mac(20.0)
        .with_curve_every(8)
        .with_sibyl(sibyl);
    let levels: [(&str, TelemetryConfig); 3] = [
        ("off", TelemetryConfig::off()),
        ("events", TelemetryConfig::events()),
        ("full", TelemetryConfig::full()),
    ];
    let configs: Vec<(&str, ServeConfig)> = levels
        .iter()
        .map(|&(name, telemetry)| (name, base.clone().with_telemetry(telemetry)))
        .collect();

    // Warm-up round; kept as the reference reports for the assertions
    // and the event/export accounting below.
    let reports: Vec<ServeReport> = configs
        .iter()
        .map(|(_, config)| serve_trace(config, &trace))
        .collect::<Result<_, _>>()?;
    for ((name, _), report) in configs.iter().zip(&reports) {
        assert_eq!(
            report.shards, reports[0].shards,
            "telemetry level {name} must not perturb placement"
        );
    }

    let mut times_ms: Vec<Vec<f64>> = vec![Vec::with_capacity(RUNS); configs.len()];
    for _ in 0..RUNS {
        for ((_, config), times) in configs.iter().zip(times_ms.iter_mut()) {
            let t = Instant::now();
            std::hint::black_box(serve_trace(config, &trace)?);
            times.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    for times in &mut times_ms {
        times.sort_by(|a, b| a.total_cmp(b));
    }
    let off_median = times_ms[0][RUNS / 2];

    let mut table = Table::new(
        [
            "level",
            "median ms",
            "overhead",
            "events",
            "dropped",
            "jsonl lines",
        ]
        .map(String::from)
        .to_vec(),
    );
    for ((name, _), (times, report)) in configs.iter().zip(times_ms.iter().zip(&reports)) {
        let median = times[RUNS / 2];
        let (events, dropped, lines) = report.telemetry.as_ref().map_or((0, 0, 0), |t| {
            (
                t.shards.iter().map(|s| s.recorded_events).sum::<u64>(),
                t.shards.iter().map(|s| s.dropped_events).sum::<u64>(),
                t.export_jsonl().lines().count() as u64,
            )
        });
        table.add_row(vec![
            (*name).to_string(),
            format!("{median:.1}"),
            format!("{:+.1}%", (median / off_median - 1.0) * 100.0),
            events.to_string(),
            dropped.to_string(),
            lines.to_string(),
        ]);
    }
    println!("{}", table.render());

    let full = reports
        .last()
        .and_then(|r| r.telemetry.as_ref())
        .expect("full level has telemetry");
    println!("--- sibyl-top (full level) ---");
    println!("{}", full.render_top());

    let mut json = BenchJson::new("sec15_telemetry", n, seed());
    json.table("levels", &table);
    json.text("top", &full.render_top());
    if let Some(path) = json.write()? {
        println!("bench JSON written to {path}");
    }
    Ok(())
}
