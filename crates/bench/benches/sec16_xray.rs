//! §16 x-ray tracing: where each request's latency goes, measured with
//! the deterministic span tracer threaded through the serving engine.
//!
//! Every target before this one reports *aggregate* latency; this one
//! decomposes it. The same reference configuration as `sec15_telemetry`
//! (4 shards × inference batch 16, §10 NN cost charged) serves two
//! workloads — Table 5's mix2 and the phase-shifting diurnal trace with
//! background migration enabled — with [`XrayConfig::Sampled`] tracing a
//! deterministic 1-in-4 subset of requests. For each run it prints the
//! exact critical-path breakdown (per shard and merged; the component
//! shares in every row sum to 100% of sampled latency — the
//! decomposition leaves nothing unattributed), the top-5 tail span
//! trees (the postmortem view of the slowest requests), and the
//! folded-stacks export consumed by flamegraph tooling.
//!
//! Sampling is a pure function of `(seed, lba, seq)`, so identically
//! seeded runs trace identical request subsets and export byte-identical
//! folded stacks — when **`SIBYL_XRAY_OUT`** names a file the mix2 run's
//! folded export is written there, and CI runs this target twice and
//! `cmp`s the two files as a determinism gate. Tracing never decides:
//! the engine's per-shard reports are bit-identical to an untraced run
//! (pinned by the serve-crate goldens and the bench-crate ≤5% overhead
//! regression test).

use sibyl_bench::{banner, hm_config, seed, trace_len, BenchJson};
use sibyl_core::SibylConfig;
use sibyl_serve::{MigrateConfig, ServeConfig, XrayConfig};
use sibyl_sim::report::Table;
use sibyl_sim::ServeExperiment;
use sibyl_trace::mix::Mix;
use sibyl_trace::{synth, Trace};
use sibyl_xray::XrayReport;

/// Sampling exponent: trace 1 request in 2^2 = 4 — dense enough for a
/// meaningful tail at smoke-run sizes, sparse enough to model the
/// production rate regime.
const SAMPLE_EXPONENT: u32 = 2;

/// The breakdown table in structured form (the same numbers
/// [`XrayReport::breakdown_table`] prints), for the JSON artifact.
fn breakdown_rows(report: &XrayReport) -> Table {
    let mut table = Table::new(
        [
            "shard",
            "sampled",
            "avg lat (us)",
            "decide",
            "train",
            "queue",
            "transfer",
            "queue_wait (us)",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut row = |label: &str, t: &sibyl_xray::ComponentTotals| {
        let pct = |ns: u64| format!("{:.1}%", t.share(ns) * 100.0);
        table.add_row(vec![
            label.to_string(),
            t.sampled.to_string(),
            format!("{:.1}", t.mean_latency_us()),
            pct(t.decide_ns),
            pct(t.train_ns),
            pct(t.queue_ns),
            pct(t.transfer_ns),
            format!(
                "{:.1}",
                t.queue_wait_ns as f64 / t.sampled.max(1) as f64 / 1_000.0
            ),
        ]);
    };
    for s in &report.shards {
        row(&s.shard.to_string(), &s.totals);
    }
    row("merged", &report.merged_totals());
    table
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = trace_len(4_000);
    banner(
        "§16 x-ray",
        "Per-request span tracing: critical-path breakdown, tail forensics, folded stacks",
    );
    println!(
        "4 shards x batch 16, 1/2^{SAMPLE_EXPONENT} deterministic sampling, \
         {n} requests per workload\n"
    );

    let sibyl = SibylConfig {
        train_interval: 250,
        ..Default::default()
    };
    let base = ServeConfig::new(hm_config())
        .with_shards(4)
        .with_max_batch(16)
        .with_time_scale(40.0)
        .with_nn_ns_per_mac(20.0)
        .with_sibyl(sibyl)
        .with_xray(XrayConfig::Sampled(SAMPLE_EXPONENT));

    let mut json = BenchJson::new("sec16_xray", n, seed());
    let runs: [(&str, Trace, ServeConfig); 2] = [
        ("mix2", Mix::Mix2.generate(n, seed()), base.clone()),
        (
            // The diurnal arm adds background migration, so the folded
            // stacks and tail trees carry stall.migrate spans too.
            "diurnal",
            synth::diurnal(n, 5, seed()),
            base.clone()
                .with_migrate(MigrateConfig::default().with_scan_period(4)),
        ),
    ];

    let mut mix2_folded: Option<String> = None;
    for (name, trace, config) in runs {
        let outcome = ServeExperiment::new(config, trace).run()?;
        let report = outcome.xray_report().expect("xray enabled");
        println!(
            "--- {name}: critical-path breakdown ({} of {} requests sampled) ---",
            report.sampled(),
            report.requests_seen()
        );
        println!("{}", report.breakdown_table());
        println!("--- {name}: top-5 tail span trees ---");
        println!("{}", report.render_tail(5));
        json.table(&format!("{name}_breakdown"), &breakdown_rows(report));
        json.text(&format!("{name}_tail"), &report.render_tail(5));
        let folded = outcome.xray_folded().expect("xray enabled");
        json.text(&format!("{name}_folded"), &folded);
        if name == "mix2" {
            mix2_folded = Some(folded);
        }
    }

    // CI determinism gate: two invocations must write byte-identical
    // folded exports (`cmp`-ed by the workflow).
    if let Ok(path) = std::env::var("SIBYL_XRAY_OUT") {
        let folded = mix2_folded.expect("mix2 arm ran");
        std::fs::write(&path, &folded)?;
        println!(
            "folded stacks ({} lines) written to {path}",
            folded.lines().count()
        );
    }
    if let Some(path) = json.write()? {
        println!("bench JSON written to {path}");
    }
    Ok(())
}
