//! Table 4: characteristics of the fourteen evaluated workloads —
//! measured from the synthesized traces, side by side with the paper's
//! published targets.

use sibyl_bench::{all_workloads, banner, seed, trace_len};
use sibyl_sim::report::Table;
use sibyl_trace::{msrc, stats::TraceStats};

fn main() {
    let n = trace_len(30_000);
    banner(
        "Table 4",
        "Measured workload characteristics vs the paper's published values",
    );
    let mut table = Table::new(vec![
        "workload".into(),
        "write% (paper)".into(),
        "write% (ours)".into(),
        "KiB (paper)".into(),
        "KiB (ours)".into(),
        "count (paper)".into(),
        "count (ours)".into(),
        "uniq reqs (ours)".into(),
    ]);
    for wl in all_workloads() {
        let spec = wl.spec();
        let st = TraceStats::measure(&msrc::generate(wl, n, seed()));
        table.add_row(vec![
            st.name.clone(),
            format!("{:.1}", spec.write_fraction * 100.0),
            format!("{:.1}", st.write_fraction * 100.0),
            format!("{:.1}", spec.avg_request_size_kib),
            format!("{:.1}", st.avg_request_size_kib),
            format!("{:.1}", spec.avg_access_count),
            format!("{:.1}", st.avg_access_count),
            format!("{}", st.unique_requests),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(Access counts scale with trace length; the paper's values are for full-week traces.)"
    );
}
