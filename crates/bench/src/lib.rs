//! # sibyl-bench
//!
//! Shared scaffolding for the per-figure benchmark targets. Every table
//! and figure in the Sibyl paper's motivation/evaluation sections has a
//! `benches/figNN_*.rs` target that regenerates its rows/series; this
//! crate holds the pieces they share.
//!
//! Run a single figure with
//! `cargo bench -p sibyl-bench --bench fig09_latency`, or everything with
//! `cargo bench --workspace`.
//!
//! ## Environment variables
//!
//! Every bench target honors two environment variables, read through
//! [`trace_len`] and [`seed`]:
//!
//! - **`SIBYL_REQS`** — requests per workload. Each target passes its own
//!   laptop-friendly default to [`trace_len`]; setting `SIBYL_REQS`
//!   overrides all of them at once, which is how CI and spot checks run
//!   the slow sweeps (`fig10`, `fig15`) in seconds. Unparsable values
//!   fall back to the default rather than failing the run.
//! - **`SIBYL_SEED`** — the workload seed (default 42). Trace synthesis,
//!   weight init, exploration, and replay sampling are all derived from
//!   explicit seeds, so two runs with identical `SIBYL_REQS`/`SIBYL_SEED`
//!   print byte-identical tables; changing `SIBYL_SEED` re-rolls the
//!   workloads for robustness checks.
//!
//! ```sh
//! SIBYL_REQS=2000 SIBYL_SEED=7 cargo bench -p sibyl-bench --bench fig09_latency
//! ```

#![warn(missing_docs)]

use sibyl_hss::{DeviceSpec, HssConfig};
use sibyl_sim::report::Table;
use sibyl_sim::SuiteResult;
use sibyl_trace::msrc::Workload;

/// Requests per workload, overridable with `SIBYL_REQS`.
pub fn trace_len(default: usize) -> usize {
    std::env::var("SIBYL_REQS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Workload seed, overridable with `SIBYL_SEED`.
pub fn seed() -> u64 {
    std::env::var("SIBYL_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The paper's performance-oriented H&M configuration (Optane + TLC SSD).
pub fn hm_config() -> HssConfig {
    HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd())
}

/// The paper's cost-oriented H&L configuration (Optane + HDD).
pub fn hl_config() -> HssConfig {
    HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
}

/// The paper's H&M&L tri-hybrid configuration.
pub fn hml_config() -> HssConfig {
    HssConfig::tri(
        DeviceSpec::optane_ssd(),
        DeviceSpec::tlc_ssd(),
        DeviceSpec::hdd(),
    )
}

/// The paper's H&M&Lssd tri-hybrid configuration.
pub fn hml_ssd_config() -> HssConfig {
    HssConfig::tri(
        DeviceSpec::optane_ssd(),
        DeviceSpec::tlc_ssd(),
        DeviceSpec::cheap_ssd(),
    )
}

/// A 6-workload subset used where running all 14 would make a sweep
/// bench unreasonably slow (the motivation figure's subset).
pub fn motivation_workloads() -> Vec<Workload> {
    Workload::MOTIVATION.to_vec()
}

/// All 14 Table 4 workloads.
pub fn all_workloads() -> Vec<Workload> {
    Workload::ALL.to_vec()
}

/// Prints a figure banner.
pub fn banner(figure: &str, caption: &str) {
    println!("\n=== {figure} ===");
    println!("{caption}\n");
}

/// Builds a normalized-latency table row for one workload's suite result.
pub fn latency_row(suite: &SuiteResult) -> Vec<String> {
    let mut row = vec![suite.workload.clone()];
    for i in 0..suite.outcomes.len() {
        row.push(format!("{:.2}", suite.normalized_latency(i)));
    }
    row
}

/// Builds a normalized-IOPS table row for one workload's suite result.
pub fn iops_row(suite: &SuiteResult) -> Vec<String> {
    let mut row = vec![suite.workload.clone()];
    for i in 0..suite.outcomes.len() {
        row.push(format!("{:.3}", suite.normalized_iops(i)));
    }
    row
}

/// Appends a geometric-mean row across previously added numeric rows.
pub fn append_avg_row(table: &mut Table, rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows[0].len();
    let mut avg = vec!["AVG".to_string()];
    for c in 1..cols {
        let vals: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.get(c).and_then(|v| v.parse::<f64>().ok()))
            .collect();
        if vals.is_empty() {
            avg.push(String::new());
        } else {
            let gm =
                (vals.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / vals.len() as f64).exp();
            avg.push(format!("{gm:.2}"));
        }
    }
    table.add_row(avg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_apply() {
        assert!(trace_len(1234) >= 1);
        let _ = seed();
    }

    #[test]
    fn configs_have_expected_shapes() {
        assert_eq!(hm_config().num_devices(), 2);
        assert_eq!(hml_config().num_devices(), 3);
        assert_eq!(hml_ssd_config().num_devices(), 3);
    }

    #[test]
    fn avg_row_is_geometric_mean() {
        let mut t = Table::new(vec!["w".into(), "x".into()]);
        let rows = vec![
            vec!["a".to_string(), "1.00".to_string()],
            vec!["b".to_string(), "4.00".to_string()],
        ];
        for r in &rows {
            t.add_row(r.clone());
        }
        append_avg_row(&mut t, &rows);
        assert!(t.render().contains("2.00"), "{}", t.render());
    }
}
