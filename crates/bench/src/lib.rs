//! # sibyl-bench
//!
//! Shared scaffolding for the per-figure benchmark targets. Every table
//! and figure in the Sibyl paper's motivation/evaluation sections has a
//! `benches/figNN_*.rs` target that regenerates its rows/series; this
//! crate holds the pieces they share.
//!
//! Run a single figure with
//! `cargo bench -p sibyl-bench --bench fig09_latency`, or everything with
//! `cargo bench --workspace`.
//!
//! ## Environment variables
//!
//! Every bench target honors two environment variables, read through
//! [`trace_len`] and [`seed`]:
//!
//! - **`SIBYL_REQS`** — requests per workload. Each target passes its own
//!   laptop-friendly default to [`trace_len`]; setting `SIBYL_REQS`
//!   overrides all of them at once, which is how CI and spot checks run
//!   the slow sweeps (`fig10`, `fig15`) in seconds. Unparsable values
//!   fall back to the default rather than failing the run.
//! - **`SIBYL_SEED`** — the workload seed (default 42). Trace synthesis,
//!   weight init, exploration, and replay sampling are all derived from
//!   explicit seeds, so two runs with identical `SIBYL_REQS`/`SIBYL_SEED`
//!   print byte-identical tables; changing `SIBYL_SEED` re-rolls the
//!   workloads for robustness checks.
//!
//! ```sh
//! SIBYL_REQS=2000 SIBYL_SEED=7 cargo bench -p sibyl-bench --bench fig09_latency
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sibyl_core::{Categorical, SibylConfig};
use sibyl_hss::{DeviceSpec, HssConfig};
use sibyl_nn::{Activation, Mlp, Sgd};
use sibyl_serve::{MigrateConfig, ServeConfig};
use sibyl_sim::report::Table;
use sibyl_sim::SuiteResult;
use sibyl_trace::msrc::Workload;
use sibyl_trace::zipf::Zipf;
use sibyl_trace::{IoOp, IoRequest, Trace};

/// Requests per workload, overridable with `SIBYL_REQS`.
pub fn trace_len(default: usize) -> usize {
    std::env::var("SIBYL_REQS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Workload seed, overridable with `SIBYL_SEED`.
pub fn seed() -> u64 {
    std::env::var("SIBYL_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The paper's performance-oriented H&M configuration (Optane + TLC SSD).
pub fn hm_config() -> HssConfig {
    HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd())
}

/// The paper's cost-oriented H&L configuration (Optane + HDD).
pub fn hl_config() -> HssConfig {
    HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
}

/// The paper's H&M&L tri-hybrid configuration.
pub fn hml_config() -> HssConfig {
    HssConfig::tri(
        DeviceSpec::optane_ssd(),
        DeviceSpec::tlc_ssd(),
        DeviceSpec::hdd(),
    )
}

/// The paper's H&M&Lssd tri-hybrid configuration.
pub fn hml_ssd_config() -> HssConfig {
    HssConfig::tri(
        DeviceSpec::optane_ssd(),
        DeviceSpec::tlc_ssd(),
        DeviceSpec::cheap_ssd(),
    )
}

/// A skew-partitioned hot/cold workload for the cooperation sweep
/// (`sec12_coop`): half the requests hit small per-region hot sets whose
/// *regions* follow a Zipf(1.2) popularity law, the other half stream
/// cold 8-page reads across a large area. Under the serving engine's
/// region-hash routing, every shard receives a very different hot/cold
/// proportion — data-rich shards see most of the hot traffic while
/// data-poor shards mostly stream cold — which is exactly the partition
/// skew where independent per-shard agents relearn what their neighbors
/// already know and cooperation (shared replay / weight averaging)
/// should close the gap.
pub fn skewed_coop_trace(n: usize, seed: u64) -> Trace {
    /// Hot regions, each the serving engine's 64-page routing granule.
    const HOT_REGIONS: usize = 32;
    const REGION_PAGES: u64 = 64;
    /// Hot pages per region — the whole hot set fits a 10 % fast device.
    const HOT_PAGES_PER_REGION: u64 = 16;
    /// Cold area: far beyond the hot span, large enough never to fit.
    const COLD_BASE: u64 = 1 << 20;
    const COLD_SPAN_PAGES: u64 = 1 << 18;
    let zipf = Zipf::new(HOT_REGIONS, 1.2);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC1_2C00);
    let mut reqs = Vec::with_capacity(n);
    let mut cold_cursor = 0u64;
    for i in 0..n {
        let ts = i as u64 * 300;
        if rng.gen::<f64>() < 0.5 {
            let region = zipf.sample(&mut rng) as u64;
            let page = region * REGION_PAGES + rng.gen_range(0..HOT_PAGES_PER_REGION);
            let op = if rng.gen::<f64>() < 0.5 {
                IoOp::Write
            } else {
                IoOp::Read
            };
            reqs.push(IoRequest::new(ts, page, 1, op));
        } else {
            let lpn = COLD_BASE + (cold_cursor * 8) % COLD_SPAN_PAGES;
            cold_cursor += 1;
            reqs.push(IoRequest::new(ts, lpn, 8, IoOp::Read));
        }
    }
    Trace::from_requests("skewed-coop", reqs)
}

/// The serving configuration `sec13_migration` sweeps the migration
/// policies under (shared with the bench-crate regression test so the
/// pinned numbers and the printed table cannot drift apart): the
/// cost-oriented H&L pair — where every avoided slow access is worth
/// milliseconds, the regime Harmonia targets — 2 shards, moderately
/// accelerated replay, the §10 NN cost charged, and a migration tick
/// every 4 batches promoting pages re-read at least 3 times. The policy
/// itself is what the sweep varies.
pub fn migration_config() -> ServeConfig {
    let sibyl = SibylConfig {
        train_interval: 250,
        ..Default::default()
    };
    let mut migrate = MigrateConfig::default()
        .with_scan_period(4)
        .with_max_moves(32)
        .with_promote_min_heat(3);
    migrate.demote_min_idle = 4_096;
    migrate.demote_watermark = 0.95;
    ServeConfig::new(hl_config())
        .with_shards(2)
        .with_max_batch(16)
        .with_time_scale(5.0)
        .with_nn_ns_per_mac(20.0)
        .with_migrate(migrate)
        .with_sibyl(sibyl)
}

/// One row of `sec10_overhead`'s training-step latency table: the C51
/// training step at one replay-batch size, under both the deterministic
/// §10 cost model and a wall-clock measurement of the real kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStepRow {
    /// Replay-batch size.
    pub batch: usize,
    /// Modeled µs for one replay batch under the batched §10 cost model
    /// — two weight streams (forward + backward) at the given ns/MAC,
    /// independent of batch size because the batched kernels stream each
    /// weight matrix once per *batch*. Deterministic.
    pub modeled_step_us: f64,
    /// Modeled µs per trained sample (`modeled_step_us / batch`) — the
    /// per-request training latency §10 charges; drops monotonically as
    /// the batch grows. Deterministic.
    pub modeled_per_sample_us: f64,
    /// Measured wall-clock ns per sample through the pre-refactor
    /// per-sample loop (one `forward`/`backward` pass per transition).
    pub seq_ns_per_sample: f64,
    /// Measured wall-clock ns per sample through the batched path
    /// (`forward_batch` + `Categorical::batch_grad` + `backward_batch`).
    pub batched_ns_per_sample: f64,
}

/// Times `step` (one whole replay batch of `batch` samples) and returns
/// the median ns per *sample* over several timed runs.
fn time_per_sample(batch: usize, mut step: impl FnMut()) -> f64 {
    let reps = (2048 / batch).max(8) as u32;
    const RUNS: usize = 9;
    // Warm-up.
    for _ in 0..reps {
        step();
    }
    let mut per_sample: Vec<f64> = (0..RUNS)
        .map(|_| {
            let start = std::time::Instant::now();
            for _ in 0..reps {
                step();
            }
            start.elapsed().as_nanos() as f64 / (reps as f64 * batch as f64)
        })
        .collect();
    per_sample.sort_by(|a, b| a.total_cmp(b));
    per_sample[RUNS / 2]
}

/// Builds `sec10_overhead`'s training-step latency table: one
/// [`TrainStepRow`] per requested replay-batch size, on the default C51
/// network (6-20-30-22, 1380 MACs) with the paper's two-network layout.
///
/// The modeled columns are pure arithmetic over `ns_per_mac` —
/// bit-identical across runs — while the measured columns time the real
/// sequential and batched training kernels over identical seeded data,
/// which is what the bench-crate regression test uses to pin that the
/// batched path is no slower than the per-sample loop it replaced.
pub fn train_step_latency_rows(batches: &[usize], ns_per_mac: f64) -> Vec<TrainStepRow> {
    // sibyl-lint: allow(entropy-rng) -- deliberate fixed harness seed: the latency table must measure identical weights every run
    let mut rng = StdRng::seed_from_u64(0x5EC1_0000);
    let head = Categorical::new(2, 11, 0.0, 10.0);
    let dims = [6, 20, 30, head.n_outputs()];
    let proto = Mlp::new(&dims, Activation::Swish, Activation::Linear, &mut rng);
    let target = proto.clone();
    let macs = proto.mac_count() as f64;
    let out_dim = proto.out_dim();
    let gamma = 0.9f32;

    let mut rows = Vec::with_capacity(batches.len());
    for &batch in batches {
        assert!(batch > 0, "train_step_latency_rows: zero batch");
        let obs: Vec<f32> = (0..batch * 6).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        let next_obs: Vec<f32> = (0..batch * 6).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        let actions: Vec<usize> = (0..batch).map(|i| i % 2).collect();
        let rewards: Vec<f32> = (0..batch).map(|i| (i % 5) as f32 * 0.25).collect();
        let next_logits = target.infer_batch(&next_obs, batch);

        // Per-sample reference: the pre-refactor loop shape — one
        // forward/backward per transition, per-sample head pipeline.
        let mut seq_net = proto.clone();
        let mut seq_opt = Sgd::new(0.001);
        let seq_ns = time_per_sample(batch, || {
            seq_net.zero_grad();
            let mut grad = Vec::new();
            for i in 0..batch {
                let next_row = &next_logits[i * out_dim..(i + 1) * out_dim];
                let next_best = head.best_action(next_row);
                let next_probs = head.action_distribution(next_row, next_best);
                let proj = head.project(rewards[i], gamma, &next_probs);
                let logits = seq_net.forward(&obs[i * 6..(i + 1) * 6]);
                let _ = head.loss_grad(&logits, actions[i], &proj, &mut grad);
                std::hint::black_box(seq_net.backward(&grad));
            }
            seq_net.apply_grads(&mut seq_opt, 1.0 / batch as f32);
        });

        // Batched path: one forward_batch, one batch_grad, one
        // backward_batch for the whole replay batch.
        let mut bat_net = proto.clone();
        let mut bat_opt = Sgd::new(0.001);
        let mut grads = Vec::new();
        let mut losses = Vec::new();
        let batched_ns = time_per_sample(batch, || {
            bat_net.zero_grad();
            let logits = bat_net.forward_batch(&obs, batch);
            head.batch_grad(
                &logits,
                &actions,
                &rewards,
                &next_logits,
                gamma,
                &mut grads,
                &mut losses,
            );
            std::hint::black_box(bat_net.backward_batch(&grads, batch));
            bat_net.apply_grads(&mut bat_opt, 1.0 / batch as f32);
        });

        let modeled_step_us = 2.0 * macs * ns_per_mac / 1_000.0;
        rows.push(TrainStepRow {
            batch,
            modeled_step_us,
            modeled_per_sample_us: modeled_step_us / batch as f64,
            seq_ns_per_sample: seq_ns,
            batched_ns_per_sample: batched_ns,
        });
    }
    rows
}

/// One row of `sec10_overhead`'s inference-kernel table: the C51 decide
/// pass at one batch size through the retained scalar reference kernels,
/// the tiled f32 kernels, and the f16 fast path — the before/after ns/MAC
/// evidence for the SIMD-friendly restructuring.
#[derive(Debug, Clone, PartialEq)]
pub struct InferKernelRow {
    /// Decide-batch size.
    pub batch: usize,
    /// Modeled µs per request under the §10 cost model — one forward
    /// weight stream amortized over the batch
    /// (`macs × ns_per_mac / batch`). Deterministic.
    pub modeled_per_req_us: f64,
    /// Measured wall-clock ns per MAC through the retained scalar
    /// reference kernels (`linalg::scalar`) — the pre-tiling "before".
    pub scalar_ns_per_mac: f64,
    /// Measured wall-clock ns per MAC through the tiled f32 kernels
    /// (`Mlp::infer_batch`) — the autovectorized "after".
    pub tiled_ns_per_mac: f64,
    /// Measured wall-clock ns per MAC through the f16 fast path
    /// (`Mlp::infer_batch_f16`): binary16 weight storage decoded per
    /// call, f32 tiled compute.
    pub f16_ns_per_mac: f64,
}

/// Batched inference through the retained scalar reference kernels — the
/// exact pre-tiling decide path, reassembled from `linalg::scalar` so the
/// overhead bench can still measure the "before" side after the refactor.
fn scalar_infer_batch(
    net: &Mlp,
    xs: &[f32],
    batch: usize,
    cur: &mut Vec<f32>,
    next: &mut Vec<f32>,
) {
    cur.clear();
    cur.extend_from_slice(xs);
    for layer in net.layers() {
        let (w, b) = layer.params();
        sibyl_nn::linalg::scalar::matmul_bias(
            w,
            b,
            cur,
            layer.out_dim(),
            layer.in_dim(),
            batch,
            next,
        );
        layer.activation().apply_slice(next);
        std::mem::swap(cur, next);
    }
}

/// Builds `sec10_overhead`'s inference-kernel table: one
/// [`InferKernelRow`] per requested decide-batch size on the default C51
/// network (6-20-30-22, 1380 MACs).
///
/// The modeled column is pure arithmetic over `ns_per_mac` —
/// bit-identical across runs — while the measured columns time the
/// retained scalar references, the tiled f32 kernels, and the f16 fast
/// path over identical seeded weights and inputs. The bench-crate
/// regression test uses the scalar/tiled pair to pin that tiling never
/// regresses the decide path.
pub fn infer_kernel_rows(batches: &[usize], ns_per_mac: f64) -> Vec<InferKernelRow> {
    // sibyl-lint: allow(entropy-rng) -- deliberate fixed harness seed: the kernel table must measure identical weights every run
    let mut rng = StdRng::seed_from_u64(0x5EC1_0001);
    let head = Categorical::new(2, 11, 0.0, 10.0);
    let dims = [6, 20, 30, head.n_outputs()];
    let mut net = Mlp::new(&dims, Activation::Swish, Activation::Linear, &mut rng);
    net.enable_f16();
    let macs = net.mac_count() as f64;

    let mut rows = Vec::with_capacity(batches.len());
    for &batch in batches {
        assert!(batch > 0, "infer_kernel_rows: zero batch");
        let xs: Vec<f32> = (0..batch * 6).map(|_| rng.gen_range(0.0f32..1.0)).collect();

        let (mut cur, mut next) = (Vec::new(), Vec::new());
        let scalar_ns = time_per_sample(batch, || {
            scalar_infer_batch(&net, &xs, batch, &mut cur, &mut next);
            std::hint::black_box(&cur);
        }) / macs;
        let tiled_ns = time_per_sample(batch, || {
            std::hint::black_box(net.infer_batch(&xs, batch));
        }) / macs;
        let f16_ns = time_per_sample(batch, || {
            std::hint::black_box(net.infer_batch_f16(&xs, batch));
        }) / macs;

        rows.push(InferKernelRow {
            batch,
            modeled_per_req_us: macs * ns_per_mac / 1_000.0 / batch as f64,
            scalar_ns_per_mac: scalar_ns,
            tiled_ns_per_mac: tiled_ns,
            f16_ns_per_mac: f16_ns,
        });
    }
    rows
}

/// The two-term decide-cost model the ROADMAP carries as a rider on the
/// §10 single-rate model: one batched decide costs
/// `setup_us + per_row_us · batch`, splitting the per-call fixed work
/// (dispatch, bias setup, cache warm-up) from the per-sample streaming
/// work the single `nn_ns_per_mac` rate folds together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoTermFit {
    /// Fixed µs per batched decide call (the model's intercept).
    pub setup_us: f64,
    /// Incremental µs per batched sample (the model's slope).
    pub per_row_us: f64,
}

impl TwoTermFit {
    /// The modeled µs for one decide call over `batch` samples.
    pub fn step_us(&self, batch: usize) -> f64 {
        self.setup_us + self.per_row_us * batch as f64
    }

    /// Lowers the fit into the serving engine's decide-cost model
    /// ([`sibyl_serve::DecideCost::TwoTerm`]), so `sec10_overhead`'s
    /// calibration can drive the engine's per-batch bill directly. Exact
    /// least squares on noisy timings can produce a slightly negative
    /// intercept or slope; those are clamped to zero so the result
    /// always passes [`sibyl_serve::ServeConfig::validate`].
    pub fn decide_cost(&self) -> sibyl_serve::DecideCost {
        sibyl_serve::DecideCost::TwoTerm {
            setup_us: self.setup_us.max(0.0),
            per_row_us: self.per_row_us.max(0.0),
        }
    }
}

/// Calibrates the two-term model from `(batch, step_us)` observations by
/// exact least squares — closed-form slope/intercept, no iteration, so
/// identical inputs produce a bit-identical fit.
///
/// # Panics
///
/// Panics with fewer than two points or when all batch sizes coincide
/// (the slope would be undefined).
pub fn calibrate_two_term(points: &[(usize, f64)]) -> TwoTermFit {
    assert!(points.len() >= 2, "calibrate_two_term: need >= 2 points");
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0, 0.0, 0.0);
    for &(b, t) in points {
        let x = b as f64;
        sx += x;
        sy += t;
        sxx += x * x;
        sxy += x * t;
    }
    let denom = n * sxx - sx * sx;
    assert!(
        denom.abs() > f64::EPSILON,
        "calibrate_two_term: batch sizes must differ"
    );
    let per_row_us = (n * sxy - sx * sy) / denom;
    let setup_us = (sy - per_row_us * sx) / n;
    TwoTermFit {
        setup_us,
        per_row_us,
    }
}

/// Escapes `s` for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A machine-readable artifact writer for the bench targets: every
/// `sec*` target assembles the tables it prints into one of these and
/// calls [`BenchJson::write`] before exiting, which is a no-op unless
/// the **`SIBYL_BENCH_JSON`** environment variable names an output path.
/// CI sets it per target and uploads the files as run artifacts, so the
/// printed numbers can be tracked across commits without scraping
/// stdout.
///
/// The schema is stable (consumers may pin it): one JSON object per
/// file, terminated by a newline —
///
/// ```json
/// {"schema":1,"target":"sec13_migration","requests":10000,"seed":42,
///  "notes":[{"key":"best_active_policy","value":"hot-cold"}],
///  "tables":[{"name":"policies","headers":["policy","..."],
///             "rows":[["no-migration","..."]]}],
///  "texts":[{"name":"folded","text":"shard0;request;nn.decide 12345\n"}]}
/// ```
///
/// Field order is fixed and every entry appears in insertion order, so
/// a target whose tables are deterministic produces a byte-identical
/// artifact across identically-seeded runs. Cells are kept as the
/// strings the tables print — the artifact mirrors the human-readable
/// output rather than re-deriving it.
#[derive(Debug, Clone)]
pub struct BenchJson {
    target: String,
    requests: usize,
    seed: u64,
    notes: Vec<(String, String)>,
    tables: Vec<(String, Vec<String>, Vec<Vec<String>>)>,
    texts: Vec<(String, String)>,
}

impl BenchJson {
    /// Starts an artifact for `target` (the bench's cargo target name),
    /// recording the request count and seed the run used.
    pub fn new(target: &str, requests: usize, seed: u64) -> Self {
        BenchJson {
            target: target.to_string(),
            requests,
            seed,
            notes: Vec::new(),
            tables: Vec::new(),
            texts: Vec::new(),
        }
    }

    /// Records a named key/value note (summary scalars, best-mode
    /// verdicts — anything the target prints outside a table).
    pub fn note(&mut self, key: &str, value: impl std::fmt::Display) {
        self.notes.push((key.to_string(), value.to_string()));
    }

    /// Records a named table, cell-for-cell as the target printed it.
    pub fn table(&mut self, name: &str, table: &Table) {
        self.tables.push((
            name.to_string(),
            table.headers().to_vec(),
            table.rows().to_vec(),
        ));
    }

    /// Records a named multi-line text artifact (folded stacks, span
    /// dumps) verbatim.
    pub fn text(&mut self, name: &str, text: &str) {
        self.texts.push((name.to_string(), text.to_string()));
    }

    /// Renders the artifact as its single-object JSON document.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":1,\"target\":\"{}\",\"requests\":{},\"seed\":{}",
            json_escape(&self.target),
            self.requests,
            self.seed
        );
        out.push_str(",\"notes\":[");
        for (i, (key, value)) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"key\":\"{}\",\"value\":\"{}\"}}",
                json_escape(key),
                json_escape(value)
            );
        }
        out.push_str("],\"tables\":[");
        for (i, (name, headers, rows)) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"headers\":[", json_escape(name));
            for (j, h) in headers.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", json_escape(h));
            }
            out.push_str("],\"rows\":[");
            for (j, row) in rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                for (k, cell) in row.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\"", json_escape(cell));
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("],\"texts\":[");
        for (i, (name, text)) in self.texts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"text\":\"{}\"}}",
                json_escape(name),
                json_escape(text)
            );
        }
        out.push_str("]}\n");
        out
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }

    /// Writes the artifact to the path named by `SIBYL_BENCH_JSON`,
    /// returning that path — or does nothing and returns `None` when the
    /// variable is unset or empty (the default local run).
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error when the variable is
    /// set but the path cannot be written.
    pub fn write(&self) -> std::io::Result<Option<String>> {
        match std::env::var("SIBYL_BENCH_JSON") {
            Ok(path) if !path.is_empty() => {
                self.write_to(&path)?;
                Ok(Some(path))
            }
            _ => Ok(None),
        }
    }
}

/// A 6-workload subset used where running all 14 would make a sweep
/// bench unreasonably slow (the motivation figure's subset).
pub fn motivation_workloads() -> Vec<Workload> {
    Workload::MOTIVATION.to_vec()
}

/// All 14 Table 4 workloads.
pub fn all_workloads() -> Vec<Workload> {
    Workload::ALL.to_vec()
}

/// Prints a figure banner.
pub fn banner(figure: &str, caption: &str) {
    println!("\n=== {figure} ===");
    println!("{caption}\n");
}

/// Builds a normalized-latency table row for one workload's suite result.
pub fn latency_row(suite: &SuiteResult) -> Vec<String> {
    let mut row = vec![suite.workload.clone()];
    for i in 0..suite.outcomes.len() {
        row.push(format!("{:.2}", suite.normalized_latency(i)));
    }
    row
}

/// Builds a normalized-IOPS table row for one workload's suite result.
pub fn iops_row(suite: &SuiteResult) -> Vec<String> {
    let mut row = vec![suite.workload.clone()];
    for i in 0..suite.outcomes.len() {
        row.push(format!("{:.3}", suite.normalized_iops(i)));
    }
    row
}

/// Appends a geometric-mean row across previously added numeric rows.
pub fn append_avg_row(table: &mut Table, rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows[0].len();
    let mut avg = vec!["AVG".to_string()];
    for c in 1..cols {
        let vals: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.get(c).and_then(|v| v.parse::<f64>().ok()))
            .collect();
        if vals.is_empty() {
            avg.push(String::new());
        } else {
            let gm =
                (vals.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / vals.len() as f64).exp();
            avg.push(format!("{gm:.2}"));
        }
    }
    table.add_row(avg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_apply() {
        assert!(trace_len(1234) >= 1);
        let _ = seed();
    }

    #[test]
    fn configs_have_expected_shapes() {
        assert_eq!(hm_config().num_devices(), 2);
        assert_eq!(hml_config().num_devices(), 3);
        assert_eq!(hml_ssd_config().num_devices(), 3);
    }

    #[test]
    fn skewed_coop_trace_is_skewed_and_deterministic() {
        let a = skewed_coop_trace(2_000, 7);
        let b = skewed_coop_trace(2_000, 7);
        assert_eq!(a.requests(), b.requests(), "generator must be seeded");
        assert_ne!(
            a.requests(),
            skewed_coop_trace(2_000, 8).requests(),
            "seed must re-roll the workload"
        );
        // The hot half is region-skewed: the most popular shard partition
        // should see far more hot requests than the least popular.
        let mut per_shard = vec![0u64; 4];
        for r in a.iter().filter(|r| r.lpn < 32 * 64) {
            per_shard[sibyl_serve::shard_of(r.lpn, 4)] += 1;
        }
        let (min, max) = (
            per_shard.iter().min().copied().unwrap_or(0),
            per_shard.iter().max().copied().unwrap_or(0),
        );
        assert!(
            max > 2 * min.max(1),
            "hot traffic should partition unevenly: {per_shard:?}"
        );
    }

    /// The sec12_coop acceptance pin: on the skew-partitioned mix at 4
    /// shards, federated weight averaging *and* shared replay strictly
    /// beat independent per-shard agents on aggregate latency. Settings
    /// mirror the bench target at a test-sized request count. (An older
    /// form of this pin asserted shared replay raised fast-*placement*
    /// preference; since reads stopped demoting, winning agents place
    /// *less* on fast while keeping the right pages there, so placement
    /// fraction no longer proxies benefit — latency is the metric.)
    #[test]
    fn cooperation_beats_independent_on_skewed_partition() {
        use sibyl_serve::{CoopConfig, CoopMode, ServeConfig};
        use sibyl_sim::CoopExperiment;

        let trace = skewed_coop_trace(6_000, 42);
        let sibyl = sibyl_core::SibylConfig {
            train_interval: 250,
            ..Default::default()
        };
        let base = ServeConfig::new(hm_config())
            .with_shards(4)
            .with_max_batch(16)
            .with_time_scale(40.0)
            .with_nn_ns_per_mac(20.0)
            .with_coop(
                CoopConfig::default()
                    .with_sync_period(8)
                    .with_share_fraction(0.5),
            )
            .with_sibyl(sibyl);
        let report = CoopExperiment::new(base, trace).run_all().unwrap();
        let norm = report.normalized_latency(CoopMode::WeightAverage);
        assert!(
            norm < 1.0,
            "weight averaging should serve the skewed mix faster: norm lat {norm:.3}"
        );
        let shared = report.normalized_latency(CoopMode::SharedReplay);
        assert!(
            shared < 1.0,
            "shared replay should serve the skewed mix faster: norm lat {shared:.3}"
        );
    }

    /// The sec13_migration acceptance pin: on the phase-shifting diurnal
    /// trace over the H&L pair, *both* active migration policies beat
    /// the no-migration baseline on normalized latency — the RL second
    /// agent strictly, the heuristic with a clear margin — and the
    /// baseline itself is bit-identical to an engine whose config never
    /// mentions migration (the subsystem's do-no-harm contract; also
    /// pinned at the engine and sim layers). Settings mirror the bench
    /// target at a test-sized request count.
    #[test]
    fn migration_beats_no_migration_on_phased_trace() {
        use sibyl_serve::MigratePolicyKind;
        use sibyl_sim::MigrationExperiment;
        use sibyl_trace::synth;

        let trace = synth::diurnal(8_000, 5, 42);
        let exp = MigrationExperiment::new(migration_config(), trace.clone());
        let report = exp.run_all().unwrap();
        let rl = report.normalized_latency(MigratePolicyKind::Rl);
        let hc = report.normalized_latency(MigratePolicyKind::HotCold);
        assert!(
            rl < 0.995,
            "RL migration should beat NoMigration on the phased trace: norm lat {rl:.3}"
        );
        assert!(
            hc < 0.95,
            "hot-cold migration should beat NoMigration clearly: norm lat {hc:.3}"
        );
        let rl_run = report
            .run(MigratePolicyKind::Rl)
            .expect("run_all covers every policy");
        assert!(
            rl_run.promoted_pages > 0,
            "the RL agent must actually migrate to earn its win"
        );
        // Do-no-harm: the swept baseline equals a migration-free engine.
        let plain = sibyl_serve::serve_trace(&migration_config(), &trace).unwrap();
        let none_run = report
            .run(MigratePolicyKind::None)
            .expect("run_all covers every policy");
        assert_eq!(none_run.report, plain);
    }

    /// The sec10_overhead training-latency pins: the batched training
    /// step is no slower than the per-sample loop once batches amortize
    /// (batch ≥ 8), and the table's modeled latency columns are
    /// bit-deterministic across runs and drop monotonically with batch
    /// size — the acceptance shape of the batched-training refactor.
    #[test]
    fn batched_training_step_is_no_slower_and_table_is_deterministic() {
        let rows_a = train_step_latency_rows(&[1, 8, 32], 20.0);
        let rows_b = train_step_latency_rows(&[1, 8, 32], 20.0);
        assert_eq!(rows_a.len(), 3);
        for (a, b) in rows_a.iter().zip(&rows_b) {
            assert_eq!(
                a.modeled_step_us.to_bits(),
                b.modeled_step_us.to_bits(),
                "modeled step column must be deterministic"
            );
            assert_eq!(
                a.modeled_per_sample_us.to_bits(),
                b.modeled_per_sample_us.to_bits(),
                "modeled per-sample column must be deterministic"
            );
        }
        for w in rows_a.windows(2) {
            assert!(
                w[1].modeled_per_sample_us < w[0].modeled_per_sample_us,
                "per-sample training latency must drop monotonically: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        // The wall-clock pin only holds meaning under the optimized
        // codegen the benches actually run in (and debug timing noise on
        // a loaded runner could flake the whole gate), so it is scoped to
        // release builds — CI's `cargo test --release` pass exercises it.
        #[cfg(not(debug_assertions))]
        for row in rows_a.iter().filter(|r| r.batch >= 8) {
            assert!(
                row.batched_ns_per_sample <= row.seq_ns_per_sample * 1.10,
                "batch {}: batched {:.0} ns/sample vs sequential {:.0} ns/sample",
                row.batch,
                row.batched_ns_per_sample,
                row.seq_ns_per_sample
            );
        }
    }

    /// The sec10_overhead inference-kernel pins: the modeled decide
    /// column is bit-deterministic across runs and drops monotonically
    /// with batch size, and — under release codegen, where the
    /// autovectorized loops actually exist — the tiled f32 path is no
    /// slower than the retained scalar reference per MAC once batches
    /// amortize (batch ≥ 8): the acceptance shape of the tiling
    /// refactor. The f16 column only has to stay in the same order of
    /// magnitude (it pays a per-call decode, bought back by halved
    /// storage, not speed).
    #[test]
    fn tiled_inference_is_no_slower_and_modeled_column_is_deterministic() {
        let rows_a = infer_kernel_rows(&[1, 8, 32], 20.0);
        let rows_b = infer_kernel_rows(&[1, 8, 32], 20.0);
        assert_eq!(rows_a.len(), 3);
        for (a, b) in rows_a.iter().zip(&rows_b) {
            assert_eq!(
                a.modeled_per_req_us.to_bits(),
                b.modeled_per_req_us.to_bits(),
                "modeled decide column must be deterministic"
            );
        }
        for w in rows_a.windows(2) {
            assert!(
                w[1].modeled_per_req_us < w[0].modeled_per_req_us,
                "per-request decide latency must drop monotonically: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        for row in &rows_a {
            assert!(row.scalar_ns_per_mac > 0.0 && row.tiled_ns_per_mac > 0.0);
            assert!(row.f16_ns_per_mac > 0.0);
        }
        // The wall-clock pin is scoped to release builds, like the
        // batched-training pin above: debug codegen defeats the
        // autovectorization the pin certifies, and debug timing noise on
        // a loaded runner could flake the gate.
        #[cfg(not(debug_assertions))]
        for row in rows_a.iter().filter(|r| r.batch >= 8) {
            assert!(
                row.tiled_ns_per_mac <= row.scalar_ns_per_mac * 1.00,
                "batch {}: tiled {:.3} ns/MAC vs scalar {:.3} ns/MAC",
                row.batch,
                row.tiled_ns_per_mac,
                row.scalar_ns_per_mac
            );
        }
    }

    /// The two-term calibration pin: the exact least-squares fit recovers
    /// a synthetic (setup, per-row) pair to float precision, is
    /// bit-deterministic across calls, and degrades gracefully to the
    /// single-rate model when the data has no intercept.
    #[test]
    fn two_term_fit_recovers_synthetic_line_deterministically() {
        let truth = TwoTermFit {
            setup_us: 3.5,
            per_row_us: 0.75,
        };
        let points: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&b| (b, truth.step_us(b)))
            .collect();
        let fit_a = calibrate_two_term(&points);
        let fit_b = calibrate_two_term(&points);
        assert_eq!(
            fit_a.setup_us.to_bits(),
            fit_b.setup_us.to_bits(),
            "fit must be bit-deterministic"
        );
        assert_eq!(fit_a.per_row_us.to_bits(), fit_b.per_row_us.to_bits());
        assert!(
            (fit_a.setup_us - truth.setup_us).abs() < 1e-9,
            "setup {} vs {}",
            fit_a.setup_us,
            truth.setup_us
        );
        assert!((fit_a.per_row_us - truth.per_row_us).abs() < 1e-9);
        // Pure per-row data (no intercept) fits setup ≈ 0: the two-term
        // model contains the §10 single-rate model as its special case.
        let flat: Vec<(usize, f64)> = [1usize, 4, 16]
            .iter()
            .map(|&b| (b, 2.0 * b as f64))
            .collect();
        let flat_fit = calibrate_two_term(&flat);
        assert!(flat_fit.setup_us.abs() < 1e-9);
        assert!((flat_fit.per_row_us - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need >= 2 points")]
    fn two_term_fit_rejects_single_point() {
        let _ = calibrate_two_term(&[(4, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "batch sizes must differ")]
    fn two_term_fit_rejects_degenerate_batches() {
        let _ = calibrate_two_term(&[(4, 1.0), (4, 2.0)]);
    }

    /// `TwoTermFit::decide_cost` lowers the fit into the engine's
    /// decide-cost model, clamping negative least-squares artifacts so
    /// the result always passes config validation.
    #[test]
    fn two_term_fit_lowers_to_a_valid_decide_cost() {
        let fit = TwoTermFit {
            setup_us: -0.001,
            per_row_us: 0.4,
        };
        let cost = fit.decide_cost();
        assert!(cost.is_valid());
        assert_eq!(
            cost,
            sibyl_serve::DecideCost::TwoTerm {
                setup_us: 0.0,
                per_row_us: 0.4
            }
        );
        // Where the fit is already non-negative, the engine bills exactly
        // the fit's step cost — macs and ns/MAC are ignored by TwoTerm.
        let fit = TwoTermFit {
            setup_us: 3.5,
            per_row_us: 0.4,
        };
        let billed = fit.decide_cost().batch_us(None, 0.0, 16);
        assert!((billed - fit.step_us(16)).abs() < 1e-12);
    }

    /// The sec15_telemetry acceptance pin: on the mix2 reference workload
    /// at 4 shards × batch 16, fully-enabled telemetry changes zero
    /// placement decisions (always asserted, every profile) and — under
    /// release codegen, where the bench's measured numbers are produced —
    /// costs at most 3% of measured serving throughput. The throughput
    /// bound is certified compositionally (per-request telemetry work vs
    /// per-request serving work) because a 3% end-to-end A/B wall-clock
    /// delta is smaller than ambient load drift on a shared runner.
    #[test]
    fn telemetry_overhead_is_bounded_and_non_perturbing() {
        use sibyl_serve::{serve_trace, ServeConfig, TelemetryConfig};
        use sibyl_trace::mix::Mix;

        let trace = Mix::Mix2.generate(6_000, 42);
        let sibyl = sibyl_core::SibylConfig {
            train_interval: 250,
            ..Default::default()
        };
        let base = ServeConfig::new(hm_config())
            .with_shards(4)
            .with_max_batch(16)
            .with_time_scale(40.0)
            .with_nn_ns_per_mac(20.0)
            .with_curve_every(8)
            .with_sibyl(sibyl);
        let full = base.clone().with_telemetry(TelemetryConfig::full());
        let off_report = serve_trace(&base, &trace).unwrap();
        let full_report = serve_trace(&full, &trace).unwrap();
        assert_eq!(
            full_report.shards, off_report.shards,
            "enabled telemetry must change zero placement decisions"
        );
        assert!(full_report.telemetry.is_some());
        assert!(off_report.telemetry.is_none());

        // The wall-clock pin is scoped to release builds like the kernel
        // pins above: debug codegen inflates the registry's relative cost
        // past anything the benches report, and debug timing noise on a
        // loaded runner could flake the gate.
        #[cfg(not(debug_assertions))]
        {
            use sibyl_telemetry::{Log2Histogram, TelemetrySink, TraceEvent};
            use std::time::Instant;

            // An end-to-end A/B comparison cannot certify a 3% bound
            // here: ambient load on a shared runner drifts two ~400 ms
            // arms apart by more than 3% regardless of estimator
            // (median, paired order-alternating ratios, and best-of-N
            // were all tried). The bound is certified compositionally
            // instead: the telemetry work the engine performs per
            // request at Full — the RequestServed ring event, the local
            // latency-histogram sample, the Eviction event (charged
            // every iteration here, though real traffic only evicts
            // sometimes), and the per-batch registry updates amortized
            // over a full batch of 16 — is timed in a tight loop and
            // compared against the engine's measured per-request
            // serving cost. Per-request telemetry work ≤ 3% of
            // per-request serving work bounds the throughput loss of
            // enabling telemetry at 3%.
            const ITERS: u64 = 200_000;
            let mut sink = TelemetrySink::new(&TelemetryConfig::full()).expect("full sink");
            let mut latency_hist = Log2Histogram::new();
            let t = Instant::now();
            for i in 0..ITERS {
                sink.event(TraceEvent::RequestServed {
                    lpn: i,
                    device: (i % 2) as usize,
                    latency_us: 80.0,
                });
                sink.event(TraceEvent::Eviction {
                    lpn: i,
                    pages: 1 + i % 4,
                });
                latency_hist.record(80 + i % 64);
                if i % 16 == 0 {
                    sink.event(TraceEvent::BatchDecided {
                        batch: i / 16,
                        requests: 16,
                        decide_us: 27.6,
                    });
                    let registry = sink.registry_mut();
                    registry.counter_add("serve.requests", 16);
                    registry.counter_add("serve.batches", 1);
                    registry.histogram_record("serve.batch_fill", 16);
                    registry.histogram_record("serve.decide_ns", 27_600);
                }
            }
            let telemetry_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;
            std::hint::black_box(sink.finish(0));
            std::hint::black_box(&latency_hist);

            // The engine's per-request cost, best-of-3 at 1 shard: the
            // telemetry work being bounded is identical per shard loop,
            // and the single-worker run avoids the thread-scheduling
            // spread of multi-shard wall-clock.
            let base_1 = base.clone().with_shards(1);
            let mut engine_s = f64::INFINITY;
            for _ in 0..3 {
                let t = Instant::now();
                std::hint::black_box(serve_trace(&base_1, &trace).unwrap());
                engine_s = engine_s.min(t.elapsed().as_secs_f64());
            }
            let request_ns = engine_s * 1e9 / trace.len() as f64;
            assert!(
                telemetry_ns <= request_ns * 0.03,
                "telemetry overhead exceeds 3%: {telemetry_ns:.0} ns of telemetry work per \
                 request vs {request_ns:.0} ns of serving work per request ({:.2}%)",
                100.0 * telemetry_ns / request_ns
            );
        }
    }

    /// The sec14_scale acceptance pins at test size: a streamed serving
    /// run is bit-identical to the materialized run it replaces, and the
    /// compact directory's resident bytes track the workload's footprint
    /// — under 96 bytes per tracked page, growing far slower than the
    /// request count when the same fixed-horizon stream is served 8×
    /// longer. Settings mirror the bench target at a test-sized horizon.
    #[test]
    fn streamed_scale_run_keeps_directory_footprint_bounded() {
        use sibyl_serve::{serve_stream, serve_trace, ServeConfig};
        use sibyl_sim::ServeExperiment;
        use sibyl_trace::mix::Mix;

        let horizon = 800;
        let config = ServeConfig::new(hm_config())
            .with_shards(4)
            .with_max_batch(16)
            .with_time_scale(40.0)
            .with_sibyl(sibyl_core::SibylConfig {
                train_interval: 250,
                ..Default::default()
            });

        // Streamed == materialized on the bench's own workload and config.
        let trace = Mix::Mix2.generate(horizon, 42);
        let vec_fed = serve_trace(&config, &trace).unwrap();
        let streamed = serve_stream(&config, Mix::Mix2.stream(horizon, 42).take(trace.len()));
        assert_eq!(vec_fed, streamed.unwrap());

        // Fixed horizon, 1x vs 8x the requests: compact and sublinear.
        let short =
            ServeExperiment::run_stream(&config, Mix::Mix2.stream(horizon, 42).take(2 * horizon))
                .unwrap();
        let long =
            ServeExperiment::run_stream(&config, Mix::Mix2.stream(horizon, 42).take(16 * horizon))
                .unwrap();
        for outcome in [&short, &long] {
            let report = &outcome.report;
            let bytes_per_page = report.total_directory_bytes() as f64
                / report.total_directory_pages().max(1) as f64;
            assert!(
                bytes_per_page <= 96.0,
                "directory not compact: {bytes_per_page:.1} B/page"
            );
        }
        assert!(
            long.report.total_directory_bytes() < 4 * short.report.total_directory_bytes(),
            "directory bytes must track footprint, not trace length: {} -> {}",
            short.report.total_directory_bytes(),
            long.report.total_directory_bytes()
        );
    }

    /// The BenchJson schema pin: field order, escaping, and the
    /// newline-terminated single-object layout are all byte-stable —
    /// consumers parse these artifacts across commits, so the exact
    /// rendering is part of the crate's contract.
    #[test]
    fn bench_json_schema_is_stable_and_escaped() {
        let mut t = Table::new(vec!["a".into(), "b\"q".into()]);
        t.add_row(vec!["x\n".into(), "1".into()]);
        let mut j = BenchJson::new("sec99_test", 100, 7);
        j.note("best", "mode \"x\"");
        j.table("rows", &t);
        j.text("folded", "a;b 1\n");
        assert_eq!(
            j.render(),
            "{\"schema\":1,\"target\":\"sec99_test\",\"requests\":100,\"seed\":7,\
             \"notes\":[{\"key\":\"best\",\"value\":\"mode \\\"x\\\"\"}],\
             \"tables\":[{\"name\":\"rows\",\"headers\":[\"a\",\"b\\\"q\"],\
             \"rows\":[[\"x\\n\",\"1\"]]}],\
             \"texts\":[{\"name\":\"folded\",\"text\":\"a;b 1\\n\"}]}\n"
        );
        // An empty artifact still carries every section, so consumers
        // never have to probe for missing keys.
        let empty = BenchJson::new("t", 0, 0).render();
        assert!(empty.contains("\"notes\":[]"));
        assert!(empty.contains("\"tables\":[]"));
        assert!(empty.contains("\"texts\":[]"));
    }

    #[test]
    fn bench_json_writes_its_rendering() {
        let j = BenchJson::new("sec99_roundtrip", 10, 3);
        let path = std::env::temp_dir().join("sibyl_bench_json_roundtrip.json");
        let path = path.to_str().expect("utf-8 temp path");
        j.write_to(path).expect("temp dir writable");
        let read = std::fs::read_to_string(path).expect("just written");
        assert_eq!(read, j.render());
        let _ = std::fs::remove_file(path);
    }

    /// The sec16_xray acceptance pin: on the mix2 reference workload at
    /// 4 shards × batch 16, 1/64-sampled span tracing changes zero
    /// placement decisions (always asserted, every profile) and — under
    /// release codegen, where the bench's measured numbers are produced —
    /// costs at most 5% of measured serving throughput. Like the
    /// telemetry pin above, the throughput bound is certified
    /// compositionally (per-request tracing work vs per-request serving
    /// work) because a 5% end-to-end A/B wall-clock delta is smaller
    /// than ambient load drift on a shared runner.
    #[test]
    fn xray_overhead_is_bounded_and_non_perturbing() {
        use sibyl_serve::{serve_trace, ServeConfig, XrayConfig};
        use sibyl_trace::mix::Mix;

        let trace = Mix::Mix2.generate(6_000, 42);
        let sibyl = sibyl_core::SibylConfig {
            train_interval: 250,
            ..Default::default()
        };
        let base = ServeConfig::new(hm_config())
            .with_shards(4)
            .with_max_batch(16)
            .with_time_scale(40.0)
            .with_nn_ns_per_mac(20.0)
            .with_sibyl(sibyl);
        let traced = base.clone().with_xray(XrayConfig::Sampled(6));
        let off_report = serve_trace(&base, &trace).unwrap();
        let on_report = serve_trace(&traced, &trace).unwrap();
        assert_eq!(
            on_report.shards, off_report.shards,
            "span tracing must observe, never decide"
        );
        assert!(on_report.xray.is_some());
        assert!(off_report.xray.is_none());

        // The wall-clock pin is scoped to release builds like the
        // telemetry pin: debug codegen inflates the tracer's relative
        // cost, and debug timing noise on a loaded runner could flake
        // the gate. The per-request tracing work at Sampled(6) — one
        // sampling hash per request plus, for the ~1/64 sampled, the
        // span build, critical-path fold, and tail-ring insert — is
        // timed in a tight loop and compared against the engine's
        // measured per-request serving cost.
        #[cfg(not(debug_assertions))]
        {
            use sibyl_xray::{RequestObservation, XrayTracer};
            use std::time::Instant;

            const ITERS: u64 = 200_000;
            let mut tracer =
                XrayTracer::new(&XrayConfig::Sampled(6), 0, 42).expect("sampled tracer");
            let t = Instant::now();
            for i in 0..ITERS {
                std::hint::black_box(tracer.observe_request(&RequestObservation {
                    lba: i * 64,
                    timestamp_us: i as f64 * 10.0,
                    arrival_us: i as f64 * 10.0 + 1.0,
                    latency_us: 80.0 + (i % 64) as f64,
                    decide_us: 2.0,
                    train_us: 0.4,
                    queue_us: 3.0,
                    batch: 16,
                    device: (i % 2) as usize,
                    target: 0,
                    promoted: 0,
                    evicted: 0,
                }));
            }
            let xray_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;
            std::hint::black_box(tracer.finish());

            // The engine's per-request cost, best-of-3 at 1 shard, as in
            // the telemetry pin above.
            let base_1 = base.clone().with_shards(1);
            let mut engine_s = f64::INFINITY;
            for _ in 0..3 {
                let t = Instant::now();
                std::hint::black_box(serve_trace(&base_1, &trace).unwrap());
                engine_s = engine_s.min(t.elapsed().as_secs_f64());
            }
            let request_ns = engine_s * 1e9 / trace.len() as f64;
            assert!(
                xray_ns <= request_ns * 0.05,
                "xray overhead exceeds 5%: {xray_ns:.0} ns of tracing work per request vs \
                 {request_ns:.0} ns of serving work per request ({:.2}%)",
                100.0 * xray_ns / request_ns
            );
        }
    }

    #[test]
    fn avg_row_is_geometric_mean() {
        let mut t = Table::new(vec!["w".into(), "x".into()]);
        let rows = vec![
            vec!["a".to_string(), "1.00".to_string()],
            vec!["b".to_string(), "4.00".to_string()],
        ];
        for r in &rows {
            t.add_row(r.clone());
        }
        append_avg_row(&mut t, &rows);
        assert!(t.render().contains("2.00"), "{}", t.render());
    }
}
