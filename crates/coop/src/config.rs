//! Cooperation modes and configuration.

/// How shard agents cooperate during a serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoopMode {
    /// No cooperation — every shard agent learns alone. The baseline:
    /// bit-identical to an engine without a cooperation layer.
    #[default]
    Independent,
    /// Shards publish a fraction of their experiences to a global replay
    /// pool that is deterministically redistributed at sync rounds.
    SharedReplay,
    /// Every sync round, all participating shards' training-network
    /// parameters are federated-averaged and adopted by each participant.
    WeightAverage,
    /// [`CoopMode::SharedReplay`] and [`CoopMode::WeightAverage`]
    /// combined.
    Both,
}

impl CoopMode {
    /// All four modes, baseline first (the order `sec12_coop` sweeps).
    pub const ALL: [CoopMode; 4] = [
        CoopMode::Independent,
        CoopMode::SharedReplay,
        CoopMode::WeightAverage,
        CoopMode::Both,
    ];

    /// `true` when this mode publishes/absorbs shared experiences.
    pub fn shares_experiences(self) -> bool {
        matches!(self, CoopMode::SharedReplay | CoopMode::Both)
    }

    /// `true` when this mode averages weights at sync rounds.
    pub fn averages_weights(self) -> bool {
        matches!(self, CoopMode::WeightAverage | CoopMode::Both)
    }

    /// `true` unless this is [`CoopMode::Independent`].
    pub fn is_cooperative(self) -> bool {
        self != CoopMode::Independent
    }
}

impl std::fmt::Display for CoopMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CoopMode::Independent => "independent",
            CoopMode::SharedReplay => "shared-replay",
            CoopMode::WeightAverage => "weight-average",
            CoopMode::Both => "both",
        };
        write!(f, "{name}")
    }
}

/// Why a [`CoopConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoopConfigError {
    /// A cooperative mode was configured with `sync_period == 0`: agents
    /// would never reach a sync round (or, read the other way, sync on
    /// every round boundary of period zero — both degenerate).
    ZeroSyncPeriod,
    /// An experience-sharing mode was configured with a `share_fraction`
    /// outside `(0, 1]` — nothing (or nonsense) would be published.
    InvalidShareFraction,
    /// An experience-sharing mode was configured with a `foreign_weight`
    /// outside `[0, 1]` — absorbed experiences cannot be amplified above
    /// local ones, and a negative or non-finite weight is nonsense.
    InvalidForeignWeight,
}

impl std::fmt::Display for CoopConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoopConfigError::ZeroSyncPeriod => {
                write!(f, "cooperative mode requires sync_period > 0")
            }
            CoopConfigError::InvalidShareFraction => {
                write!(f, "experience sharing requires share_fraction in (0, 1]")
            }
            CoopConfigError::InvalidForeignWeight => {
                write!(f, "experience sharing requires foreign_weight in [0, 1]")
            }
        }
    }
}

impl std::error::Error for CoopConfigError {}

/// Configuration of the cooperation layer.
///
/// # Examples
///
/// ```
/// use sibyl_coop::{CoopConfig, CoopMode};
///
/// let cfg = CoopConfig::new(CoopMode::Both)
///     .with_sync_period(16)
///     .with_share_fraction(0.5);
/// cfg.validate().unwrap();
/// assert!(cfg.mode.shares_experiences() && cfg.mode.averages_weights());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoopConfig {
    /// The cooperation mode. Default: [`CoopMode::Independent`].
    pub mode: CoopMode,
    /// Inference rounds (batches) between sync rounds, counted per shard
    /// against its own subsequence — a *logical* period, so seeded runs
    /// stay deterministic. Default: 8.
    pub sync_period: u64,
    /// Fraction of each shard's experiences published to the shared
    /// replay pool (experience-sharing modes only). Default: 0.5.
    pub share_fraction: f64,
    /// Importance weight applied to *absorbed* foreign experiences when
    /// they are replayed: each sampled foreign transition's loss and
    /// gradient contribution is scaled by this factor. At the default
    /// 1.0, foreign experiences train on equal footing with local ones —
    /// bit-identical to the behavior before this knob existed; lower
    /// values damp stale or off-partition transitions without changing
    /// what is published or how replay sampling draws.
    pub foreign_weight: f64,
}

impl Default for CoopConfig {
    fn default() -> Self {
        CoopConfig {
            mode: CoopMode::Independent,
            sync_period: 8,
            share_fraction: 0.5,
            foreign_weight: 1.0,
        }
    }
}

impl CoopConfig {
    /// A configuration of the given mode with default period/fraction.
    pub fn new(mode: CoopMode) -> Self {
        CoopConfig {
            mode,
            ..Default::default()
        }
    }

    /// Replaces the mode, keeping period and fraction (how `CoopExperiment`
    /// sweeps modes under otherwise identical settings).
    pub fn with_mode(mut self, mode: CoopMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the number of inference rounds between sync rounds.
    pub fn with_sync_period(mut self, period: u64) -> Self {
        self.sync_period = period;
        self
    }

    /// Sets the published-experience fraction.
    pub fn with_share_fraction(mut self, fraction: f64) -> Self {
        self.share_fraction = fraction;
        self
    }

    /// Sets the importance weight of absorbed foreign experiences.
    pub fn with_foreign_weight(mut self, weight: f64) -> Self {
        self.foreign_weight = weight;
        self
    }

    /// Records the cooperation settings into a telemetry registry under
    /// the `coop.` namespace. Deliberately *configuration*, not live
    /// [`Coordinator`](crate::Coordinator) state: the coordinator's
    /// global round counter keeps advancing while other shards drain, so
    /// reading it at one shard's teardown would make the export depend
    /// on thread timing. Per-shard sync counts are the host engine's to
    /// record (it owns the deterministic `coop.syncs` counter).
    pub fn record_registry(&self, registry: &mut sibyl_telemetry::Registry) {
        registry.gauge_set("coop.sync_period", self.sync_period as f64);
        registry.gauge_set("coop.share_fraction", self.share_fraction);
        registry.gauge_set("coop.foreign_weight", self.foreign_weight);
    }

    /// Validates the configuration for its mode.
    ///
    /// # Errors
    ///
    /// Returns a [`CoopConfigError`] describing the degenerate setting.
    /// [`CoopMode::Independent`] accepts anything — the knobs are unused.
    pub fn validate(&self) -> Result<(), CoopConfigError> {
        if !self.mode.is_cooperative() {
            return Ok(());
        }
        if self.sync_period == 0 {
            return Err(CoopConfigError::ZeroSyncPeriod);
        }
        if self.mode.shares_experiences() {
            if !(self.share_fraction > 0.0 && self.share_fraction <= 1.0) {
                return Err(CoopConfigError::InvalidShareFraction);
            }
            if !(self.foreign_weight >= 0.0 && self.foreign_weight <= 1.0) {
                return Err(CoopConfigError::InvalidForeignWeight);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_independent_and_valid() {
        let cfg = CoopConfig::default();
        assert_eq!(cfg.mode, CoopMode::Independent);
        assert!(!cfg.mode.is_cooperative());
        cfg.validate().unwrap();
    }

    #[test]
    fn mode_predicates() {
        assert!(CoopMode::SharedReplay.shares_experiences());
        assert!(!CoopMode::SharedReplay.averages_weights());
        assert!(CoopMode::WeightAverage.averages_weights());
        assert!(!CoopMode::WeightAverage.shares_experiences());
        assert!(CoopMode::Both.shares_experiences() && CoopMode::Both.averages_weights());
        assert_eq!(CoopMode::ALL.len(), 4);
        assert_eq!(CoopMode::Both.to_string(), "both");
    }

    #[test]
    fn zero_sync_period_rejected_for_cooperative_modes() {
        let cfg = CoopConfig::new(CoopMode::WeightAverage).with_sync_period(0);
        assert_eq!(cfg.validate(), Err(CoopConfigError::ZeroSyncPeriod));
        // ... but tolerated in the inert baseline.
        let indep = CoopConfig::default().with_sync_period(0);
        indep.validate().unwrap();
    }

    #[test]
    fn share_fraction_bounds_enforced_only_when_sharing() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let cfg = CoopConfig::new(CoopMode::SharedReplay).with_share_fraction(bad);
            assert_eq!(
                cfg.validate(),
                Err(CoopConfigError::InvalidShareFraction),
                "fraction {bad} should be rejected"
            );
        }
        CoopConfig::new(CoopMode::SharedReplay)
            .with_share_fraction(1.0)
            .validate()
            .unwrap();
        // WeightAverage ignores the fraction entirely.
        CoopConfig::new(CoopMode::WeightAverage)
            .with_share_fraction(-3.0)
            .validate()
            .unwrap();
    }

    #[test]
    fn foreign_weight_bounds_enforced_only_when_sharing() {
        assert_eq!(CoopConfig::default().foreign_weight, 1.0);
        for bad in [-0.1, 1.1, f64::NAN] {
            let cfg = CoopConfig::new(CoopMode::Both).with_foreign_weight(bad);
            assert_eq!(
                cfg.validate(),
                Err(CoopConfigError::InvalidForeignWeight),
                "weight {bad} should be rejected"
            );
        }
        // Zero is a legal (if extreme) damping; non-sharing modes ignore
        // the knob entirely.
        CoopConfig::new(CoopMode::SharedReplay)
            .with_foreign_weight(0.0)
            .validate()
            .unwrap();
        CoopConfig::new(CoopMode::WeightAverage)
            .with_foreign_weight(9.0)
            .validate()
            .unwrap();
        assert!(CoopConfigError::InvalidForeignWeight
            .to_string()
            .contains("foreign_weight"));
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(CoopConfigError::ZeroSyncPeriod
            .to_string()
            .contains("sync_period"));
        assert!(CoopConfigError::InvalidShareFraction
            .to_string()
            .contains("share_fraction"));
    }
}
