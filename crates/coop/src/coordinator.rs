//! The deterministic cooperation coordinator: a generation barrier with
//! dynamic membership, plus the per-round exchange of weights and
//! experiences.

use std::sync::{Arc, Condvar, Mutex};

use sibyl_core::Experience;
use sibyl_nn::mean_params;

use crate::config::CoopConfig;

/// What one member receives when a sync round releases.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncOutcome {
    /// The federated average of all contributing members' parameters, in
    /// member-index order — `None` when no contributor deposited weights
    /// (e.g. a pure shared-replay round).
    pub weights: Option<Vec<f32>>,
    /// All *other* members' published experiences this round,
    /// concatenated in member-index order.
    pub shared: Vec<Experience>,
    /// How many members contributed to this round.
    pub contributors: usize,
    /// The 1-based index of the released round.
    pub round: u64,
}

/// Per-round state behind the coordinator's mutex.
#[derive(Debug)]
struct State {
    /// Members still registered (not yet left).
    members: usize,
    /// Members that have deposited for the pending round.
    arrived: usize,
    /// Increments at every release; waiters block until it moves.
    generation: u64,
    /// Deposited training-net parameters, indexed by member.
    weight_slots: Vec<Option<Vec<f32>>>,
    /// Deposited experiences, indexed by member. `Some` marks arrival
    /// (possibly with an empty vector).
    exp_slots: Vec<Option<Vec<Experience>>>,
    /// Results of the most recently released round. Kept valid until the
    /// next release, which cannot happen before every participant of the
    /// current round has woken, read them, and arrived again (or left).
    round_weights: Option<Arc<Vec<f32>>>,
    round_exps: Arc<Vec<(usize, Vec<Experience>)>>,
}

impl State {
    /// Releases the pending round: averages deposited weights, snapshots
    /// deposited experiences in member order, and advances the
    /// generation. Caller must hold the lock and notify the condvar.
    fn release(&mut self) {
        let weight_refs: Vec<&[f32]> = self
            .weight_slots
            .iter()
            .filter_map(|w| w.as_deref())
            .collect();
        self.round_weights = if weight_refs.is_empty() {
            None
        } else {
            Some(Arc::new(mean_params(&weight_refs)))
        };
        let mut exps = Vec::with_capacity(self.arrived);
        for (member, slot) in self.exp_slots.iter_mut().enumerate() {
            if let Some(published) = slot.take() {
                exps.push((member, published));
            }
        }
        self.round_exps = Arc::new(exps);
        for w in &mut self.weight_slots {
            *w = None;
        }
        self.arrived = 0;
        self.generation += 1;
    }

    /// Builds `member`'s view of the released round.
    fn outcome_for(&self, member: usize) -> SyncOutcome {
        SyncOutcome {
            weights: self.round_weights.as_ref().map(|w| (**w).clone()),
            shared: self
                .round_exps
                .iter()
                .filter(|(m, _)| *m != member)
                .flat_map(|(_, exps)| exps.iter().cloned())
                .collect(),
            contributors: self.round_exps.len(),
            round: self.generation,
        }
    }
}

/// A generation barrier over the shard agents of one serving run,
/// exchanging weights and experiences at logical round boundaries.
///
/// Membership is dynamic: [`Coordinator::new`] registers `members`
/// participants, each identified by its index; a participant whose
/// request subsequence is exhausted calls [`Coordinator::leave`] and all
/// later rounds release over the remaining members. Because every
/// member's round count is a pure function of its deterministic request
/// partition, the contributor set of round *r* is exactly
/// `{ m : rounds(m) ≥ r }` regardless of thread scheduling — which makes
/// every averaged weight vector and every experience redistribution
/// reproducible bit for bit.
#[derive(Debug)]
pub struct Coordinator {
    config: CoopConfig,
    state: Mutex<State>,
    cv: Condvar,
}

impl Coordinator {
    /// Creates a coordinator for `members` participants.
    ///
    /// # Panics
    ///
    /// Panics if `members == 0`.
    pub fn new(config: CoopConfig, members: usize) -> Arc<Self> {
        assert!(members > 0, "Coordinator: need at least one member");
        Arc::new(Coordinator {
            config,
            state: Mutex::new(State {
                members,
                arrived: 0,
                generation: 0,
                weight_slots: vec![None; members],
                exp_slots: (0..members).map(|_| None).collect(),
                round_weights: None,
                round_exps: Arc::new(Vec::new()),
            }),
            cv: Condvar::new(),
        })
    }

    /// The cooperation configuration this coordinator was built with.
    pub fn config(&self) -> &CoopConfig {
        &self.config
    }

    /// Sync rounds released so far. Like [`Coordinator::leave`], this
    /// tolerates a poisoned lock (a peer that panicked mid-`sync`): the
    /// generation counter is updated atomically under the lock before
    /// anything that can panic, so the recovered value is consistent.
    pub fn rounds(&self) -> u64 {
        let state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.generation
    }

    /// Arrives at the pending sync round, depositing this member's
    /// contribution, and blocks until every still-registered member has
    /// arrived (or left). Returns the member's view of the released
    /// round: the federated parameter average and the other members'
    /// published experiences.
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range or arrives twice in one round
    /// (both are engine bugs, not configuration errors).
    pub fn sync(
        &self,
        member: usize,
        weights: Option<Vec<f32>>,
        published: Vec<Experience>,
    ) -> SyncOutcome {
        // Recover rather than propagate poison: every state transition in
        // this function completes before anything that can panic, so a
        // poisoned lock still holds a consistent barrier state and the
        // surviving members can finish their rounds.
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        assert!(member < state.exp_slots.len(), "sync: member out of range");
        assert!(
            state.exp_slots[member].is_none(),
            "sync: member {member} arrived twice in one round"
        );
        let gen = state.generation;
        state.weight_slots[member] = weights;
        state.exp_slots[member] = Some(published);
        state.arrived += 1;
        if state.arrived == state.members {
            state.release();
            self.cv.notify_all();
        } else {
            while state.generation == gen {
                // sibyl-lint: allow(guard-across-blocking) -- condvar protocol: wait() atomically releases the guard while blocked and reacquires it on wake; holding it here is the barrier, not a deadlock
                state = self.cv.wait(state).unwrap_or_else(|p| p.into_inner());
            }
        }
        state.outcome_for(member)
    }

    /// Deregisters a member whose request subsequence is exhausted. If
    /// every remaining member is already waiting at the barrier, the
    /// round releases without the leaver.
    ///
    /// Tolerates a poisoned coordinator (a peer that panicked inside
    /// [`Coordinator::sync`]): `leave` is what unwinding shard threads
    /// call from a drop guard, and it must neither hang the remaining
    /// waiters nor double-panic during unwind — the shard counts it
    /// updates stay consistent because every state transition in
    /// [`Coordinator::sync`] is completed before anything that can
    /// panic.
    pub fn leave(&self, _member: usize) {
        let mut state = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.members -= 1;
        if state.members > 0 && state.arrived == state.members {
            state.release();
            self.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoopMode;

    fn exp(tag: f32) -> Experience {
        Experience {
            obs: vec![tag; 4],
            action: 0,
            reward: tag,
            next_obs: vec![tag; 4],
        }
    }

    fn weight_avg_config() -> CoopConfig {
        CoopConfig::new(CoopMode::Both).with_sync_period(1)
    }

    #[test]
    fn single_member_round_is_identity() {
        let c = Coordinator::new(weight_avg_config(), 1);
        let out = c.sync(0, Some(vec![2.0, 4.0]), vec![exp(1.0)]);
        assert_eq!(out.weights, Some(vec![2.0, 4.0]));
        assert!(out.shared.is_empty(), "own experiences never come back");
        assert_eq!(out.contributors, 1);
        assert_eq!(out.round, 1);
        assert_eq!(c.rounds(), 1);
    }

    #[test]
    fn two_members_average_and_swap_experiences() {
        let c = Coordinator::new(weight_avg_config(), 2);
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || c2.sync(1, Some(vec![3.0]), vec![exp(1.0)]));
        let a = c.sync(0, Some(vec![1.0]), vec![exp(0.0)]);
        let b = t.join().unwrap();
        assert_eq!(a.weights, Some(vec![2.0]));
        assert_eq!(b.weights, Some(vec![2.0]));
        assert_eq!(a.shared, vec![exp(1.0)], "member 0 gets member 1's");
        assert_eq!(b.shared, vec![exp(0.0)], "member 1 gets member 0's");
        assert_eq!(a.contributors, 2);
    }

    #[test]
    fn leave_releases_waiting_members() {
        let c = Coordinator::new(weight_avg_config(), 2);
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || c2.sync(0, Some(vec![5.0]), Vec::new()));
        // Give the syncing thread time to park at the barrier, then leave.
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.leave(1);
        let out = t.join().unwrap();
        assert_eq!(out.weights, Some(vec![5.0]), "average over the remainder");
        assert_eq!(out.contributors, 1);
    }

    /// Members with different round counts (dynamic membership): the
    /// contributor set of round r must be { m : rounds(m) >= r } and the
    /// whole exchange must be identical across runs and schedules.
    #[test]
    fn uneven_round_counts_are_deterministic() {
        let rounds_of = [4u64, 2, 3, 1]; // member i syncs rounds_of[i] times
        let run = |stagger: bool| -> Vec<Vec<SyncOutcome>> {
            let c = Coordinator::new(weight_avg_config(), rounds_of.len());
            let mut handles = Vec::new();
            for (m, &n) in rounds_of.iter().enumerate() {
                let c = Arc::clone(&c);
                handles.push(std::thread::spawn(move || {
                    let mut outs = Vec::new();
                    for r in 0..n {
                        if stagger {
                            std::thread::sleep(std::time::Duration::from_millis(
                                (m as u64 * 7 + r) % 13,
                            ));
                        }
                        outs.push(c.sync(
                            m,
                            Some(vec![(m as f32 + 1.0) * (r as f32 + 1.0)]),
                            vec![exp(m as f32 * 100.0 + r as f32)],
                        ));
                    }
                    c.leave(m);
                    outs
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        };
        let fast = run(false);
        let slow = run(true);
        assert_eq!(fast, slow, "schedule must not affect the exchange");
        // Round r (1-based) contributors: members with rounds_of >= r.
        for (m, outs) in fast.iter().enumerate() {
            for (i, out) in outs.iter().enumerate() {
                let r = i as u64 + 1;
                let expected = rounds_of.iter().filter(|&&n| n >= r).count();
                assert_eq!(
                    out.contributors, expected,
                    "member {m} round {r}: contributors"
                );
                assert_eq!(out.shared.len(), expected - 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_rejected() {
        let _ = Coordinator::new(weight_avg_config(), 0);
    }

    #[test]
    #[should_panic(expected = "member out of range")]
    fn out_of_range_member_rejected() {
        let c = Coordinator::new(weight_avg_config(), 2);
        let _ = c.sync(5, None, Vec::new());
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_rejected() {
        // A second deposit from an already-arrived member cannot happen
        // through a correct engine (sync blocks), so plant the arrived
        // state directly and assert the guard fires.
        let c = Coordinator::new(weight_avg_config(), 2);
        {
            let mut st = c.state.lock().unwrap();
            st.exp_slots[0] = Some(Vec::new());
            st.arrived = 1;
        }
        let _ = c.sync(0, None, Vec::new());
    }
}
