//! # sibyl-coop
//!
//! The multi-agent cooperation layer for the Sibyl reproduction — the
//! Harmonia direction from PAPERS.md: when traffic is partitioned across
//! shards (as in `sibyl-serve`), each shard trains a private agent on its
//! own slice of the workload and, without cooperation, relearns what its
//! neighbors already know. This crate lets shard agents cooperate while
//! keeping the workspace's hard determinism guarantee.
//!
//! Two cooperation mechanisms, selected by [`CoopMode`]:
//!
//! - **Shared replay** ([`CoopMode::SharedReplay`]): each agent publishes
//!   a configurable fraction of its experiences (a deterministic stride —
//!   see `sibyl_core::SibylAgent::set_experience_tap`) into a global pool
//!   that is redistributed at sync rounds: every agent absorbs all
//!   *other* agents' published experiences, in member-index order.
//! - **Weight averaging** ([`CoopMode::WeightAverage`]): at each sync
//!   round all participating agents' training-network parameters are
//!   federated-averaged (`sibyl_nn::mean_params`) and every participant
//!   adopts the mean.
//!
//! [`CoopMode::Both`] combines the two; [`CoopMode::Independent`] is
//! today's baseline — no coordinator is even constructed, so independent
//! runs stay bit-identical to a cooperation-free engine.
//!
//! ## Determinism
//!
//! Synchronization happens at **logical round boundaries**, never on
//! wall-clock time: a member arrives at the [`Coordinator`] after every
//! `sync_period` inference rounds of its own request subsequence. The
//! coordinator is a generation barrier with *dynamic membership*: a round
//! releases when every still-registered member has arrived, and a member
//! whose subsequence is exhausted [leaves](Coordinator::leave) instead of
//! arriving. Because each member's total round count is a pure function
//! of its (deterministic) request partition, the set of contributors in
//! every round — and therefore every average and every redistribution —
//! is identical across runs and thread schedules.
//!
//! ## Example
//!
//! ```rust
//! use sibyl_coop::{CoopConfig, CoopMode, Coordinator};
//!
//! let config = CoopConfig::new(CoopMode::WeightAverage).with_sync_period(4);
//! config.validate().unwrap();
//! let coord = Coordinator::new(config, 2);
//! // Two members contribute weights from their own threads; here,
//! // member 1 arrives first and blocks — so we demonstrate with the
//! // single-member degenerate case instead:
//! let solo = Coordinator::new(CoopConfig::new(CoopMode::WeightAverage), 1);
//! let out = solo.sync(0, Some(vec![1.0, 3.0]), Vec::new());
//! assert_eq!(out.weights, Some(vec![1.0, 3.0])); // mean of one
//! assert_eq!(out.contributors, 1);
//! # drop(coord);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod coordinator;

pub use config::{CoopConfig, CoopConfigError, CoopMode};
pub use coordinator::{Coordinator, SyncOutcome};
