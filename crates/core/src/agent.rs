//! The Sibyl agent: an online reinforcement-learning placement policy.
//!
//! This is the paper's contribution assembled: per-request observation of
//! the Table 1 state features, ε-greedy action selection from an
//! inference network, reward computed from served latency and eviction
//! penalty (Eq. 1), experience collection into a replay buffer, periodic
//! training of a separate training network, and training → inference
//! weight copies every `train_interval` requests (Algorithm 1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sibyl_hss::{AccessOutcome, DeviceId, PlacementContext, PlacementPolicy, StorageManager};
use sibyl_nn::Mlp;
use sibyl_trace::IoRequest;

use crate::buffer::Experience;
use crate::config::{SibylConfig, TrainingMode};
use crate::features::StateEncoder;
use crate::learner::{Learner, ValueHead};
use crate::reward::RewardShaper;
use crate::trainer::BackgroundTrainer;

/// Counters describing the agent's activity during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Placement decisions made.
    pub decisions: u64,
    /// Decisions taken by random exploration (ε branch).
    pub explorations: u64,
    /// Experiences pushed toward the learner.
    pub experiences: u64,
    /// Training steps completed (synchronous mode) or observed
    /// (background mode).
    pub train_steps: u64,
    /// Training→inference weight synchronizations.
    pub weight_syncs: u64,
}

/// Where training runs (resolved from [`TrainingMode`]).
#[derive(Debug)]
enum Engine {
    /// Learner runs inline on the decision path.
    Synchronous(Box<Learner>),
    /// Learner runs on a background thread (Fig. 7(a)).
    Background(BackgroundTrainer),
}

/// A decision awaiting its reward and next observation.
#[derive(Debug, Clone)]
struct Pending {
    obs: Vec<f32>,
    action: usize,
    reward: Option<f32>,
}

/// Lazily-built runtime state (needs the storage manager's shape).
#[derive(Debug)]
struct Runtime {
    encoder: StateEncoder,
    head: ValueHead,
    inference_net: Mlp,
    engine: Engine,
    shaper: RewardShaper,
    n_actions: usize,
    last_generation: u64,
}

/// The Sibyl reinforcement-learning data-placement agent.
///
/// # Examples
///
/// ```
/// use sibyl_core::{SibylAgent, SibylConfig};
/// use sibyl_hss::PlacementPolicy;
/// let agent = SibylAgent::new(SibylConfig::default());
/// assert_eq!(agent.name(), "Sibyl");
/// ```
#[derive(Debug)]
pub struct SibylAgent {
    config: SibylConfig,
    runtime: Option<Runtime>,
    pending: Option<Pending>,
    rng: StdRng,
    stats: AgentStats,
    pushes_seen: u64,
    next_train_at: u64,
}

impl SibylAgent {
    /// Creates an agent with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// (see [`SibylConfig::validate`]).
    pub fn new(config: SibylConfig) -> Self {
        config.validate();
        let rng = StdRng::seed_from_u64(config.seed);
        let next_train_at = config.train_interval;
        SibylAgent {
            config,
            runtime: None,
            pending: None,
            rng,
            stats: AgentStats::default(),
            pushes_seen: 0,
            next_train_at,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &SibylConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> &AgentStats {
        &self.stats
    }

    /// The inference network's multiply-accumulate count per decision
    /// (§10.1), available once the agent has seen its first request.
    pub fn inference_macs(&self) -> Option<usize> {
        self.runtime.as_ref().map(|r| r.inference_net.mac_count())
    }

    fn ensure_runtime(&mut self, manager: &StorageManager) {
        if self.runtime.is_some() {
            return;
        }
        let n_actions = manager.num_devices();
        let encoder = StateEncoder::new(self.config.feature_mask, n_actions);
        let obs_len = encoder.observation_len();
        let head = ValueHead::new(&self.config, n_actions);
        let shaper = RewardShaper::new(
            self.config.reward_kind,
            self.config.eviction_penalty_coeff,
            manager.device(DeviceId(0)).spec().min_read_service_us(),
            self.config.clamp_eviction_reward,
            self.config.v_min as f64,
        );
        let (engine, inference_net) = match self.config.training_mode {
            TrainingMode::Synchronous => {
                let learner = Learner::new(&self.config, n_actions, obs_len);
                let net = learner.weights_snapshot();
                (Engine::Synchronous(Box::new(learner)), net)
            }
            TrainingMode::Background => {
                let trainer = BackgroundTrainer::spawn(&self.config, n_actions, obs_len);
                let net = trainer.published.lock().weights.clone();
                (Engine::Background(trainer), net)
            }
        };
        self.runtime = Some(Runtime {
            encoder,
            head,
            inference_net,
            engine,
            shaper,
            n_actions,
            last_generation: 0,
        });
    }

    /// Pushes a finalized experience into the learner and, in synchronous
    /// mode, runs due training steps + weight syncs.
    fn push_experience(&mut self, exp: Experience) {
        self.stats.experiences += 1;
        self.pushes_seen += 1;
        let due = self.pushes_seen >= self.next_train_at;
        if due {
            self.next_train_at += self.config.train_interval;
        }
        let rt = self.runtime.as_mut().expect("runtime initialized");
        match &mut rt.engine {
            Engine::Synchronous(learner) => {
                learner.push(exp);
                if due && learner.train_step().is_some() {
                    rt.inference_net
                        .copy_weights_from(&learner.weights_snapshot());
                    self.stats.train_steps = learner.train_steps;
                    self.stats.weight_syncs += 1;
                }
            }
            Engine::Background(trainer) => {
                trainer.send(exp);
                // Adopt any newly published weights (cheap try-lock so the
                // decision path never blocks on the trainer).
                if let Some(p) = trainer.published.try_lock() {
                    if p.generation > rt.last_generation {
                        rt.inference_net.copy_weights_from(&p.weights);
                        rt.last_generation = p.generation;
                        self.stats.train_steps = p.train_steps;
                        self.stats.weight_syncs += 1;
                    }
                }
            }
        }
    }

    /// Changes the learning rate online (synchronous mode only; the
    /// Sibyl_Opt configuration of §8.3 uses a lower rate from the start).
    pub fn set_learning_rate(&mut self, lr: f32) {
        if let Some(rt) = self.runtime.as_mut() {
            if let Engine::Synchronous(learner) = &mut rt.engine {
                learner.set_learning_rate(lr);
            }
        }
    }
}

impl PlacementPolicy for SibylAgent {
    fn name(&self) -> &str {
        "Sibyl"
    }

    fn place(&mut self, req: &IoRequest, ctx: &PlacementContext<'_>) -> DeviceId {
        self.ensure_runtime(ctx.manager);
        let obs = {
            let rt = self.runtime.as_ref().expect("runtime initialized");
            rt.encoder.observe(req, ctx.manager)
        };

        // Finalize the previous decision now that its next-state is known
        // (experience = ⟨O_t, a_t, r_t, O_{t+1}⟩, §6 footnote 6).
        if let Some(prev) = self.pending.take() {
            if let Some(reward) = prev.reward {
                self.push_experience(Experience {
                    obs: prev.obs,
                    action: prev.action,
                    reward,
                    next_obs: obs.vector.clone(),
                });
            }
        }

        let rt = self.runtime.as_mut().expect("runtime initialized");
        // Linear ε anneal from `exploration_initial` to the tuned final ε.
        let progress = if self.config.exploration_decay_requests == 0 {
            1.0
        } else {
            (self.stats.decisions as f64 / self.config.exploration_decay_requests as f64).min(1.0)
        };
        let eps = self.config.exploration_initial
            + (self.config.exploration - self.config.exploration_initial) * progress;
        let explore = self.rng.gen::<f64>() < eps;
        let action = if explore {
            self.stats.explorations += 1;
            self.rng.gen_range(0..rt.n_actions)
        } else {
            let logits = rt.inference_net.infer(&obs.vector);
            rt.head.best_action(&logits)
        };
        self.stats.decisions += 1;
        self.pending = Some(Pending {
            obs: obs.vector,
            action,
            reward: None,
        });
        DeviceId(action)
    }

    fn feedback(&mut self, _req: &IoRequest, outcome: &AccessOutcome, _ctx: &PlacementContext<'_>) {
        let Some(rt) = self.runtime.as_ref() else {
            return;
        };
        if let Some(pending) = self.pending.as_mut() {
            pending.reward = Some(rt.shaper.reward(outcome));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::{DeviceSpec, HssConfig};
    use sibyl_trace::IoOp;

    fn manager(fast_pages: u64) -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![fast_pages, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn fast_test_config() -> SibylConfig {
        SibylConfig {
            buffer_capacity: 256,
            train_interval: 128,
            batch_size: 32,
            batches_per_step: 2,
            n_atoms: 11,
            learning_rate: 0.01,
            exploration: 0.05,
            exploration_initial: 0.3,
            exploration_decay_requests: 500,
            ..Default::default()
        }
    }

    /// Drives the agent through a request stream against a real manager.
    fn drive(agent: &mut SibylAgent, mgr: &mut StorageManager, reqs: &[IoRequest]) {
        for (i, req) in reqs.iter().enumerate() {
            let target = {
                let ctx = PlacementContext {
                    manager: mgr,
                    seq: i as u64,
                };
                agent.place(req, &ctx)
            };
            let outcome = mgr.access(req, target);
            let ctx = PlacementContext {
                manager: mgr,
                seq: i as u64,
            };
            agent.feedback(req, &outcome, &ctx);
        }
    }

    fn hot_cold_stream(n: usize) -> Vec<IoRequest> {
        // Odd requests hammer 8 hot pages; even requests stream cold data.
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    IoRequest::new(i as u64 * 300, (i as u64) % 8, 1, IoOp::Write)
                } else {
                    IoRequest::new(i as u64 * 300, 10_000 + i as u64 * 8, 8, IoOp::Read)
                }
            })
            .collect()
    }

    #[test]
    fn agent_runs_and_collects_experiences() {
        let mut mgr = manager(512);
        let mut agent = SibylAgent::new(fast_test_config());
        drive(&mut agent, &mut mgr, &hot_cold_stream(600));
        let st = agent.stats();
        assert_eq!(st.decisions, 600);
        assert!(st.experiences >= 590, "experiences: {}", st.experiences);
        assert!(st.train_steps >= 3, "train steps: {}", st.train_steps);
        assert!(st.weight_syncs >= 3);
    }

    #[test]
    fn exploration_rate_drives_random_actions() {
        let mut mgr = manager(512);
        let mut cfg = fast_test_config();
        cfg.exploration = 0.5;
        cfg.exploration_initial = 0.5; // constant ε
        let mut agent = SibylAgent::new(cfg);
        drive(&mut agent, &mut mgr, &hot_cold_stream(1_000));
        let frac = agent.stats().explorations as f64 / agent.stats().decisions as f64;
        assert!((frac - 0.5).abs() < 0.1, "exploration fraction {frac}");
    }

    #[test]
    fn zero_exploration_is_always_greedy() {
        let mut mgr = manager(512);
        let mut cfg = fast_test_config();
        cfg.exploration = 0.0;
        cfg.exploration_initial = 0.0;
        let mut agent = SibylAgent::new(cfg);
        drive(&mut agent, &mut mgr, &hot_cold_stream(300));
        assert_eq!(agent.stats().explorations, 0);
    }

    #[test]
    fn exploration_anneals_from_initial_to_final() {
        let mut mgr = manager(512);
        let mut cfg = fast_test_config();
        cfg.exploration = 0.0;
        cfg.exploration_initial = 1.0;
        cfg.exploration_decay_requests = 200;
        let mut agent = SibylAgent::new(cfg);
        drive(&mut agent, &mut mgr, &hot_cold_stream(1_000));
        // Expected randoms ≈ ∫ anneal = 200·0.5 = 100, none afterwards.
        let e = agent.stats().explorations;
        assert!((60..=140).contains(&e), "explorations {e}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut mgr = manager(256);
            let mut agent = SibylAgent::new(fast_test_config());
            drive(&mut agent, &mut mgr, &hot_cold_stream(500));
            mgr.stats().avg_latency_us()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "synchronous agent must be deterministic");
    }

    #[test]
    fn learns_to_keep_hot_pages_fast() {
        // A tiny fast device that fits the hot set but not the cold
        // stream: after training, the agent should place hot writes fast
        // much more often than cold streams.
        let mut mgr = manager(64);
        let mut agent = SibylAgent::new(fast_test_config());
        drive(&mut agent, &mut mgr, &hot_cold_stream(4_000));
        // Compare against Slow-Only on the same workload.
        let mut slow_mgr = manager(64);
        for (i, req) in hot_cold_stream(4_000).iter().enumerate() {
            let _ = i;
            let _ = slow_mgr.access(req, DeviceId(1));
        }
        let sibyl_lat = mgr.stats().avg_latency_us();
        let slow_lat = slow_mgr.stats().avg_latency_us();
        assert!(
            sibyl_lat < slow_lat,
            "Sibyl ({sibyl_lat:.0} µs) should beat Slow-Only ({slow_lat:.0} µs)"
        );
    }

    #[test]
    fn background_mode_runs_and_shuts_down() {
        let mut mgr = manager(256);
        let mut cfg = fast_test_config();
        cfg.training_mode = TrainingMode::Background;
        let mut agent = SibylAgent::new(cfg);
        drive(&mut agent, &mut mgr, &hot_cold_stream(2_000));
        assert_eq!(agent.stats().decisions, 2_000);
        // Give the trainer a moment, then drop (joins the thread).
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(agent);
    }

    #[test]
    fn tri_device_action_space() {
        let cfg = HssConfig::tri(
            DeviceSpec::optane_ssd(),
            DeviceSpec::tlc_ssd(),
            DeviceSpec::hdd(),
        )
        .with_capacity_pages(vec![64, 128, u64::MAX]);
        let mut mgr = StorageManager::new(&cfg);
        let mut agent = SibylAgent::new(fast_test_config());
        let reqs = hot_cold_stream(900);
        drive(&mut agent, &mut mgr, &reqs);
        // All three devices should have received at least one placement.
        let placements = &mgr.stats().placements;
        assert_eq!(placements.len(), 3);
        assert_eq!(placements.iter().sum::<u64>(), 900);
    }

    #[test]
    fn inference_macs_reported_after_first_request() {
        let mut mgr = manager(64);
        let mut agent = SibylAgent::new(fast_test_config());
        assert!(agent.inference_macs().is_none());
        drive(&mut agent, &mut mgr, &hot_cold_stream(2));
        let macs = agent.inference_macs().expect("runtime built");
        // 6·20 + 20·30 + 30·(2·11) = 120 + 600 + 660
        assert_eq!(macs, 1380);
    }
}
