//! The Sibyl agent: an online reinforcement-learning placement policy.
//!
//! This is the paper's contribution assembled: per-request observation of
//! the Table 1 state features, ε-greedy action selection from an
//! inference network, reward computed from served latency and eviction
//! penalty (Eq. 1), experience collection into a replay buffer, periodic
//! training of a separate training network, and training → inference
//! weight copies every `train_interval` requests (Algorithm 1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sibyl_hss::{AccessOutcome, DeviceId, PlacementContext, PlacementPolicy, StorageManager};
use sibyl_nn::Mlp;
use sibyl_telemetry::{Log2Histogram, Registry};
use sibyl_trace::IoRequest;

use crate::buffer::Experience;
use crate::config::{QuantMode, SibylConfig, TrainingMode};
use crate::features::StateEncoder;
use crate::learner::{Learner, ValueHead};
use crate::reward::RewardShaper;
use crate::trainer::BackgroundTrainer;

/// Counters describing the agent's activity during a run.
///
/// Equality compares the *logical* counters only:
/// [`AgentStats::train_ns`] is wall-clock telemetry that legitimately
/// differs between two otherwise bit-identical runs, so it is excluded
/// from `PartialEq` — determinism tests can keep asserting whole-report
/// equality.
#[derive(Debug, Clone, Default)]
pub struct AgentStats {
    /// Placement decisions made.
    pub decisions: u64,
    /// Decisions taken by random exploration (ε branch).
    pub explorations: u64,
    /// Experiences pushed toward the learner.
    pub experiences: u64,
    /// Training steps completed (synchronous mode) or observed
    /// (background mode).
    pub train_steps: u64,
    /// Wall-clock nanoseconds spent inside training steps (the paper's
    /// §10 charges this to request latency in synchronous mode; in
    /// background mode it is the trainer thread's busy time as of the
    /// last weight adoption). Telemetry only — excluded from equality.
    pub train_ns: u64,
    /// Training→inference weight synchronizations.
    pub weight_syncs: u64,
    /// Experiences copied out through the experience tap toward a shared
    /// (cross-agent) replay pool.
    pub shared_published: u64,
    /// Foreign experiences absorbed from a shared replay pool.
    pub shared_absorbed: u64,
}

impl PartialEq for AgentStats {
    fn eq(&self, other: &Self) -> bool {
        // Everything except `train_ns` (wall-clock telemetry). The
        // exhaustive destructuring makes adding a field a compile error
        // here, so new counters cannot silently escape equality.
        let AgentStats {
            decisions,
            explorations,
            experiences,
            train_steps,
            train_ns: _,
            weight_syncs,
            shared_published,
            shared_absorbed,
        } = self;
        *decisions == other.decisions
            && *explorations == other.explorations
            && *experiences == other.experiences
            && *train_steps == other.train_steps
            && *weight_syncs == other.weight_syncs
            && *shared_published == other.shared_published
            && *shared_absorbed == other.shared_absorbed
    }
}

impl Eq for AgentStats {}

/// Point-in-time snapshot of the agent's learning state — the RL
/// introspection probe the serving engine samples every `curve_every`
/// batches into the telemetry registry. Reading a probe is pure: it
/// consumes no RNG and touches no training state, so sampling it can
/// never perturb placement.
#[derive(Debug, Clone, PartialEq)]
pub struct RlProbe {
    /// Current ε of the exploration anneal.
    pub epsilon: f64,
    /// Mean loss of the most recent training step, when one has run and
    /// telemetry is enabled (synchronous mode only — the background
    /// trainer does not publish losses).
    pub last_loss: Option<f32>,
    /// Experiences currently stored in the replay buffer (0 in
    /// background mode: the trainer thread owns the buffer).
    pub buffer_len: usize,
    /// Replay-buffer capacity.
    pub buffer_capacity: usize,
    /// Age distribution of the stored experiences in push counts
    /// (empty in background mode).
    pub buffer_age: Log2Histogram,
    /// Mean (best − second-best) Q-value gap over the greedy rows of the
    /// most recent decided batch — how decisively the policy is choosing
    /// (0 until a batch has been decided at `Full` telemetry).
    pub q_spread: f64,
    /// Normalized entropy of the chosen-action distribution of the most
    /// recent decided batch, in `[0, 1]` (0 until a batch has been
    /// decided at `Full` telemetry).
    pub argmax_entropy: f64,
    /// Training steps completed so far.
    pub train_steps: u64,
}

/// Introspection state, allocated only when telemetry is enabled so the
/// disabled path stays a null-pointer check.
#[derive(Debug, Default)]
struct Introspection {
    registry: Registry,
    last_loss: Option<f32>,
    last_q_spread: f64,
    last_argmax_entropy: f64,
}

/// Where training runs (resolved from [`TrainingMode`]).
#[derive(Debug)]
enum Engine {
    /// Learner runs inline on the decision path.
    Synchronous(Box<Learner>),
    /// Learner runs on a background thread (Fig. 7(a)).
    Background(BackgroundTrainer),
}

/// A decision awaiting its reward and next observation.
#[derive(Debug, Clone)]
struct Pending {
    obs: Vec<f32>,
    action: usize,
    reward: Option<f32>,
}

/// Lazily-built runtime state (needs the storage manager's shape).
#[derive(Debug)]
struct Runtime {
    encoder: StateEncoder,
    head: ValueHead,
    inference_net: Mlp,
    engine: Engine,
    shaper: RewardShaper,
    n_actions: usize,
    last_generation: u64,
}

/// The Sibyl reinforcement-learning data-placement agent.
///
/// # Examples
///
/// ```
/// use sibyl_core::{SibylAgent, SibylConfig};
/// use sibyl_hss::PlacementPolicy;
/// let agent = SibylAgent::new(SibylConfig::default());
/// assert_eq!(agent.name(), "Sibyl");
/// ```
#[derive(Debug)]
pub struct SibylAgent {
    config: SibylConfig,
    runtime: Option<Runtime>,
    pending: Option<Pending>,
    /// Decisions of the current [`SibylAgent::place_batch`] call, awaiting
    /// their rewards from [`SibylAgent::feedback_batch`].
    batch: Vec<Pending>,
    rng: StdRng,
    stats: AgentStats,
    pushes_seen: u64,
    next_train_at: u64,
    /// Experience-tap share fraction (0 = tap disabled).
    tap_fraction: f64,
    /// Fractional-stride accumulator of the tap (deterministic selection:
    /// an experience is published whenever the accumulator crosses 1).
    tap_acc: f64,
    /// Experiences selected by the tap since the last
    /// [`SibylAgent::take_published`].
    tapped: Vec<Experience>,
    /// Importance weight applied to absorbed foreign experiences
    /// (1.0 = equal footing with local ones).
    foreign_weight: f32,
    /// RL introspection state; `None` when telemetry is off.
    introspect: Option<Box<Introspection>>,
}

impl SibylAgent {
    /// Creates an agent with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// (see [`SibylConfig::validate`]).
    pub fn new(config: SibylConfig) -> Self {
        config.validate();
        let rng = StdRng::seed_from_u64(config.seed);
        let next_train_at = config.train_interval;
        let introspect = config
            .telemetry
            .enabled()
            .then(|| Box::new(Introspection::default()));
        SibylAgent {
            config,
            runtime: None,
            pending: None,
            batch: Vec::new(),
            rng,
            stats: AgentStats::default(),
            pushes_seen: 0,
            next_train_at,
            tap_fraction: 0.0,
            tap_acc: 0.0,
            tapped: Vec::new(),
            foreign_weight: 1.0,
            introspect,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &SibylConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> &AgentStats {
        &self.stats
    }

    /// The inference network's multiply-accumulate count per decision
    /// (§10.1), available once the agent has seen its first request.
    pub fn inference_macs(&self) -> Option<usize> {
        self.runtime.as_ref().map(|r| r.inference_net.mac_count())
    }

    fn ensure_runtime(&mut self, manager: &StorageManager) {
        if self.runtime.is_some() {
            return;
        }
        let n_actions = manager.num_devices();
        let encoder = StateEncoder::new(self.config.feature_mask, n_actions);
        let obs_len = encoder.observation_len();
        let head = ValueHead::new(&self.config, n_actions);
        let shaper = RewardShaper::new(
            self.config.reward_kind,
            self.config.eviction_penalty_coeff,
            manager.device(DeviceId(0)).spec().min_read_service_us(),
            self.config.clamp_eviction_reward,
            self.config.v_min as f64,
        );
        let (engine, mut inference_net) = match self.config.training_mode {
            TrainingMode::Synchronous => {
                let learner = Learner::new(&self.config, n_actions, obs_len);
                let net = learner.weights_snapshot();
                (Engine::Synchronous(Box::new(learner)), net)
            }
            TrainingMode::Background => {
                let trainer = BackgroundTrainer::spawn(&self.config, n_actions, obs_len);
                let net = trainer.published.lock().weights.clone();
                (Engine::Background(trainer), net)
            }
        };
        if self.config.quant_mode == QuantMode::F16 {
            // Shadow buffers stay in sync automatically: every weight
            // adoption below goes through Mlp::copy_weights_from or
            // Mlp::set_flat_params, both of which re-encode them.
            inference_net.enable_f16();
        }
        self.runtime = Some(Runtime {
            encoder,
            head,
            inference_net,
            engine,
            shaper,
            n_actions,
            last_generation: 0,
        });
    }

    /// Pushes a finalized experience into the learner and, in synchronous
    /// mode, runs due training steps + weight syncs.
    fn push_experience(&mut self, exp: Experience) {
        self.stats.experiences += 1;
        self.pushes_seen += 1;
        // Experience tap: deterministic stride selection — publish one
        // experience each time the fractional accumulator crosses 1, so a
        // fraction of f publishes every ⌈1/f⌉-th experience with no RNG
        // draw (the tap must not perturb the ε-greedy stream).
        if self.tap_fraction > 0.0 {
            self.tap_acc += self.tap_fraction;
            if self.tap_acc >= 1.0 {
                self.tap_acc -= 1.0;
                self.tapped.push(exp.clone());
                self.stats.shared_published += 1;
            }
        }
        let due = self.pushes_seen >= self.next_train_at;
        if due {
            self.next_train_at += self.config.train_interval;
        }
        // sibyl-lint: allow(unwrap-in-lib) -- invariant: ensure_runtime ran at the top of this method
        let rt = self.runtime.as_mut().expect("runtime initialized");
        match &mut rt.engine {
            Engine::Synchronous(learner) => {
                learner.push(exp);
                if due {
                    if let Some(loss) = learner.train_step() {
                        rt.inference_net
                            .copy_weights_from(&learner.weights_snapshot());
                        self.stats.train_steps = learner.train_steps;
                        self.stats.train_ns = learner.train_ns;
                        self.stats.weight_syncs += 1;
                        if let Some(intro) = self.introspect.as_deref_mut() {
                            intro.last_loss = Some(loss);
                            intro.registry.series_push(
                                "rl.train_loss",
                                learner.train_steps,
                                f64::from(loss),
                            );
                        }
                    }
                }
            }
            Engine::Background(trainer) => {
                trainer.send(exp);
                // Adopt any newly published weights (cheap try-lock so the
                // decision path never blocks on the trainer).
                if let Some(p) = trainer.published.try_lock() {
                    if p.generation > rt.last_generation {
                        rt.inference_net.copy_weights_from(&p.weights);
                        rt.last_generation = p.generation;
                        self.stats.train_steps = p.train_steps;
                        self.stats.train_ns = p.train_ns;
                        self.stats.weight_syncs += 1;
                    }
                }
            }
        }
    }

    /// Makes placement decisions for a whole batch of requests at once,
    /// amortizing NN inference across the batch: the greedy decisions run
    /// through one [`Mlp::infer_batch`] matrix-matrix pass instead of
    /// one matrix-vector pass per request. This is the decision path of
    /// the `sibyl-serve` sharded serving engine.
    ///
    /// Observations are encoded against the manager state *before* any
    /// request of the batch is served — the staleness-for-throughput
    /// trade batched serving makes (request *k* of a batch does not see
    /// the residency/capacity effects of requests `0..k`). RNG
    /// consumption and ε-greedy annealing match the sequential
    /// [`PlacementPolicy::place`] path request for request, and the
    /// batched network outputs are bit-identical to per-request
    /// inference.
    ///
    /// Every `place_batch` call must be paired with a
    /// [`SibylAgent::feedback_batch`] call carrying the outcomes of the
    /// returned placements, in order. Do not interleave with the
    /// single-request [`PlacementPolicy::place`] path while a batch is
    /// outstanding.
    ///
    /// # Panics
    ///
    /// Panics if the previous batch was never completed with
    /// [`SibylAgent::feedback_batch`].
    pub fn place_batch(&mut self, reqs: &[IoRequest], manager: &StorageManager) -> Vec<DeviceId> {
        assert!(
            self.batch.is_empty(),
            "place_batch: previous batch still awaits feedback_batch"
        );
        if reqs.is_empty() {
            return Vec::new();
        }
        self.ensure_runtime(manager);
        let observations: Vec<Vec<f32>> = {
            // sibyl-lint: allow(unwrap-in-lib) -- invariant: ensure_runtime ran at the top of this method
            let rt = self.runtime.as_ref().expect("runtime initialized");
            reqs.iter()
                .map(|req| rt.encoder.observe(req, manager).vector)
                .collect()
        };

        // Finalize the decision left over from the previous batch (or from
        // the sequential path) now that its next-state is known.
        self.finalize_pending(&observations[0]);

        let n_actions = self
            .runtime
            .as_ref()
            // sibyl-lint: allow(unwrap-in-lib) -- invariant: ensure_runtime ran at the top of this method
            .expect("runtime initialized")
            .n_actions;
        let mut actions = vec![0usize; reqs.len()];
        let mut greedy = Vec::with_capacity(reqs.len());
        for (i, action) in actions.iter_mut().enumerate() {
            let eps = self.epsilon();
            if self.rng.gen::<f64>() < eps {
                self.stats.explorations += 1;
                *action = self.rng.gen_range(0..n_actions);
            } else {
                greedy.push(i);
            }
            self.stats.decisions += 1;
        }
        if !greedy.is_empty() {
            // sibyl-lint: allow(unwrap-in-lib) -- invariant: ensure_runtime ran at the top of this method
            let rt = self.runtime.as_ref().expect("runtime initialized");
            let obs_len = observations[0].len();
            let mut flat = Vec::with_capacity(greedy.len() * obs_len);
            for &i in &greedy {
                flat.extend_from_slice(&observations[i]);
            }
            // The only consumer of the quantized fast path: greedy batched
            // decisions. Exploration, the sequential `place` path, and all
            // training stay f32 regardless of the mode.
            let logits = match self.config.quant_mode {
                QuantMode::Off => rt.inference_net.infer_batch(&flat, greedy.len()),
                QuantMode::F16 => rt.inference_net.infer_batch_f16(&flat, greedy.len()),
            };
            let out_dim = rt.inference_net.out_dim();
            for (k, &i) in greedy.iter().enumerate() {
                actions[i] = rt.head.best_action(&logits[k * out_dim..(k + 1) * out_dim]);
            }
            // Full-level introspection: Q-value decisiveness of the
            // greedy rows. Reading the already-computed logits consumes
            // no RNG and changes no decision — the Off path skips this
            // entirely.
            if self.config.telemetry.histograms() {
                if let Some(intro) = self.introspect.as_deref_mut() {
                    let mut spread_sum = 0.0f64;
                    for k in 0..greedy.len() {
                        let q = rt.head.q_values(&logits[k * out_dim..(k + 1) * out_dim]);
                        let mut best = f64::NEG_INFINITY;
                        let mut second = f64::NEG_INFINITY;
                        for &v in &q {
                            let v = f64::from(v);
                            if v > best {
                                second = best;
                                best = v;
                            } else if v > second {
                                second = v;
                            }
                        }
                        if second.is_finite() {
                            spread_sum += best - second;
                        }
                    }
                    intro.last_q_spread = spread_sum / greedy.len() as f64;
                }
            }
        }
        if self.config.telemetry.histograms() {
            if let Some(intro) = self.introspect.as_deref_mut() {
                intro.last_argmax_entropy = argmax_entropy(&actions, n_actions);
            }
        }
        self.batch = observations
            .into_iter()
            .zip(&actions)
            .map(|(obs, &action)| Pending {
                obs,
                action,
                reward: None,
            })
            .collect();
        actions.into_iter().map(DeviceId).collect()
    }

    /// Completes the current batch: shapes one reward per outcome, chains
    /// experiences within the batch (`⟨O_i, a_i, r_i, O_{i+1}⟩`), and
    /// leaves the batch's last decision pending until the next batch
    /// supplies its next-state observation. Runs due training steps and
    /// weight syncs exactly like the sequential feedback path.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes.len()` differs from the preceding
    /// [`SibylAgent::place_batch`] call's request count.
    pub fn feedback_batch(&mut self, outcomes: &[AccessOutcome]) {
        assert_eq!(
            outcomes.len(),
            self.batch.len(),
            "feedback_batch: one outcome per batched decision required"
        );
        // An empty round (paired with an empty place_batch) is a no-op; it
        // must not disturb the still-pending decision of a previous batch.
        if outcomes.is_empty() || self.runtime.is_none() {
            return;
        }
        let rewards: Vec<f32> = {
            // sibyl-lint: allow(unwrap-in-lib) -- invariant: runtime.is_none() returned above
            let rt = self.runtime.as_ref().expect("runtime initialized");
            outcomes.iter().map(|o| rt.shaper.reward(o)).collect()
        };
        let mut batch = std::mem::take(&mut self.batch);
        for (pending, reward) in batch.iter_mut().zip(rewards) {
            pending.reward = Some(reward);
        }
        let last = batch.pop();
        for (i, pending) in batch.iter().enumerate() {
            let next_obs = if i + 1 < batch.len() {
                batch[i + 1].obs.clone()
            } else {
                // sibyl-lint: allow(unwrap-in-lib) -- invariant: batch.pop() is Some when the loop body runs
                last.as_ref().expect("non-empty batch").obs.clone()
            };
            self.push_experience(Experience {
                obs: pending.obs.clone(),
                action: pending.action,
                // sibyl-lint: allow(unwrap-in-lib) -- invariant: reward assigned in the zip loop above
                reward: pending.reward.expect("reward set above"),
                next_obs,
            });
        }
        self.pending = last;
    }

    /// Enables (or, with `0.0`, disables) the experience tap: the given
    /// fraction of subsequently collected experiences is copied aside for
    /// a shared replay pool, retrievable with
    /// [`SibylAgent::take_published`]. Selection is a deterministic
    /// stride over the experience sequence — no RNG is consumed, so
    /// enabling the tap never changes the agent's decisions.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn set_experience_tap(&mut self, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "set_experience_tap: fraction must be in [0, 1]"
        );
        self.tap_fraction = fraction;
    }

    /// Drains the experiences the tap selected since the last call (empty
    /// when the tap is disabled).
    pub fn take_published(&mut self) -> Vec<Experience> {
        std::mem::take(&mut self.tapped)
    }

    /// Pushes foreign experiences (another agent's transitions from a
    /// shared replay pool) into this agent's replay buffer. They become
    /// sampling candidates for future training steps but do **not**
    /// advance the training schedule — only locally collected experiences
    /// trigger training — and the buffer's deduplication applies as
    /// usual. Each absorbed transition carries the weight configured via
    /// [`SibylAgent::set_foreign_weight`], scaling its loss contribution
    /// when sampled. No-op in [`TrainingMode::Background`] (the trainer
    /// owns the buffer) and before the first decision (no runtime yet).
    pub fn absorb_experiences(&mut self, exps: &[Experience]) {
        let Some(rt) = self.runtime.as_mut() else {
            return;
        };
        if let Engine::Synchronous(learner) = &mut rt.engine {
            for exp in exps {
                learner.push_weighted(exp.clone(), self.foreign_weight);
            }
            self.stats.shared_absorbed += exps.len() as u64;
        }
    }

    /// Sets the importance weight future
    /// [`SibylAgent::absorb_experiences`] calls attach to foreign
    /// transitions. At the default 1.0, absorbed experiences train on
    /// equal footing with local ones (bit-identical to the pre-weighting
    /// behavior); lower values shrink their loss and gradient
    /// contribution without touching the sampling distribution.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not in `[0, 1]`.
    pub fn set_foreign_weight(&mut self, weight: f64) {
        assert!(
            (0.0..=1.0).contains(&weight),
            "set_foreign_weight: weight must be in [0, 1]"
        );
        self.foreign_weight = weight as f32;
    }

    /// The training network's flat parameters — this agent's contribution
    /// to cooperative weight averaging. `None` before the first decision
    /// (no runtime yet) or in [`TrainingMode::Background`] (the trainer
    /// thread owns the training network).
    pub fn export_weights(&self) -> Option<Vec<f32>> {
        let rt = self.runtime.as_ref()?;
        match &rt.engine {
            Engine::Synchronous(learner) => Some(learner.flat_params()),
            Engine::Background(_) => None,
        }
    }

    /// Adopts externally averaged parameters: overwrites the training,
    /// bootstrap-target, *and* inference networks, so the next decision
    /// and the next training step both start from the adopted weights.
    /// Returns `false` (and changes nothing) before the first decision or
    /// in [`TrainingMode::Background`].
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` differs from the network's parameter
    /// count.
    pub fn import_weights(&mut self, params: &[f32]) -> bool {
        let Some(rt) = self.runtime.as_mut() else {
            return false;
        };
        match &mut rt.engine {
            Engine::Synchronous(learner) => {
                learner.set_flat_params(params);
                rt.inference_net.set_flat_params(params);
                self.stats.weight_syncs += 1;
                true
            }
            Engine::Background(_) => false,
        }
    }

    /// Test hook: reroute this agent's synchronous learner through the
    /// pre-refactor per-sample training reference so golden tests can
    /// drive the exact old path through the public machinery. Requires
    /// the runtime to exist (one request seen) and no training to have
    /// happened yet for a meaningful comparison.
    #[cfg(test)]
    fn force_reference_training(&mut self) {
        if let Some(rt) = self.runtime.as_mut() {
            if let Engine::Synchronous(learner) = &mut rt.engine {
                learner.use_reference_train = true;
            }
        }
    }

    /// Changes the learning rate online (synchronous mode only; the
    /// Sibyl_Opt configuration of §8.3 uses a lower rate from the start).
    pub fn set_learning_rate(&mut self, lr: f32) {
        if let Some(rt) = self.runtime.as_mut() {
            if let Engine::Synchronous(learner) = &mut rt.engine {
                learner.set_learning_rate(lr);
            }
        }
    }

    /// Finalizes the previous decision — if its reward has arrived — now
    /// that its next-state observation is known (experience =
    /// ⟨O_t, a_t, r_t, O_{t+1}⟩, §6 footnote 6). Shared by the sequential
    /// and batched decision paths.
    fn finalize_pending(&mut self, next_obs: &[f32]) {
        if let Some(prev) = self.pending.take() {
            if let Some(reward) = prev.reward {
                self.push_experience(Experience {
                    obs: prev.obs,
                    action: prev.action,
                    reward,
                    next_obs: next_obs.to_vec(),
                });
            }
        }
    }

    /// Current ε of the linear anneal from `exploration_initial` to the
    /// tuned final ε, driven by decisions made so far. Shared by the
    /// sequential and batched decision paths — the batched path's
    /// request-for-request RNG parity depends on both using the exact
    /// same schedule.
    fn epsilon(&self) -> f64 {
        let progress = if self.config.exploration_decay_requests == 0 {
            1.0
        } else {
            (self.stats.decisions as f64 / self.config.exploration_decay_requests as f64).min(1.0)
        };
        self.config.exploration_initial
            + (self.config.exploration - self.config.exploration_initial) * progress
    }

    /// Samples the RL introspection probe: exploration position, latest
    /// loss, replay-buffer occupancy and age distribution, and the
    /// decisiveness statistics of the most recent batch. Pure — consumes
    /// no RNG and mutates nothing, so callers may sample at any cadence
    /// without perturbing placement. Background mode degrades gracefully:
    /// the trainer thread owns the buffer, so occupancy reads 0 and the
    /// age histogram is empty.
    pub fn probe(&self) -> RlProbe {
        let (buffer_len, buffer_age) = match self.runtime.as_ref().map(|rt| &rt.engine) {
            Some(Engine::Synchronous(learner)) => {
                (learner.buffer.len(), learner.buffer.age_histogram())
            }
            _ => (0, Log2Histogram::new()),
        };
        let intro = self.introspect.as_deref();
        RlProbe {
            epsilon: self.epsilon(),
            last_loss: intro.and_then(|i| i.last_loss),
            buffer_len,
            buffer_capacity: self.config.buffer_capacity,
            buffer_age,
            q_spread: intro.map_or(0.0, |i| i.last_q_spread),
            argmax_entropy: intro.map_or(0.0, |i| i.last_argmax_entropy),
            train_steps: self.stats.train_steps,
        }
    }

    /// Drains the agent's internal telemetry registry (the `rl.*` loss
    /// series plus the `measured.train_ns` wall-clock total), for the
    /// serving engine to fold into its shard sink at teardown. `None`
    /// when telemetry is off. The registry restarts empty, so calling
    /// this mid-run partitions the series rather than duplicating it.
    pub fn take_telemetry(&mut self) -> Option<Registry> {
        let intro = self.introspect.as_deref_mut()?;
        let mut registry = std::mem::take(&mut intro.registry);
        registry.counter_add("measured.train_ns", self.stats.train_ns);
        Some(registry)
    }
}

/// Normalized entropy (in `[0, 1]`) of the action distribution a decided
/// batch produced: 0 when every request went to one device, 1 when
/// placements split evenly across all `n_actions`.
fn argmax_entropy(actions: &[usize], n_actions: usize) -> f64 {
    if actions.is_empty() || n_actions < 2 {
        return 0.0;
    }
    let mut counts = vec![0u64; n_actions];
    for &a in actions {
        counts[a] += 1;
    }
    let total = actions.len() as f64;
    let mut h = 0.0f64;
    for &c in &counts {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.ln();
        }
    }
    h / (n_actions as f64).ln()
}

impl PlacementPolicy for SibylAgent {
    fn name(&self) -> &str {
        "Sibyl"
    }

    fn place(&mut self, req: &IoRequest, ctx: &PlacementContext<'_>) -> DeviceId {
        assert!(
            self.batch.is_empty(),
            "place: a place_batch call still awaits feedback_batch"
        );
        self.ensure_runtime(ctx.manager);
        let obs = {
            // sibyl-lint: allow(unwrap-in-lib) -- invariant: ensure_runtime ran at the top of this method
            let rt = self.runtime.as_ref().expect("runtime initialized");
            rt.encoder.observe(req, ctx.manager)
        };

        // Finalize the previous decision now that its next-state is known.
        self.finalize_pending(&obs.vector);

        let eps = self.epsilon();
        // sibyl-lint: allow(unwrap-in-lib) -- invariant: ensure_runtime ran at the top of this method
        let rt = self.runtime.as_mut().expect("runtime initialized");
        let explore = self.rng.gen::<f64>() < eps;
        let action = if explore {
            self.stats.explorations += 1;
            self.rng.gen_range(0..rt.n_actions)
        } else {
            let logits = rt.inference_net.infer(&obs.vector);
            rt.head.best_action(&logits)
        };
        self.stats.decisions += 1;
        self.pending = Some(Pending {
            obs: obs.vector,
            action,
            reward: None,
        });
        DeviceId(action)
    }

    fn feedback(&mut self, _req: &IoRequest, outcome: &AccessOutcome, _ctx: &PlacementContext<'_>) {
        let Some(rt) = self.runtime.as_ref() else {
            return;
        };
        if let Some(pending) = self.pending.as_mut() {
            pending.reward = Some(rt.shaper.reward(outcome));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::{DeviceSpec, HssConfig};
    use sibyl_trace::IoOp;

    fn manager(fast_pages: u64) -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![fast_pages, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn fast_test_config() -> SibylConfig {
        SibylConfig {
            buffer_capacity: 256,
            train_interval: 128,
            batch_size: 32,
            batches_per_step: 2,
            n_atoms: 11,
            learning_rate: 0.01,
            exploration: 0.05,
            exploration_initial: 0.3,
            exploration_decay_requests: 500,
            ..Default::default()
        }
    }

    /// Drives the agent through a request stream against a real manager.
    fn drive(agent: &mut SibylAgent, mgr: &mut StorageManager, reqs: &[IoRequest]) {
        for (i, req) in reqs.iter().enumerate() {
            let target = {
                let ctx = PlacementContext {
                    manager: mgr,
                    seq: i as u64,
                };
                agent.place(req, &ctx)
            };
            let outcome = mgr.access(req, target);
            let ctx = PlacementContext {
                manager: mgr,
                seq: i as u64,
            };
            agent.feedback(req, &outcome, &ctx);
        }
    }

    fn hot_cold_stream(n: usize) -> Vec<IoRequest> {
        // Odd requests hammer 8 hot pages; even requests stream cold data.
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    IoRequest::new(i as u64 * 300, (i as u64) % 8, 1, IoOp::Write)
                } else {
                    IoRequest::new(i as u64 * 300, 10_000 + i as u64 * 8, 8, IoOp::Read)
                }
            })
            .collect()
    }

    #[test]
    fn agent_runs_and_collects_experiences() {
        let mut mgr = manager(512);
        let mut agent = SibylAgent::new(fast_test_config());
        drive(&mut agent, &mut mgr, &hot_cold_stream(600));
        let st = agent.stats();
        assert_eq!(st.decisions, 600);
        assert!(st.experiences >= 590, "experiences: {}", st.experiences);
        assert!(st.train_steps >= 3, "train steps: {}", st.train_steps);
        assert!(st.weight_syncs >= 3);
    }

    #[test]
    fn exploration_rate_drives_random_actions() {
        let mut mgr = manager(512);
        let mut cfg = fast_test_config();
        cfg.exploration = 0.5;
        cfg.exploration_initial = 0.5; // constant ε
        let mut agent = SibylAgent::new(cfg);
        drive(&mut agent, &mut mgr, &hot_cold_stream(1_000));
        let frac = agent.stats().explorations as f64 / agent.stats().decisions as f64;
        assert!((frac - 0.5).abs() < 0.1, "exploration fraction {frac}");
    }

    #[test]
    fn zero_exploration_is_always_greedy() {
        let mut mgr = manager(512);
        let mut cfg = fast_test_config();
        cfg.exploration = 0.0;
        cfg.exploration_initial = 0.0;
        let mut agent = SibylAgent::new(cfg);
        drive(&mut agent, &mut mgr, &hot_cold_stream(300));
        assert_eq!(agent.stats().explorations, 0);
    }

    #[test]
    fn exploration_anneals_from_initial_to_final() {
        let mut mgr = manager(512);
        let mut cfg = fast_test_config();
        cfg.exploration = 0.0;
        cfg.exploration_initial = 1.0;
        cfg.exploration_decay_requests = 200;
        let mut agent = SibylAgent::new(cfg);
        drive(&mut agent, &mut mgr, &hot_cold_stream(1_000));
        // Expected randoms ≈ ∫ anneal = 200·0.5 = 100, none afterwards.
        let e = agent.stats().explorations;
        assert!((60..=140).contains(&e), "explorations {e}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut mgr = manager(256);
            let mut agent = SibylAgent::new(fast_test_config());
            drive(&mut agent, &mut mgr, &hot_cold_stream(500));
            mgr.stats().avg_latency_us()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "synchronous agent must be deterministic");
    }

    #[test]
    fn learns_to_keep_hot_pages_fast() {
        // A tiny fast device that fits the hot set but not the cold
        // stream: after training, the agent should place hot writes fast
        // much more often than cold streams.
        let mut mgr = manager(64);
        let mut agent = SibylAgent::new(fast_test_config());
        drive(&mut agent, &mut mgr, &hot_cold_stream(4_000));
        // Compare against Slow-Only on the same workload.
        let mut slow_mgr = manager(64);
        for (i, req) in hot_cold_stream(4_000).iter().enumerate() {
            let _ = i;
            let _ = slow_mgr.access(req, DeviceId(1));
        }
        let sibyl_lat = mgr.stats().avg_latency_us();
        let slow_lat = slow_mgr.stats().avg_latency_us();
        assert!(
            sibyl_lat < slow_lat,
            "Sibyl ({sibyl_lat:.0} µs) should beat Slow-Only ({slow_lat:.0} µs)"
        );
    }

    #[test]
    fn background_mode_runs_and_shuts_down() {
        let mut mgr = manager(256);
        let mut cfg = fast_test_config();
        cfg.training_mode = TrainingMode::Background;
        let mut agent = SibylAgent::new(cfg);
        drive(&mut agent, &mut mgr, &hot_cold_stream(2_000));
        assert_eq!(agent.stats().decisions, 2_000);
        // Give the trainer a moment, then drop (joins the thread).
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(agent);
    }

    #[test]
    fn tri_device_action_space() {
        let cfg = HssConfig::tri(
            DeviceSpec::optane_ssd(),
            DeviceSpec::tlc_ssd(),
            DeviceSpec::hdd(),
        )
        .with_capacity_pages(vec![64, 128, u64::MAX]);
        let mut mgr = StorageManager::new(&cfg);
        let mut agent = SibylAgent::new(fast_test_config());
        let reqs = hot_cold_stream(900);
        drive(&mut agent, &mut mgr, &reqs);
        // All three devices should have received at least one placement.
        let placements = &mgr.stats().placements;
        assert_eq!(placements.len(), 3);
        assert_eq!(placements.iter().sum::<u64>(), 900);
    }

    /// Drives the agent through the batched decision path.
    fn drive_batched(
        agent: &mut SibylAgent,
        mgr: &mut StorageManager,
        reqs: &[IoRequest],
        batch: usize,
    ) {
        for chunk in reqs.chunks(batch) {
            let targets = agent.place_batch(chunk, mgr);
            let outcomes: Vec<AccessOutcome> = chunk
                .iter()
                .zip(&targets)
                .map(|(req, &t)| mgr.access(req, t))
                .collect();
            agent.feedback_batch(&outcomes);
        }
    }

    #[test]
    fn batched_drive_collects_experiences_and_trains() {
        let mut mgr = manager(512);
        let mut agent = SibylAgent::new(fast_test_config());
        drive_batched(&mut agent, &mut mgr, &hot_cold_stream(600), 32);
        let st = agent.stats();
        assert_eq!(st.decisions, 600);
        assert!(st.experiences >= 590, "experiences: {}", st.experiences);
        assert!(st.train_steps >= 3, "train steps: {}", st.train_steps);
    }

    #[test]
    fn batched_drive_is_deterministic() {
        let run = || {
            let mut mgr = manager(256);
            let mut agent = SibylAgent::new(fast_test_config());
            drive_batched(&mut agent, &mut mgr, &hot_cold_stream(500), 16);
            mgr.stats().avg_latency_us()
        };
        assert_eq!(run(), run(), "batched agent must be deterministic");
    }

    #[test]
    fn batched_drive_learns_to_keep_hot_pages_fast() {
        let mut mgr = manager(64);
        let mut agent = SibylAgent::new(fast_test_config());
        drive_batched(&mut agent, &mut mgr, &hot_cold_stream(4_000), 32);
        let mut slow_mgr = manager(64);
        for req in hot_cold_stream(4_000).iter() {
            let _ = slow_mgr.access(req, DeviceId(1));
        }
        let sibyl_lat = mgr.stats().avg_latency_us();
        let slow_lat = slow_mgr.stats().avg_latency_us();
        assert!(
            sibyl_lat < slow_lat,
            "batched Sibyl ({sibyl_lat:.0} µs) should beat Slow-Only ({slow_lat:.0} µs)"
        );
    }

    #[test]
    #[should_panic(expected = "one outcome per batched decision")]
    fn feedback_batch_rejects_mismatched_outcomes() {
        let mut mgr = manager(64);
        let mut agent = SibylAgent::new(fast_test_config());
        let reqs = hot_cold_stream(4);
        let _ = agent.place_batch(&reqs, &mgr);
        let out = mgr.access(&reqs[0], DeviceId(0));
        agent.feedback_batch(&[out]);
    }

    #[test]
    fn empty_batch_round_is_a_noop() {
        let mut mgr = manager(64);
        let mut agent = SibylAgent::new(fast_test_config());
        let reqs = hot_cold_stream(8);
        // A real batch, then an empty round: the empty round must not
        // drop the batch's last decision, so the follow-up batch still
        // finalizes it into an experience.
        let targets = agent.place_batch(&reqs, &mgr);
        let outcomes: Vec<AccessOutcome> = reqs
            .iter()
            .zip(&targets)
            .map(|(r, &t)| mgr.access(r, t))
            .collect();
        agent.feedback_batch(&outcomes);
        assert_eq!(agent.place_batch(&[], &mgr), Vec::new());
        agent.feedback_batch(&[]);
        drive_batched(&mut agent, &mut mgr, &hot_cold_stream(8), 8);
        // 8 + 8 decisions; all but the final pending become experiences.
        assert_eq!(agent.stats().decisions, 16);
        assert_eq!(agent.stats().experiences, 15);
    }

    #[test]
    #[should_panic(expected = "a place_batch call still awaits")]
    fn sequential_place_rejects_outstanding_batch() {
        let mgr = manager(64);
        let mut agent = SibylAgent::new(fast_test_config());
        let reqs = hot_cold_stream(4);
        let _ = agent.place_batch(&reqs, &mgr);
        let ctx = PlacementContext {
            manager: &mgr,
            seq: 0,
        };
        let _ = agent.place(&reqs[0], &ctx);
    }

    #[test]
    #[should_panic(expected = "previous batch still awaits")]
    fn place_batch_rejects_unfinished_batch() {
        let mgr = manager(64);
        let mut agent = SibylAgent::new(fast_test_config());
        let reqs = hot_cold_stream(4);
        let _ = agent.place_batch(&reqs, &mgr);
        let _ = agent.place_batch(&reqs, &mgr);
    }

    #[test]
    fn experience_tap_publishes_requested_fraction() {
        let mut mgr = manager(512);
        let mut agent = SibylAgent::new(fast_test_config());
        agent.set_experience_tap(0.25);
        drive(&mut agent, &mut mgr, &hot_cold_stream(800));
        let published = agent.take_published();
        let st = agent.stats();
        assert_eq!(st.shared_published, published.len() as u64);
        let frac = published.len() as f64 / st.experiences as f64;
        assert!(
            (frac - 0.25).abs() < 0.01,
            "tap fraction {frac} (published {})",
            published.len()
        );
        // Drained: a second take is empty until new experiences arrive.
        assert!(agent.take_published().is_empty());
    }

    #[test]
    fn experience_tap_does_not_change_decisions() {
        let run = |fraction: f64| {
            let mut mgr = manager(256);
            let mut agent = SibylAgent::new(fast_test_config());
            agent.set_experience_tap(fraction);
            drive(&mut agent, &mut mgr, &hot_cold_stream(600));
            (mgr.stats().avg_latency_us(), agent.stats().explorations)
        };
        assert_eq!(
            run(0.0),
            run(0.5),
            "the tap must be invisible to the decision path"
        );
    }

    #[test]
    fn absorbed_experiences_enter_buffer_without_advancing_schedule() {
        let mut mgr = manager(512);
        let mut agent = SibylAgent::new(fast_test_config());
        drive(&mut agent, &mut mgr, &hot_cold_stream(64));
        let foreign: Vec<Experience> = (0..10)
            .map(|i| Experience {
                obs: vec![0.9 - i as f32 * 0.01; 6],
                action: i % 2,
                reward: 0.5,
                next_obs: vec![0.8; 6],
            })
            .collect();
        let before_steps = agent.stats().train_steps;
        let before_exps = agent.stats().experiences;
        agent.absorb_experiences(&foreign);
        assert_eq!(agent.stats().shared_absorbed, 10);
        assert_eq!(agent.stats().train_steps, before_steps);
        assert_eq!(
            agent.stats().experiences,
            before_exps,
            "foreign experiences must not count as local collections"
        );
    }

    #[test]
    fn foreign_weight_changes_training_but_not_the_default_path() {
        let run = |weight: Option<f64>| {
            let mut mgr = manager(256);
            let mut agent = SibylAgent::new(fast_test_config());
            if let Some(w) = weight {
                agent.set_foreign_weight(w);
            }
            drive(&mut agent, &mut mgr, &hot_cold_stream(100));
            let foreign: Vec<Experience> = (0..24)
                .map(|i| Experience {
                    obs: vec![0.3 + i as f32 * 0.02; 6],
                    action: i % 2,
                    reward: 0.8,
                    next_obs: vec![0.35 + i as f32 * 0.02; 6],
                })
                .collect();
            agent.absorb_experiences(&foreign);
            drive(&mut agent, &mut mgr, &hot_cold_stream(400));
            agent
                .export_weights()
                .expect("synchronous agent exports")
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u32>>()
        };
        let default = run(None);
        let explicit_one = run(Some(1.0));
        let half = run(Some(0.5));
        assert_eq!(
            default, explicit_one,
            "weight 1.0 must match the pre-knob behavior bit for bit"
        );
        assert_ne!(default, half, "down-weighting must alter training");
    }

    #[test]
    #[should_panic(expected = "weight must be in [0, 1]")]
    fn foreign_weight_rejects_out_of_range() {
        let mut agent = SibylAgent::new(fast_test_config());
        agent.set_foreign_weight(1.5);
    }

    #[test]
    fn absorb_before_first_decision_is_a_noop() {
        let mut agent = SibylAgent::new(fast_test_config());
        agent.absorb_experiences(&[Experience {
            obs: vec![0.0; 6],
            action: 0,
            reward: 1.0,
            next_obs: vec![0.0; 6],
        }]);
        assert_eq!(agent.stats().shared_absorbed, 0);
    }

    #[test]
    fn weight_export_import_roundtrip_syncs_agents() {
        let mut mgr_a = manager(256);
        let mut mgr_b = manager(256);
        let mut a = SibylAgent::new(fast_test_config());
        let mut cfg_b = fast_test_config();
        cfg_b.seed ^= 0xDEAD_BEEF;
        let mut b = SibylAgent::new(cfg_b);
        drive(&mut a, &mut mgr_a, &hot_cold_stream(300));
        drive(&mut b, &mut mgr_b, &hot_cold_stream(300));
        let wa = a.export_weights().expect("synchronous agent exports");
        let wb = b.export_weights().expect("synchronous agent exports");
        assert_ne!(wa, wb, "independently trained nets should differ");
        let syncs_before = b.stats().weight_syncs;
        assert!(b.import_weights(&wa));
        assert_eq!(b.export_weights().unwrap(), wa);
        assert_eq!(b.stats().weight_syncs, syncs_before + 1);
    }

    #[test]
    fn weight_export_unavailable_before_runtime_and_in_background() {
        let agent = SibylAgent::new(fast_test_config());
        assert!(agent.export_weights().is_none());
        let mut cfg = fast_test_config();
        cfg.training_mode = TrainingMode::Background;
        let mut bg = SibylAgent::new(cfg);
        let mut mgr = manager(256);
        drive(&mut bg, &mut mgr, &hot_cold_stream(50));
        assert!(bg.export_weights().is_none());
        assert!(!bg.import_weights(&[0.0; 4]));
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn tap_rejects_bad_fraction() {
        let mut agent = SibylAgent::new(fast_test_config());
        agent.set_experience_tap(1.5);
    }

    /// The end-to-end golden pin: a seeded agent trained through the
    /// batched learner produces bit-identical placement decisions,
    /// weights, and served latencies to the pre-refactor per-sample
    /// training path (kept as a `cfg(test)` reference implementation so
    /// this comparison cannot rot).
    #[test]
    fn batched_training_matches_reference_path_end_to_end() {
        let reqs = hot_cold_stream(700);
        let run = |reference: bool| {
            let mut mgr = manager(256);
            let mut agent = SibylAgent::new(fast_test_config());
            let mut decisions = Vec::with_capacity(reqs.len());
            for (i, req) in reqs.iter().enumerate() {
                let target = {
                    let ctx = PlacementContext {
                        manager: &mgr,
                        seq: i as u64,
                    };
                    agent.place(req, &ctx)
                };
                if i == 0 && reference {
                    // The runtime exists now and no training has run yet
                    // (train_interval > 1), so the whole training history
                    // goes through the reference path.
                    agent.force_reference_training();
                }
                decisions.push(target);
                let outcome = mgr.access(req, target);
                let ctx = PlacementContext {
                    manager: &mgr,
                    seq: i as u64,
                };
                agent.feedback(req, &outcome, &ctx);
            }
            let weights: Vec<u32> = agent
                .export_weights()
                .expect("synchronous agent exports")
                .iter()
                .map(|v| v.to_bits())
                .collect();
            (
                decisions,
                weights,
                mgr.stats().avg_latency_us().to_bits(),
                agent.stats().clone(),
            )
        };
        let batched = run(false);
        let reference = run(true);
        assert!(
            batched.3.train_steps >= 4,
            "the comparison must cover several train steps: {}",
            batched.3.train_steps
        );
        assert_eq!(batched.0, reference.0, "placement decisions diverged");
        assert_eq!(batched.1, reference.1, "trained weights diverged");
        assert_eq!(batched.2, reference.2, "served latency diverged");
        assert_eq!(batched.3, reference.3, "logical stats diverged");
    }

    #[test]
    fn train_ns_is_accounted_but_ignored_by_equality() {
        let mut mgr = manager(512);
        let mut agent = SibylAgent::new(fast_test_config());
        drive(&mut agent, &mut mgr, &hot_cold_stream(300));
        let stats = agent.stats().clone();
        assert!(stats.train_steps > 0);
        assert!(stats.train_ns > 0, "training time must be accounted");
        let mut other = stats.clone();
        other.train_ns = stats.train_ns + 12345;
        assert_eq!(stats, other, "train_ns is telemetry, not identity");
        other.train_steps += 1;
        assert_ne!(stats, other, "logical counters still compare");
    }

    #[test]
    fn telemetry_probes_observe_without_perturbing() {
        use sibyl_telemetry::TelemetryConfig;
        let run = |telemetry: TelemetryConfig, sample: bool| {
            let mut mgr = manager(256);
            let mut cfg = fast_test_config();
            cfg.telemetry = telemetry;
            let mut agent = SibylAgent::new(cfg);
            let reqs = hot_cold_stream(600);
            for chunk in reqs.chunks(16) {
                let targets = agent.place_batch(chunk, &mgr);
                if sample {
                    let _ = agent.probe();
                }
                let outcomes: Vec<AccessOutcome> = chunk
                    .iter()
                    .zip(&targets)
                    .map(|(req, &t)| mgr.access(req, t))
                    .collect();
                agent.feedback_batch(&outcomes);
            }
            (
                mgr.stats().avg_latency_us().to_bits(),
                agent.stats().clone(),
                agent.probe(),
                agent.take_telemetry(),
            )
        };
        let off = run(TelemetryConfig::off(), false);
        let full = run(TelemetryConfig::full(), true);
        // The probes must be invisible to the decision path.
        assert_eq!(off.0, full.0, "telemetry changed served latency");
        assert_eq!(off.1, full.1, "telemetry changed agent stats");
        // Off: no registry, default probe fields.
        assert!(off.3.is_none());
        assert_eq!(off.2.last_loss, None);
        assert_eq!(off.2.q_spread, 0.0);
        // Full: probes carry real learning state.
        let probe = &full.2;
        assert!(probe.last_loss.is_some(), "loss should be captured");
        assert!(probe.buffer_len > 0);
        assert_eq!(probe.buffer_capacity, 256);
        assert_eq!(probe.buffer_age.count(), probe.buffer_len as u64);
        assert!(probe.q_spread > 0.0, "greedy rows should have a Q gap");
        assert!((0.0..=1.0).contains(&probe.argmax_entropy));
        assert!(probe.train_steps >= 3);
        assert!((0.0..1.0).contains(&probe.epsilon));
        let registry = full.3.expect("full telemetry has a registry");
        let loss_series = registry.series("rl.train_loss").expect("loss series");
        assert_eq!(loss_series.len(), probe.train_steps as usize);
        assert!(registry.counter("measured.train_ns") > 0);
    }

    #[test]
    fn argmax_entropy_spans_unit_interval() {
        assert_eq!(argmax_entropy(&[], 2), 0.0);
        assert_eq!(argmax_entropy(&[0, 0, 0], 2), 0.0);
        assert_eq!(argmax_entropy(&[1, 1], 1), 0.0);
        let even = argmax_entropy(&[0, 1, 0, 1], 2);
        assert!((even - 1.0).abs() < 1e-12, "even split entropy {even}");
        let tri = argmax_entropy(&[0, 1, 2], 3);
        assert!((tri - 1.0).abs() < 1e-12);
        let skew = argmax_entropy(&[0, 0, 0, 1], 2);
        assert!(skew > 0.0 && skew < 1.0);
    }

    #[test]
    fn inference_macs_reported_after_first_request() {
        let mut mgr = manager(64);
        let mut agent = SibylAgent::new(fast_test_config());
        assert!(agent.inference_macs().is_none());
        drive(&mut agent, &mut mgr, &hot_cold_stream(2));
        let macs = agent.inference_macs().expect("runtime built");
        // 6·20 + 20·30 + 30·(2·11) = 120 + 600 + 660
        assert_eq!(macs, 1380);
    }
}
