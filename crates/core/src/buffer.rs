//! The experience replay buffer (§6.2.1).
//!
//! Sibyl stores `⟨state, action, reward, next-state⟩` transitions in a
//! 1000-entry buffer in host DRAM, deduplicates identical experiences to
//! cut its footprint, and trains on randomly sampled batches (experience
//! replay, Mnih et al. 2015). Fig. 8 shows performance saturating at 1000
//! entries — the capacity the paper (and our default config) picks.

use std::collections::HashMap;

use rand::Rng;

use sibyl_nn::half::f32_to_f16_bits;
use sibyl_telemetry::Log2Histogram;

/// One transition. Observations are the normalized feature vectors; the
/// paper stores them in the binned/half-precision formats accounted in
/// §10.2 (100 bits per experience).
#[derive(Debug, Clone, PartialEq)]
pub struct Experience {
    /// Observation at decision time.
    pub obs: Vec<f32>,
    /// Chosen action (device index).
    pub action: usize,
    /// Reward received for the action.
    pub reward: f32,
    /// Observation at the next decision.
    pub next_obs: Vec<f32>,
}

impl Experience {
    /// A dedup key quantized through half precision — experiences that
    /// differ only below f16 resolution are considered identical, which
    /// is how the paper's buffer deduplication keeps only meaningfully
    /// distinct transitions.
    fn dedup_key(&self) -> Vec<u16> {
        let mut key = Vec::with_capacity(self.obs.len() + self.next_obs.len() + 2);
        key.extend(self.obs.iter().map(|&v| f32_to_f16_bits(v)));
        key.push(self.action as u16);
        key.push(f32_to_f16_bits(self.reward));
        key.extend(self.next_obs.iter().map(|&v| f32_to_f16_bits(v)));
        key
    }
}

/// Fixed-capacity ring buffer with deduplication and uniform random
/// sampling.
///
/// # Examples
///
/// ```
/// use sibyl_core::{Experience, ExperienceBuffer};
/// let mut buf = ExperienceBuffer::new(4);
/// buf.push(Experience {
///     obs: vec![0.0; 6],
///     action: 0,
///     reward: 1.0,
///     next_obs: vec![0.1; 6],
/// });
/// assert_eq!(buf.len(), 1);
/// ```
#[derive(Debug)]
pub struct ExperienceBuffer {
    entries: Vec<Experience>,
    /// Per-slot importance weight, parallel to `entries` (1.0 for local
    /// experiences; shared-replay absorption may down-weight foreign
    /// ones).
    weights: Vec<f32>,
    /// Per-slot insertion stamp, parallel to `entries`: the value of
    /// `pushes` when the slot was written (refreshed when a duplicate
    /// re-arrives). Pure accounting for the telemetry age distribution —
    /// never consulted by storage or sampling.
    stamps: Vec<u64>,
    capacity: usize,
    /// Ring cursor for overwrites once full.
    cursor: usize,
    /// Dedup index: key → slot.
    index: HashMap<Vec<u16>, usize>,
    /// Total pushes attempted (including rejected duplicates).
    pushes: u64,
    duplicates: u64,
}

impl ExperienceBuffer {
    /// Creates a buffer holding at most `capacity` experiences.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ExperienceBuffer: capacity must be positive");
        ExperienceBuffer {
            entries: Vec::with_capacity(capacity),
            weights: Vec::with_capacity(capacity),
            stamps: Vec::with_capacity(capacity),
            capacity,
            cursor: 0,
            index: HashMap::new(),
            pushes: 0,
            duplicates: 0,
        }
    }

    /// Number of stored (unique) experiences.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` when at capacity (the paper's training trigger, Algorithm 1
    /// line 16).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Total push attempts.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Pushes rejected as duplicates.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Inserts an experience; duplicates (at f16 resolution) are dropped.
    /// Once full, new unique experiences overwrite the oldest slot.
    /// Returns `true` if the experience was stored.
    pub fn push(&mut self, exp: Experience) -> bool {
        self.push_weighted(exp, 1.0)
    }

    /// Inserts an experience with an importance `weight` that scales its
    /// loss/gradient contribution when sampled (1.0 = a regular local
    /// experience; shared-replay absorption uses `CoopConfig::foreign_weight`
    /// to down-weight foreign transitions). Deduplication ignores the
    /// weight for *storage* — a copy of an already-stored transition is
    /// dropped like any other duplicate — but the stored slot's weight is
    /// raised to the duplicate's when higher, so a locally re-collected
    /// transition that first arrived as a down-weighted foreign copy
    /// trains at full weight from then on.
    pub fn push_weighted(&mut self, exp: Experience, weight: f32) -> bool {
        self.pushes += 1;
        let key = exp.dedup_key();
        if let Some(&slot) = self.index.get(&key) {
            self.duplicates += 1;
            if weight > self.weights[slot] {
                self.weights[slot] = weight;
            }
            // A duplicate re-observation refreshes the slot's age: the
            // transition is still being collected, so for telemetry it is
            // as fresh as its latest arrival.
            self.stamps[slot] = self.pushes;
            return false;
        }
        if self.entries.len() < self.capacity {
            self.index.insert(key, self.entries.len());
            self.entries.push(exp);
            self.weights.push(weight);
            self.stamps.push(self.pushes);
        } else {
            let old_key = self.entries[self.cursor].dedup_key();
            self.index.remove(&old_key);
            self.index.insert(key, self.cursor);
            self.entries[self.cursor] = exp;
            self.weights[self.cursor] = weight;
            self.stamps[self.cursor] = self.pushes;
            self.cursor = (self.cursor + 1) % self.capacity;
        }
        true
    }

    /// Age distribution of the stored experiences, in push counts: how
    /// many push attempts ago each slot was last written (or refreshed by
    /// a duplicate). Telemetry only — reading it never perturbs storage,
    /// sampling, or RNG state.
    pub fn age_histogram(&self) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for &stamp in &self.stamps {
            h.record(self.pushes - stamp);
        }
        h
    }

    /// The importance weight stored for slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn weight(&self, idx: usize) -> f32 {
        self.weights[idx]
    }

    /// Uniformly samples `batch_size` slot indices (with replacement when
    /// the buffer is smaller than the batch). Returns an empty vector for
    /// an empty buffer.
    ///
    /// This is the allocation-light sampling primitive the batched
    /// training step uses: the learner borrows each sampled
    /// [`Experience`] through [`ExperienceBuffer::get`] instead of
    /// cloning it out of the buffer. RNG consumption is exactly one
    /// `gen_range` draw per sampled slot — identical to
    /// [`ExperienceBuffer::sample`], so switching between the two never
    /// perturbs the sampling sequence.
    pub fn sample_indices<R: Rng + ?Sized>(&self, batch_size: usize, rng: &mut R) -> Vec<usize> {
        if self.entries.is_empty() {
            return Vec::new();
        }
        (0..batch_size)
            .map(|_| rng.gen_range(0..self.entries.len()))
            .collect()
    }

    /// The experience stored in slot `idx` (as returned by
    /// [`ExperienceBuffer::sample_indices`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: usize) -> &Experience {
        &self.entries[idx]
    }

    /// Uniformly samples `batch_size` experiences (with replacement when
    /// the buffer is smaller than the batch). Returns an empty vector for
    /// an empty buffer. Draws the RNG exactly like
    /// [`ExperienceBuffer::sample_indices`].
    pub fn sample<'a, R: Rng + ?Sized>(
        &'a self,
        batch_size: usize,
        rng: &mut R,
    ) -> Vec<&'a Experience> {
        self.sample_indices(batch_size, rng)
            .into_iter()
            .map(|i| &self.entries[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn exp(tag: f32) -> Experience {
        Experience {
            obs: vec![tag; 6],
            action: 0,
            reward: tag,
            next_obs: vec![tag + 1.0; 6],
        }
    }

    #[test]
    fn push_and_len() {
        let mut b = ExperienceBuffer::new(10);
        assert!(b.is_empty());
        assert!(b.push(exp(0.1)));
        assert!(b.push(exp(0.2)));
        assert_eq!(b.len(), 2);
        assert!(!b.is_full());
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut b = ExperienceBuffer::new(10);
        assert!(b.push(exp(0.5)));
        assert!(!b.push(exp(0.5)));
        assert_eq!(b.len(), 1);
        assert_eq!(b.duplicates(), 1);
        assert_eq!(b.pushes(), 2);
    }

    #[test]
    fn near_identical_experiences_dedup_at_f16_resolution() {
        let mut b = ExperienceBuffer::new(10);
        assert!(b.push(exp(0.5)));
        // 0.5 + 1e-8 is identical at f16 resolution.
        let mut e = exp(0.5);
        e.reward += 1e-8;
        assert!(!b.push(e));
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut b = ExperienceBuffer::new(3);
        for i in 0..3 {
            assert!(b.push(exp(i as f32)));
        }
        assert!(b.is_full());
        assert!(b.push(exp(99.0)));
        assert_eq!(b.len(), 3);
        // exp(0.0) was overwritten; pushing it again must succeed.
        assert!(b.push(exp(0.0)));
    }

    #[test]
    fn sampling_covers_buffer() {
        let mut b = ExperienceBuffer::new(8);
        for i in 0..8 {
            b.push(exp(i as f32));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let batch = b.sample(256, &mut rng);
        assert_eq!(batch.len(), 256);
        let distinct: std::collections::HashSet<u32> =
            batch.iter().map(|e| e.reward.to_bits()).collect();
        assert!(distinct.len() >= 6, "sampling should cover most slots");
    }

    #[test]
    fn sample_indices_consumes_rng_identically_to_sample() {
        // The borrow-based sampling path must not change the sampling
        // sequence: same draws, same selected slots, same RNG state
        // afterwards.
        let mut b = ExperienceBuffer::new(16);
        for i in 0..12 {
            b.push(exp(i as f32));
        }
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(99);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(99);
        let by_ref: Vec<u32> = b
            .sample(32, &mut rng_a)
            .into_iter()
            .map(|e| e.reward.to_bits())
            .collect();
        let by_idx: Vec<u32> = b
            .sample_indices(32, &mut rng_b)
            .into_iter()
            .map(|i| b.get(i).reward.to_bits())
            .collect();
        assert_eq!(by_ref, by_idx, "selected slots must match");
        // Both RNGs must have advanced by exactly the same number of
        // draws: their next outputs agree.
        use rand::Rng;
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn sample_indices_from_empty_is_empty_and_draws_nothing() {
        let b = ExperienceBuffer::new(4);
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(3);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(3);
        assert!(b.sample_indices(16, &mut rng_a).is_empty());
        use rand::Rng;
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "no draws consumed");
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let b = ExperienceBuffer::new(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        assert!(b.sample(16, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ExperienceBuffer::new(0);
    }

    #[test]
    fn age_histogram_tracks_pushes_and_refreshes() {
        let mut b = ExperienceBuffer::new(4);
        b.push(exp(0.0));
        b.push(exp(1.0));
        b.push(exp(2.0));
        // Ages are measured in push attempts: slot 0 is 2 pushes old,
        // slot 1 is 1 push old, slot 2 is fresh.
        let h = b.age_histogram();
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(2));
        // A duplicate refreshes its slot's age to zero.
        assert!(!b.push(exp(0.0)));
        assert_eq!(b.age_histogram().max(), Some(2));
        assert_eq!(b.age_histogram().min(), Some(0));
        // Reading the histogram is pure: storage is untouched.
        assert_eq!(b.len(), 3);
        assert_eq!(b.pushes(), 4);
    }

    #[test]
    fn weights_default_to_one_and_follow_ring_overwrites() {
        let mut b = ExperienceBuffer::new(2);
        assert!(b.push(exp(0.0)));
        assert!(b.push_weighted(exp(1.0), 0.25));
        assert_eq!(b.weight(0), 1.0);
        assert_eq!(b.weight(1), 0.25);
        // Ring overwrite replaces slot 0's entry *and* weight.
        assert!(b.push_weighted(exp(2.0), 0.5));
        assert_eq!(b.weight(0), 0.5);
        assert_eq!(b.weight(1), 0.25);
        // A duplicate is rejected for storage, but a higher-weight copy
        // upgrades the stored slot (a local re-collection of a foreign
        // transition must not stay down-weighted) — and never downgrades.
        assert!(!b.push_weighted(exp(2.0), 1.0));
        assert_eq!(b.weight(0), 1.0);
        assert!(!b.push_weighted(exp(2.0), 0.1));
        assert_eq!(b.weight(0), 1.0);
    }
}
