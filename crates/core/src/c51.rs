//! Categorical distributional Q-learning (C51, Bellemare et al. 2017).
//!
//! Sibyl uses a Categorical Deep Q-Network "to learn the *distribution*
//! of Q-values, whereas other variants of Deep Q-Networks aim to
//! approximate a single value" (§6.2.1). The network emits `|A| × N`
//! logits; soft-maxing each action's block yields a categorical
//! distribution over a fixed value support `z_0..z_{N−1}`, and
//! `Q(s, a) = Σ z_i · p_i(s, a)`. Training projects the Bellman-updated
//! distribution `r + γ·z` back onto the support and minimizes
//! cross-entropy.

use serde::{Deserialize, Serialize};

use sibyl_nn::softmax;

/// The categorical value head shared by the training and inference
/// networks.
///
/// # Examples
///
/// ```
/// use sibyl_core::Categorical;
/// let c = Categorical::new(2, 11, 0.0, 10.0);
/// assert_eq!(c.n_outputs(), 22);
/// // Uniform logits -> Q equals the support's mean for both actions.
/// let logits = vec![0.0; 22];
/// let q = c.q_values(&logits);
/// assert!((q[0] - 5.0).abs() < 1e-4);
/// assert!((q[1] - 5.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Categorical {
    n_actions: usize,
    n_atoms: usize,
    v_min: f32,
    v_max: f32,
    dz: f32,
    support: Vec<f32>,
}

impl Categorical {
    /// Creates a head for `n_actions` actions over `n_atoms` atoms
    /// spanning `[v_min, v_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions == 0`, `n_atoms < 2`, or `v_max <= v_min`.
    pub fn new(n_actions: usize, n_atoms: usize, v_min: f32, v_max: f32) -> Self {
        assert!(n_actions > 0, "Categorical: need at least one action");
        assert!(n_atoms >= 2, "Categorical: need at least two atoms");
        assert!(v_max > v_min, "Categorical: v_max must exceed v_min");
        let dz = (v_max - v_min) / (n_atoms - 1) as f32;
        let support = (0..n_atoms).map(|i| v_min + i as f32 * dz).collect();
        Categorical {
            n_actions,
            n_atoms,
            v_min,
            v_max,
            dz,
            support,
        }
    }

    /// Number of actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Number of support atoms.
    pub fn n_atoms(&self) -> usize {
        self.n_atoms
    }

    /// Total network outputs required (`n_actions × n_atoms`).
    pub fn n_outputs(&self) -> usize {
        self.n_actions * self.n_atoms
    }

    /// The fixed value support.
    pub fn support(&self) -> &[f32] {
        &self.support
    }

    /// Softmax distribution of one action's logit block.
    ///
    /// # Panics
    ///
    /// Panics if `logits.len() != n_outputs()` or `action` is out of
    /// range.
    pub fn action_distribution(&self, logits: &[f32], action: usize) -> Vec<f32> {
        assert_eq!(logits.len(), self.n_outputs(), "logit length mismatch");
        assert!(action < self.n_actions, "action out of range");
        let block = &logits[action * self.n_atoms..(action + 1) * self.n_atoms];
        let mut p = Vec::new();
        softmax(block, &mut p);
        p
    }

    /// Expected value per action: `Q(s, a) = Σ zᵢ pᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `logits.len() != n_outputs()`.
    pub fn q_values(&self, logits: &[f32]) -> Vec<f32> {
        assert_eq!(logits.len(), self.n_outputs(), "logit length mismatch");
        let mut scratch = Vec::new();
        (0..self.n_actions)
            .map(|a| {
                let block = &logits[a * self.n_atoms..(a + 1) * self.n_atoms];
                softmax(block, &mut scratch);
                scratch.iter().zip(&self.support).map(|(p, z)| p * z).sum()
            })
            .collect()
    }

    /// The greedy action under the current logits.
    ///
    /// # Panics
    ///
    /// Panics if `logits.len() != n_outputs()`.
    pub fn best_action(&self, logits: &[f32]) -> usize {
        // sibyl-lint: allow(unwrap-in-lib) -- invariant: the support always has n_actions > 0 entries
        sibyl_nn::argmax(&self.q_values(logits)).expect("n_actions > 0")
    }

    /// Projects the Bellman-updated distribution `r + γ·z` (with
    /// next-state distribution `next_probs`) onto the fixed support —
    /// the C51 categorical projection.
    ///
    /// # Panics
    ///
    /// Panics if `next_probs.len() != n_atoms`.
    pub fn project(&self, reward: f32, gamma: f32, next_probs: &[f32]) -> Vec<f32> {
        assert_eq!(
            next_probs.len(),
            self.n_atoms,
            "next distribution length mismatch"
        );
        let mut m = vec![0.0f32; self.n_atoms];
        for (j, &p) in next_probs.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let tz = (reward + gamma * self.support[j]).clamp(self.v_min, self.v_max);
            let b = (tz - self.v_min) / self.dz;
            let l = b.floor();
            let u = b.ceil();
            let li = l as usize;
            let ui = (u as usize).min(self.n_atoms - 1);
            if li == ui {
                m[li] += p;
            } else {
                m[li] += p * (u - b);
                m[ui] += p * (b - l);
            }
        }
        m
    }

    /// Cross-entropy loss and logit gradient for one sample: the target
    /// distribution applies to `action`'s block; all other blocks get zero
    /// gradient. Writes the full-width gradient into `grad` and returns
    /// the loss.
    ///
    /// # Panics
    ///
    /// Panics on any length/action mismatch.
    pub fn loss_grad(
        &self,
        logits: &[f32],
        action: usize,
        target: &[f32],
        grad: &mut Vec<f32>,
    ) -> f32 {
        assert_eq!(logits.len(), self.n_outputs(), "logit length mismatch");
        assert!(action < self.n_actions, "action out of range");
        assert_eq!(target.len(), self.n_atoms, "target length mismatch");
        grad.clear();
        grad.resize(self.n_outputs(), 0.0);
        let block = &logits[action * self.n_atoms..(action + 1) * self.n_atoms];
        let mut block_grad = Vec::new();
        sibyl_nn::loss::cross_entropy_logits_grad(block, target, &mut block_grad);
        grad[action * self.n_atoms..(action + 1) * self.n_atoms].copy_from_slice(&block_grad);
        sibyl_nn::loss::cross_entropy_logits(block, target)
    }

    /// Batched training gradient: one pass over a replay batch producing
    /// the full row-major `(batch × n_outputs)` `dL/dlogits` matrix in
    /// `grads` and one cross-entropy loss per sample in `losses`.
    ///
    /// Row `i` combines the whole per-sample pipeline — greedy next
    /// action from `next_logits` row `i`, C51 projection of
    /// `rewards[i] + γ·z`, and [`Categorical::loss_grad`] against
    /// `logits` row `i` — with arithmetic identical to the sequential
    /// calls, so a batched backward pass fed from this matrix is
    /// bit-exact against the per-sample training loop.
    ///
    /// `logits` are the *training* network's outputs for the sampled
    /// observations; `next_logits` the *target* network's outputs for the
    /// next observations (both row-major, `batch` rows).
    ///
    /// # Panics
    ///
    /// Panics if the row counts of `logits`, `next_logits`, `actions`,
    /// and `rewards` disagree, or any action is out of range.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_grad(
        &self,
        logits: &[f32],
        actions: &[usize],
        rewards: &[f32],
        next_logits: &[f32],
        gamma: f32,
        grads: &mut Vec<f32>,
        losses: &mut Vec<f32>,
    ) {
        let batch = actions.len();
        let width = self.n_outputs();
        assert_eq!(logits.len(), batch * width, "logit matrix shape mismatch");
        assert_eq!(
            next_logits.len(),
            batch * width,
            "next-logit matrix shape mismatch"
        );
        assert_eq!(rewards.len(), batch, "reward count mismatch");
        grads.clear();
        grads.resize(batch * width, 0.0);
        losses.clear();
        let mut row_grad = Vec::new();
        for i in 0..batch {
            let row = &logits[i * width..(i + 1) * width];
            let next_row = &next_logits[i * width..(i + 1) * width];
            let next_best = self.best_action(next_row);
            let next_probs = self.action_distribution(next_row, next_best);
            let target = self.project(rewards[i], gamma, &next_probs);
            let loss = self.loss_grad(row, actions[i], &target, &mut row_grad);
            grads[i * width..(i + 1) * width].copy_from_slice(&row_grad);
            losses.push(loss);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn head() -> Categorical {
        Categorical::new(2, 11, 0.0, 10.0)
    }

    #[test]
    fn support_spans_range_evenly() {
        let c = head();
        assert_eq!(c.support().len(), 11);
        assert_eq!(c.support()[0], 0.0);
        assert_eq!(c.support()[10], 10.0);
        assert!((c.support()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn q_value_of_point_mass() {
        let c = head();
        // Action 0: all mass at atom 7 (value 7.0); action 1 uniform.
        let mut logits = vec![0.0f32; 22];
        logits[7] = 50.0;
        let q = c.q_values(&logits);
        assert!((q[0] - 7.0).abs() < 1e-3);
        assert!((q[1] - 5.0).abs() < 1e-3);
        assert_eq!(c.best_action(&logits), 0);
    }

    #[test]
    fn projection_of_zero_reward_identity() {
        // γ = 1, r = 0 maps the support onto itself exactly.
        let c = head();
        let probs: Vec<f32> = (0..11).map(|i| if i == 4 { 1.0 } else { 0.0 }).collect();
        let m = c.project(0.0, 1.0, &probs);
        assert!((m[4] - 1.0).abs() < 1e-6, "{m:?}");
    }

    #[test]
    fn projection_shifts_by_reward() {
        let c = head();
        let probs: Vec<f32> = (0..11).map(|i| if i == 0 { 1.0 } else { 0.0 }).collect();
        // r = 3: atom 0 (value 0) maps to value 3 → atom 3.
        let m = c.project(3.0, 1.0, &probs);
        assert!((m[3] - 1.0).abs() < 1e-6, "{m:?}");
    }

    #[test]
    fn projection_splits_between_atoms() {
        let c = head();
        let probs: Vec<f32> = (0..11).map(|i| if i == 0 { 1.0 } else { 0.0 }).collect();
        // r = 2.5 lands halfway between atoms 2 and 3.
        let m = c.project(2.5, 1.0, &probs);
        assert!((m[2] - 0.5).abs() < 1e-6);
        assert!((m[3] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn projection_clamps_at_bounds() {
        let c = head();
        let probs: Vec<f32> = (0..11).map(|i| if i == 10 { 1.0 } else { 0.0 }).collect();
        // r = 100 would exceed v_max; clamps onto the top atom.
        let m = c.project(100.0, 1.0, &probs);
        assert!((m[10] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn loss_grad_touches_only_chosen_action() {
        let c = head();
        let logits = vec![0.1f32; 22];
        let target: Vec<f32> = (0..11).map(|i| if i == 2 { 1.0 } else { 0.0 }).collect();
        let mut grad = Vec::new();
        let loss = c.loss_grad(&logits, 1, &target, &mut grad);
        assert!(loss > 0.0);
        assert!(
            grad[..11].iter().all(|&g| g == 0.0),
            "action 0 block untouched"
        );
        assert!(
            grad[11..].iter().any(|&g| g != 0.0),
            "action 1 block has gradient"
        );
    }

    #[test]
    fn batch_grad_matches_sequential_pipeline() {
        let c = head();
        let batch = 3;
        let width = c.n_outputs();
        let logits: Vec<f32> = (0..batch * width)
            .map(|i| (i as f32 * 0.37).sin())
            .collect();
        let next_logits: Vec<f32> = (0..batch * width)
            .map(|i| (i as f32 * 0.11).cos())
            .collect();
        let actions = [0usize, 1, 1];
        let rewards = [0.5f32, 3.0, -1.0];
        let mut grads = Vec::new();
        let mut losses = Vec::new();
        c.batch_grad(
            &logits,
            &actions,
            &rewards,
            &next_logits,
            0.9,
            &mut grads,
            &mut losses,
        );
        assert_eq!(grads.len(), batch * width);
        assert_eq!(losses.len(), batch);
        for i in 0..batch {
            let row = &logits[i * width..(i + 1) * width];
            let next_row = &next_logits[i * width..(i + 1) * width];
            let next_best = c.best_action(next_row);
            let next_probs = c.action_distribution(next_row, next_best);
            let target = c.project(rewards[i], 0.9, &next_probs);
            let mut row_grad = Vec::new();
            let loss = c.loss_grad(row, actions[i], &target, &mut row_grad);
            assert_eq!(loss.to_bits(), losses[i].to_bits(), "loss row {i}");
            assert_eq!(
                grads[i * width..(i + 1) * width]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                row_grad.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "gradient row {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "logit matrix shape mismatch")]
    fn batch_grad_rejects_ragged_logits() {
        let c = head();
        let mut grads = Vec::new();
        let mut losses = Vec::new();
        c.batch_grad(
            &[0.0; 10],
            &[0, 1],
            &[0.0, 0.0],
            &[0.0; 44],
            0.9,
            &mut grads,
            &mut losses,
        );
    }

    proptest! {
        /// Projection preserves probability mass.
        #[test]
        fn projection_preserves_mass(
            reward in -5.0f32..15.0,
            gamma in 0.0f32..1.0,
            raw in proptest::collection::vec(0.01f32..1.0, 11),
        ) {
            let c = head();
            let s: f32 = raw.iter().sum();
            let probs: Vec<f32> = raw.iter().map(|x| x / s).collect();
            let m = c.project(reward, gamma, &probs);
            let total: f32 = m.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4, "mass {total}");
            prop_assert!(m.iter().all(|&p| p >= -1e-6));
        }

        /// Q-values always lie within the support range.
        #[test]
        fn q_values_bounded(logits in proptest::collection::vec(-5.0f32..5.0, 22)) {
            let c = head();
            for q in c.q_values(&logits) {
                prop_assert!((0.0..=10.0).contains(&q));
            }
        }
    }
}
