//! Sibyl's hyper-parameters (the paper's Table 2) and design knobs.

use serde::{Deserialize, Serialize};
use sibyl_telemetry::TelemetryConfig;

use crate::features::FeatureMask;

/// Which value-learning algorithm the agent uses.
///
/// The paper uses a Categorical Deep Q-Network (C51, Bellemare et al.)
/// because learning the *distribution* of returns captures more of the
/// environment than a single expected value (§6.2.1). The plain DQN
/// variant is provided as an ablation of that design choice — it also
/// reproduces the exact 6-20-30-|A| network shape of the paper's overhead
/// analysis (§10.1 counts 780 weights, i.e. one output neuron per
/// action).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AgentKind {
    /// Categorical distributional DQN (the paper's choice).
    #[default]
    C51,
    /// Classic DQN with mean-squared Bellman error (ablation).
    Dqn,
}

/// Which gradient optimizer trains the network.
///
/// The paper trains with plain SGD (Algorithm 1 line 18) over week-long
/// traces. Our synthetic runs are orders of magnitude shorter, and C51's
/// cross-entropy gradients are too small for SGD to contract the value
/// estimates in so few steps; Adam (the optimizer TF-Agents configures
/// for its categorical DQN agents in practice) reaches the Bellman fixed
/// point within the budget. SGD remains available for fidelity
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Adam with standard betas (default).
    #[default]
    Adam,
    /// Plain stochastic gradient descent (the paper's description).
    Sgd,
}

/// How training runs relative to decision-making.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TrainingMode {
    /// Train inline on the decision thread every `train_interval`
    /// requests. Deterministic; the default for tests and benches.
    #[default]
    Synchronous,
    /// Mirror the paper's two-thread design (Fig. 7(a)): a background
    /// training thread consumes experiences from a channel, trains, and
    /// publishes weights that the decision thread copies into its
    /// inference network. Keeps training off the decision critical path.
    Background,
}

/// The reward structure (§5 Eq. 1 plus the §11 alternatives the paper
/// discusses and rejects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RewardKind {
    /// `R = 1/L_t`, minus the eviction penalty when an eviction happened —
    /// the paper's reward (Eq. 1).
    #[default]
    RequestLatency,
    /// +1 when the request was served by the fast device, 0 otherwise —
    /// the "hit rate" alternative §11 shows over-fills fast storage.
    HitRate,
    /// −1 on eviction, 0 otherwise — the "high negative reward"
    /// alternative §11 shows under-uses fast storage.
    EvictionOnly,
}

/// Numeric precision of the batched inference (decide) path.
///
/// The paper stores its weights in 16 bits to reach the §10.2 footprint;
/// this knob makes that storage real on the hot path. Training always
/// stays f32 and bit-pinned — quantization only ever touches the
/// inference network's *weight storage* (compute remains f32 on decoded
/// values), and only the batched [`place_batch`] path reads it; the
/// sequential [`place`] path and all learner state are untouched.
///
/// [`place_batch`]: crate::SibylAgent::place_batch
/// [`place`]: sibyl_hss::PlacementPolicy::place
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum QuantMode {
    /// Full f32 inference — bit-identical to the pre-quantization
    /// behavior (the default).
    #[default]
    Off,
    /// Binary16 weight storage for the inference network: `place_batch`
    /// decodes f16 shadow weights per batch and computes in f32. The
    /// serving golden test pins that this changes zero placement
    /// decisions on the reference trace.
    F16,
}

/// Complete configuration of a Sibyl agent. Defaults are the paper's
/// tuned hyper-parameters (Table 2).
///
/// # Examples
///
/// ```
/// use sibyl_core::SibylConfig;
/// let cfg = SibylConfig::default();
/// assert_eq!(cfg.discount, 0.9);
/// assert_eq!(cfg.batch_size, 128);
/// assert_eq!(cfg.buffer_capacity, 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SibylConfig {
    /// Discount factor γ (Table 2: 0.9).
    pub discount: f32,
    /// Learning rate α. The paper tunes α = 1e-4 on week-long traces
    /// (Table 2); our default is 1e-3 because synthetic runs are two to
    /// three orders of magnitude shorter, and Fig. 14(b) shows the two
    /// perform within a few percent of each other. `Sibyl_Opt` for mixed
    /// workloads uses 1e-5 (§8.3).
    pub learning_rate: f32,
    /// Final exploration rate ε for ε-greedy action selection
    /// (Table 2: 0.001).
    pub exploration: f64,
    /// Initial exploration rate, annealed linearly down to
    /// [`SibylConfig::exploration`] over
    /// [`SibylConfig::exploration_decay_requests`] requests. The paper
    /// reports only the tuned final ε; on short traces the anneal supplies
    /// the off-policy coverage that a week of enterprise I/O provides
    /// naturally.
    pub exploration_initial: f64,
    /// Requests over which the exploration anneal runs.
    pub exploration_decay_requests: u64,
    /// Batch size per training batch (Table 2: 128).
    pub batch_size: usize,
    /// Experience-buffer capacity e_EB (Table 2: 1000).
    pub buffer_capacity: usize,
    /// Batches per training step (§6.2.2: 8).
    pub batches_per_step: usize,
    /// Requests between training steps and training→inference weight
    /// copies (§6.2.2: 1000).
    pub train_interval: u64,
    /// Hidden-layer widths (§6.2.2: 20 and 30 neurons).
    pub hidden_dims: [usize; 2],
    /// Number of C51 support atoms (ignored by [`AgentKind::Dqn`]).
    pub n_atoms: usize,
    /// Lower bound of the C51 value support. Negative so that unclamped
    /// eviction penalties are representable.
    pub v_min: f32,
    /// Upper bound of the C51 value support (scaled-return units; rewards
    /// are normalized so one unqueued fast access ≈ 1).
    pub v_max: f32,
    /// Eviction-penalty coefficient (§5: R_p = 0.001 × L_e).
    pub eviction_penalty_coeff: f64,
    /// Whether eviction-penalized rewards are clamped at zero, the
    /// paper's exact Eq. 1 form (`max(0, 1/L_t − R_p)`). Our simulator's
    /// device-latency ratios make the clamped form too forgiving — an
    /// evicting fast placement still nets more than a slow placement, so
    /// the agent never learns restraint on cold workloads. The default
    /// lets the penalty go negative (floored at `v_min`); set `true` for
    /// the paper-exact reward.
    pub clamp_eviction_reward: bool,
    /// Which features the agent observes (Fig. 13 ablation).
    pub feature_mask: FeatureMask,
    /// Value-learning algorithm.
    pub agent_kind: AgentKind,
    /// Gradient optimizer.
    pub optimizer: OptimizerKind,
    /// Synchronous or background training.
    pub training_mode: TrainingMode,
    /// Reward structure (§11 ablation).
    pub reward_kind: RewardKind,
    /// Precision of the batched decide path (f16 weight storage opt-in).
    pub quant_mode: QuantMode,
    /// Telemetry recording level for the agent's RL introspection probes
    /// (loss curves, Q-value spread, replay-buffer age). `Off` by
    /// default — no registry is allocated and the decision path is
    /// bit-identical to a build without telemetry.
    pub telemetry: TelemetryConfig,
    /// RNG seed for initialization, exploration, and replay sampling.
    pub seed: u64,
}

impl Default for SibylConfig {
    fn default() -> Self {
        SibylConfig {
            discount: 0.9,
            learning_rate: 1e-3,
            exploration: 0.001,
            exploration_initial: 0.3,
            exploration_decay_requests: 4_000,
            batch_size: 128,
            buffer_capacity: 1000,
            batches_per_step: 8,
            train_interval: 1000,
            hidden_dims: [20, 30],
            n_atoms: 51,
            v_min: -1.0,
            v_max: 4.0,
            eviction_penalty_coeff: 0.001,
            clamp_eviction_reward: false,
            feature_mask: FeatureMask::ALL,
            agent_kind: AgentKind::C51,
            optimizer: OptimizerKind::Adam,
            training_mode: TrainingMode::Synchronous,
            reward_kind: RewardKind::RequestLatency,
            quant_mode: QuantMode::Off,
            telemetry: TelemetryConfig::default(),
            seed: 0x51BB_1AA7,
        }
    }
}

impl SibylConfig {
    /// The `Sibyl_Opt` variant for mixed workloads (§8.3): lower learning
    /// rate for smaller, more frequent-feeling updates.
    pub fn mixed_workload_optimized() -> Self {
        SibylConfig {
            learning_rate: 1e-5,
            ..Default::default()
        }
    }

    /// Validates ranges.
    ///
    /// # Panics
    ///
    /// Panics if any hyper-parameter is outside its documented range.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.discount),
            "discount must be in [0, 1]"
        );
        assert!(
            self.learning_rate.is_finite() && self.learning_rate > 0.0,
            "learning rate must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.exploration),
            "exploration must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.exploration_initial),
            "exploration_initial must be in [0, 1]"
        );
        assert!(
            self.exploration_initial >= self.exploration,
            "exploration_initial must be >= the final exploration rate"
        );
        assert!(self.batch_size > 0, "batch_size must be positive");
        assert!(self.buffer_capacity > 0, "buffer_capacity must be positive");
        assert!(
            self.batches_per_step > 0,
            "batches_per_step must be positive"
        );
        assert!(self.train_interval > 0, "train_interval must be positive");
        assert!(self.n_atoms >= 2, "n_atoms must be at least 2");
        assert!(self.v_max > 0.0, "v_max must be positive");
        assert!(self.v_min < self.v_max, "v_min must be below v_max");
        assert!(
            self.eviction_penalty_coeff >= 0.0,
            "eviction_penalty_coeff must be non-negative"
        );
        if let Err(e) = self.telemetry.validate() {
            panic!("telemetry: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = SibylConfig::default();
        assert_eq!(c.discount, 0.9);
        assert_eq!(c.exploration, 0.001);
        assert_eq!(c.batch_size, 128);
        assert_eq!(c.buffer_capacity, 1000);
        assert_eq!(c.batches_per_step, 8);
        assert_eq!(c.train_interval, 1000);
        assert_eq!(c.hidden_dims, [20, 30]);
        c.validate();
    }

    #[test]
    fn exploration_anneal_is_configured_sanely() {
        let c = SibylConfig::default();
        assert!(c.exploration_initial >= c.exploration);
        assert!(c.exploration_decay_requests > 0);
    }

    #[test]
    #[should_panic(expected = "exploration_initial")]
    fn validate_rejects_inverted_anneal() {
        let c = SibylConfig {
            exploration: 0.5,
            exploration_initial: 0.1,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    fn sibyl_opt_lowers_learning_rate() {
        let c = SibylConfig::mixed_workload_optimized();
        assert_eq!(c.learning_rate, 1e-5);
        assert_eq!(c.discount, 0.9);
    }

    #[test]
    #[should_panic(expected = "discount must be in")]
    fn validate_rejects_bad_discount() {
        let c = SibylConfig {
            discount: 1.5,
            ..Default::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "n_atoms")]
    fn validate_rejects_single_atom() {
        let c = SibylConfig {
            n_atoms: 1,
            ..Default::default()
        };
        c.validate();
    }
}
