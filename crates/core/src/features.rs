//! State features (the paper's Table 1) and their binned encoding.
//!
//! For every storage request Sibyl observes a six-dimensional tuple
//! `O_t = (size_t, type_t, intr_t, cnt_t, cap_t, curr_t)` (Eq. 2). Each
//! feature is quantized into a small number of bins to shrink the state
//! space (and the metadata footprint, §10.2), then normalized to `[0, 1]`
//! for the network input. Tri-HSS configurations append one extra
//! remaining-capacity feature per additional capacity-limited device —
//! exactly the extension step §8.7 describes.

use serde::{Deserialize, Serialize};

use sibyl_hss::{DeviceId, StorageManager};
use sibyl_trace::IoRequest;

/// Which of the six Table 1 features the agent observes. Masked features
/// are zeroed in the observation vector, carrying no information — the
/// mechanism behind the paper's feature ablation (Fig. 13, §8.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureMask {
    /// `size_t` — request size (the randomness signal CDE keys on).
    pub size: bool,
    /// `type_t` — read/write.
    pub op_type: bool,
    /// `intr_t` — access interval (temporal reuse).
    pub interval: bool,
    /// `cnt_t` — access count (the frequency signal HPS keys on).
    pub count: bool,
    /// `cap_t` — remaining fast-device capacity.
    pub capacity: bool,
    /// `curr_t` — current placement of the requested page.
    pub current: bool,
}

impl FeatureMask {
    /// All six features (the paper's default).
    pub const ALL: FeatureMask = FeatureMask {
        size: true,
        op_type: true,
        interval: true,
        count: true,
        capacity: true,
        current: true,
    };

    /// `rt` in Fig. 13: request size only — the single feature CDE-style
    /// heuristics use (randomness).
    pub const RT: FeatureMask = FeatureMask {
        size: true,
        op_type: false,
        interval: false,
        count: false,
        capacity: false,
        current: false,
    };

    /// `ft` in Fig. 13: access count only — the single feature HPS-style
    /// heuristics use (frequency).
    pub const FT: FeatureMask = FeatureMask {
        size: false,
        op_type: false,
        interval: false,
        count: true,
        capacity: false,
        current: false,
    };

    /// `rt + ft`.
    pub const RT_FT: FeatureMask = FeatureMask {
        size: true,
        count: true,
        op_type: false,
        interval: false,
        capacity: false,
        current: false,
    };

    /// `rt + ft + mt` (adds the access-interval temporal feature).
    pub const RT_FT_MT: FeatureMask = FeatureMask {
        size: true,
        count: true,
        interval: true,
        op_type: false,
        capacity: false,
        current: false,
    };

    /// `rt + ft + pt` (adds the current-placement feature).
    pub const RT_FT_PT: FeatureMask = FeatureMask {
        size: true,
        count: true,
        current: true,
        op_type: false,
        interval: false,
        capacity: false,
    };

    /// Number of unmasked features (of the base six).
    pub fn active_count(&self) -> usize {
        [
            self.size,
            self.op_type,
            self.interval,
            self.count,
            self.capacity,
            self.current,
        ]
        .iter()
        .filter(|&&b| b)
        .count()
    }
}

impl Default for FeatureMask {
    fn default() -> Self {
        FeatureMask::ALL
    }
}

/// Bin counts from Table 1.
pub mod bins {
    /// `size_t`: 8 bins.
    pub const SIZE: u32 = 8;
    /// `type_t`: 2 bins.
    pub const TYPE: u32 = 2;
    /// `intr_t`: 64 bins.
    pub const INTERVAL: u32 = 64;
    /// `cnt_t`: 64 bins.
    pub const COUNT: u32 = 64;
    /// `cap_t`: 8 bins.
    pub const CAPACITY: u32 = 8;
    /// `curr_t`: 2 bins (one per device in a dual HSS).
    pub const CURRENT: u32 = 2;
}

/// One observation: the normalized network input plus the packed 40-bit
/// state encoding of Table 1 (8+4+8+8+8+4 bits).
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Normalized feature vector fed to the network. Length is
    /// `6 + extra_capacity_features` (0 for dual HSS).
    pub vector: Vec<f32>,
    /// Table 1's packed bit encoding (40 bits used).
    pub packed: u64,
}

/// Encodes requests plus manager state into observations.
#[derive(Debug, Clone)]
pub struct StateEncoder {
    mask: FeatureMask,
    num_devices: usize,
}

impl StateEncoder {
    /// Creates an encoder for an HSS with `num_devices` devices.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices < 2`.
    pub fn new(mask: FeatureMask, num_devices: usize) -> Self {
        assert!(num_devices >= 2, "StateEncoder: need at least two devices");
        StateEncoder { mask, num_devices }
    }

    /// The length of the observation vector this encoder produces:
    /// the six Table 1 features plus one remaining-capacity feature per
    /// additional middle device in a tri-or-more HSS (§8.7).
    pub fn observation_len(&self) -> usize {
        6 + (self.num_devices - 2)
    }

    /// Builds the observation for `req` against current system state.
    pub fn observe(&self, req: &IoRequest, manager: &StorageManager) -> Observation {
        let tracker = manager.tracker();
        let size_bin = Self::size_bin(req.size_pages);
        let type_bin = u32::from(req.op.is_write());
        let interval_bin = Self::interval_bin(tracker.access_interval(req.lpn));
        let count_bin = Self::count_bin(tracker.access_count(req.lpn));
        let cap_bin = Self::capacity_bin(manager.remaining_fraction(DeviceId(0)));
        let curr_dev = manager
            .residency(req.lpn)
            .unwrap_or_else(|| manager.slowest())
            .0 as u32;

        let mut vector = Vec::with_capacity(self.observation_len());
        let m = &self.mask;
        vector.push(if m.size {
            norm(size_bin, bins::SIZE)
        } else {
            0.0
        });
        vector.push(if m.op_type {
            norm(type_bin, bins::TYPE)
        } else {
            0.0
        });
        vector.push(if m.interval {
            norm(interval_bin, bins::INTERVAL)
        } else {
            0.0
        });
        vector.push(if m.count {
            norm(count_bin, bins::COUNT)
        } else {
            0.0
        });
        vector.push(if m.capacity {
            norm(cap_bin, bins::CAPACITY)
        } else {
            0.0
        });
        vector.push(if m.current {
            norm(curr_dev, self.num_devices as u32)
        } else {
            0.0
        });
        // §8.7: extending to N devices adds the remaining capacity of each
        // intermediate device as a state feature.
        for d in 1..self.num_devices - 1 {
            let frac = manager.remaining_fraction(DeviceId(d));
            vector.push(if m.capacity {
                norm(Self::capacity_bin(frac), bins::CAPACITY)
            } else {
                0.0
            });
        }

        // Table 1 packed encoding: 8 + 4 + 8 + 8 + 8 + 4 = 40 bits.
        let packed = (size_bin as u64) << 32
            | (type_bin as u64) << 28
            | (interval_bin as u64) << 20
            | (count_bin as u64) << 12
            | (cap_bin as u64) << 4
            | (curr_dev as u64 & 0xF);

        Observation { vector, packed }
    }

    /// `size_t`: log₂ bins over 1..=64 pages → 0..=7.
    fn size_bin(size_pages: u32) -> u32 {
        (32 - (size_pages.max(1)).leading_zeros() - 1).min(bins::SIZE - 1)
    }

    /// `intr_t`: log-scaled interval (requests) → 0..=63; never-accessed
    /// maps to the top bin.
    fn interval_bin(interval: Option<u64>) -> u32 {
        match interval {
            None => bins::INTERVAL - 1,
            Some(i) => {
                let l = (1.0 + i as f64).log2() * 3.0;
                (l as u32).min(bins::INTERVAL - 1)
            }
        }
    }

    /// `cnt_t`: log-scaled access count → 0..=63.
    fn count_bin(count: u64) -> u32 {
        let l = (1.0 + count as f64).log2() * 6.0;
        (l as u32).min(bins::COUNT - 1)
    }

    /// `cap_t`: linear bins over the remaining fraction → 0..=7.
    fn capacity_bin(remaining_fraction: f64) -> u32 {
        ((remaining_fraction * bins::CAPACITY as f64) as u32).min(bins::CAPACITY - 1)
    }
}

#[inline]
fn norm(bin: u32, n_bins: u32) -> f32 {
    if n_bins <= 1 {
        0.0
    } else {
        bin as f32 / (n_bins - 1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::{DeviceSpec, HssConfig, StorageManager};
    use sibyl_trace::IoOp;

    fn manager() -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![64, u64::MAX]);
        StorageManager::new(&cfg)
    }

    #[test]
    fn observation_has_six_features_for_dual() {
        let enc = StateEncoder::new(FeatureMask::ALL, 2);
        assert_eq!(enc.observation_len(), 6);
        let mgr = manager();
        let req = IoRequest::new(0, 5, 4, IoOp::Write);
        let obs = enc.observe(&req, &mgr);
        assert_eq!(obs.vector.len(), 6);
        assert!(obs.vector.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn tri_hss_gets_seventh_capacity_feature() {
        let enc = StateEncoder::new(FeatureMask::ALL, 3);
        assert_eq!(enc.observation_len(), 7);
        let cfg = HssConfig::tri(
            DeviceSpec::optane_ssd(),
            DeviceSpec::tlc_ssd(),
            DeviceSpec::hdd(),
        )
        .with_capacity_pages(vec![32, 64, u64::MAX]);
        let mgr = StorageManager::new(&cfg);
        let req = IoRequest::new(0, 5, 1, IoOp::Read);
        let obs = enc.observe(&req, &mgr);
        assert_eq!(obs.vector.len(), 7);
    }

    #[test]
    fn packed_encoding_fits_40_bits() {
        let enc = StateEncoder::new(FeatureMask::ALL, 2);
        let mgr = manager();
        let req = IoRequest::new(0, 5, 64, IoOp::Write);
        let obs = enc.observe(&req, &mgr);
        assert!(obs.packed < (1u64 << 40), "packed state exceeds 40 bits");
    }

    #[test]
    fn size_bins_are_logarithmic() {
        assert_eq!(StateEncoder::size_bin(1), 0);
        assert_eq!(StateEncoder::size_bin(2), 1);
        assert_eq!(StateEncoder::size_bin(4), 2);
        assert_eq!(StateEncoder::size_bin(64), 6);
    }

    #[test]
    fn interval_bins_saturate() {
        assert_eq!(StateEncoder::interval_bin(None), 63);
        assert_eq!(StateEncoder::interval_bin(Some(0)), 0);
        assert!(StateEncoder::interval_bin(Some(10)) > 0);
        assert_eq!(StateEncoder::interval_bin(Some(u64::MAX / 2)), 63);
    }

    #[test]
    fn count_bins_monotone() {
        let mut prev = 0;
        for c in [0u64, 1, 3, 10, 100, 10_000, 1_000_000] {
            let b = StateEncoder::count_bin(c);
            assert!(b >= prev, "count bins must be monotone");
            prev = b;
        }
        assert_eq!(StateEncoder::count_bin(u64::MAX / 2), 63);
    }

    #[test]
    fn masked_features_are_zeroed() {
        let enc = StateEncoder::new(FeatureMask::RT, 2);
        let mut mgr = manager();
        // Touch the page so count/interval would be non-zero if unmasked.
        let _ = mgr.access(&IoRequest::new(0, 5, 4, IoOp::Write), DeviceId(0));
        let req = IoRequest::new(1, 5, 4, IoOp::Write);
        let obs = enc.observe(&req, &mgr);
        assert!(obs.vector[0] > 0.0, "size feature active");
        for (i, v) in obs.vector.iter().enumerate().skip(1) {
            assert_eq!(*v, 0.0, "feature {i} should be masked");
        }
    }

    #[test]
    fn mask_presets_match_fig13() {
        assert_eq!(FeatureMask::ALL.active_count(), 6);
        assert_eq!(FeatureMask::RT.active_count(), 1);
        assert_eq!(FeatureMask::FT.active_count(), 1);
        assert_eq!(FeatureMask::RT_FT.active_count(), 2);
        assert_eq!(FeatureMask::RT_FT_MT.active_count(), 3);
        assert_eq!(FeatureMask::RT_FT_PT.active_count(), 3);
    }

    #[test]
    fn capacity_feature_tracks_fill() {
        let enc = StateEncoder::new(FeatureMask::ALL, 2);
        let mut mgr = manager();
        let req = IoRequest::new(0, 0, 1, IoOp::Read);
        let before = enc.observe(&req, &mgr).vector[4];
        // Fill half the fast device.
        let _ = mgr.access(&IoRequest::new(0, 100, 32, IoOp::Write), DeviceId(0));
        let after = enc.observe(&req, &mgr).vector[4];
        assert!(
            after < before,
            "capacity feature should drop: {before} -> {after}"
        );
    }
}
