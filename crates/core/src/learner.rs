//! The training-side machinery shared by synchronous and background
//! modes: value head (C51 or plain DQN), training network, target
//! network, and the batched update step of Algorithm 1 (lines 16–19).

use rand::rngs::StdRng;
use rand::SeedableRng;

use sibyl_nn::{Activation, Adam, Mlp, Optimizer, Sgd};

use crate::buffer::{Experience, ExperienceBuffer};
use crate::c51::Categorical;
use crate::config::{AgentKind, OptimizerKind, SibylConfig};

/// The value-learning head: distributional (C51) or expectation (DQN).
#[derive(Debug, Clone)]
pub(crate) enum ValueHead {
    C51(Categorical),
    Dqn { n_actions: usize },
}

impl ValueHead {
    pub(crate) fn new(config: &SibylConfig, n_actions: usize) -> Self {
        match config.agent_kind {
            AgentKind::C51 => ValueHead::C51(Categorical::new(
                n_actions,
                config.n_atoms,
                config.v_min,
                config.v_max,
            )),
            AgentKind::Dqn => ValueHead::Dqn { n_actions },
        }
    }

    /// Network outputs this head requires.
    pub(crate) fn n_outputs(&self) -> usize {
        match self {
            ValueHead::C51(c) => c.n_outputs(),
            ValueHead::Dqn { n_actions } => *n_actions,
        }
    }

    /// Per-action Q-values from raw network outputs.
    pub(crate) fn q_values(&self, logits: &[f32]) -> Vec<f32> {
        match self {
            ValueHead::C51(c) => c.q_values(logits),
            ValueHead::Dqn { .. } => logits.to_vec(),
        }
    }

    /// Greedy action.
    pub(crate) fn best_action(&self, logits: &[f32]) -> usize {
        // sibyl-lint: allow(unwrap-in-lib) -- invariant: q_values always returns n_actions > 0 entries
        sibyl_nn::argmax(&self.q_values(logits)).expect("at least one action")
    }

    /// Loss and output-gradient for one replayed transition.
    ///
    /// `logits` are the training network's outputs for `obs`;
    /// `next_logits` the *target* (inference) network's outputs for
    /// `next_obs`.
    pub(crate) fn sample_grad(
        &self,
        logits: &[f32],
        action: usize,
        reward: f32,
        next_logits: &[f32],
        gamma: f32,
        grad: &mut Vec<f32>,
    ) -> f32 {
        match self {
            ValueHead::C51(c) => {
                let next_best = c.best_action(next_logits);
                let next_probs = c.action_distribution(next_logits, next_best);
                let target = c.project(reward, gamma, &next_probs);
                c.loss_grad(logits, action, &target, grad)
            }
            ValueHead::Dqn { n_actions } => {
                let max_next = next_logits
                    .iter()
                    .copied()
                    .fold(f32::NEG_INFINITY, f32::max);
                let y = reward + gamma * max_next;
                grad.clear();
                grad.resize(*n_actions, 0.0);
                let err = logits[action] - y;
                grad[action] = 2.0 * err;
                err * err
            }
        }
    }

    /// Batched loss and output-gradient: fills the row-major
    /// `(batch × n_outputs)` `dL/dlogits` matrix and one loss per sample,
    /// with per-row arithmetic identical to [`ValueHead::sample_grad`] —
    /// the head-side half of the batched training step's bit-identity
    /// contract.
    ///
    /// `logits` are the training network's outputs for the sampled
    /// observations, `next_logits` the target network's outputs for the
    /// next observations (both row-major, one row per sample).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn batch_grad(
        &self,
        logits: &[f32],
        actions: &[usize],
        rewards: &[f32],
        next_logits: &[f32],
        gamma: f32,
        grads: &mut Vec<f32>,
        losses: &mut Vec<f32>,
    ) {
        match self {
            ValueHead::C51(c) => {
                c.batch_grad(logits, actions, rewards, next_logits, gamma, grads, losses);
            }
            ValueHead::Dqn { n_actions } => {
                let batch = actions.len();
                let width = *n_actions;
                assert_eq!(logits.len(), batch * width, "logit matrix shape mismatch");
                assert_eq!(
                    next_logits.len(),
                    batch * width,
                    "next-logit matrix shape mismatch"
                );
                assert_eq!(rewards.len(), batch, "reward count mismatch");
                grads.clear();
                grads.resize(batch * width, 0.0);
                losses.clear();
                let mut row_grad = Vec::new();
                for i in 0..batch {
                    let loss = self.sample_grad(
                        &logits[i * width..(i + 1) * width],
                        actions[i],
                        rewards[i],
                        &next_logits[i * width..(i + 1) * width],
                        gamma,
                        &mut row_grad,
                    );
                    grads[i * width..(i + 1) * width].copy_from_slice(&row_grad);
                    losses.push(loss);
                }
            }
        }
    }
}

/// Owns the training network, the bootstrap target network, the replay
/// buffer, and the optimizer; executes training steps.
///
/// This is the reusable half of the agent: [`SibylAgent`](crate::SibylAgent)
/// wraps it for data placement, and `sibyl-migrate`'s second RL agent
/// (the Harmonia-style background-migration policy) reuses it unchanged
/// with its own action space and feature vector — construct it with a
/// [`SibylConfig`] carrying the desired network/replay hyper-parameters
/// and any `n_actions`/`obs_len`.
#[derive(Debug)]
pub struct Learner {
    head: ValueHead,
    train_net: Mlp,
    /// Bootstrap target — kept in lockstep with the published inference
    /// weights (the paper's inference network doubles as the stable
    /// target between syncs).
    target_net: Mlp,
    opt: Box<dyn Optimizer + Send>,
    pub(crate) buffer: ExperienceBuffer,
    rng: StdRng,
    discount: f32,
    batch_size: usize,
    batches_per_step: usize,
    pub(crate) train_steps: u64,
    /// Wall-clock nanoseconds spent inside [`Learner::train_step`]
    /// (telemetry; excluded from determinism comparisons — see
    /// [`AgentStats::train_ns`](crate::AgentStats::train_ns)).
    pub(crate) train_ns: u64,
    /// Test hook: route [`Learner::train_step`] through the pre-refactor
    /// per-sample reference implementation so golden tests can compare
    /// the two paths through identical public machinery.
    #[cfg(test)]
    pub(crate) use_reference_train: bool,
}

impl Learner {
    /// Creates a learner for `n_actions` actions over `obs_len`-feature
    /// observations, with networks, optimizer, replay buffer, and RNG
    /// derived from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid
    /// (see [`SibylConfig::validate`]).
    pub fn new(config: &SibylConfig, n_actions: usize, obs_len: usize) -> Self {
        config.validate();
        let head = ValueHead::new(config, n_actions);
        let dims = [
            obs_len,
            config.hidden_dims[0],
            config.hidden_dims[1],
            head.n_outputs(),
        ];
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7EA1);
        let train_net = Mlp::new(&dims, Activation::Swish, Activation::Linear, &mut rng);
        let mut target_net = Mlp::new(&dims, Activation::Swish, Activation::Linear, &mut rng);
        target_net.copy_weights_from(&train_net);
        let opt: Box<dyn Optimizer + Send> = match config.optimizer {
            OptimizerKind::Adam => Box::new(Adam::new(config.learning_rate)),
            OptimizerKind::Sgd => Box::new(Sgd::new(config.learning_rate)),
        };
        Learner {
            head,
            train_net,
            target_net,
            opt,
            buffer: ExperienceBuffer::new(config.buffer_capacity),
            rng: StdRng::seed_from_u64(config.seed ^ 0x5A3B),
            discount: config.discount,
            batch_size: config.batch_size,
            batches_per_step: config.batches_per_step,
            train_steps: 0,
            train_ns: 0,
            #[cfg(test)]
            use_reference_train: false,
        }
    }

    #[cfg(test)]
    pub(crate) fn head(&self) -> &ValueHead {
        &self.head
    }

    /// Stores one transition.
    pub fn push(&mut self, exp: Experience) {
        self.buffer.push(exp);
    }

    /// Stores one foreign transition with an importance `weight` in
    /// `[0, 1]` that scales its loss and gradient contribution whenever
    /// it is sampled (1.0 behaves exactly like [`Learner::push`]).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not in `[0, 1]`.
    pub fn push_weighted(&mut self, exp: Experience, weight: f32) {
        assert!(
            (0.0..=1.0).contains(&weight),
            "push_weighted: weight must be in [0, 1]"
        );
        self.buffer.push_weighted(exp, weight);
    }

    /// Training steps completed so far.
    pub fn train_steps(&self) -> u64 {
        self.train_steps
    }

    /// One training step: `batches_per_step` batches of `batch_size`
    /// replayed transitions, SGD with mean gradients, then a target-net
    /// refresh. Returns the mean loss, or `None` when the buffer is
    /// empty.
    ///
    /// The step is batched end to end: per replay batch, sampling
    /// borrows the selected experiences by index (no clones), target-net
    /// inference runs through one [`Mlp::infer_batch`] pass, the head
    /// produces the whole `dL/dlogits` matrix with one
    /// `ValueHead::batch_grad` call, and the training network does one
    /// [`Mlp::forward_batch`] + one [`Mlp::backward_batch`] — every
    /// weight matrix streams once per *batch* instead of once per
    /// *sample*. The results are bit-identical to the per-sample loop
    /// this replaced (kept as `train_step_reference` under `cfg(test)`
    /// and pinned by golden tests): RNG draws, per-element gradient
    /// accumulation order, and the loss-sum order are all unchanged.
    ///
    /// Sampled transitions carrying an importance weight below 1.0
    /// ([`Learner::push_weighted`]) have their loss and output-gradient
    /// rows scaled by that weight before backpropagation; weight-1.0
    /// transitions take the exact unscaled path, so a buffer holding only
    /// local experiences trains bit-identically to one predating the
    /// weighting mechanism.
    pub fn train_step(&mut self) -> Option<f32> {
        #[cfg(test)]
        if self.use_reference_train {
            return self.train_step_reference();
        }
        if self.buffer.is_empty() {
            return None;
        }
        // sibyl-lint: allow(wallclock-in-logic) -- train_ns telemetry only: the duration is reported, never fed back into decisions
        let started = std::time::Instant::now();
        let mut total_loss = 0.0f32;
        let mut total_samples = 0usize;
        let mut grads = Vec::new();
        let mut losses = Vec::new();
        let mut actions = Vec::new();
        let mut rewards = Vec::new();
        let mut obs_flat = Vec::new();
        let mut next_obs_flat = Vec::new();
        for _ in 0..self.batches_per_step {
            let indices = self.buffer.sample_indices(self.batch_size, &mut self.rng);
            let n = indices.len();
            obs_flat.clear();
            next_obs_flat.clear();
            actions.clear();
            rewards.clear();
            for &idx in &indices {
                let exp = self.buffer.get(idx);
                obs_flat.extend_from_slice(&exp.obs);
                next_obs_flat.extend_from_slice(&exp.next_obs);
                actions.push(exp.action);
                rewards.push(exp.reward);
            }
            let next_logits_all = self.target_net.infer_batch(&next_obs_flat, n);
            self.train_net.zero_grad();
            let logits_all = self.train_net.forward_batch(&obs_flat, n);
            self.head.batch_grad(
                &logits_all,
                &actions,
                &rewards,
                &next_logits_all,
                self.discount,
                &mut grads,
                &mut losses,
            );
            // Importance weighting: scale each down-weighted sample's
            // gradient row and loss. Weight-1.0 rows are left untouched
            // (not multiplied), preserving bit-identity for buffers that
            // hold only local experiences.
            let width = grads.len() / n.max(1);
            for (row, &idx) in indices.iter().enumerate() {
                let w = self.buffer.weight(idx);
                if w != 1.0 {
                    for g in &mut grads[row * width..(row + 1) * width] {
                        *g *= w;
                    }
                    losses[row] *= w;
                }
            }
            // Sum per-sample losses in sample order so the running total
            // accumulates exactly like the per-sample loop did.
            for &loss in &losses {
                total_loss += loss;
                total_samples += 1;
            }
            self.train_net.backward_batch(&grads, n);
            self.train_net
                .apply_grads(&mut *self.opt, 1.0 / n.max(1) as f32);
        }
        // Refresh the bootstrap target to the just-trained weights; the
        // agent copies the same weights into its inference network
        // (Algorithm 1 line 19).
        self.target_net.copy_weights_from(&self.train_net);
        self.train_steps += 1;
        self.train_ns += started.elapsed().as_nanos() as u64;
        Some(total_loss / total_samples.max(1) as f32)
    }

    /// The pre-refactor per-sample training step, kept verbatim as the
    /// golden reference the batched [`Learner::train_step`] is pinned
    /// against: one `forward`/`backward` pass per sampled transition,
    /// experiences cloned out of the buffer. Living behind `cfg(test)`
    /// keeps it compiled (it cannot rot) without shipping the slow path.
    #[cfg(test)]
    pub(crate) fn train_step_reference(&mut self) -> Option<f32> {
        if self.buffer.is_empty() {
            return None;
        }
        let mut total_loss = 0.0f32;
        let mut total_samples = 0usize;
        let mut grad = Vec::new();
        let mut next_obs_flat = Vec::new();
        for _ in 0..self.batches_per_step {
            // Collect owned samples so the buffer borrow ends before the
            // mutable network passes.
            let samples: Vec<Experience> = self
                .buffer
                .sample(self.batch_size, &mut self.rng)
                .into_iter()
                .cloned()
                .collect();
            next_obs_flat.clear();
            for exp in &samples {
                next_obs_flat.extend_from_slice(&exp.next_obs);
            }
            let out_dim = self.target_net.out_dim();
            let next_logits_all = self.target_net.infer_batch(&next_obs_flat, samples.len());
            self.train_net.zero_grad();
            for (i, exp) in samples.iter().enumerate() {
                let next_logits = &next_logits_all[i * out_dim..(i + 1) * out_dim];
                let logits = self.train_net.forward(&exp.obs);
                let loss = self.head.sample_grad(
                    &logits,
                    exp.action,
                    exp.reward,
                    next_logits,
                    self.discount,
                    &mut grad,
                );
                total_loss += loss;
                total_samples += 1;
                self.train_net.backward(&grad);
            }
            self.train_net
                .apply_grads(&mut *self.opt, 1.0 / samples.len().max(1) as f32);
        }
        self.target_net.copy_weights_from(&self.train_net);
        self.train_steps += 1;
        Some(total_loss / total_samples.max(1) as f32)
    }

    /// A snapshot of the current training weights for publication to the
    /// inference network.
    pub fn weights_snapshot(&self) -> Mlp {
        self.train_net.clone()
    }

    /// Flat training-network parameters (weights then biases, layer by
    /// layer) — the agent's contribution to cooperative weight averaging.
    pub fn flat_params(&self) -> Vec<f32> {
        self.train_net.flat_params()
    }

    /// Overwrites the training network *and* the bootstrap target with
    /// `params`, so the next training step bootstraps from the adopted
    /// (e.g. federated-averaged) weights rather than chasing stale ones.
    /// Optimizer state (Adam moments) is kept.
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` differs from the network's parameter
    /// count.
    pub fn set_flat_params(&mut self, params: &[f32]) {
        self.train_net.set_flat_params(params);
        self.target_net.set_flat_params(params);
    }

    /// Changes the learning rate online (Sibyl_Opt retuning, §8.3).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.opt.set_learning_rate(lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SibylConfig {
        SibylConfig {
            batch_size: 16,
            batches_per_step: 2,
            buffer_capacity: 64,
            learning_rate: 0.01,
            n_atoms: 11,
            ..Default::default()
        }
    }

    fn exp(obs: f32, action: usize, reward: f32) -> Experience {
        Experience {
            obs: vec![obs; 6],
            action,
            reward,
            next_obs: vec![obs; 6],
        }
    }

    #[test]
    fn head_output_counts() {
        let c = config();
        assert_eq!(ValueHead::new(&c, 2).n_outputs(), 22);
        let d = SibylConfig {
            agent_kind: AgentKind::Dqn,
            ..config()
        };
        assert_eq!(ValueHead::new(&d, 2).n_outputs(), 2);
        assert_eq!(ValueHead::new(&d, 3).n_outputs(), 3);
    }

    #[test]
    fn dqn_grad_targets_bellman_value() {
        let head = ValueHead::Dqn { n_actions: 2 };
        let mut grad = Vec::new();
        // Q(s, a0) = 1.0; best next Q = 2.0; r = 0.5; γ = 0.5 → y = 1.5.
        let loss = head.sample_grad(&[1.0, 0.0], 0, 0.5, &[2.0, 1.0], 0.5, &mut grad);
        assert!((loss - 0.25).abs() < 1e-6); // (1.0 - 1.5)²
        assert!((grad[0] + 1.0).abs() < 1e-6); // 2(q - y) = -1
        assert_eq!(grad[1], 0.0);
    }

    #[test]
    fn training_learns_action_preference() {
        // Action 1 always earns reward 1, action 0 earns 0. After
        // training, Q(s, 1) should dominate for the C51 head.
        let cfg = SibylConfig {
            learning_rate: 0.05,
            ..config()
        };
        let mut l = Learner::new(&cfg, 2, 6);
        for i in 0..64 {
            let a = i % 2;
            l.push(exp(0.5 + (i as f32) * 1e-4, a, a as f32));
        }
        for _ in 0..200 {
            l.train_step().expect("buffer non-empty");
        }
        let logits = l.weights_snapshot().infer(&[0.5; 6]);
        let q = l.head().q_values(&logits);
        assert!(q[1] > q[0] + 0.3, "Q should prefer rewarded action: {q:?}");
    }

    #[test]
    fn dqn_training_learns_action_preference() {
        let cfg = SibylConfig {
            agent_kind: AgentKind::Dqn,
            learning_rate: 0.005,
            ..config()
        };
        let mut l = Learner::new(&cfg, 2, 6);
        for i in 0..64 {
            let a = i % 2;
            l.push(exp(0.5 + (i as f32) * 1e-4, a, a as f32));
        }
        for _ in 0..80 {
            l.train_step();
        }
        let logits = l.weights_snapshot().infer(&[0.5; 6]);
        let q = l.head().q_values(&logits);
        assert!(q[1] > q[0], "DQN should prefer rewarded action: {q:?}");
    }

    #[test]
    fn empty_buffer_skips_training() {
        let mut l = Learner::new(&config(), 2, 6);
        assert!(l.train_step().is_none());
        assert_eq!(l.train_steps, 0);
        assert_eq!(l.train_ns, 0);
    }

    /// The tentpole pin at the learner level: the batched training step
    /// is bit-identical to the pre-refactor per-sample reference — same
    /// losses every step, same weights after many steps — for both head
    /// kinds.
    #[test]
    fn batched_train_step_is_bit_identical_to_reference() {
        for kind in [AgentKind::C51, AgentKind::Dqn] {
            let cfg = SibylConfig {
                agent_kind: kind,
                ..config()
            };
            let mut batched = Learner::new(&cfg, 2, 6);
            let mut reference = Learner::new(&cfg, 2, 6);
            reference.use_reference_train = true;
            for i in 0..64 {
                let e = exp(0.1 + i as f32 * 3e-3, i % 2, (i % 3) as f32 * 0.4);
                batched.push(e.clone());
                reference.push(e);
            }
            for step in 0..30 {
                let a = batched.train_step().expect("buffer non-empty");
                let b = reference.train_step().expect("buffer non-empty");
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{kind:?}: loss diverged at step {step}: {a} vs {b}"
                );
            }
            let wa: Vec<u32> = batched.flat_params().iter().map(|v| v.to_bits()).collect();
            let wb: Vec<u32> = reference
                .flat_params()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(wa, wb, "{kind:?}: weights diverged");
        }
    }

    /// The foreign-weight satellite's core pin: weight 1.0 is
    /// bit-identical to the unweighted push path, and a lower weight
    /// changes training.
    #[test]
    fn foreign_weight_one_is_bit_identical_and_half_is_not() {
        let build = |weight: Option<f32>| {
            let mut l = Learner::new(&config(), 2, 6);
            for i in 0..32 {
                l.push(exp(0.1 + i as f32 * 2e-3, i % 2, (i % 3) as f32 * 0.3));
            }
            // A batch of "foreign" transitions, distinct from the local ones.
            for i in 0..16 {
                let e = exp(0.7 + i as f32 * 2e-3, (i + 1) % 2, 0.9);
                match weight {
                    None => l.push(e),
                    Some(w) => l.push_weighted(e, w),
                }
            }
            for _ in 0..20 {
                l.train_step().expect("buffer non-empty");
            }
            l.flat_params()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u32>>()
        };
        let unweighted = build(None);
        let weight_one = build(Some(1.0));
        let weight_half = build(Some(0.5));
        assert_eq!(
            unweighted, weight_one,
            "weight 1.0 must be bit-identical to plain pushes"
        );
        assert_ne!(
            unweighted, weight_half,
            "down-weighting must change the training trajectory"
        );
    }

    #[test]
    #[should_panic(expected = "weight must be in [0, 1]")]
    fn push_weighted_rejects_out_of_range_weight() {
        let mut l = Learner::new(&config(), 2, 6);
        l.push_weighted(exp(0.1, 0, 0.0), 1.5);
    }

    #[test]
    fn train_step_accumulates_train_ns() {
        let mut l = Learner::new(&config(), 2, 6);
        for i in 0..64 {
            l.push(exp(i as f32 / 64.0, i % 2, (i % 2) as f32));
        }
        l.train_step().unwrap();
        assert!(l.train_ns > 0, "training time must be accounted");
    }

    #[test]
    fn training_reduces_loss_over_steps() {
        let cfg = config();
        let mut l = Learner::new(&cfg, 2, 6);
        for i in 0..64 {
            l.push(exp(i as f32 / 64.0, i % 2, (i % 2) as f32));
        }
        let first = l.train_step().unwrap();
        let mut last = first;
        for _ in 0..40 {
            last = l.train_step().unwrap();
        }
        assert!(last < first, "loss should fall: {first} -> {last}");
    }
}
