//! # sibyl-core
//!
//! Sibyl: adaptive and extensible data placement in hybrid storage
//! systems using online reinforcement learning — the paper's primary
//! contribution (Singh et al., ISCA 2022).
//!
//! The agent formulates data placement as an RL problem (§5):
//!
//! - **State** ([`features`]): six binned features per request — request
//!   size, type, access interval, access count, remaining fast capacity,
//!   and current placement (Table 1) — packed into 40 bits and normalized
//!   for the network.
//! - **Action**: the device to place the request's pages on; extending to
//!   `N ≥ 3` devices adds outputs and capacity features (§8.7).
//! - **Reward** ([`RewardShaper`]): `1/L_t`, penalized by `0.001·L_e` on
//!   eviction (Eq. 1), scaled to a stable support range.
//! - **Learning** ([`Categorical`]): a C51 categorical DQN
//!   over a 6-20-30-|A| swish network, trained from a 1000-entry
//!   deduplicated [`ExperienceBuffer`] — 8 batches of 128 every 1000
//!   requests, with training→inference weight copies (Algorithm 1).
//! - **Two-thread design** ([`SibylAgent`] with
//!   [`TrainingMode::Background`]): training runs on a background thread
//!   and never blocks placement decisions (Fig. 7(a)).
//!
//! [`SibylAgent`] implements [`sibyl_hss::PlacementPolicy`], so it drops
//! into the same driver loop as every baseline.
//!
//! ## Example
//!
//! ```rust
//! use sibyl_core::{SibylAgent, SibylConfig};
//! use sibyl_hss::{DeviceSpec, HssConfig, PlacementContext, PlacementPolicy, StorageManager};
//! use sibyl_trace::{IoOp, IoRequest};
//!
//! let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
//!     .with_capacity_pages(vec![64, u64::MAX]);
//! let mut hss = StorageManager::new(&cfg);
//! let mut sibyl = SibylAgent::new(SibylConfig::default());
//!
//! let req = IoRequest::new(0, 42, 4, IoOp::Write);
//! let target = {
//!     let ctx = PlacementContext { manager: &hss, seq: 0 };
//!     sibyl.place(&req, &ctx)
//! };
//! let outcome = hss.access(&req, target);
//! let ctx = PlacementContext { manager: &hss, seq: 0 };
//! sibyl.feedback(&req, &outcome, &ctx);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod agent;
mod buffer;
mod c51;
mod config;
pub mod features;
mod learner;
pub mod overhead;
mod reward;
mod trainer;

pub use agent::{AgentStats, RlProbe, SibylAgent};
pub use buffer::{Experience, ExperienceBuffer};
pub use c51::Categorical;
pub use config::{AgentKind, OptimizerKind, QuantMode, RewardKind, SibylConfig, TrainingMode};
pub use features::{FeatureMask, Observation, StateEncoder};
pub use learner::Learner;
pub use overhead::OverheadReport;
pub use reward::RewardShaper;
// Convenience re-exports: `SibylConfig.telemetry` is of these types.
pub use sibyl_telemetry::{TelemetryConfig, TelemetryLevel};
