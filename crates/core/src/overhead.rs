//! Overhead accounting — the paper's §10.
//!
//! The paper counts, for the 6-20-30-2 network: 780 weights, 780 MACs per
//! inference, 1,597,440 MACs per training step, a 40-bit state entry, a
//! 100-bit experience, and a total storage overhead of 124.4 KiB (two
//! networks at 12.2 KiB each plus a 100 KiB experience buffer).
//!
//! Note on units: the paper's arithmetic is internally consistent in
//! *kilobits* (780 × 16 bits = 12.2 Kbit; 1000 × 100 bits = 100 Kbit)
//! but prints the totals as "KiB". [`OverheadReport`] reproduces the
//! paper's printed numbers via [`OverheadReport::paper_accounting_kib`]
//! and also reports strict bytes.

use serde::{Deserialize, Serialize};

use crate::config::{AgentKind, SibylConfig};

/// Bits per stored state entry (Table 1: 8+4+8+8+8+4).
pub const STATE_BITS: usize = 40;
/// Bits per action in the experience tuple (§6.2.1's relaxed encoding).
pub const ACTION_BITS: usize = 4;
/// Bits per reward (half-precision float).
pub const REWARD_BITS: usize = 16;
/// Bits per experience ⟨state, action, reward, next-state⟩ (§6.2.1: 100).
pub const EXPERIENCE_BITS: usize = 2 * STATE_BITS + ACTION_BITS + REWARD_BITS;

/// Static overhead description of a Sibyl instantiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Network weights (excluding biases, as §10.1 counts).
    pub weights: usize,
    /// Weights plus biases.
    pub parameters: usize,
    /// Multiply-accumulates per inference.
    pub inference_macs: usize,
    /// Multiply-accumulates per training step
    /// (`batches × batch_size × inference_macs` for forward, doubled for
    /// backward in our implementation; the paper counts the forward pass
    /// only).
    pub training_step_macs_forward: usize,
    /// Experience-buffer capacity.
    pub buffer_entries: usize,
    /// Strict bytes: two f16 networks + buffer + per-page metadata are
    /// *not* included (that scales with footprint; see
    /// [`OverheadReport::metadata_bytes_for_pages`]).
    pub total_bytes: usize,
}

impl OverheadReport {
    /// Builds the report for a configuration with `n_actions` devices and
    /// `obs_len` observation features.
    pub fn for_config(config: &SibylConfig, n_actions: usize, obs_len: usize) -> Self {
        let outputs = match config.agent_kind {
            AgentKind::C51 => n_actions * config.n_atoms,
            AgentKind::Dqn => n_actions,
        };
        let dims = [
            obs_len,
            config.hidden_dims[0],
            config.hidden_dims[1],
            outputs,
        ];
        let weights: usize = dims.windows(2).map(|w| w[0] * w[1]).sum();
        let biases: usize = dims[1..].iter().sum();
        let inference_macs = weights;
        let training_step_macs_forward =
            config.batches_per_step * config.batch_size * inference_macs;
        // Two networks (training + inference) in half precision, plus the
        // experience buffer.
        let network_bytes = 2 * 2 * (weights + biases);
        let buffer_bytes = config.buffer_capacity * EXPERIENCE_BITS / 8;
        OverheadReport {
            weights,
            parameters: weights + biases,
            inference_macs,
            training_step_macs_forward,
            buffer_entries: config.buffer_capacity,
            total_bytes: network_bytes + buffer_bytes,
        }
    }

    /// The paper's §10 network shape: a DQN-style head with one output
    /// neuron per action (6-20-30-2 for a dual HSS), which yields the
    /// published numbers exactly.
    pub fn paper_network(n_actions: usize) -> Self {
        let config = SibylConfig {
            agent_kind: AgentKind::Dqn,
            ..Default::default()
        };
        Self::for_config(&config, n_actions, 6)
    }

    /// Reproduces the paper's published "KiB" figures (which are
    /// kilobit-consistent, see module docs): returns
    /// `(per_network, buffer, total)` as printed in §10.2 —
    /// (12.2, 100.0, 124.4) for the dual-HSS configuration.
    pub fn paper_accounting_kib(&self) -> (f64, f64, f64) {
        let per_network = (self.weights * 16) as f64 / 1024.0;
        let buffer = (self.buffer_entries * EXPERIENCE_BITS) as f64 / 1000.0;
        (per_network, buffer, 2.0 * per_network + buffer)
    }

    /// Per-page placement metadata in bytes for a working set of
    /// `pages` pages (§10.2: 40 bits = 5 bytes per 4 KiB page, ≈ 0.1 %
    /// of capacity).
    pub fn metadata_bytes_for_pages(pages: u64) -> u64 {
        pages * STATE_BITS as u64 / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experience_is_100_bits() {
        assert_eq!(EXPERIENCE_BITS, 100);
    }

    #[test]
    fn paper_network_has_780_weights_and_macs() {
        let r = OverheadReport::paper_network(2);
        assert_eq!(r.weights, 780);
        assert_eq!(r.inference_macs, 780);
        // §10.1: 8 batches × 128 × 780 MACs ≈ 798,720 forward MACs
        // (the paper's 1,597,440 counts forward+backward).
        assert_eq!(r.training_step_macs_forward, 798_720);
        assert_eq!(2 * r.training_step_macs_forward, 1_597_440);
    }

    #[test]
    fn paper_accounting_reproduces_124_4_kib() {
        let r = OverheadReport::paper_network(2);
        let (net, buf, total) = r.paper_accounting_kib();
        assert!((net - 12.19).abs() < 0.05, "per-network {net}");
        assert!((buf - 100.0).abs() < 0.01, "buffer {buf}");
        assert!((total - 124.4).abs() < 0.1, "total {total}");
    }

    #[test]
    fn tri_hss_adds_one_output_and_feature() {
        let config = SibylConfig {
            agent_kind: AgentKind::Dqn,
            ..Default::default()
        };
        let r = OverheadReport::for_config(&config, 3, 7);
        // 7·20 + 20·30 + 30·3 = 140 + 600 + 90
        assert_eq!(r.weights, 830);
    }

    #[test]
    fn metadata_cost_is_5_bytes_per_page() {
        assert_eq!(OverheadReport::metadata_bytes_for_pages(1), 5);
        // ~0.1% of a 4 KiB page.
        let frac = 5.0 / 4096.0;
        assert!(frac < 0.0013);
    }

    #[test]
    fn c51_head_is_larger_than_dqn_head() {
        let c51 = OverheadReport::for_config(&SibylConfig::default(), 2, 6);
        let dqn = OverheadReport::paper_network(2);
        assert!(c51.weights > dqn.weights);
        assert!(c51.total_bytes > 0);
    }
}
