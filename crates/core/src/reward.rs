//! Sibyl's reward structure (Eq. 1) and the §11 alternatives.
//!
//! After each placement the agent receives
//!
//! ```text
//! R = 1 / L_t                      if no eviction occurred
//! R = max(0, 1/L_t − 0.001·L_e)    if the placement forced an eviction
//! ```
//!
//! where `L_t` is the served request latency and `L_e` the time spent
//! evicting. The reward is scaled by the fast device's minimum service
//! time so the best achievable per-step reward is ≈ 1 regardless of the
//! device configuration, which pins the C51 value support to a stable
//! range (`[0, v_max]` with `v_max = 1/(1−γ)` at γ = 0.9).

use serde::{Deserialize, Serialize};

use sibyl_hss::AccessOutcome;

use crate::config::RewardKind;

/// Computes scaled rewards from access outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardShaper {
    kind: RewardKind,
    /// Eq. 1's penalty coefficient (0.001 in the paper).
    penalty_coeff: f64,
    /// Scale factor: the fast device's minimum 1-page read service time
    /// in µs, making `scale / L_t ≤ ~1`.
    scale_us: f64,
    /// Clamp penalized rewards at zero (the paper's exact Eq. 1) instead
    /// of letting them go negative (our default; see
    /// `SibylConfig::clamp_eviction_reward`).
    clamp: bool,
    /// Floor for unclamped penalized rewards (the C51 support's v_min).
    floor: f64,
}

/// Upper bound on a single-step latency reward. The scaling aims for a
/// best-case reward of ≈ 1; this cap absorbs sub-minimum-service
/// latencies (well inside the default C51 support of `[-1, 4]`).
pub const REWARD_CAP: f64 = 1.5;

impl RewardShaper {
    /// Creates a shaper. `scale_us` should be the fastest device's
    /// minimum service time (`DeviceSpec::min_read_service_us`).
    /// `clamp` selects the paper-exact `max(0, ·)` eviction branch;
    /// `floor` bounds unclamped penalties.
    ///
    /// # Panics
    ///
    /// Panics if `scale_us` is not positive or `penalty_coeff` is
    /// negative.
    pub fn new(
        kind: RewardKind,
        penalty_coeff: f64,
        scale_us: f64,
        clamp: bool,
        floor: f64,
    ) -> Self {
        assert!(scale_us > 0.0, "RewardShaper: scale must be positive");
        assert!(
            penalty_coeff >= 0.0,
            "RewardShaper: penalty must be non-negative"
        );
        RewardShaper {
            kind,
            penalty_coeff,
            scale_us,
            clamp,
            floor: floor.min(0.0),
        }
    }

    /// The reward for one request outcome.
    pub fn reward(&self, outcome: &AccessOutcome) -> f32 {
        match self.kind {
            RewardKind::RequestLatency => {
                // Eq. 1, scaled by `scale_us` (positive scaling preserves
                // the max(0, ·) semantics).
                let base = self.scale_us / outcome.latency_us.max(1e-3);
                if outcome.caused_eviction() {
                    let penalty = self.penalty_coeff * outcome.eviction_us * self.scale_us;
                    let lower = if self.clamp { 0.0 } else { self.floor };
                    // Capped like the no-eviction branch: a lightly
                    // penalized ultra-fast access gets no special ceiling.
                    (base - penalty).max(lower).min(REWARD_CAP) as f32
                } else {
                    base.min(REWARD_CAP) as f32
                }
            }
            RewardKind::HitRate => {
                // §11: reward fast-device hits; blind to latency asymmetry
                // and eviction cost.
                if outcome.target.0 == 0 {
                    1.0
                } else {
                    0.0
                }
            }
            RewardKind::EvictionOnly => {
                // §11: punish evictions only; blind to service latency.
                if outcome.caused_eviction() {
                    -1.0
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::DeviceId;

    fn outcome(latency_us: f64, eviction_us: f64, evicted: u64, target: usize) -> AccessOutcome {
        AccessOutcome {
            target: DeviceId(target),
            arrival_us: 0.0,
            completion_us: latency_us,
            latency_us,
            eviction_us,
            evicted_pages: evicted,
            migrated_pages: 0,
        }
    }

    fn shaper() -> RewardShaper {
        RewardShaper::new(RewardKind::RequestLatency, 0.001, 10.0, true, -1.0)
    }

    #[test]
    fn fast_service_earns_high_reward() {
        let r_fast = shaper().reward(&outcome(10.0, 0.0, 0, 0));
        let r_slow = shaper().reward(&outcome(10_000.0, 0.0, 0, 1));
        assert!(r_fast > 0.9);
        assert!(r_slow < 0.01);
        assert!(r_fast > 100.0 * r_slow);
    }

    #[test]
    fn eviction_penalty_zeroes_large_evictions() {
        // Serving fast but evicting for 1 ms: penalty 0.001·1000·10 = 10 ≫ 1.
        let r = shaper().reward(&outcome(10.0, 1_000.0, 8, 0));
        assert_eq!(r, 0.0);
    }

    #[test]
    fn tiny_evictions_keep_some_reward() {
        // Penalty 0.001·20·10 = 0.2 < base 1.0.
        let r = shaper().reward(&outcome(10.0, 20.0, 1, 0));
        assert!(r > 0.5 && r < 1.0, "r = {r}");
    }

    #[test]
    fn reward_never_negative_for_latency_kind() {
        for le in [0.0, 10.0, 1e5] {
            let evicted = u64::from(le > 0.0);
            let r = shaper().reward(&outcome(50.0, le, evicted, 0));
            assert!(r >= 0.0);
        }
    }

    #[test]
    fn eviction_branch_respects_support_cap() {
        // Latency far below the fast device's minimum service time with a
        // negligible penalty: both branches must cap at REWARD_CAP.
        let evicting = shaper().reward(&outcome(0.1, 0.001, 1, 0));
        let plain = shaper().reward(&outcome(0.1, 0.0, 0, 0));
        assert_eq!(evicting, REWARD_CAP as f32);
        assert_eq!(plain, REWARD_CAP as f32);
    }

    #[test]
    fn hit_rate_kind_ignores_latency() {
        let s = RewardShaper::new(RewardKind::HitRate, 0.001, 10.0, true, -1.0);
        assert_eq!(s.reward(&outcome(1e6, 0.0, 0, 0)), 1.0);
        assert_eq!(s.reward(&outcome(1.0, 0.0, 0, 1)), 0.0);
    }

    #[test]
    fn eviction_only_kind_is_negative_on_eviction() {
        let s = RewardShaper::new(RewardKind::EvictionOnly, 0.001, 10.0, true, -1.0);
        assert_eq!(s.reward(&outcome(10.0, 100.0, 4, 0)), -1.0);
        assert_eq!(s.reward(&outcome(10.0, 0.0, 0, 0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn rejects_bad_scale() {
        let _ = RewardShaper::new(RewardKind::RequestLatency, 0.001, 0.0, true, -1.0);
    }

    #[test]
    fn unclamped_penalty_goes_negative_but_respects_floor() {
        let s = RewardShaper::new(RewardKind::RequestLatency, 0.001, 10.0, false, -1.0);
        // Penalty 0.001·500·10 = 5 ≫ base 1: unclamped lands at the floor.
        let r = s.reward(&outcome(10.0, 500.0, 8, 0));
        assert_eq!(r, -1.0);
        // Moderate eviction: slightly negative, not floored.
        let r2 = s.reward(&outcome(10.0, 150.0, 2, 0));
        assert!(r2 < 0.0 && r2 > -1.0, "r2 = {r2}");
        // Non-evicting rewards are unchanged.
        assert!(s.reward(&outcome(10.0, 0.0, 0, 0)) > 0.9);
    }
}
