//! The background training thread — the paper's two-threaded design
//! (Fig. 7(a)).
//!
//! The *RL decision thread* (the agent inside the storage manager's
//! request path) sends experiences over a channel 7 and keeps serving
//! placements from its inference network 2 . The *RL training thread*
//! consumes experiences 8 , runs training steps 9 , and publishes the
//! updated weights, which the decision thread copies into the inference
//! network 10 — so training never blocks decision-making.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

use sibyl_nn::Mlp;

use crate::buffer::Experience;
use crate::config::SibylConfig;
use crate::learner::Learner;

/// Weights published by the trainer for the decision thread to adopt.
#[derive(Debug)]
pub(crate) struct Published {
    /// Increments at every publication; the decision thread copies only
    /// when it observes a new generation.
    pub generation: u64,
    pub weights: Mlp,
    pub train_steps: u64,
    /// Wall-clock nanoseconds the trainer has spent in training steps.
    pub train_ns: u64,
}

/// Handle owned by the agent's decision side.
#[derive(Debug)]
pub(crate) struct BackgroundTrainer {
    tx: Option<Sender<Experience>>,
    pub(crate) published: Arc<Mutex<Published>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl BackgroundTrainer {
    /// Spawns the training thread.
    pub(crate) fn spawn(config: &SibylConfig, n_actions: usize, obs_len: usize) -> Self {
        let mut learner = Learner::new(config, n_actions, obs_len);
        let published = Arc::new(Mutex::new(Published {
            generation: 0,
            weights: learner.weights_snapshot(),
            train_steps: 0,
            train_ns: 0,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = bounded::<Experience>(4 * config.train_interval as usize);

        let published_thread = Arc::clone(&published);
        let stop_thread = Arc::clone(&stop);
        let train_interval = config.train_interval;
        let handle = std::thread::Builder::new()
            .name("sibyl-training".to_string())
            .spawn(move || {
                let mut received: u64 = 0;
                let mut next_train_at = train_interval;
                loop {
                    match rx.recv_timeout(Duration::from_millis(1)) {
                        Ok(exp) => {
                            learner.push(exp);
                            received += 1;
                            if received >= next_train_at {
                                next_train_at += train_interval;
                                if learner.train_step().is_some() {
                                    let mut p = published_thread.lock();
                                    p.weights.copy_weights_from(&learner.weights_snapshot());
                                    p.generation += 1;
                                    p.train_steps = learner.train_steps;
                                    p.train_ns = learner.train_ns;
                                }
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            if stop_thread.load(Ordering::Acquire) {
                                break;
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                    }
                }
            })
            // sibyl-lint: allow(unwrap-in-lib) -- spawn failure at construction is unrecoverable for a background trainer; documented panic
            .expect("failed to spawn sibyl training thread");

        BackgroundTrainer {
            tx: Some(tx),
            published,
            stop,
            handle: Some(handle),
        }
    }

    /// Sends one experience to the trainer (drops it if the channel is
    /// full — decision-making must never block on training).
    pub(crate) fn send(&self, exp: Experience) {
        if let Some(tx) = &self.tx {
            let _ = tx.try_send(exp);
        }
    }

    /// Stops and joins the training thread.
    pub(crate) fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.tx = None; // disconnects the channel
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BackgroundTrainer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SibylConfig {
        SibylConfig {
            train_interval: 32,
            buffer_capacity: 64,
            batch_size: 8,
            batches_per_step: 1,
            n_atoms: 5,
            ..Default::default()
        }
    }

    fn exp(tag: f32) -> Experience {
        Experience {
            obs: vec![tag; 6],
            action: (tag as usize) % 2,
            reward: tag.fract(),
            next_obs: vec![tag + 0.5; 6],
        }
    }

    #[test]
    fn trainer_publishes_new_generations() {
        let mut t = BackgroundTrainer::spawn(&tiny_config(), 2, 6);
        for i in 0..256 {
            t.send(exp(i as f32 * 0.01));
        }
        // Wait for at least one publication.
        // sibyl-lint: allow(wallclock-in-logic) -- test-only liveness deadline: bounds how long the test waits, never the result
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            {
                let p = t.published.lock();
                if p.generation > 0 {
                    assert!(p.train_steps > 0);
                    break;
                }
            }
            assert!(
                // sibyl-lint: allow(wallclock-in-logic) -- test-only liveness deadline: bounds how long the test waits, never the result
                std::time::Instant::now() < deadline,
                "trainer never published"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        t.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_nonblocking() {
        let mut t = BackgroundTrainer::spawn(&tiny_config(), 2, 6);
        t.send(exp(0.1));
        t.shutdown();
        t.shutdown(); // second call is a no-op
    }

    #[test]
    fn drop_joins_thread() {
        let t = BackgroundTrainer::spawn(&tiny_config(), 2, 6);
        t.send(exp(0.2));
        drop(t); // must not hang or panic
    }
}
