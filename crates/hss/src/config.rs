//! Hybrid-storage-system configuration.

use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;

/// How device capacities are specified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CapacityMode {
    /// Per-device fraction of the workload's footprint (working-set size);
    /// `None` means unlimited. The paper restricts the fast device to 10 %
    /// of the working set (§3) and, for tri-HSS, H to 5 % and M to 10 %
    /// (§8.7).
    Fractions(Vec<Option<f64>>),
    /// Absolute per-device capacities in pages; `u64::MAX` means
    /// unlimited.
    Pages(Vec<u64>),
}

/// Configuration of a hybrid storage system: an ordered list of devices
/// (fastest first) plus capacity limits and the replay queue depth.
///
/// # Examples
///
/// ```
/// use sibyl_hss::{DeviceSpec, HssConfig};
/// // The paper's performance-oriented H&M configuration.
/// let hm = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
/// assert_eq!(hm.num_devices(), 2);
/// // The cost-oriented H&L configuration with 4 % fast capacity (Fig. 15).
/// let hl = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
///     .with_fast_capacity_fraction(0.04);
/// # let _ = hl;
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HssConfig {
    /// Devices ordered fastest → slowest.
    pub devices: Vec<DeviceSpec>,
    /// Capacity limits.
    pub capacity: CapacityMode,
    /// Maximum outstanding requests during trace replay (closed-loop
    /// window bounding queue growth, like a real block layer's queue
    /// depth).
    pub queue_window: usize,
}

impl HssConfig {
    /// Default fast-device capacity fraction (the paper's 10 % of the
    /// working-set size, §3).
    pub const DEFAULT_FAST_FRACTION: f64 = 0.10;

    /// A dual-device HSS with the paper's default capacity policy: fast
    /// limited to 10 % of the working set, slow unlimited.
    pub fn dual(fast: DeviceSpec, slow: DeviceSpec) -> Self {
        HssConfig {
            devices: vec![fast, slow],
            capacity: CapacityMode::Fractions(vec![Some(Self::DEFAULT_FAST_FRACTION), None]),
            queue_window: 16,
        }
    }

    /// A tri-device HSS with the paper's §8.7 capacities: H at 5 % and M
    /// at 10 % of the working set, L unlimited.
    pub fn tri(h: DeviceSpec, m: DeviceSpec, l: DeviceSpec) -> Self {
        HssConfig {
            devices: vec![h, m, l],
            capacity: CapacityMode::Fractions(vec![Some(0.05), Some(0.10), None]),
            queue_window: 16,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Sets the fastest device's capacity fraction, keeping other devices
    /// unchanged (Fig. 15 sweeps this from 0 % to 100 %).
    pub fn with_fast_capacity_fraction(mut self, fraction: f64) -> Self {
        match &mut self.capacity {
            CapacityMode::Fractions(f) => {
                if let Some(first) = f.first_mut() {
                    *first = Some(fraction);
                }
            }
            CapacityMode::Pages(_) => {
                let mut fr: Vec<Option<f64>> = vec![None; self.devices.len()];
                fr[0] = Some(fraction);
                self.capacity = CapacityMode::Fractions(fr);
            }
        }
        self
    }

    /// Sets absolute per-device capacities in pages.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the device count.
    pub fn with_capacity_pages(mut self, pages: Vec<u64>) -> Self {
        assert_eq!(
            pages.len(),
            self.devices.len(),
            "with_capacity_pages: one capacity per device required"
        );
        self.capacity = CapacityMode::Pages(pages);
        self
    }

    /// Removes all capacity limits (used for the Fast-Only baseline, where
    /// all data fits in the fast device by definition).
    pub fn with_unlimited_capacities(mut self) -> Self {
        self.capacity = CapacityMode::Pages(vec![u64::MAX; self.devices.len()]);
        self
    }

    /// Sets the closed-loop replay queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn with_queue_window(mut self, window: usize) -> Self {
        assert!(window > 0, "queue_window must be positive");
        self.queue_window = window;
        self
    }

    /// Resolves capacity fractions against a workload footprint, producing
    /// a config in absolute-pages mode (what [`crate::StorageManager::new`]
    /// requires).
    pub fn resolved(&self, footprint_pages: u64) -> HssConfig {
        let pages = match &self.capacity {
            CapacityMode::Pages(p) => p.clone(),
            CapacityMode::Fractions(fr) => fr
                .iter()
                .map(|f| match f {
                    None => u64::MAX,
                    Some(frac) => (footprint_pages as f64 * frac).round() as u64,
                })
                .collect(),
        };
        HssConfig {
            devices: self.devices.clone(),
            capacity: CapacityMode::Pages(pages),
            queue_window: self.queue_window,
        }
    }

    /// The resolved per-device capacities.
    ///
    /// # Panics
    ///
    /// Panics if the config is still in fraction mode — call
    /// [`HssConfig::resolved`] first.
    pub fn capacity_pages(&self) -> &[u64] {
        match &self.capacity {
            CapacityMode::Pages(p) => p,
            CapacityMode::Fractions(_) => {
                panic!("HssConfig::capacity_pages: capacities not resolved; call resolved(footprint) first")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_defaults_to_ten_percent_fast() {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd());
        let resolved = cfg.resolved(1_000);
        assert_eq!(resolved.capacity_pages(), &[100, u64::MAX]);
    }

    #[test]
    fn tri_uses_five_and_ten_percent() {
        let cfg = HssConfig::tri(
            DeviceSpec::optane_ssd(),
            DeviceSpec::tlc_ssd(),
            DeviceSpec::hdd(),
        );
        let resolved = cfg.resolved(2_000);
        assert_eq!(resolved.capacity_pages(), &[100, 200, u64::MAX]);
    }

    #[test]
    fn fraction_override_applies_to_fast_only() {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_fast_capacity_fraction(0.5);
        let resolved = cfg.resolved(100);
        assert_eq!(resolved.capacity_pages(), &[50, u64::MAX]);
    }

    #[test]
    fn unlimited_for_fast_only_baseline() {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_unlimited_capacities();
        let resolved = cfg.resolved(100);
        assert_eq!(resolved.capacity_pages(), &[u64::MAX, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "not resolved")]
    fn unresolved_capacity_pages_panics() {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd());
        let _ = cfg.capacity_pages();
    }

    #[test]
    #[should_panic(expected = "one capacity per device")]
    fn capacity_length_validated() {
        let _ = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![1]);
    }
}
