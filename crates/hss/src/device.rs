//! Storage-device latency models.
//!
//! The paper evaluates on four real devices (Table 3): an Intel Optane
//! P4800X (H), an Intel D3-S4510 TLC SSD (M), a Seagate 7200-RPM HDD (L),
//! and an ADATA SU630 DRAM-less SSD (Lssd). Sibyl never reads a datasheet —
//! everything it learns arrives through request latency — so the models
//! here reproduce the latency *behaviours* the paper calls out (§1, §5):
//!
//! - asymmetric read/write base latencies within a device,
//! - bandwidth-proportional transfer time,
//! - a write buffer that absorbs bursts and then saturates,
//! - garbage-collection stalls that grow with write pressure
//!   (deterministic debt model, so simulations are reproducible),
//! - seek + rotational positioning cost on the HDD, waived for
//!   sequential continuation,
//! - FIFO queueing per device.

use serde::{Deserialize, Serialize};

use sibyl_trace::{IoOp, PAGE_SIZE_BYTES};

/// Identifies one device within an HSS; `DeviceId(0)` is by convention the
/// fastest device and higher ids are progressively slower (the paper's
/// H, M, L ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Broad device technology class, which decides which latency mechanisms
/// apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Low-latency NVM (Optane-class): flat latency, no GC to speak of.
    NvmSsd,
    /// NAND flash SSD: write buffer + garbage collection.
    FlashSsd,
    /// Rotating disk: seek and rotational positioning dominate.
    Hdd,
}

/// Static description of a storage device's performance characteristics.
///
/// Use the preset constructors ([`DeviceSpec::optane_ssd`],
/// [`DeviceSpec::tlc_ssd`], [`DeviceSpec::hdd`], [`DeviceSpec::cheap_ssd`])
/// for the paper's Table 3 devices, or build custom specs for sensitivity
/// studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: String,
    /// Technology class.
    pub kind: DeviceKind,
    /// Fixed per-read-command latency in microseconds.
    pub read_base_us: f64,
    /// Fixed per-write-command latency in microseconds.
    pub write_base_us: f64,
    /// Sequential read bandwidth in MB/s.
    pub read_bw_mbps: f64,
    /// Sequential write bandwidth in MB/s.
    pub write_bw_mbps: f64,
    /// Pages the internal write buffer absorbs at reduced latency
    /// (flash only; 0 disables).
    pub write_buffer_pages: u64,
    /// Latency of a buffered write in microseconds.
    pub buffered_write_us: f64,
    /// Rate at which the buffer drains to NAND in MB/s (sustained random
    /// program throughput, well below the interface bandwidth).
    pub buffer_drain_mbps: f64,
    /// Utilization (0..1) beyond which garbage collection starts charging.
    pub gc_threshold: f64,
    /// GC stall duration in microseconds, charged when enough debt accrues.
    pub gc_pause_us: f64,
    /// Pages written per GC stall once above the threshold (lower ⇒ more
    /// frequent stalls).
    pub gc_pages_per_pause: u64,
    /// Full-stroke seek time in microseconds (HDD only).
    pub seek_us: f64,
    /// Track-to-track (minimum) seek time in microseconds (HDD only).
    pub seek_min_us: f64,
    /// Effective rotational latency in microseconds (HDD only; modeled
    /// below the half-revolution worst case because NCQ reorders queued
    /// commands).
    pub rotational_us: f64,
    /// Addressable span in pages used by the seek-distance curve (HDD
    /// only).
    pub span_pages: u64,
}

impl DeviceSpec {
    /// Intel Optane SSD P4800X — the paper's high-end device **H**
    /// (375 GB, PCIe NVMe, R/W 2.4/2.0 GB/s, ~550K/500K IOPS).
    pub fn optane_ssd() -> Self {
        DeviceSpec {
            name: "optane-p4800x".to_string(),
            kind: DeviceKind::NvmSsd,
            read_base_us: 8.0,
            write_base_us: 10.0,
            read_bw_mbps: 2400.0,
            write_bw_mbps: 2000.0,
            write_buffer_pages: 0,
            buffered_write_us: 0.0,
            buffer_drain_mbps: 0.0,
            gc_threshold: 1.1, // never triggers
            gc_pause_us: 0.0,
            gc_pages_per_pause: u64::MAX,
            seek_us: 0.0,
            seek_min_us: 0.0,
            rotational_us: 0.0,
            span_pages: 0,
        }
    }

    /// Intel SSD D3-S4510 — the paper's middle-end device **M**
    /// (1.92 TB SATA TLC, R/W 550/510 MB/s, random write 21K IOPS).
    pub fn tlc_ssd() -> Self {
        DeviceSpec {
            name: "tlc-s4510".to_string(),
            kind: DeviceKind::FlashSsd,
            read_base_us: 36.0,
            write_base_us: 48.0, // 1/21K IOPS sustained random writes
            read_bw_mbps: 550.0,
            write_bw_mbps: 510.0,
            write_buffer_pages: 2048,
            buffered_write_us: 20.0,
            buffer_drain_mbps: 90.0, // ~21K random-write IOPS × 4 KiB
            gc_threshold: 0.70,
            gc_pause_us: 2_000.0,
            gc_pages_per_pause: 512,
            seek_us: 0.0,
            seek_min_us: 0.0,
            rotational_us: 0.0,
            span_pages: 0,
        }
    }

    /// Seagate ST1000DM010 — the paper's low-end device **L**
    /// (1 TB 7200 RPM SATA, 210 MB/s sustained).
    pub fn hdd() -> Self {
        DeviceSpec {
            name: "hdd-st1000".to_string(),
            kind: DeviceKind::Hdd,
            read_base_us: 50.0,
            write_base_us: 50.0,
            read_bw_mbps: 210.0,
            write_bw_mbps: 210.0,
            write_buffer_pages: 0,
            buffered_write_us: 0.0,
            buffer_drain_mbps: 0.0,
            gc_threshold: 1.1,
            gc_pause_us: 0.0,
            gc_pages_per_pause: u64::MAX,
            seek_us: 8_000.0,
            seek_min_us: 500.0,
            // Half a revolution at 7200 RPM is 4.17 ms; NCQ reordering
            // roughly halves the effective rotational delay under load.
            rotational_us: 2_000.0,
            span_pages: 244_000_000, // 1 TB / 4 KiB
        }
    }

    /// ADATA SU630 — the paper's low-end SSD **Lssd**
    /// (960 GB SATA TLC, DRAM-less: 520/450 MB/s peak, heavy GC).
    pub fn cheap_ssd() -> Self {
        DeviceSpec {
            name: "cheap-su630".to_string(),
            kind: DeviceKind::FlashSsd,
            read_base_us: 80.0,
            write_base_us: 140.0,
            read_bw_mbps: 520.0,
            write_bw_mbps: 450.0,
            write_buffer_pages: 512,
            buffered_write_us: 60.0,
            buffer_drain_mbps: 45.0, // DRAM-less controller, slow folding
            gc_threshold: 0.50,
            gc_pause_us: 6_000.0,
            gc_pages_per_pause: 256,
            seek_us: 0.0,
            seek_min_us: 0.0,
            rotational_us: 0.0,
            span_pages: 0,
        }
    }

    /// Transfer time in microseconds for `pages` pages at `bw_mbps`.
    fn transfer_us(pages: u64, bw_mbps: f64) -> f64 {
        let bytes = pages as f64 * PAGE_SIZE_BYTES as f64;
        bytes / (bw_mbps * 1e6) * 1e6 // bytes / (MB/s) in µs
    }

    /// The minimum service time of a 1-page read: used by `sibyl-core` to
    /// scale rewards into the C51 support range.
    pub fn min_read_service_us(&self) -> f64 {
        self.read_base_us + Self::transfer_us(1, self.read_bw_mbps)
    }
}

/// Statistics one device accumulates during simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Read commands served.
    pub reads: u64,
    /// Write commands served.
    pub writes: u64,
    /// Pages read.
    pub pages_read: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Total busy time in microseconds.
    pub busy_us: f64,
    /// Garbage-collection stalls charged.
    pub gc_stalls: u64,
    /// Sequential accesses detected (seek waived).
    pub sequential_hits: u64,
}

/// A device instance: spec plus dynamic simulation state.
#[derive(Debug, Clone)]
pub struct Device {
    spec: DeviceSpec,
    /// Time at which the device becomes idle (FIFO service).
    next_free_us: f64,
    /// End LPN of the last served command (sequentiality detection).
    last_end_lpn: Option<u64>,
    /// Write-buffer fill level in pages.
    buffer_fill: f64,
    /// Time of the last buffer-drain accounting.
    last_drain_us: f64,
    /// Deterministic GC debt in pages.
    gc_debt_pages: u64,
    /// Pages currently resident (utilization for GC purposes is computed
    /// by the manager against the configured capacity).
    utilization: f64,
    stats: DeviceStats,
}

/// Outcome of one device command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Service {
    /// When the command started (≥ arrival; the difference is queueing).
    pub start_us: f64,
    /// When the command completed.
    pub completion_us: f64,
    /// Pure service time (completion − start).
    pub service_us: f64,
}

impl Service {
    /// Total latency observed by the issuer: queue wait plus service.
    pub fn latency_from(&self, arrival_us: f64) -> f64 {
        self.completion_us - arrival_us
    }
}

impl Device {
    /// Creates an idle device from a spec.
    pub fn new(spec: DeviceSpec) -> Self {
        Device {
            spec,
            next_free_us: 0.0,
            last_end_lpn: None,
            buffer_fill: 0.0,
            last_drain_us: 0.0,
            gc_debt_pages: 0,
            utilization: 0.0,
            stats: DeviceStats::default(),
        }
    }

    /// The device's static spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Time at which the device next becomes idle.
    pub fn next_free_us(&self) -> f64 {
        self.next_free_us
    }

    /// Updates the utilization the GC model sees (resident/capacity).
    pub fn set_utilization(&mut self, utilization: f64) {
        self.utilization = utilization.clamp(0.0, 1.0);
    }

    /// Serves one command arriving at `arrival_us` covering `pages` pages
    /// starting at `lpn`. Returns queue/service timing and advances the
    /// device clock.
    pub fn serve(&mut self, arrival_us: f64, op: IoOp, lpn: u64, pages: u64) -> Service {
        let start = arrival_us.max(self.next_free_us);
        let service_us = self.command_latency_at(start, op, lpn, pages);
        let completion = start + service_us;
        self.next_free_us = completion;
        self.last_end_lpn = Some(lpn + pages);
        match op {
            IoOp::Read => {
                self.stats.reads += 1;
                self.stats.pages_read += pages;
            }
            IoOp::Write => {
                self.stats.writes += 1;
                self.stats.pages_written += pages;
            }
        }
        self.stats.busy_us += service_us;
        Service {
            start_us: start,
            completion_us: completion,
            service_us,
        }
    }

    /// Pure service latency of a command starting at `now_us`, including
    /// buffer/GC/seek effects, without advancing the clock.
    fn command_latency_at(&mut self, now_us: f64, op: IoOp, lpn: u64, pages: u64) -> f64 {
        let sequential = self.last_end_lpn == Some(lpn);
        if sequential {
            self.stats.sequential_hits += 1;
        }
        let positioning = if sequential {
            0.0
        } else {
            self.positioning_us(lpn)
        };
        match op {
            IoOp::Read => {
                self.spec.read_base_us
                    + DeviceSpec::transfer_us(pages, self.spec.read_bw_mbps)
                    + positioning
            }
            IoOp::Write => {
                let mut lat;
                if self.spec.kind == DeviceKind::FlashSsd && self.spec.write_buffer_pages > 0 {
                    self.drain_buffer(now_us);
                    if self.buffer_fill + pages as f64 <= self.spec.write_buffer_pages as f64 {
                        // Absorbed by the buffer.
                        self.buffer_fill += pages as f64;
                        lat = self.spec.buffered_write_us
                            + DeviceSpec::transfer_us(pages, self.spec.write_bw_mbps);
                    } else {
                        // Buffer saturated: pay the full program cost.
                        lat = self.spec.write_base_us
                            + DeviceSpec::transfer_us(pages, self.spec.write_bw_mbps);
                    }
                } else {
                    lat = self.spec.write_base_us
                        + DeviceSpec::transfer_us(pages, self.spec.write_bw_mbps);
                }
                lat += positioning;
                // Deterministic GC debt model: above the utilization
                // threshold every written page accrues debt; each
                // `gc_pages_per_pause` pages of debt costs one stall.
                if self.spec.kind == DeviceKind::FlashSsd
                    && self.utilization > self.spec.gc_threshold
                {
                    self.gc_debt_pages += pages;
                    if self.gc_debt_pages >= self.spec.gc_pages_per_pause {
                        self.gc_debt_pages -= self.spec.gc_pages_per_pause;
                        lat += self.spec.gc_pause_us;
                        self.stats.gc_stalls += 1;
                    }
                }
                lat
            }
        }
    }

    /// Serves a command at the device's current head/append position, so
    /// it is always sequential (no positioning cost). Used for eviction
    /// destination writes: the storage management layer owns the
    /// logical→physical mapping, so migrated data is written
    /// log-structured wherever the device left off.
    pub fn serve_append(&mut self, arrival_us: f64, op: IoOp, pages: u64) -> Service {
        let lpn = self.last_end_lpn.unwrap_or(0);
        self.serve(arrival_us, op, lpn, pages)
    }

    /// Head-positioning cost for an HDD command at `lpn`: a square-root
    /// seek-distance curve between track-to-track and full-stroke seek
    /// times, plus the (NCQ-effective) rotational delay. Zero for
    /// non-rotating devices.
    fn positioning_us(&self, lpn: u64) -> f64 {
        if self.spec.kind != DeviceKind::Hdd || self.spec.span_pages == 0 {
            return 0.0;
        }
        let from = self.last_end_lpn.unwrap_or(0);
        let distance = from.abs_diff(lpn);
        let frac = (distance as f64 / self.spec.span_pages as f64).min(1.0);
        let seek =
            self.spec.seek_min_us + (self.spec.seek_us - self.spec.seek_min_us) * frac.sqrt();
        seek + self.spec.rotational_us
    }

    /// Drains the write buffer at the device's sustained NAND program
    /// rate since the last accounting instant.
    fn drain_buffer(&mut self, now_us: f64) {
        let elapsed = (now_us - self.last_drain_us).max(0.0);
        // MB/s → pages/µs: (mbps · 1e6 bytes/s) / (4096 bytes · 1e6 µs/s).
        let drained_pages = elapsed * self.spec.buffer_drain_mbps / PAGE_SIZE_BYTES as f64;
        self.buffer_fill = (self.buffer_fill - drained_pages).max(0.0);
        self.last_drain_us = now_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optane_is_fastest_hdd_slowest() {
        let h = DeviceSpec::optane_ssd();
        let m = DeviceSpec::tlc_ssd();
        let l = DeviceSpec::hdd();
        let lssd = DeviceSpec::cheap_ssd();
        assert!(h.min_read_service_us() < m.min_read_service_us());
        assert!(m.min_read_service_us() < lssd.min_read_service_us());
        // Random HDD read includes seek+rotation, far above any SSD.
        let mut hdd = Device::new(l);
        let s = hdd.serve(0.0, IoOp::Read, 1_000, 1);
        assert!(
            s.service_us > 2_000.0,
            "HDD random read {} µs",
            s.service_us
        );
    }

    #[test]
    fn queueing_delays_back_to_back_requests() {
        let mut d = Device::new(DeviceSpec::optane_ssd());
        let s1 = d.serve(0.0, IoOp::Read, 0, 1);
        let s2 = d.serve(0.0, IoOp::Read, 100, 1);
        assert_eq!(s2.start_us, s1.completion_us);
        assert!(s2.latency_from(0.0) > s1.latency_from(0.0));
    }

    #[test]
    fn idle_device_serves_immediately() {
        let mut d = Device::new(DeviceSpec::optane_ssd());
        let _ = d.serve(0.0, IoOp::Read, 0, 1);
        let s = d.serve(1_000_000.0, IoOp::Read, 10, 1);
        assert_eq!(s.start_us, 1_000_000.0);
    }

    #[test]
    fn hdd_sequential_skips_seek() {
        let mut d = Device::new(DeviceSpec::hdd());
        let s1 = d.serve(0.0, IoOp::Read, 0, 8);
        // Continues exactly at page 8 -> sequential.
        let s2 = d.serve(s1.completion_us, IoOp::Read, 8, 8);
        assert!(
            s2.service_us < s1.service_us / 10.0,
            "seq {} vs random {}",
            s2.service_us,
            s1.service_us
        );
        assert_eq!(d.stats().sequential_hits, 1);
    }

    #[test]
    fn flash_write_buffer_absorbs_then_saturates() {
        let mut spec = DeviceSpec::tlc_ssd();
        spec.write_buffer_pages = 8;
        let mut d = Device::new(spec);
        // All writes at t=0 so the buffer cannot drain.
        let buffered = d.serve(0.0, IoOp::Write, 0, 4);
        let buffered2 = d.serve(0.0, IoOp::Write, 100, 4);
        let saturated = d.serve(0.0, IoOp::Write, 200, 4);
        assert!(buffered.service_us < saturated.service_us);
        assert!((buffered.service_us - buffered2.service_us).abs() < 1.0);
    }

    #[test]
    fn write_buffer_drains_over_time() {
        let mut spec = DeviceSpec::tlc_ssd();
        spec.write_buffer_pages = 8;
        let mut d = Device::new(spec);
        // Fill the buffer.
        let _ = d.serve(0.0, IoOp::Write, 0, 8);
        // After a long idle period the buffer has drained.
        let later = d.serve(10_000_000.0, IoOp::Write, 100, 8);
        let expected_buffered = d.spec().buffered_write_us;
        assert!(
            later.service_us < expected_buffered + 100.0,
            "drained write {} µs",
            later.service_us
        );
    }

    #[test]
    fn gc_stalls_only_above_threshold() {
        let mut spec = DeviceSpec::cheap_ssd();
        spec.write_buffer_pages = 0; // isolate the GC path
        spec.gc_pages_per_pause = 8;
        let mut d = Device::new(spec);
        d.set_utilization(0.3); // below 0.5 threshold
        for i in 0..10 {
            let _ = d.serve(i as f64 * 1e6, IoOp::Write, i * 100, 4);
        }
        assert_eq!(d.stats().gc_stalls, 0);
        d.set_utilization(0.9);
        for i in 0..10 {
            let _ = d.serve(1e8 + i as f64 * 1e6, IoOp::Write, i * 100, 4);
        }
        assert!(d.stats().gc_stalls >= 4, "stalls: {}", d.stats().gc_stalls);
    }

    #[test]
    fn read_write_asymmetry_present_on_flash() {
        let mut spec = DeviceSpec::tlc_ssd();
        spec.write_buffer_pages = 0;
        let mut d = Device::new(spec);
        let r = d.serve(0.0, IoOp::Read, 0, 1);
        let w = d.serve(1e6, IoOp::Write, 1000, 1);
        assert!(w.service_us > r.service_us);
    }

    #[test]
    fn transfer_scales_with_size() {
        let mut d = Device::new(DeviceSpec::optane_ssd());
        let small = d.serve(0.0, IoOp::Read, 0, 1);
        let large = d.serve(1e6, IoOp::Read, 1, 64); // sequential; no extra seek anyway
        assert!(large.service_us > small.service_us);
    }

    #[test]
    fn stats_account_pages_and_busy_time() {
        let mut d = Device::new(DeviceSpec::optane_ssd());
        let s1 = d.serve(0.0, IoOp::Read, 0, 4);
        let s2 = d.serve(0.0, IoOp::Write, 10, 2);
        let st = d.stats();
        assert_eq!(st.reads, 1);
        assert_eq!(st.writes, 1);
        assert_eq!(st.pages_read, 4);
        assert_eq!(st.pages_written, 2);
        assert!((st.busy_us - (s1.service_us + s2.service_us)).abs() < 1e-9);
    }
}
