//! # sibyl-hss
//!
//! A discrete-event hybrid-storage-system (HSS) simulator — the substrate
//! the Sibyl reproduction runs on.
//!
//! The paper (ISCA 2022) evaluates on real hardware: an Optane SSD, a SATA
//! TLC SSD, a 7200-RPM HDD, and a cheap DRAM-less SSD behind a custom
//! Linux block driver exposing one flat logical address space (Fig. 1).
//! This crate reproduces that stack in simulation:
//!
//! - [`DeviceSpec`]/[`Device`] — calibrated device latency models
//!   (read/write asymmetry, bandwidth, write buffering, garbage
//!   collection, seek/rotation, FIFO queueing) with presets for the
//!   paper's Table 3 devices.
//! - [`HssConfig`] — dual- and tri-device configurations with the paper's
//!   capacity policy (fast device capped at a fraction of the working
//!   set).
//! - [`StorageManager`] — the storage management layer: page-granular
//!   residency, promotion/eviction/migration, per-request latency `L_t`
//!   and eviction time `L_e` (the ingredients of Sibyl's reward, Eq. 1).
//! - [`PlacementPolicy`] — the interface every placement mechanism
//!   implements (baselines in `sibyl-policies`, the RL agent in
//!   `sibyl-core`).
//! - [`VictimPolicy`] — pluggable eviction-victim selection (LRU default,
//!   Belady for the Oracle).
//!
//! ## Example
//!
//! ```rust
//! use sibyl_hss::{DeviceId, DeviceSpec, HssConfig, StorageManager};
//! use sibyl_trace::{IoOp, IoRequest};
//!
//! // The paper's cost-oriented H&L configuration.
//! let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
//!     .with_capacity_pages(vec![1024, u64::MAX]);
//! let mut hss = StorageManager::new(&cfg);
//! let out = hss.access(&IoRequest::new(0, 0, 8, IoOp::Write), DeviceId(0));
//! assert!(out.latency_us > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod device;
mod manager;
mod policy;
mod stats;
mod victim;

pub use config::{CapacityMode, HssConfig};
pub use device::{Device, DeviceId, DeviceKind, DeviceSpec, DeviceStats, Service};
pub use manager::{
    AccessDetail, AccessOutcome, AccessTracker, MigrationOutcome, PageDirectory, PageMove,
    StorageManager,
};
pub use policy::{PlacementContext, PlacementPolicy};
pub use stats::{HssStats, LatencyHistogram};
pub use victim::{LruVictim, NextUseIndex, OracleVictim, VictimPolicy};
