//! The storage management layer: unified logical address space, page
//! residency, migration, and capacity-driven eviction.
//!
//! This is the paper's Fig. 1 component. It exposes one contiguous logical
//! page space to the workload, translates each request into device
//! commands based on current residency and the policy's placement
//! decision, migrates data between devices (promotion/eviction), and
//! reports per-request latency `L_t` and eviction time `L_e` — the two
//! quantities Sibyl's reward is built from (Eq. 1).

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::config::HssConfig;
use crate::device::{Device, DeviceId};
use crate::stats::HssStats;
use crate::victim::{LruVictim, VictimPolicy};
use sibyl_trace::{IoOp, IoRequest};

/// Where every logical page lives, with per-device LRU orderings.
///
/// Kept separate from [`StorageManager`] so [`VictimPolicy`]
/// implementations can inspect residency while the manager mutates other
/// state.
#[derive(Debug, Default)]
pub struct PageDirectory {
    table: HashMap<u64, PageMeta>,
    /// Per-device recency index: lru_token → lpn (oldest first).
    lru: Vec<BTreeMap<u64, u64>>,
    used: Vec<u64>,
    lru_counter: u64,
}

#[derive(Debug, Clone, Copy)]
struct PageMeta {
    device: DeviceId,
    lru_token: u64,
}

impl PageDirectory {
    fn new(n_devices: usize) -> Self {
        PageDirectory {
            table: HashMap::new(),
            lru: (0..n_devices).map(|_| BTreeMap::new()).collect(),
            used: vec![0; n_devices],
            lru_counter: 0,
        }
    }

    /// The device currently holding `lpn`, if the page exists.
    pub fn residency(&self, lpn: u64) -> Option<DeviceId> {
        self.table.get(&lpn).map(|m| m.device)
    }

    /// Pages resident on `device`.
    pub fn used_pages(&self, device: DeviceId) -> u64 {
        self.used[device.0]
    }

    /// The least-recently-used page on `device`.
    pub fn lru_first(&self, device: DeviceId) -> Option<u64> {
        self.lru[device.0].values().next().copied()
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Inserts or moves `lpn` onto `device`, refreshing recency. Returns
    /// the previous residency.
    fn place(&mut self, lpn: u64, device: DeviceId) -> Option<DeviceId> {
        self.lru_counter += 1;
        let token = self.lru_counter;
        match self.table.insert(
            lpn,
            PageMeta {
                device,
                lru_token: token,
            },
        ) {
            Some(old) => {
                self.lru[old.device.0].remove(&old.lru_token);
                self.used[old.device.0] -= 1;
                self.lru[device.0].insert(token, lpn);
                self.used[device.0] += 1;
                Some(old.device)
            }
            None => {
                self.lru[device.0].insert(token, lpn);
                self.used[device.0] += 1;
                None
            }
        }
    }

    /// Refreshes recency of `lpn` without moving it. No-op for unknown
    /// pages.
    fn touch(&mut self, lpn: u64) {
        self.lru_counter += 1;
        let token = self.lru_counter;
        if let Some(meta) = self.table.get_mut(&lpn) {
            let old = meta.lru_token;
            let dev = meta.device;
            meta.lru_token = token;
            self.lru[dev.0].remove(&old);
            self.lru[dev.0].insert(token, lpn);
        }
    }
}

/// Per-page access metadata — the paper's block-layer metadata table
/// (§10.2: 40 bits per page) backing the state features of Table 1.
#[derive(Debug, Default)]
pub struct AccessTracker {
    counts: HashMap<u64, u64>,
    last_access: HashMap<u64, u64>,
    /// Global request counter used as the access-interval clock.
    requests_seen: u64,
}

impl AccessTracker {
    /// Total accesses to `lpn` so far (the `cnt_t` feature).
    pub fn access_count(&self, lpn: u64) -> u64 {
        self.counts.get(&lpn).copied().unwrap_or(0)
    }

    /// Requests elapsed since `lpn` was last accessed (the `intr_t`
    /// feature), or `None` if never accessed.
    pub fn access_interval(&self, lpn: u64) -> Option<u64> {
        self.last_access.get(&lpn).map(|&t| self.requests_seen - t)
    }

    /// Requests observed so far.
    pub fn requests_seen(&self) -> u64 {
        self.requests_seen
    }

    fn record(&mut self, req: &IoRequest) {
        self.requests_seen += 1;
        for p in req.pages() {
            *self.counts.entry(p).or_insert(0) += 1;
            self.last_access.insert(p, self.requests_seen);
        }
    }
}

/// Result of serving one request through the storage manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessOutcome {
    /// The device the policy targeted.
    pub target: DeviceId,
    /// Effective arrival time (trace timestamp, delayed by the closed-loop
    /// window when the system is saturated).
    pub arrival_us: f64,
    /// Completion time of the foreground request.
    pub completion_us: f64,
    /// Served request latency `L_t` in microseconds (queueing + service).
    pub latency_us: f64,
    /// Time spent on background eviction triggered by this request,
    /// the paper's `L_e` (0 when no eviction occurred).
    pub eviction_us: f64,
    /// Pages evicted to slower devices.
    pub evicted_pages: u64,
    /// Pages migrated toward the target (promotions and demotions the
    /// policy asked for).
    pub migrated_pages: u64,
}

impl AccessOutcome {
    /// `true` when this request forced an eviction (the reward-penalty
    /// branch of Eq. 1).
    pub fn caused_eviction(&self) -> bool {
        self.evicted_pages > 0
    }
}

/// The hybrid storage system: devices, page directory, access metadata,
/// and migration machinery.
///
/// # Examples
///
/// ```
/// use sibyl_hss::{DeviceId, DeviceSpec, HssConfig, StorageManager};
/// use sibyl_trace::{IoOp, IoRequest};
///
/// let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
///     .with_capacity_pages(vec![2, u64::MAX]);
/// let mut hss = StorageManager::new(&cfg);
/// // Write three pages to a two-page fast device: one page must be
/// // evicted in the background.
/// let out = hss.access(&IoRequest::new(0, 0, 3, IoOp::Write), DeviceId(0));
/// assert!(out.caused_eviction());
/// ```
#[derive(Debug)]
pub struct StorageManager {
    devices: Vec<Device>,
    capacities: Vec<u64>,
    dir: PageDirectory,
    tracker: AccessTracker,
    victim: Box<dyn VictimPolicy + Send>,
    stats: HssStats,
    completions: VecDeque<f64>,
    queue_window: usize,
    seq: u64,
}

impl StorageManager {
    /// Builds a manager from a resolved configuration with LRU eviction.
    ///
    /// # Panics
    ///
    /// Panics if the config has fewer than two devices or its capacities
    /// are unresolved fractions (call [`HssConfig::resolved`] first), or
    /// if the slowest device's capacity is limited (the backing store must
    /// hold the full working set, as in the paper's setups).
    pub fn new(config: &HssConfig) -> Self {
        let capacities = config.capacity_pages().to_vec();
        assert!(
            config.devices.len() >= 2,
            "StorageManager: need at least two devices"
        );
        assert_eq!(
            *capacities.last().expect("non-empty"),
            u64::MAX,
            "StorageManager: the slowest device must be unlimited"
        );
        let n = config.devices.len();
        StorageManager {
            devices: config.devices.iter().cloned().map(Device::new).collect(),
            capacities,
            dir: PageDirectory::new(n),
            tracker: AccessTracker::default(),
            victim: Box::new(LruVictim),
            stats: HssStats::new(n),
            completions: VecDeque::new(),
            queue_window: config.queue_window,
            seq: 0,
        }
    }

    /// Replaces the eviction-victim policy (the Oracle baseline installs
    /// Belady selection here).
    pub fn set_victim_policy(&mut self, victim: Box<dyn VictimPolicy + Send>) {
        self.victim = victim;
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The fastest device id.
    pub fn fastest(&self) -> DeviceId {
        DeviceId(0)
    }

    /// The slowest device id.
    pub fn slowest(&self) -> DeviceId {
        DeviceId(self.devices.len() - 1)
    }

    /// Device instance by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// The page directory (residency and LRU state).
    pub fn directory(&self) -> &PageDirectory {
        &self.dir
    }

    /// The per-page access metadata table.
    pub fn tracker(&self) -> &AccessTracker {
        &self.tracker
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &HssStats {
        &self.stats
    }

    /// Configured capacity of `device` in pages.
    pub fn capacity(&self, device: DeviceId) -> u64 {
        self.capacities[device.0]
    }

    /// Remaining free pages on `device` (the `cap_t` feature tracks this
    /// for the fast device).
    pub fn remaining_capacity(&self, device: DeviceId) -> u64 {
        self.capacities[device.0].saturating_sub(self.dir.used_pages(device))
    }

    /// Remaining capacity as a fraction of the device's configured
    /// capacity (1.0 when unlimited).
    pub fn remaining_fraction(&self, device: DeviceId) -> f64 {
        let cap = self.capacities[device.0];
        if cap == u64::MAX || cap == 0 {
            if cap == 0 {
                0.0
            } else {
                1.0
            }
        } else {
            self.remaining_capacity(device) as f64 / cap as f64
        }
    }

    /// Current residency of `lpn` (`curr_t` feature), if tracked.
    pub fn residency(&self, lpn: u64) -> Option<DeviceId> {
        self.dir.residency(lpn)
    }

    /// Serves `req`, placing its pages on `target` per the policy's
    /// decision, and returns latency/eviction accounting.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn access(&mut self, req: &IoRequest, target: DeviceId) -> AccessOutcome {
        self.access_after(req, target, 0.0)
    }

    /// Serves `req` like [`StorageManager::access`], but with device
    /// dispatch held back by `delay_us` after the request's (closed-loop
    /// bounded) arrival — modeling time spent *deciding* the placement,
    /// e.g. the serving engine's amortized NN-inference charge. Unlike a
    /// shifted timestamp, the delay counts toward the request's reported
    /// latency: latency is measured from the arrival, while device
    /// service cannot start before `arrival + delay_us`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn access_after(
        &mut self,
        req: &IoRequest,
        target: DeviceId,
        delay_us: f64,
    ) -> AccessOutcome {
        assert!(
            target.0 < self.devices.len(),
            "access: target {target} out of range"
        );
        self.seq += 1;

        // Closed-loop replay: at most `queue_window` requests outstanding.
        let mut arrival = req.timestamp_us as f64;
        if self.completions.len() >= self.queue_window {
            if let Some(bound) = self.completions.pop_front() {
                arrival = arrival.max(bound);
            }
        }
        if self.stats.total_requests == 0 {
            self.stats.first_arrival_us = arrival;
        }
        self.stats.placements[target.0] += 1;

        let dispatch = arrival + delay_us.max(0.0);
        let (completion, migrated) = match req.op {
            IoOp::Read => self.serve_read(req, target, dispatch),
            IoOp::Write => self.serve_write(req, target, dispatch),
        };
        let latency = completion - arrival;

        // Background eviction wherever capacity overflowed (cascades from
        // fastest to slowest).
        let (eviction_us, evicted_pages) = self.enforce_capacities(completion);

        // Refresh utilization for the devices' GC models.
        for d in 0..self.devices.len() {
            let cap = self.capacities[d];
            let util = if cap == u64::MAX || cap == 0 {
                0.0
            } else {
                self.dir.used_pages(DeviceId(d)) as f64 / cap as f64
            };
            self.devices[d].set_utilization(util);
        }

        // Access metadata updates *after* the decision (policies observe
        // pre-request state).
        self.tracker.record(req);

        // Stats.
        self.stats.total_requests += 1;
        match req.op {
            IoOp::Read => self.stats.reads += 1,
            IoOp::Write => self.stats.writes += 1,
        }
        self.stats.sum_latency_us += latency;
        self.stats.max_latency_us = self.stats.max_latency_us.max(latency);
        self.stats.last_completion_us = self.stats.last_completion_us.max(completion);
        self.stats.histogram.record(latency);
        if evicted_pages > 0 {
            self.stats.eviction_events += 1;
            self.stats.evicted_pages += evicted_pages;
            self.stats.eviction_time_us += eviction_us;
        }
        self.stats.migrated_pages += migrated;
        self.completions.push_back(completion);

        AccessOutcome {
            target,
            arrival_us: arrival,
            completion_us: completion,
            latency_us: latency,
            eviction_us,
            evicted_pages,
            migrated_pages: migrated,
        }
    }

    /// Serves a read: data comes from wherever the pages live; pages not
    /// yet on `target` are then migrated there in the background
    /// (promotion when the target is faster).
    fn serve_read(&mut self, req: &IoRequest, target: DeviceId, arrival: f64) -> (f64, u64) {
        // Unknown pages materialize on the slowest device (pre-existing
        // cold data; the paper's working set starts in slow storage).
        let slowest = self.slowest();
        let mut per_device: Vec<u64> = vec![0; self.devices.len()];
        for p in req.pages() {
            let dev = match self.dir.residency(p) {
                Some(d) => d,
                None => {
                    self.dir.place(p, slowest);
                    self.victim.on_place(p, slowest, self.seq);
                    slowest
                }
            };
            per_device[dev.0] += 1;
        }

        // One read command per involved device; they proceed in parallel,
        // so the request completes at the slowest one's completion.
        let mut completion = arrival;
        for (d, &count) in per_device.iter().enumerate() {
            if count > 0 {
                let svc = self.devices[d].serve(arrival, IoOp::Read, req.lpn, count);
                completion = completion.max(svc.completion_us);
            }
        }

        // Migrate pages the policy wants elsewhere; the data is already in
        // host memory from the read, so the cost is one background write.
        let to_move: Vec<u64> = req
            .pages()
            .filter(|&p| self.dir.residency(p) != Some(target))
            .collect();
        let migrated = to_move.len() as u64;
        if migrated > 0 {
            let _ = self.devices[target.0].serve(completion, IoOp::Write, req.lpn, migrated);
            for p in &to_move {
                self.dir.place(*p, target);
                self.victim.on_place(*p, target, self.seq);
            }
        }
        // Refresh recency of pages that stayed put.
        for p in req.pages() {
            if !to_move.contains(&p) {
                self.dir.touch(p);
            }
        }
        (completion, migrated)
    }

    /// Serves a write: all pages go directly to `target`; stale copies on
    /// other devices are invalidated by the placement.
    fn serve_write(&mut self, req: &IoRequest, target: DeviceId, arrival: f64) -> (f64, u64) {
        let svc =
            self.devices[target.0].serve(arrival, IoOp::Write, req.lpn, req.size_pages as u64);
        let mut migrated = 0u64;
        for p in req.pages() {
            match self.dir.residency(p) {
                Some(d) if d == target => self.dir.touch(p),
                Some(_) => {
                    self.dir.place(p, target);
                    self.victim.on_place(p, target, self.seq);
                    migrated += 1;
                }
                None => {
                    self.dir.place(p, target);
                    self.victim.on_place(p, target, self.seq);
                }
            }
        }
        (svc.completion_us, migrated)
    }

    /// Evicts overflow pages from every limited device to the next slower
    /// one, charging both devices and returning total eviction time and
    /// page count.
    fn enforce_capacities(&mut self, not_before_us: f64) -> (f64, u64) {
        let mut total_us = 0.0f64;
        let mut total_pages = 0u64;
        for d in 0..self.devices.len() - 1 {
            let dev = DeviceId(d);
            let dst = DeviceId(d + 1);
            let cap = self.capacities[d];
            if cap == u64::MAX {
                continue;
            }
            let overflow = self.dir.used_pages(dev).saturating_sub(cap);
            if overflow == 0 {
                continue;
            }
            // Select victims one by one (policy may be Belady), then issue
            // one batched read+write pair — evictions are background bulk
            // transfers.
            let mut victims = Vec::with_capacity(overflow as usize);
            for _ in 0..overflow {
                let v = self
                    .victim
                    .select_victim(dev, &self.dir)
                    .or_else(|| self.dir.lru_first(dev));
                match v {
                    Some(lpn) => victims.push(lpn),
                    None => break,
                }
                // Move immediately so repeated selection sees the update.
                if let Some(&lpn) = victims.last() {
                    self.dir.place(lpn, dst);
                    self.victim.on_place(lpn, dst, self.seq);
                }
            }
            if victims.is_empty() {
                continue;
            }
            // Victims picked by LRU/Belady are usually scattered across
            // the source device, so eviction *reads* issue one command per
            // contiguous victim run; the destination *write* is a single
            // log-structured append (the management layer owns the
            // mapping, so migrated data lands wherever the device's write
            // head is — sequential even on an HDD).
            let n = victims.len() as u64;
            victims.sort_unstable();
            let mut read_us = 0.0f64;
            let mut reads_done = not_before_us;
            let mut run_start = victims[0];
            let mut run_len = 1u64;
            let flush =
                |start: u64, len: u64, devs: &mut Vec<Device>, done: &mut f64, us: &mut f64| {
                    let rd = devs[d].serve(not_before_us, IoOp::Read, start, len);
                    *done = done.max(rd.completion_us);
                    *us += rd.service_us;
                };
            for &v in &victims[1..] {
                if v == run_start + run_len {
                    run_len += 1;
                } else {
                    flush(
                        run_start,
                        run_len,
                        &mut self.devices,
                        &mut reads_done,
                        &mut read_us,
                    );
                    run_start = v;
                    run_len = 1;
                }
            }
            flush(
                run_start,
                run_len,
                &mut self.devices,
                &mut reads_done,
                &mut read_us,
            );
            let wr = self.devices[d + 1].serve_append(reads_done, IoOp::Write, n);
            total_us += read_us + wr.service_us;
            total_pages += n;
        }
        (total_us, total_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn dual_manager(fast_pages: u64) -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![fast_pages, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn wr(ts: u64, lpn: u64, pages: u32) -> IoRequest {
        IoRequest::new(ts, lpn, pages, IoOp::Write)
    }

    fn rd(ts: u64, lpn: u64, pages: u32) -> IoRequest {
        IoRequest::new(ts, lpn, pages, IoOp::Read)
    }

    #[test]
    fn write_places_pages_on_target() {
        let mut m = dual_manager(100);
        let out = m.access(&wr(0, 10, 4), DeviceId(0));
        assert_eq!(out.target, DeviceId(0));
        assert!(!out.caused_eviction());
        for p in 10..14 {
            assert_eq!(m.residency(p), Some(DeviceId(0)));
        }
        assert_eq!(m.directory().used_pages(DeviceId(0)), 4);
    }

    #[test]
    fn read_of_unknown_page_lands_on_slowest() {
        let mut m = dual_manager(100);
        // Policy wants it kept on slow: no migration.
        let out = m.access(&rd(0, 77, 1), DeviceId(1));
        assert_eq!(out.migrated_pages, 0);
        assert_eq!(m.residency(77), Some(DeviceId(1)));
    }

    #[test]
    fn read_with_fast_target_promotes() {
        let mut m = dual_manager(100);
        let _ = m.access(&rd(0, 50, 2), DeviceId(1)); // stays slow
        let out = m.access(&rd(1, 50, 2), DeviceId(0)); // promote
        assert_eq!(out.migrated_pages, 2);
        assert_eq!(m.residency(50), Some(DeviceId(0)));
        assert_eq!(m.residency(51), Some(DeviceId(0)));
    }

    #[test]
    fn slow_reads_cost_more_than_fast_reads() {
        let mut m = dual_manager(100);
        let _ = m.access(&wr(0, 0, 1), DeviceId(0));
        let _ = m.access(&wr(0, 100, 1), DeviceId(1));
        let f = m.access(&rd(1_000_000, 0, 1), DeviceId(0));
        let s = m.access(&rd(2_000_000, 100, 1), DeviceId(1));
        assert!(
            s.latency_us > 10.0 * f.latency_us,
            "slow {} vs fast {}",
            s.latency_us,
            f.latency_us
        );
    }

    #[test]
    fn overflow_evicts_lru_to_slow() {
        let mut m = dual_manager(2);
        let _ = m.access(&wr(0, 1, 1), DeviceId(0));
        let _ = m.access(&wr(1, 2, 1), DeviceId(0));
        let out = m.access(&wr(2, 3, 1), DeviceId(0));
        assert!(out.caused_eviction());
        assert_eq!(out.evicted_pages, 1);
        assert!(out.eviction_us > 0.0);
        // LRU victim is page 1.
        assert_eq!(m.residency(1), Some(DeviceId(1)));
        assert_eq!(m.residency(2), Some(DeviceId(0)));
        assert_eq!(m.residency(3), Some(DeviceId(0)));
        assert_eq!(m.directory().used_pages(DeviceId(0)), 2);
    }

    #[test]
    fn eviction_cascades_in_tri_hss() {
        let cfg = HssConfig::tri(
            DeviceSpec::optane_ssd(),
            DeviceSpec::tlc_ssd(),
            DeviceSpec::hdd(),
        )
        .with_capacity_pages(vec![1, 1, u64::MAX]);
        let mut m = StorageManager::new(&cfg);
        let _ = m.access(&wr(0, 1, 1), DeviceId(0));
        let _ = m.access(&wr(1, 2, 1), DeviceId(0)); // evicts 1 -> M
        let _ = m.access(&wr(2, 3, 1), DeviceId(0)); // evicts 2 -> M, 1 -> L
        assert_eq!(m.residency(3), Some(DeviceId(0)));
        assert_eq!(m.residency(2), Some(DeviceId(1)));
        assert_eq!(m.residency(1), Some(DeviceId(2)));
    }

    #[test]
    fn capacity_accounting_is_conserved() {
        let mut m = dual_manager(8);
        for i in 0..50u64 {
            let _ = m.access(&wr(i, i * 2, 2), DeviceId(0));
        }
        let fast_used = m.directory().used_pages(DeviceId(0));
        let slow_used = m.directory().used_pages(DeviceId(1));
        assert!(fast_used <= 8, "fast overflowed: {fast_used}");
        assert_eq!(fast_used + slow_used, 100, "pages lost or duplicated");
    }

    #[test]
    fn tracker_reports_counts_and_intervals() {
        let mut m = dual_manager(100);
        let _ = m.access(&rd(0, 5, 1), DeviceId(1));
        let _ = m.access(&rd(1, 6, 1), DeviceId(1));
        let _ = m.access(&rd(2, 5, 1), DeviceId(1));
        assert_eq!(m.tracker().access_count(5), 2);
        assert_eq!(m.tracker().access_count(6), 1);
        assert_eq!(m.tracker().access_count(999), 0);
        // Page 6 was last touched at request 2 of 3.
        assert_eq!(m.tracker().access_interval(6), Some(1));
        assert_eq!(m.tracker().access_interval(999), None);
    }

    #[test]
    fn closed_loop_window_bounds_queueing() {
        // All requests arrive at t=0 targeting the HDD: without the
        // window, latency would grow linearly without bound.
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![10, u64::MAX])
            .with_queue_window(4);
        let mut m = StorageManager::new(&cfg);
        let mut latencies = Vec::new();
        for i in 0..200u64 {
            let out = m.access(&rd(0, i * 100, 1), DeviceId(1));
            latencies.push(out.latency_us);
        }
        let tail_avg: f64 = latencies[100..].iter().sum::<f64>() / 100.0;
        let hdd_random = 5_000.0; // seek curve + rotation + base, roughly
        assert!(
            tail_avg < 6.0 * hdd_random,
            "queueing unbounded: tail avg {tail_avg} µs"
        );
    }

    #[test]
    fn access_after_charges_decision_delay_into_latency() {
        let mut a = dual_manager(100);
        let mut b = dual_manager(100);
        let req = rd(1_000, 5, 1);
        let plain = a.access(&req, DeviceId(1));
        let delayed = b.access_after(&req, DeviceId(1), 25.0);
        assert!(
            (delayed.latency_us - plain.latency_us - 25.0).abs() < 1e-9,
            "decision delay must appear in latency: {} vs {}",
            delayed.latency_us,
            plain.latency_us
        );
        assert_eq!(delayed.arrival_us, plain.arrival_us);
        assert!((delayed.completion_us - plain.completion_us - 25.0).abs() < 1e-9);
    }

    #[test]
    fn access_after_zero_delay_matches_access() {
        let mut a = dual_manager(8);
        let mut b = dual_manager(8);
        for i in 0..50u64 {
            let req = wr(i * 10, i * 3, 2);
            assert_eq!(
                a.access(&req, DeviceId(0)),
                b.access_after(&req, DeviceId(0), 0.0)
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn stats_track_placements_per_device() {
        let mut m = dual_manager(100);
        let _ = m.access(&wr(0, 0, 1), DeviceId(0));
        let _ = m.access(&wr(1, 1, 1), DeviceId(1));
        let _ = m.access(&wr(2, 2, 1), DeviceId(1));
        assert_eq!(m.stats().placements, vec![1, 2]);
        assert!((m.stats().placement_fraction(0) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn write_to_slow_invalidates_fast_copy() {
        let mut m = dual_manager(100);
        let _ = m.access(&wr(0, 9, 1), DeviceId(0));
        assert_eq!(m.directory().used_pages(DeviceId(0)), 1);
        let _ = m.access(&wr(1, 9, 1), DeviceId(1));
        assert_eq!(m.directory().used_pages(DeviceId(0)), 0);
        assert_eq!(m.residency(9), Some(DeviceId(1)));
    }

    #[test]
    #[should_panic(expected = "the slowest device must be unlimited")]
    fn limited_slow_device_rejected() {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![10, 10]);
        let _ = StorageManager::new(&cfg);
    }

    #[test]
    fn zero_fast_capacity_degenerates_gracefully() {
        let mut m = dual_manager(0);
        // Placing on fast immediately evicts; system stays consistent.
        let out = m.access(&wr(0, 1, 2), DeviceId(0));
        assert_eq!(out.evicted_pages, 2);
        assert_eq!(m.directory().used_pages(DeviceId(0)), 0);
        assert_eq!(m.residency(1), Some(DeviceId(1)));
    }
}
