//! The storage management layer: unified logical address space, page
//! residency, migration, and capacity-driven eviction.
//!
//! This is the paper's Fig. 1 component. It exposes one contiguous logical
//! page space to the workload, translates each request into device
//! commands based on current residency and the policy's placement
//! decision, migrates data between devices (promotion/eviction), and
//! reports per-request latency `L_t` and eviction time `L_e` — the two
//! quantities Sibyl's reward is built from (Eq. 1).

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::config::HssConfig;
use crate::device::{Device, DeviceId, Service};
use crate::stats::HssStats;
use crate::victim::{LruVictim, VictimPolicy};
use sibyl_trace::{IoOp, IoRequest};

/// Where every logical page lives, with per-device LRU orderings.
///
/// Kept separate from [`StorageManager`] so [`VictimPolicy`]
/// implementations can inspect residency while the manager mutates other
/// state.
///
/// # Layout (the scale path)
///
/// Production-sized runs track millions of pages, so the directory is a
/// compact arena rather than the obvious `HashMap<u64, PageMeta>` plus
/// one `BTreeMap` LRU per device (~130+ bytes/page across three
/// allocations): per-page metadata lives in one dense, append-only
/// `PageEntry` arena (40 bytes/page, indices stable forever — pages
/// move between devices but are never forgotten), an open-addressing
/// index maps `lpn → entry` (4 bytes/slot, splitmix64 hashing, linear
/// probing, insert-only so no tombstones), and each device's LRU order
/// is an intrusive doubly-linked list threaded through the arena via
/// `prev`/`next` (no separate tree nodes). Entries always link in at
/// the tail with a freshly incremented token, so list order **is**
/// token order — iteration is bit-identical to the old per-device
/// `BTreeMap<token, lpn>` walk, which is what keeps placement decisions
/// on the golden traces unchanged. [`PageDirectory::directory_bytes`]
/// reports the exact heap footprint for the `sec14_scale` accounting.
#[derive(Debug, Default)]
pub struct PageDirectory {
    /// Dense page metadata; an entry's index never changes.
    entries: Vec<PageEntry>,
    /// Open-addressing `lpn → entry index` map (`INDEX_EMPTY` = free),
    /// power-of-two capacity, grown at 7/8 load.
    index: Vec<u32>,
    /// Head (least recent) of each device's intrusive LRU list.
    heads: Vec<u32>,
    /// Tail (most recent) of each device's intrusive LRU list.
    tails: Vec<u32>,
    used: Vec<u64>,
    lru_counter: u64,
}

/// Sentinel for "no entry" in the index and the LRU links.
const NO_ENTRY: u32 = u32::MAX;

/// One tracked page: 40 bytes, device + recency + heat, threaded into
/// its device's LRU list through `prev`/`next`.
#[derive(Debug, Clone, Copy)]
struct PageEntry {
    lpn: u64,
    lru_token: u64,
    /// Previous (older) entry in this device's LRU list.
    prev: u32,
    /// Next (newer) entry in this device's LRU list.
    next: u32,
    /// Accesses to the page while tracked (survives moves between
    /// devices) — the residency-scoped hotness signal background
    /// migration policies key on. Saturating at `u32::MAX` (4.3 G
    /// accesses to one page — beyond any supported run length).
    heat: u32,
    /// The heat the page had when it last landed on its current device.
    /// `heat - heat_at_place` counts accesses *since arrival* — the
    /// signal that distinguishes a genuinely re-hot page from one that
    /// was just moved (a freshly demoted high-heat page must earn new
    /// accesses before it can qualify for promotion again, or demotion
    /// and promotion ping-pong forever).
    heat_at_place: u32,
    device: u8,
}

/// splitmix64 finalizer — the index's hash function.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One background page move requested by a migration policy: relocate
/// `lpn` onto `to`. Executed in bulk by [`StorageManager::migrate_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMove {
    /// The logical page to move.
    pub lpn: u64,
    /// The destination device.
    pub to: DeviceId,
}

/// Accounting for one [`StorageManager::migrate_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MigrationOutcome {
    /// Pages moved to a faster device (`to` index below the source's).
    pub promoted_pages: u64,
    /// Pages moved to a slower device.
    pub demoted_pages: u64,
    /// Requested moves that were skipped (unknown page, already at the
    /// destination, or the destination had no free capacity).
    pub skipped: u64,
    /// Total device service time the migration I/O consumed (µs). The
    /// same time is charged against the involved devices' clocks, so
    /// foreground requests queue behind it.
    pub busy_us: f64,
    /// Source-side bulk-read service time (µs); `read_us + write_us ==
    /// busy_us` up to float addition order (both accumulate in the same
    /// deterministic group order).
    pub read_us: f64,
    /// Destination-side append-write service time (µs).
    pub write_us: f64,
}

impl MigrationOutcome {
    /// Pages moved in either direction.
    pub fn moved_pages(&self) -> u64 {
        self.promoted_pages + self.demoted_pages
    }
}

impl PageDirectory {
    fn new(n_devices: usize) -> Self {
        assert!(
            n_devices < usize::from(u8::MAX),
            "PageDirectory: at most 254 devices"
        );
        PageDirectory {
            entries: Vec::new(),
            index: Vec::new(),
            heads: vec![NO_ENTRY; n_devices],
            tails: vec![NO_ENTRY; n_devices],
            used: vec![0; n_devices],
            lru_counter: 0,
        }
    }

    /// The arena index of `lpn`'s entry, if tracked.
    fn find(&self, lpn: u64) -> Option<u32> {
        if self.index.is_empty() {
            return None;
        }
        let mask = self.index.len() - 1;
        let mut slot = mix64(lpn) as usize & mask;
        loop {
            match self.index[slot] {
                NO_ENTRY => return None,
                i if self.entries[i as usize].lpn == lpn => return Some(i),
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// Links `entry` into the index, growing (and rehashing slot indices
    /// only — entries never move) once load passes 7/8.
    fn index_insert(&mut self, entry: u32) {
        if self.index.is_empty() || (self.entries.len() + 1) * 8 > self.index.len() * 7 {
            let cap = (self.index.len() * 2).max(64);
            let mut fresh = vec![NO_ENTRY; cap];
            let mask = cap - 1;
            for (i, e) in self.entries.iter().enumerate() {
                let mut slot = mix64(e.lpn) as usize & mask;
                while fresh[slot] != NO_ENTRY {
                    slot = (slot + 1) & mask;
                }
                fresh[slot] = i as u32;
            }
            self.index = fresh;
        }
        let mask = self.index.len() - 1;
        let mut slot = mix64(self.entries[entry as usize].lpn) as usize & mask;
        while self.index[slot] != NO_ENTRY {
            slot = (slot + 1) & mask;
        }
        self.index[slot] = entry;
    }

    /// Unlinks entry `i` from device `dev`'s LRU list.
    fn list_unlink(&mut self, i: u32, dev: usize) {
        let (prev, next) = {
            let e = &self.entries[i as usize];
            (e.prev, e.next)
        };
        if prev == NO_ENTRY {
            self.heads[dev] = next;
        } else {
            self.entries[prev as usize].next = next;
        }
        if next == NO_ENTRY {
            self.tails[dev] = prev;
        } else {
            self.entries[next as usize].prev = prev;
        }
    }

    /// Links entry `i` at the tail (most recent end) of device `dev`'s
    /// LRU list.
    fn list_push_tail(&mut self, i: u32, dev: usize) {
        let tail = self.tails[dev];
        {
            let e = &mut self.entries[i as usize];
            e.prev = tail;
            e.next = NO_ENTRY;
        }
        if tail == NO_ENTRY {
            self.heads[dev] = i;
        } else {
            self.entries[tail as usize].next = i;
        }
        self.tails[dev] = i;
    }

    /// The device currently holding `lpn`, if the page exists.
    pub fn residency(&self, lpn: u64) -> Option<DeviceId> {
        self.find(lpn)
            .map(|i| DeviceId(usize::from(self.entries[i as usize].device)))
    }

    /// Pages resident on `device`.
    pub fn used_pages(&self, device: DeviceId) -> u64 {
        self.used[device.0]
    }

    /// The least-recently-used page on `device`.
    pub fn lru_first(&self, device: DeviceId) -> Option<u64> {
        match self.heads[device.0] {
            NO_ENTRY => None,
            i => Some(self.entries[i as usize].lpn),
        }
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact heap footprint of the directory in bytes: the entry arena,
    /// the open-addressing index, and the per-device list/usage vectors.
    /// Grows with the number of *distinct pages touched* (the workload
    /// footprint), never with trace length — the bound `sec14_scale` and
    /// the CI gate assert.
    pub fn directory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<PageEntry>()
            + self.index.capacity() * std::mem::size_of::<u32>()
            + (self.heads.capacity() + self.tails.capacity()) * std::mem::size_of::<u32>()
            + self.used.capacity() * std::mem::size_of::<u64>()
            + std::mem::size_of::<Self>()
    }

    /// Accesses to `lpn` while tracked (0 for unknown pages). Heat
    /// survives moves between devices, so a page promoted by a migration
    /// policy keeps the history that made it a candidate.
    pub fn heat(&self, lpn: u64) -> u64 {
        self.find(lpn)
            .map_or(0, |i| u64::from(self.entries[i as usize].heat))
    }

    /// Accesses to `lpn` since it last landed on its current device
    /// (0 for unknown pages). Migration policies gate promotion on this
    /// rather than total heat: a page that was just demoted or evicted
    /// carries its old heat but has not been touched since the move, and
    /// promoting it back would be pure churn.
    pub fn heat_since_place(&self, lpn: u64) -> u64 {
        self.find(lpn).map_or(0, |i| {
            let e = &self.entries[i as usize];
            u64::from(e.heat - e.heat_at_place)
        })
    }

    /// The recency token of `lpn` — larger means more recently placed or
    /// touched. `None` for unknown pages.
    pub fn recency_token(&self, lpn: u64) -> Option<u64> {
        self.find(lpn).map(|i| self.entries[i as usize].lru_token)
    }

    /// The current value of the global recency counter; the age of a page
    /// is `current_token() - recency_token(lpn)`.
    pub fn current_token(&self) -> u64 {
        self.lru_counter
    }

    /// Iterates `device`'s resident pages in recency order (least
    /// recently used first) as `(recency_token, lpn)` pairs. Reversible —
    /// migration policies scan the hot end with `.rev()`.
    pub fn iter_lru(&self, device: DeviceId) -> impl DoubleEndedIterator<Item = (u64, u64)> + '_ {
        LruIter {
            entries: &self.entries,
            front: self.heads[device.0],
            back: self.tails[device.0],
            exhausted: self.heads[device.0] == NO_ENTRY,
        }
    }

    /// Inserts or moves `lpn` onto `device`, refreshing recency. Returns
    /// the previous residency.
    fn place(&mut self, lpn: u64, device: DeviceId) -> Option<DeviceId> {
        self.lru_counter += 1;
        let token = self.lru_counter;
        match self.find(lpn) {
            Some(i) => {
                let (old_dev, heat) = {
                    let e = &self.entries[i as usize];
                    (usize::from(e.device), e.heat)
                };
                self.list_unlink(i, old_dev);
                self.used[old_dev] -= 1;
                {
                    let e = &mut self.entries[i as usize];
                    e.device = device.0 as u8;
                    e.lru_token = token;
                    e.heat_at_place = heat;
                }
                self.list_push_tail(i, device.0);
                self.used[device.0] += 1;
                Some(DeviceId(old_dev))
            }
            None => {
                let i = self.entries.len() as u32;
                self.entries.push(PageEntry {
                    lpn,
                    lru_token: token,
                    prev: NO_ENTRY,
                    next: NO_ENTRY,
                    heat: 0,
                    heat_at_place: 0,
                    device: device.0 as u8,
                });
                self.index_insert(i);
                self.list_push_tail(i, device.0);
                self.used[device.0] += 1;
                None
            }
        }
    }

    /// Refreshes recency of `lpn` without moving it. No-op for unknown
    /// pages.
    fn touch(&mut self, lpn: u64) {
        self.lru_counter += 1;
        let token = self.lru_counter;
        if let Some(i) = self.find(lpn) {
            let dev = usize::from(self.entries[i as usize].device);
            self.list_unlink(i, dev);
            self.entries[i as usize].lru_token = token;
            self.list_push_tail(i, dev);
        }
    }

    /// Increments `lpn`'s heat (called once per access to the page; a
    /// pure metadata update that never moves LRU state, so it is
    /// invisible to eviction and latency accounting).
    fn bump_heat(&mut self, lpn: u64) {
        if let Some(i) = self.find(lpn) {
            let e = &mut self.entries[i as usize];
            e.heat = e.heat.saturating_add(1);
        }
    }
}

/// Double-ended walk of one device's intrusive LRU list, oldest first.
/// Tokens ascend front-to-back (entries only ever link in at the tail
/// with a fresh token), matching the old `BTreeMap<token, lpn>` order.
#[derive(Debug)]
struct LruIter<'a> {
    entries: &'a [PageEntry],
    front: u32,
    back: u32,
    exhausted: bool,
}

impl Iterator for LruIter<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if self.exhausted {
            return None;
        }
        let e = &self.entries[self.front as usize];
        if self.front == self.back {
            self.exhausted = true;
        } else {
            self.front = e.next;
        }
        Some((e.lru_token, e.lpn))
    }
}

impl DoubleEndedIterator for LruIter<'_> {
    fn next_back(&mut self) -> Option<(u64, u64)> {
        if self.exhausted {
            return None;
        }
        let e = &self.entries[self.back as usize];
        if self.front == self.back {
            self.exhausted = true;
        } else {
            self.back = e.prev;
        }
        Some((e.lru_token, e.lpn))
    }
}

/// Per-page access metadata — the paper's block-layer metadata table
/// (§10.2: 40 bits per page) backing the state features of Table 1.
#[derive(Debug, Default)]
pub struct AccessTracker {
    counts: HashMap<u64, u64>,
    last_access: HashMap<u64, u64>,
    /// Global request counter used as the access-interval clock.
    requests_seen: u64,
}

impl AccessTracker {
    /// Total accesses to `lpn` so far (the `cnt_t` feature).
    pub fn access_count(&self, lpn: u64) -> u64 {
        self.counts.get(&lpn).copied().unwrap_or(0)
    }

    /// Requests elapsed since `lpn` was last accessed (the `intr_t`
    /// feature), or `None` if never accessed.
    pub fn access_interval(&self, lpn: u64) -> Option<u64> {
        self.last_access.get(&lpn).map(|&t| self.requests_seen - t)
    }

    /// Requests observed so far.
    pub fn requests_seen(&self) -> u64 {
        self.requests_seen
    }

    fn record(&mut self, req: &IoRequest) {
        self.requests_seen += 1;
        for p in req.pages() {
            *self.counts.entry(p).or_insert(0) += 1;
            self.last_access.insert(p, self.requests_seen);
        }
    }
}

/// Device-level timing detail of the most recent foreground access —
/// the sub-span hook the xray tracer reads after
/// [`StorageManager::access_after`]. The *critical device* is the one
/// whose completion determined the request's latency (reads fan out across
/// every device holding pages; the slowest arm wins). Splitting its
/// time into
/// queue wait and service lets a trace attribute storage-phase latency
/// to contention vs transfer without changing the access path: the
/// detail is recorded from quantities the serve path already computes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccessDetail {
    /// The critical device's index.
    pub device: usize,
    /// Time the request waited for the critical device to become free
    /// (µs): dispatch until its command started serving. This is where
    /// queued migration/eviction I/O shows up.
    pub queue_us: f64,
    /// The critical device's service (command + transfer) time (µs).
    pub transfer_us: f64,
}

/// Result of serving one request through the storage manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessOutcome {
    /// The device the policy targeted.
    pub target: DeviceId,
    /// Effective arrival time (trace timestamp, delayed by the closed-loop
    /// window when the system is saturated).
    pub arrival_us: f64,
    /// Completion time of the foreground request.
    pub completion_us: f64,
    /// Served request latency `L_t` in microseconds (queueing + service).
    pub latency_us: f64,
    /// Time spent on background eviction triggered by this request,
    /// the paper's `L_e` (0 when no eviction occurred).
    pub eviction_us: f64,
    /// Pages evicted to slower devices.
    pub evicted_pages: u64,
    /// Pages migrated toward the target (promotions and demotions the
    /// policy asked for).
    pub migrated_pages: u64,
}

impl AccessOutcome {
    /// `true` when this request forced an eviction (the reward-penalty
    /// branch of Eq. 1).
    pub fn caused_eviction(&self) -> bool {
        self.evicted_pages > 0
    }
}

/// The hybrid storage system: devices, page directory, access metadata,
/// and migration machinery.
///
/// # Examples
///
/// ```
/// use sibyl_hss::{DeviceId, DeviceSpec, HssConfig, StorageManager};
/// use sibyl_trace::{IoOp, IoRequest};
///
/// let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
///     .with_capacity_pages(vec![2, u64::MAX]);
/// let mut hss = StorageManager::new(&cfg);
/// // Write three pages to a two-page fast device: one page must be
/// // evicted in the background.
/// let out = hss.access(&IoRequest::new(0, 0, 3, IoOp::Write), DeviceId(0));
/// assert!(out.caused_eviction());
/// ```
#[derive(Debug)]
pub struct StorageManager {
    devices: Vec<Device>,
    capacities: Vec<u64>,
    dir: PageDirectory,
    tracker: AccessTracker,
    victim: Box<dyn VictimPolicy + Send>,
    stats: HssStats,
    completions: VecDeque<f64>,
    queue_window: usize,
    seq: u64,
    demote_on_read: bool,
    last_detail: AccessDetail,
}

impl StorageManager {
    /// Builds a manager from a resolved configuration with LRU eviction.
    ///
    /// # Panics
    ///
    /// Panics if the config has fewer than two devices or its capacities
    /// are unresolved fractions (call [`HssConfig::resolved`] first), or
    /// if the slowest device's capacity is limited (the backing store must
    /// hold the full working set, as in the paper's setups).
    pub fn new(config: &HssConfig) -> Self {
        let capacities = config.capacity_pages().to_vec();
        assert!(
            config.devices.len() >= 2,
            "StorageManager: need at least two devices"
        );
        assert_eq!(
            // sibyl-lint: allow(unwrap-in-lib) -- invariant: the devices.len() >= 2 assert above guarantees a last element
            *capacities.last().expect("non-empty"),
            u64::MAX,
            "StorageManager: the slowest device must be unlimited"
        );
        let n = config.devices.len();
        StorageManager {
            devices: config.devices.iter().cloned().map(Device::new).collect(),
            capacities,
            dir: PageDirectory::new(n),
            tracker: AccessTracker::default(),
            victim: Box::new(LruVictim),
            stats: HssStats::new(n),
            completions: VecDeque::new(),
            queue_window: config.queue_window,
            seq: 0,
            demote_on_read: false,
            last_detail: AccessDetail::default(),
        }
    }

    /// Selects whether a read whose policy target is *slower* than the
    /// page's residency actively moves the page there (`true`), or
    /// leaves residency alone (`false`, the default — reads only ever
    /// promote; demotion belongs to capacity eviction and
    /// [`StorageManager::migrate_batch`]). Future-knowledge policies
    /// (the Oracle baseline) opt in: for them a slow-targeted read is a
    /// deliberate, free cleanup of the fast device, whereas for learning
    /// policies it turns every under-trained decision into a paid
    /// demotion that fights promotion — the ping-pong background
    /// migration exists to avoid.
    pub fn set_read_demotion(&mut self, enabled: bool) {
        self.demote_on_read = enabled;
    }

    /// Replaces the eviction-victim policy (the Oracle baseline installs
    /// Belady selection here).
    pub fn set_victim_policy(&mut self, victim: Box<dyn VictimPolicy + Send>) {
        self.victim = victim;
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The fastest device id.
    pub fn fastest(&self) -> DeviceId {
        DeviceId(0)
    }

    /// The slowest device id.
    pub fn slowest(&self) -> DeviceId {
        DeviceId(self.devices.len() - 1)
    }

    /// Device instance by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// The page directory (residency and LRU state).
    pub fn directory(&self) -> &PageDirectory {
        &self.dir
    }

    /// The per-page access metadata table.
    pub fn tracker(&self) -> &AccessTracker {
        &self.tracker
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &HssStats {
        &self.stats
    }

    /// Device-level timing of the most recent foreground access: which
    /// device was on the request's critical path and how its latency
    /// split into queueing vs. transfer. Valid after
    /// [`StorageManager::access_after`]; the xray sub-span hook.
    pub fn last_access_detail(&self) -> AccessDetail {
        self.last_detail
    }

    /// Configured capacity of `device` in pages.
    pub fn capacity(&self, device: DeviceId) -> u64 {
        self.capacities[device.0]
    }

    /// Remaining free pages on `device` (the `cap_t` feature tracks this
    /// for the fast device).
    pub fn remaining_capacity(&self, device: DeviceId) -> u64 {
        self.capacities[device.0].saturating_sub(self.dir.used_pages(device))
    }

    /// Remaining capacity as a fraction of the device's configured
    /// capacity (1.0 when unlimited).
    pub fn remaining_fraction(&self, device: DeviceId) -> f64 {
        let cap = self.capacities[device.0];
        if cap == u64::MAX || cap == 0 {
            if cap == 0 {
                0.0
            } else {
                1.0
            }
        } else {
            self.remaining_capacity(device) as f64 / cap as f64
        }
    }

    /// Current residency of `lpn` (`curr_t` feature), if tracked.
    pub fn residency(&self, lpn: u64) -> Option<DeviceId> {
        self.dir.residency(lpn)
    }

    /// Serves `req`, placing its pages on `target` per the policy's
    /// decision, and returns latency/eviction accounting.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn access(&mut self, req: &IoRequest, target: DeviceId) -> AccessOutcome {
        self.access_after(req, target, 0.0)
    }

    /// Serves `req` like [`StorageManager::access`], but with device
    /// dispatch held back by `delay_us` after the request's (closed-loop
    /// bounded) arrival — modeling time spent *deciding* the placement,
    /// e.g. the serving engine's amortized NN-inference charge. Unlike a
    /// shifted timestamp, the delay counts toward the request's reported
    /// latency: latency is measured from the arrival, while device
    /// service cannot start before `arrival + delay_us`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn access_after(
        &mut self,
        req: &IoRequest,
        target: DeviceId,
        delay_us: f64,
    ) -> AccessOutcome {
        assert!(
            target.0 < self.devices.len(),
            "access: target {target} out of range"
        );
        self.seq += 1;

        // Closed-loop replay: at most `queue_window` requests outstanding.
        let mut arrival = req.timestamp_us as f64;
        if self.completions.len() >= self.queue_window {
            if let Some(bound) = self.completions.pop_front() {
                arrival = arrival.max(bound);
            }
        }
        if self.stats.total_requests == 0 {
            self.stats.first_arrival_us = arrival;
        }
        self.stats.placements[target.0] += 1;

        let dispatch = arrival + delay_us.max(0.0);
        let (completion, migrated) = match req.op {
            IoOp::Read => self.serve_read(req, target, dispatch),
            IoOp::Write => self.serve_write(req, target, dispatch),
        };
        let latency = completion - arrival;

        // Background eviction wherever capacity overflowed (cascades from
        // fastest to slowest).
        let (eviction_us, evicted_pages) = self.enforce_capacities(completion);

        // Refresh utilization for the devices' GC models.
        self.refresh_utilizations();

        // Access metadata updates *after* the decision (policies observe
        // pre-request state). Heat is the directory-resident mirror of
        // the tracker's counts, scoped to tracked pages.
        for p in req.pages() {
            self.dir.bump_heat(p);
        }
        self.tracker.record(req);

        // Stats.
        self.stats.total_requests += 1;
        match req.op {
            IoOp::Read => self.stats.reads += 1,
            IoOp::Write => self.stats.writes += 1,
        }
        self.stats.sum_latency_us += latency;
        self.stats.max_latency_us = self.stats.max_latency_us.max(latency);
        self.stats.last_completion_us = self.stats.last_completion_us.max(completion);
        self.stats.histogram.record(latency);
        if evicted_pages > 0 {
            self.stats.eviction_events += 1;
            self.stats.evicted_pages += evicted_pages;
            self.stats.eviction_time_us += eviction_us;
        }
        self.stats.migrated_pages += migrated;
        self.completions.push_back(completion);

        AccessOutcome {
            target,
            arrival_us: arrival,
            completion_us: completion,
            latency_us: latency,
            eviction_us,
            evicted_pages,
            migrated_pages: migrated,
        }
    }

    /// Serves a read: data comes from wherever the pages live; pages
    /// resident on a *slower* device than `target` are then promoted in
    /// the background (the data is already in host memory, so promotion
    /// costs one background write). Pages on `target` or faster stay
    /// put — a read never demotes: moving read data to a slower device
    /// would cost a write for zero benefit, and demotion is the job of
    /// capacity eviction and [`StorageManager::migrate_batch`].
    fn serve_read(&mut self, req: &IoRequest, target: DeviceId, arrival: f64) -> (f64, u64) {
        // Unknown pages materialize on the slowest device (pre-existing
        // cold data; the paper's working set starts in slow storage).
        let slowest = self.slowest();
        let mut per_device: Vec<u64> = vec![0; self.devices.len()];
        for p in req.pages() {
            let dev = match self.dir.residency(p) {
                Some(d) => d,
                None => {
                    self.dir.place(p, slowest);
                    self.victim.on_place(p, slowest, self.seq);
                    slowest
                }
            };
            per_device[dev.0] += 1;
        }

        // One read command per involved device; they proceed in parallel,
        // so the request completes at the slowest one's completion. The
        // critical arm (latest completion; lowest device index on ties,
        // since the loop keeps the first maximum) defines the request's
        // device-level queue/transfer split.
        let mut completion = arrival;
        let mut crit: Option<(usize, Service)> = None;
        for (d, &count) in per_device.iter().enumerate() {
            if count > 0 {
                let svc = self.devices[d].serve(arrival, IoOp::Read, req.lpn, count);
                completion = completion.max(svc.completion_us);
                if crit.is_none_or(|(_, c)| svc.completion_us > c.completion_us) {
                    crit = Some((d, svc));
                }
            }
        }
        if let Some((device, svc)) = crit {
            self.last_detail = AccessDetail {
                device,
                queue_us: (svc.start_us - arrival).max(0.0),
                transfer_us: svc.service_us,
            };
        }

        // Promote pages the policy wants on a faster device; the data is
        // already in host memory from the read, so the cost is one
        // background write. Under `set_read_demotion(true)`,
        // slower-targeted pages move too (the Oracle's deliberate
        // cleanup).
        let to_move: Vec<u64> = req
            .pages()
            .filter(|&p| {
                self.dir
                    .residency(p)
                    .is_some_and(|d| d.0 > target.0 || (self.demote_on_read && d != target))
            })
            .collect();
        let migrated = to_move.len() as u64;
        if migrated > 0 {
            let _ = self.devices[target.0].serve(completion, IoOp::Write, req.lpn, migrated);
            for p in &to_move {
                self.dir.place(*p, target);
                self.victim.on_place(*p, target, self.seq);
            }
        }
        // Refresh recency of pages that stayed put.
        for p in req.pages() {
            if !to_move.contains(&p) {
                self.dir.touch(p);
            }
        }
        (completion, migrated)
    }

    /// Serves a write: all pages go directly to `target`; stale copies on
    /// other devices are invalidated by the placement.
    fn serve_write(&mut self, req: &IoRequest, target: DeviceId, arrival: f64) -> (f64, u64) {
        let svc =
            self.devices[target.0].serve(arrival, IoOp::Write, req.lpn, req.size_pages as u64);
        self.last_detail = AccessDetail {
            device: target.0,
            queue_us: (svc.start_us - arrival).max(0.0),
            transfer_us: svc.service_us,
        };
        let mut migrated = 0u64;
        for p in req.pages() {
            match self.dir.residency(p) {
                Some(d) if d == target => self.dir.touch(p),
                Some(_) => {
                    self.dir.place(p, target);
                    self.victim.on_place(p, target, self.seq);
                    migrated += 1;
                }
                None => {
                    self.dir.place(p, target);
                    self.victim.on_place(p, target, self.seq);
                }
            }
        }
        (svc.completion_us, migrated)
    }

    /// Executes a batch of background page moves — the migration
    /// subsystem's promotions (slow → fast) and demotions (fast → slow) —
    /// with full bandwidth accounting: each source device serves one bulk
    /// read per contiguous run of moved pages and each destination one
    /// log-structured append write, all starting no earlier than
    /// `not_before_us`. The I/O advances the involved devices' clocks, so
    /// foreground requests arriving afterwards queue behind the migration
    /// traffic (the same §10 spirit as charging NN time: background work
    /// is not free).
    ///
    /// Moves are validated in order: a move is *skipped* (counted in
    /// [`MigrationOutcome::skipped`]) when the page is unknown, already
    /// resident on the destination, or the destination device has no free
    /// capacity left — migration must never trigger the capacity-eviction
    /// cascade it exists to avoid. Policies should therefore order
    /// demotions before promotions so freed fast capacity is usable
    /// within the same batch.
    ///
    /// # Panics
    ///
    /// Panics if any destination device id is out of range.
    pub fn migrate_batch(&mut self, moves: &[PageMove], not_before_us: f64) -> MigrationOutcome {
        let mut outcome = MigrationOutcome::default();
        if moves.is_empty() {
            return outcome;
        }
        // Accept moves in caller order, relocating directory state
        // immediately so capacity checks see in-batch effects; group the
        // accepted moves by (source, destination) for bulk I/O accounting.
        let mut groups: BTreeMap<(usize, usize), Vec<u64>> = BTreeMap::new();
        for mv in moves {
            assert!(
                mv.to.0 < self.devices.len(),
                "migrate_batch: destination {} out of range",
                mv.to
            );
            let Some(from) = self.dir.residency(mv.lpn) else {
                outcome.skipped += 1;
                continue;
            };
            if from == mv.to || self.remaining_capacity(mv.to) == 0 {
                outcome.skipped += 1;
                continue;
            }
            self.dir.place(mv.lpn, mv.to);
            self.victim.on_place(mv.lpn, mv.to, self.seq);
            if mv.to.0 < from.0 {
                outcome.promoted_pages += 1;
            } else {
                outcome.demoted_pages += 1;
            }
            groups.entry((from.0, mv.to.0)).or_default().push(mv.lpn);
        }
        for ((from, to), mut lpns) in groups {
            lpns.sort_unstable();
            let (read_us, reads_done) = self.bulk_read_runs(from, &lpns, not_before_us);
            let wr = self.devices[to].serve_append(reads_done, IoOp::Write, lpns.len() as u64);
            outcome.busy_us += read_us + wr.service_us;
            outcome.read_us += read_us;
            outcome.write_us += wr.service_us;
        }
        if outcome.moved_pages() > 0 {
            self.stats.bg_migration_events += 1;
            self.stats.bg_promoted_pages += outcome.promoted_pages;
            self.stats.bg_demoted_pages += outcome.demoted_pages;
            self.stats.bg_migration_us += outcome.busy_us;
            self.refresh_utilizations();
        }
        outcome
    }

    /// Refreshes every device's utilization (resident/capacity) for the
    /// GC debt models.
    fn refresh_utilizations(&mut self) {
        for d in 0..self.devices.len() {
            let cap = self.capacities[d];
            let util = if cap == u64::MAX || cap == 0 {
                0.0
            } else {
                self.dir.used_pages(DeviceId(d)) as f64 / cap as f64
            };
            self.devices[d].set_utilization(util);
        }
    }

    /// Issues one background read command per contiguous run of `pages`
    /// (sorted ascending) on device `from`, each arriving at
    /// `not_before_us`. Returns the total read service time and the
    /// completion time of the last read — the earliest instant the
    /// destination write may start.
    fn bulk_read_runs(&mut self, from: usize, pages: &[u64], not_before_us: f64) -> (f64, f64) {
        let mut read_us = 0.0f64;
        let mut reads_done = not_before_us;
        let mut run_start = pages[0];
        let mut run_len = 1u64;
        for &p in &pages[1..] {
            if p == run_start + run_len {
                run_len += 1;
            } else {
                let rd = self.devices[from].serve(not_before_us, IoOp::Read, run_start, run_len);
                reads_done = reads_done.max(rd.completion_us);
                read_us += rd.service_us;
                run_start = p;
                run_len = 1;
            }
        }
        let rd = self.devices[from].serve(not_before_us, IoOp::Read, run_start, run_len);
        reads_done = reads_done.max(rd.completion_us);
        read_us += rd.service_us;
        (read_us, reads_done)
    }

    /// Evicts overflow pages from every limited device to the next slower
    /// one, charging both devices and returning total eviction time and
    /// page count.
    fn enforce_capacities(&mut self, not_before_us: f64) -> (f64, u64) {
        let mut total_us = 0.0f64;
        let mut total_pages = 0u64;
        for d in 0..self.devices.len() - 1 {
            let dev = DeviceId(d);
            let dst = DeviceId(d + 1);
            let cap = self.capacities[d];
            if cap == u64::MAX {
                continue;
            }
            let overflow = self.dir.used_pages(dev).saturating_sub(cap);
            if overflow == 0 {
                continue;
            }
            // Select victims one by one (policy may be Belady), then issue
            // one batched read+write pair — evictions are background bulk
            // transfers.
            let mut victims = Vec::with_capacity(overflow as usize);
            for _ in 0..overflow {
                let v = self
                    .victim
                    .select_victim(dev, &self.dir)
                    .or_else(|| self.dir.lru_first(dev));
                match v {
                    Some(lpn) => victims.push(lpn),
                    None => break,
                }
                // Move immediately so repeated selection sees the update.
                if let Some(&lpn) = victims.last() {
                    self.dir.place(lpn, dst);
                    self.victim.on_place(lpn, dst, self.seq);
                }
            }
            if victims.is_empty() {
                continue;
            }
            // Victims picked by LRU/Belady are usually scattered across
            // the source device, so eviction *reads* issue one command per
            // contiguous victim run; the destination *write* is a single
            // log-structured append (the management layer owns the
            // mapping, so migrated data lands wherever the device's write
            // head is — sequential even on an HDD).
            let n = victims.len() as u64;
            victims.sort_unstable();
            let (read_us, reads_done) = self.bulk_read_runs(d, &victims, not_before_us);
            let wr = self.devices[d + 1].serve_append(reads_done, IoOp::Write, n);
            total_us += read_us + wr.service_us;
            total_pages += n;
        }
        (total_us, total_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn dual_manager(fast_pages: u64) -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![fast_pages, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn wr(ts: u64, lpn: u64, pages: u32) -> IoRequest {
        IoRequest::new(ts, lpn, pages, IoOp::Write)
    }

    fn rd(ts: u64, lpn: u64, pages: u32) -> IoRequest {
        IoRequest::new(ts, lpn, pages, IoOp::Read)
    }

    #[test]
    fn write_places_pages_on_target() {
        let mut m = dual_manager(100);
        let out = m.access(&wr(0, 10, 4), DeviceId(0));
        assert_eq!(out.target, DeviceId(0));
        assert!(!out.caused_eviction());
        for p in 10..14 {
            assert_eq!(m.residency(p), Some(DeviceId(0)));
        }
        assert_eq!(m.directory().used_pages(DeviceId(0)), 4);
    }

    #[test]
    fn read_of_unknown_page_lands_on_slowest() {
        let mut m = dual_manager(100);
        // Policy wants it kept on slow: no migration.
        let out = m.access(&rd(0, 77, 1), DeviceId(1));
        assert_eq!(out.migrated_pages, 0);
        assert_eq!(m.residency(77), Some(DeviceId(1)));
    }

    #[test]
    fn read_with_fast_target_promotes() {
        let mut m = dual_manager(100);
        let _ = m.access(&rd(0, 50, 2), DeviceId(1)); // stays slow
        let out = m.access(&rd(1, 50, 2), DeviceId(0)); // promote
        assert_eq!(out.migrated_pages, 2);
        assert_eq!(m.residency(50), Some(DeviceId(0)));
        assert_eq!(m.residency(51), Some(DeviceId(0)));
    }

    #[test]
    fn slow_reads_cost_more_than_fast_reads() {
        let mut m = dual_manager(100);
        let _ = m.access(&wr(0, 0, 1), DeviceId(0));
        let _ = m.access(&wr(0, 100, 1), DeviceId(1));
        let f = m.access(&rd(1_000_000, 0, 1), DeviceId(0));
        let s = m.access(&rd(2_000_000, 100, 1), DeviceId(1));
        assert!(
            s.latency_us > 10.0 * f.latency_us,
            "slow {} vs fast {}",
            s.latency_us,
            f.latency_us
        );
    }

    #[test]
    fn overflow_evicts_lru_to_slow() {
        let mut m = dual_manager(2);
        let _ = m.access(&wr(0, 1, 1), DeviceId(0));
        let _ = m.access(&wr(1, 2, 1), DeviceId(0));
        let out = m.access(&wr(2, 3, 1), DeviceId(0));
        assert!(out.caused_eviction());
        assert_eq!(out.evicted_pages, 1);
        assert!(out.eviction_us > 0.0);
        // LRU victim is page 1.
        assert_eq!(m.residency(1), Some(DeviceId(1)));
        assert_eq!(m.residency(2), Some(DeviceId(0)));
        assert_eq!(m.residency(3), Some(DeviceId(0)));
        assert_eq!(m.directory().used_pages(DeviceId(0)), 2);
    }

    #[test]
    fn eviction_cascades_in_tri_hss() {
        let cfg = HssConfig::tri(
            DeviceSpec::optane_ssd(),
            DeviceSpec::tlc_ssd(),
            DeviceSpec::hdd(),
        )
        .with_capacity_pages(vec![1, 1, u64::MAX]);
        let mut m = StorageManager::new(&cfg);
        let _ = m.access(&wr(0, 1, 1), DeviceId(0));
        let _ = m.access(&wr(1, 2, 1), DeviceId(0)); // evicts 1 -> M
        let _ = m.access(&wr(2, 3, 1), DeviceId(0)); // evicts 2 -> M, 1 -> L
        assert_eq!(m.residency(3), Some(DeviceId(0)));
        assert_eq!(m.residency(2), Some(DeviceId(1)));
        assert_eq!(m.residency(1), Some(DeviceId(2)));
    }

    #[test]
    fn capacity_accounting_is_conserved() {
        let mut m = dual_manager(8);
        for i in 0..50u64 {
            let _ = m.access(&wr(i, i * 2, 2), DeviceId(0));
        }
        let fast_used = m.directory().used_pages(DeviceId(0));
        let slow_used = m.directory().used_pages(DeviceId(1));
        assert!(fast_used <= 8, "fast overflowed: {fast_used}");
        assert_eq!(fast_used + slow_used, 100, "pages lost or duplicated");
    }

    #[test]
    fn tracker_reports_counts_and_intervals() {
        let mut m = dual_manager(100);
        let _ = m.access(&rd(0, 5, 1), DeviceId(1));
        let _ = m.access(&rd(1, 6, 1), DeviceId(1));
        let _ = m.access(&rd(2, 5, 1), DeviceId(1));
        assert_eq!(m.tracker().access_count(5), 2);
        assert_eq!(m.tracker().access_count(6), 1);
        assert_eq!(m.tracker().access_count(999), 0);
        // Page 6 was last touched at request 2 of 3.
        assert_eq!(m.tracker().access_interval(6), Some(1));
        assert_eq!(m.tracker().access_interval(999), None);
    }

    #[test]
    fn closed_loop_window_bounds_queueing() {
        // All requests arrive at t=0 targeting the HDD: without the
        // window, latency would grow linearly without bound.
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![10, u64::MAX])
            .with_queue_window(4);
        let mut m = StorageManager::new(&cfg);
        let mut latencies = Vec::new();
        for i in 0..200u64 {
            let out = m.access(&rd(0, i * 100, 1), DeviceId(1));
            latencies.push(out.latency_us);
        }
        let tail_avg: f64 = latencies[100..].iter().sum::<f64>() / 100.0;
        let hdd_random = 5_000.0; // seek curve + rotation + base, roughly
        assert!(
            tail_avg < 6.0 * hdd_random,
            "queueing unbounded: tail avg {tail_avg} µs"
        );
    }

    #[test]
    fn access_after_charges_decision_delay_into_latency() {
        let mut a = dual_manager(100);
        let mut b = dual_manager(100);
        let req = rd(1_000, 5, 1);
        let plain = a.access(&req, DeviceId(1));
        let delayed = b.access_after(&req, DeviceId(1), 25.0);
        assert!(
            (delayed.latency_us - plain.latency_us - 25.0).abs() < 1e-9,
            "decision delay must appear in latency: {} vs {}",
            delayed.latency_us,
            plain.latency_us
        );
        assert_eq!(delayed.arrival_us, plain.arrival_us);
        assert!((delayed.completion_us - plain.completion_us - 25.0).abs() < 1e-9);
    }

    #[test]
    fn access_after_zero_delay_matches_access() {
        let mut a = dual_manager(8);
        let mut b = dual_manager(8);
        for i in 0..50u64 {
            let req = wr(i * 10, i * 3, 2);
            assert_eq!(
                a.access(&req, DeviceId(0)),
                b.access_after(&req, DeviceId(0), 0.0)
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn stats_track_placements_per_device() {
        let mut m = dual_manager(100);
        let _ = m.access(&wr(0, 0, 1), DeviceId(0));
        let _ = m.access(&wr(1, 1, 1), DeviceId(1));
        let _ = m.access(&wr(2, 2, 1), DeviceId(1));
        assert_eq!(m.stats().placements, vec![1, 2]);
        assert!((m.stats().placement_fraction(0) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn write_to_slow_invalidates_fast_copy() {
        let mut m = dual_manager(100);
        let _ = m.access(&wr(0, 9, 1), DeviceId(0));
        assert_eq!(m.directory().used_pages(DeviceId(0)), 1);
        let _ = m.access(&wr(1, 9, 1), DeviceId(1));
        assert_eq!(m.directory().used_pages(DeviceId(0)), 0);
        assert_eq!(m.residency(9), Some(DeviceId(1)));
    }

    #[test]
    #[should_panic(expected = "the slowest device must be unlimited")]
    fn limited_slow_device_rejected() {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![10, 10]);
        let _ = StorageManager::new(&cfg);
    }

    #[test]
    fn zero_fast_capacity_degenerates_gracefully() {
        let mut m = dual_manager(0);
        // Placing on fast immediately evicts; system stays consistent.
        let out = m.access(&wr(0, 1, 2), DeviceId(0));
        assert_eq!(out.evicted_pages, 2);
        assert_eq!(m.directory().used_pages(DeviceId(0)), 0);
        assert_eq!(m.residency(1), Some(DeviceId(1)));
    }

    #[test]
    fn reads_never_demote_by_default() {
        let mut m = dual_manager(100);
        let _ = m.access(&wr(0, 9, 1), DeviceId(0));
        // A slow-targeted read leaves the fast-resident page alone.
        let out = m.access(&rd(1, 9, 1), DeviceId(1));
        assert_eq!(out.migrated_pages, 0);
        assert_eq!(m.residency(9), Some(DeviceId(0)));
        // Promotion still works.
        let _ = m.access(&rd(2, 200, 1), DeviceId(1));
        let out = m.access(&rd(3, 200, 1), DeviceId(0));
        assert_eq!(out.migrated_pages, 1);
        assert_eq!(m.residency(200), Some(DeviceId(0)));
    }

    #[test]
    fn read_demotion_opt_in_restores_target_following() {
        let mut m = dual_manager(100);
        m.set_read_demotion(true);
        let _ = m.access(&wr(0, 9, 1), DeviceId(0));
        let out = m.access(&rd(1, 9, 1), DeviceId(1));
        assert_eq!(out.migrated_pages, 1, "opt-in read must demote");
        assert_eq!(m.residency(9), Some(DeviceId(1)));
    }

    #[test]
    fn heat_counts_accesses_and_survives_moves() {
        let mut m = dual_manager(100);
        assert_eq!(m.directory().heat(5), 0, "unknown page has no heat");
        let _ = m.access(&rd(0, 5, 1), DeviceId(1));
        let _ = m.access(&rd(1, 5, 1), DeviceId(1));
        assert_eq!(m.directory().heat(5), 2);
        // Promotion through migrate_batch preserves the heat history.
        let out = m.migrate_batch(
            &[PageMove {
                lpn: 5,
                to: DeviceId(0),
            }],
            1_000.0,
        );
        assert_eq!(out.promoted_pages, 1);
        assert_eq!(m.directory().heat(5), 2, "heat survives the move");
        let _ = m.access(&rd(2, 5, 1), DeviceId(0));
        assert_eq!(m.directory().heat(5), 3);
    }

    #[test]
    fn heat_since_place_resets_on_moves_and_earns_on_access() {
        let mut m = dual_manager(100);
        for t in 0..3u64 {
            let _ = m.access(&rd(t, 5, 1), DeviceId(1));
        }
        assert_eq!(m.directory().heat(5), 3);
        assert_eq!(m.directory().heat_since_place(5), 3);
        // A move carries total heat but zeroes the since-arrival count.
        let _ = m.migrate_batch(
            &[PageMove {
                lpn: 5,
                to: DeviceId(0),
            }],
            1_000.0,
        );
        assert_eq!(m.directory().heat(5), 3);
        assert_eq!(m.directory().heat_since_place(5), 0);
        let _ = m.access(&rd(3, 5, 1), DeviceId(0));
        assert_eq!(m.directory().heat_since_place(5), 1);
        assert_eq!(m.directory().heat_since_place(999), 0);
    }

    #[test]
    fn migrate_batch_moves_pages_and_accounts_time() {
        let mut m = dual_manager(100);
        // Two slow-resident pages, one fast-resident page.
        let _ = m.access(&rd(0, 10, 2), DeviceId(1));
        let _ = m.access(&wr(1, 50, 1), DeviceId(0));
        let out = m.migrate_batch(
            &[
                PageMove {
                    lpn: 50,
                    to: DeviceId(1), // demotion first frees fast room
                },
                PageMove {
                    lpn: 10,
                    to: DeviceId(0),
                },
                PageMove {
                    lpn: 11,
                    to: DeviceId(0),
                },
            ],
            10_000.0,
        );
        assert_eq!(out.promoted_pages, 2);
        assert_eq!(out.demoted_pages, 1);
        assert_eq!(out.skipped, 0);
        assert!(out.busy_us > 0.0, "migration I/O must cost device time");
        assert_eq!(m.residency(10), Some(DeviceId(0)));
        assert_eq!(m.residency(11), Some(DeviceId(0)));
        assert_eq!(m.residency(50), Some(DeviceId(1)));
        let st = m.stats();
        assert_eq!(st.bg_migration_events, 1);
        assert_eq!(st.bg_promoted_pages, 2);
        assert_eq!(st.bg_demoted_pages, 1);
        assert!((st.bg_migration_us - out.busy_us).abs() < 1e-9);
    }

    #[test]
    fn access_detail_tracks_the_critical_device() {
        let mut m = dual_manager(100);
        // A write goes to exactly the targeted device.
        let out = m.access(&wr(0, 9, 1), DeviceId(0));
        let d = m.last_access_detail();
        assert_eq!(d.device, 0);
        assert!(d.transfer_us > 0.0);
        assert!(
            d.queue_us + d.transfer_us <= out.completion_us - out.arrival_us + 1e-9,
            "detail must fit inside the storage phase"
        );
        // A read of a slow-resident page is served by the slow device.
        let _ = m.access(&rd(1, 500, 1), DeviceId(1));
        assert_eq!(m.last_access_detail().device, 1);
        // A straddling read (one page fast, one slow) is dominated by the
        // slow arm.
        let _ = m.access(&wr(2, 500, 1), DeviceId(0));
        let _ = m.access(&rd(3, 600, 1), DeviceId(1));
        let _ = m.access(&rd(10_000, 500, 2), DeviceId(1));
        assert_eq!(m.last_access_detail().device, 1, "slow arm is critical");
    }

    #[test]
    fn access_detail_queue_reflects_device_contention() {
        let mut m = dual_manager(100);
        // Back-to-back same-instant writes: the second queues behind the
        // first on the same device.
        let _ = m.access(&wr(0, 1, 8), DeviceId(1));
        let first = m.last_access_detail();
        assert_eq!(first.queue_us, 0.0, "idle device serves immediately");
        let _ = m.access(&wr(0, 100, 8), DeviceId(1));
        let second = m.last_access_detail();
        assert!(
            second.queue_us >= first.transfer_us - 1e-9,
            "second request must wait out the first: {} vs {}",
            second.queue_us,
            first.transfer_us
        );
    }

    #[test]
    fn migration_outcome_splits_read_and_write_time() {
        let mut m = dual_manager(100);
        let _ = m.access(&rd(0, 10, 4), DeviceId(1));
        let out = m.migrate_batch(
            &[
                PageMove {
                    lpn: 10,
                    to: DeviceId(0),
                },
                PageMove {
                    lpn: 11,
                    to: DeviceId(0),
                },
            ],
            5_000.0,
        );
        assert!(out.read_us > 0.0, "bulk read must cost time");
        assert!(out.write_us > 0.0, "append write must cost time");
        assert!(
            (out.read_us + out.write_us - out.busy_us).abs() < 1e-9,
            "split must account for all busy time"
        );
    }

    #[test]
    fn migrate_batch_skips_invalid_and_capacity_blocked_moves() {
        let mut m = dual_manager(1);
        let _ = m.access(&wr(0, 1, 1), DeviceId(0)); // fast is now full
        let _ = m.access(&rd(1, 7, 1), DeviceId(1));
        let _ = m.access(&rd(2, 8, 1), DeviceId(1));
        let out = m.migrate_batch(
            &[
                PageMove {
                    lpn: 999, // unknown
                    to: DeviceId(0),
                },
                PageMove {
                    lpn: 1, // already on destination
                    to: DeviceId(0),
                },
                PageMove {
                    lpn: 7, // no fast capacity left
                    to: DeviceId(0),
                },
            ],
            0.0,
        );
        assert_eq!(out.moved_pages(), 0);
        assert_eq!(out.skipped, 3);
        assert_eq!(out.busy_us, 0.0);
        assert_eq!(m.stats().bg_migration_events, 0, "no-op batch not counted");
        // Demoting the resident page frees the slot within the same batch.
        let out = m.migrate_batch(
            &[
                PageMove {
                    lpn: 1,
                    to: DeviceId(1),
                },
                PageMove {
                    lpn: 7,
                    to: DeviceId(0),
                },
            ],
            0.0,
        );
        assert_eq!(out.promoted_pages, 1);
        assert_eq!(out.demoted_pages, 1);
        assert_eq!(m.residency(7), Some(DeviceId(0)));
        assert_eq!(m.directory().used_pages(DeviceId(0)), 1);
    }

    #[test]
    fn migration_io_delays_foreground_requests() {
        // Bandwidth accounting: a foreground request issued right after a
        // migration batch must queue behind the migration I/O on the same
        // device.
        let mut quiet = dual_manager(100);
        let mut busy = dual_manager(100);
        for m in [&mut quiet, &mut busy] {
            for p in 0..64u64 {
                let _ = m.access(&rd(0, 1_000 + p * 2, 1), DeviceId(1));
            }
        }
        let moves: Vec<PageMove> = (0..64u64)
            .map(|p| PageMove {
                lpn: 1_000 + p * 2,
                to: DeviceId(0),
            })
            .collect();
        let out = busy.migrate_batch(&moves, 1_000_000.0);
        assert_eq!(out.promoted_pages, 64);
        // Both managers serve the same foreground read at the instant the
        // migration started; the migrating manager's slow device is busy
        // with 64 scattered migration reads.
        let req = rd(1_000_000, 5_000, 1);
        let l_quiet = quiet.access(&req, DeviceId(1)).latency_us;
        let l_busy = busy.access(&req, DeviceId(1)).latency_us;
        assert!(
            l_busy > l_quiet + out.busy_us / 4.0,
            "foreground must observe contention: quiet {l_quiet:.0} vs busy {l_busy:.0} µs \
             (migration busy {:.0} µs)",
            out.busy_us
        );
    }

    #[test]
    fn empty_device_edges_are_safe() {
        let mut m = dual_manager(10);
        let dir = m.directory();
        assert_eq!(dir.lru_first(DeviceId(0)), None);
        assert_eq!(dir.iter_lru(DeviceId(0)).count(), 0);
        assert_eq!(dir.used_pages(DeviceId(0)), 0);
        assert!(dir.is_empty());
        let mut lru = LruVictim;
        assert_eq!(lru.select_victim(DeviceId(0), m.directory()), None);
        // Migrating nothing (and migrating unknown pages) is a no-op.
        assert_eq!(m.migrate_batch(&[], 0.0), MigrationOutcome::default());
        let out = m.migrate_batch(
            &[PageMove {
                lpn: 1,
                to: DeviceId(0),
            }],
            0.0,
        );
        assert_eq!(out.skipped, 1);
    }

    #[test]
    fn single_page_device_evicts_and_stays_consistent() {
        let mut m = dual_manager(1);
        let _ = m.access(&wr(0, 1, 1), DeviceId(0));
        assert_eq!(m.directory().used_pages(DeviceId(0)), 1);
        let out = m.access(&wr(1, 2, 1), DeviceId(0));
        assert_eq!(out.evicted_pages, 1);
        assert_eq!(m.residency(1), Some(DeviceId(1)));
        assert_eq!(m.residency(2), Some(DeviceId(0)));
        assert_eq!(m.directory().used_pages(DeviceId(0)), 1);
        // The single resident page is both LRU-first and the only entry.
        assert_eq!(m.directory().lru_first(DeviceId(0)), Some(2));
        assert_eq!(m.directory().iter_lru(DeviceId(0)).count(), 1);
    }

    #[test]
    fn eviction_when_every_fast_page_was_touched_this_tick() {
        // All resident fast pages were just touched; eviction must still
        // find a victim — the least recent of the *touched* pages.
        let mut m = dual_manager(3);
        for (i, lpn) in [10u64, 20, 30].iter().enumerate() {
            let _ = m.access(&wr(i as u64, *lpn, 1), DeviceId(0));
        }
        // Touch all three in order 20, 30, 10 — LRU is now 20.
        for (i, lpn) in [20u64, 30, 10].iter().enumerate() {
            let _ = m.access(&rd(10 + i as u64, *lpn, 1), DeviceId(0));
        }
        let out = m.access(&wr(20, 40, 1), DeviceId(0));
        assert!(out.caused_eviction());
        assert_eq!(m.residency(20), Some(DeviceId(1)), "oldest touch evicts");
        assert_eq!(m.residency(30), Some(DeviceId(0)));
        assert_eq!(m.residency(10), Some(DeviceId(0)));
        assert_eq!(m.residency(40), Some(DeviceId(0)));
    }

    /// The directory the compact arena replaced, kept as a test oracle:
    /// `HashMap<lpn, meta>` plus one `BTreeMap<token, lpn>` per device.
    #[derive(Default)]
    struct ModelDirectory {
        table: HashMap<u64, (usize, u64, u64, u64)>, // device, token, heat, heat_at_place
        lru: Vec<BTreeMap<u64, u64>>,
        counter: u64,
    }

    impl ModelDirectory {
        fn new(n: usize) -> Self {
            ModelDirectory {
                table: HashMap::new(),
                lru: (0..n).map(|_| BTreeMap::new()).collect(),
                counter: 0,
            }
        }

        fn place(&mut self, lpn: u64, dev: usize) {
            self.counter += 1;
            let heat = self.table.get(&lpn).map_or(0, |m| m.2);
            if let Some(old) = self.table.insert(lpn, (dev, self.counter, heat, heat)) {
                self.lru[old.0].remove(&old.1);
            }
            self.lru[dev].insert(self.counter, lpn);
        }

        fn touch(&mut self, lpn: u64) {
            self.counter += 1;
            let token = self.counter;
            if let Some(m) = self.table.get_mut(&lpn) {
                let (dev, old) = (m.0, m.1);
                m.1 = token;
                self.lru[dev].remove(&old);
                self.lru[dev].insert(token, lpn);
            }
        }

        fn bump_heat(&mut self, lpn: u64) {
            if let Some(m) = self.table.get_mut(&lpn) {
                m.2 += 1;
            }
        }
    }

    #[test]
    fn compact_directory_matches_reference_model_exactly() {
        // Drive the arena directory and the old-layout model through an
        // identical deterministic op mix, comparing every observable
        // after every step — the bit-identity contract the golden serve
        // tests rely on.
        let n_dev = 3;
        let mut dir = PageDirectory::new(n_dev);
        let mut model = ModelDirectory::new(n_dev);
        let mut state = 0x0D1E_u64;
        for step in 0..20_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let lpn = (state >> 8) % 512; // heavy reuse: moves + touches
            match state % 4 {
                0 | 1 => {
                    let dev = (state >> 32) as usize % n_dev;
                    assert_eq!(
                        dir.place(lpn, DeviceId(dev)),
                        model.table.get(&lpn).map(|m| DeviceId(m.0)),
                        "place return at step {step}"
                    );
                    model.place(lpn, dev);
                }
                2 => {
                    dir.touch(lpn);
                    model.touch(lpn);
                }
                _ => {
                    dir.bump_heat(lpn);
                    model.bump_heat(lpn);
                }
            }
            assert_eq!(dir.current_token(), model.counter);
            assert_eq!(
                dir.residency(lpn),
                model.table.get(&lpn).map(|m| DeviceId(m.0))
            );
            assert_eq!(dir.heat(lpn), model.table.get(&lpn).map_or(0, |m| m.2));
            assert_eq!(
                dir.heat_since_place(lpn),
                model.table.get(&lpn).map_or(0, |m| m.2 - m.3)
            );
            assert_eq!(dir.recency_token(lpn), model.table.get(&lpn).map(|m| m.1));
        }
        assert_eq!(dir.len(), model.table.len());
        for d in 0..n_dev {
            let dev = DeviceId(d);
            assert_eq!(dir.used_pages(dev), model.lru[d].len() as u64);
            assert_eq!(dir.lru_first(dev), model.lru[d].values().next().copied());
            let ours: Vec<(u64, u64)> = dir.iter_lru(dev).collect();
            let theirs: Vec<(u64, u64)> = model.lru[d].iter().map(|(&t, &l)| (t, l)).collect();
            assert_eq!(ours, theirs, "forward LRU walk, device {d}");
            let ours_rev: Vec<(u64, u64)> = dir.iter_lru(dev).rev().collect();
            let theirs_rev: Vec<(u64, u64)> =
                model.lru[d].iter().rev().map(|(&t, &l)| (t, l)).collect();
            assert_eq!(ours_rev, theirs_rev, "reverse LRU walk, device {d}");
        }
    }

    #[test]
    fn lru_iter_is_double_ended_and_meets_in_the_middle() {
        let mut dir = PageDirectory::new(2);
        for lpn in 0..5u64 {
            let _ = dir.place(lpn, DeviceId(0));
        }
        let mut it = dir.iter_lru(DeviceId(0));
        assert_eq!(it.next().map(|(_, l)| l), Some(0));
        assert_eq!(it.next_back().map(|(_, l)| l), Some(4));
        assert_eq!(it.next().map(|(_, l)| l), Some(1));
        assert_eq!(it.next_back().map(|(_, l)| l), Some(3));
        assert_eq!(it.next().map(|(_, l)| l), Some(2));
        assert_eq!(it.next(), None);
        assert_eq!(it.next_back(), None);
    }

    #[test]
    fn directory_bytes_tracks_footprint_not_traffic() {
        let mut dir = PageDirectory::new(2);
        for lpn in 0..10_000u64 {
            let _ = dir.place(lpn, DeviceId((lpn % 2) as usize));
        }
        let at_10k = dir.directory_bytes();
        // Re-touching the same pages (any amount of traffic over the same
        // footprint) allocates nothing.
        for round in 0..5 {
            for lpn in 0..10_000u64 {
                dir.touch(lpn);
                dir.bump_heat(lpn);
                let _ = dir.place(lpn, DeviceId(((lpn + round) % 2) as usize));
            }
        }
        assert_eq!(
            dir.directory_bytes(),
            at_10k,
            "traffic over a fixed footprint must not grow the directory"
        );
        // The compact layout stays under 80 bytes/page even with the
        // open-addressing index's load-factor headroom and Vec doubling
        // slack (40-byte entries × up-to-2× capacity) — the old
        // HashMap + BTreeMap-per-page layout was 130+ before allocator
        // overhead.
        assert!(
            at_10k < 10_000 * 80,
            "directory too fat: {} bytes for 10k pages",
            at_10k
        );
    }

    #[test]
    fn lru_tokens_stay_monotone_under_interleaved_promote_demote() {
        let mut m = dual_manager(8);
        let mut last_token = 0u64;
        for i in 0..40u64 {
            let lpn = i % 10;
            let _ = m.access(&rd(i * 10, lpn, 1), DeviceId((i % 2) as usize));
            if i % 3 == 0 {
                // Interleave background promotions and demotions.
                let to = DeviceId(((i / 3) % 2) as usize);
                let _ = m.migrate_batch(&[PageMove { lpn, to }], i as f64 * 10.0);
            }
            let dir = m.directory();
            let now = dir.current_token();
            assert!(now > last_token, "global token must advance");
            last_token = now;
            let tok = dir.recency_token(lpn).expect("page tracked");
            assert!(tok <= now, "page token cannot outrun the clock");
            // Every device's LRU index is internally ordered and every
            // token maps back to a page resident on that device.
            for d in 0..2 {
                let dev = DeviceId(d);
                let tokens: Vec<u64> = dir.iter_lru(dev).map(|(t, _)| t).collect();
                assert!(tokens.windows(2).all(|w| w[0] < w[1]), "LRU order broken");
                for (_, p) in dir.iter_lru(dev) {
                    assert_eq!(dir.residency(p), Some(dev), "stale LRU entry");
                }
            }
        }
        // Conservation: 10 distinct pages tracked, split across devices.
        let dir = m.directory();
        assert_eq!(
            dir.used_pages(DeviceId(0)) + dir.used_pages(DeviceId(1)),
            10
        );
    }
}
