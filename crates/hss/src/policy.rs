//! The data-placement policy interface.
//!
//! Everything that decides "which device should this request's pages live
//! on" — the heuristics (CDE, HPS), the supervised baselines (Archivist,
//! RNN-HSS), the extremes (Slow-Only, Fast-Only, Oracle), and Sibyl itself
//! — implements [`PlacementPolicy`]. The driver loop is:
//!
//! ```text
//! for each request:
//!     target  = policy.place(request, context)      // decision
//!     outcome = manager.access(request, target)     // execution
//!     policy.feedback(request, outcome)             // system feedback
//! ```
//!
//! The feedback hook carries the served latency and eviction penalty —
//! for Sibyl this is the reward channel (Eq. 1); heuristics ignore it.

use crate::device::DeviceId;
use crate::manager::{AccessOutcome, StorageManager};
use sibyl_trace::IoRequest;

/// Read-only view of the system a policy may consult when deciding a
/// placement (residency, capacities, access metadata — the inputs behind
/// the paper's Table 1 state features).
#[derive(Debug)]
pub struct PlacementContext<'a> {
    /// The storage manager's observable state.
    pub manager: &'a StorageManager,
    /// Zero-based request sequence number within the run.
    pub seq: u64,
}

/// A data-placement policy.
pub trait PlacementPolicy: std::fmt::Debug {
    /// A short display name (used in result tables).
    fn name(&self) -> &str;

    /// Chooses the device for this request's pages.
    fn place(&mut self, req: &IoRequest, ctx: &PlacementContext<'_>) -> DeviceId;

    /// Receives the outcome of the placement (served latency `L_t`,
    /// eviction time `L_e`, migration counts). Called exactly once per
    /// request, after [`PlacementPolicy::place`]. Default: ignore.
    fn feedback(&mut self, req: &IoRequest, outcome: &AccessOutcome, ctx: &PlacementContext<'_>) {
        let _ = (req, outcome, ctx);
    }

    /// Called once before the run starts with the number of devices and
    /// (for offline/Oracle-style policies) the full trace. Default: no-op.
    fn prepare(&mut self, num_devices: usize, trace: &sibyl_trace::Trace) {
        let _ = (num_devices, trace);
    }

    /// An eviction-victim policy to install into the storage manager, or
    /// `None` to keep the default LRU. Called after
    /// [`PlacementPolicy::prepare`]. The Oracle baseline returns its
    /// Belady selector here.
    fn victim_policy(&self) -> Option<Box<dyn crate::VictimPolicy + Send>> {
        None
    }

    /// Whether a read targeted at a *slower* device than the page's
    /// residency should actively demote the page there
    /// (see [`StorageManager::set_read_demotion`]). Default: `false` —
    /// reads only promote. The Oracle baseline opts in: with complete
    /// future knowledge, a slow-targeted read is a deliberate, free
    /// cleanup of the fast device rather than an under-trained guess.
    fn wants_read_demotion(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HssConfig;
    use crate::device::DeviceSpec;
    use sibyl_trace::{IoOp, Trace};

    /// A minimal policy for exercising the trait's default methods.
    #[derive(Debug)]
    struct AlwaysFast;

    impl PlacementPolicy for AlwaysFast {
        fn name(&self) -> &str {
            "always-fast"
        }

        fn place(&mut self, _req: &IoRequest, _ctx: &PlacementContext<'_>) -> DeviceId {
            DeviceId(0)
        }
    }

    #[test]
    fn trait_defaults_are_callable() {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![4, u64::MAX]);
        let mut mgr = StorageManager::new(&cfg);
        let mut p = AlwaysFast;
        let trace = Trace::from_requests("t", vec![IoRequest::new(0, 0, 1, IoOp::Write)]);
        p.prepare(2, &trace);
        let req = trace.requests()[0];
        let target = {
            let ctx = PlacementContext {
                manager: &mgr,
                seq: 0,
            };
            p.place(&req, &ctx)
        };
        assert_eq!(target, DeviceId(0));
        let out = mgr.access(&req, target);
        let ctx = PlacementContext {
            manager: &mgr,
            seq: 0,
        };
        p.feedback(&req, &out, &ctx);
        assert_eq!(p.name(), "always-fast");
    }
}
