//! System-level statistics collected by the storage manager.

use serde::{Deserialize, Serialize};

/// A fixed log-scale latency histogram (µs), 1 µs to ~100 s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket `i` counts latencies in `[2^i, 2^(i+1))` µs.
    buckets: Vec<u64>,
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; 28],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample in microseconds.
    pub fn record(&mut self, latency_us: f64) {
        let us = latency_us.max(0.0);
        let idx = if us < 1.0 {
            0
        } else {
            (us.log2() as usize).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate latency percentile (0..100) in microseconds, using the
    /// upper edge of the bucket containing the quantile. Returns 0 for an
    /// empty histogram.
    pub fn percentile_us(&self, pct: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (pct.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return 2f64.powi(i as i32 + 1);
            }
        }
        2f64.powi(self.buckets.len() as i32)
    }
}

/// Aggregate statistics for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HssStats {
    /// Requests served.
    pub total_requests: u64,
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Sum of per-request latencies (µs).
    pub sum_latency_us: f64,
    /// Largest single-request latency (µs).
    pub max_latency_us: f64,
    /// First request arrival time (µs).
    pub first_arrival_us: f64,
    /// Last request completion time (µs).
    pub last_completion_us: f64,
    /// Background eviction events (fast → slower migrations forced by
    /// capacity).
    pub eviction_events: u64,
    /// Pages evicted.
    pub evicted_pages: u64,
    /// Time spent evicting (µs), the paper's `L_e`.
    pub eviction_time_us: f64,
    /// Pages promoted/migrated toward the policy's chosen target.
    pub migrated_pages: u64,
    /// Background-migration batches that moved at least one page
    /// ([`StorageManager::migrate_batch`](crate::StorageManager) calls).
    pub bg_migration_events: u64,
    /// Pages moved to a faster device by background migration.
    pub bg_promoted_pages: u64,
    /// Pages moved to a slower device by background migration.
    pub bg_demoted_pages: u64,
    /// Device time consumed by background-migration I/O (µs) — charged
    /// against the devices' clocks, so it is contention foreground
    /// requests can observe.
    pub bg_migration_us: f64,
    /// Per-device count of requests the policy targeted at that device
    /// (numerators of the paper's Fig. 17 fast-placement preference).
    pub placements: Vec<u64>,
    /// Latency distribution.
    pub histogram: LatencyHistogram,
}

impl HssStats {
    /// Creates zeroed stats for `n_devices` devices.
    pub fn new(n_devices: usize) -> Self {
        HssStats {
            placements: vec![0; n_devices],
            ..Default::default()
        }
    }

    /// Folds the run's storage accounting into a telemetry registry
    /// under the `hss.` namespace: request/eviction/migration counters
    /// plus latency and throughput gauges. Every value is derived from
    /// simulated time and logical counts — no wall clock — so recording
    /// is deterministic.
    pub fn record_registry(&self, registry: &mut sibyl_telemetry::Registry) {
        registry.counter_add("hss.requests", self.total_requests);
        registry.counter_add("hss.reads", self.reads);
        registry.counter_add("hss.writes", self.writes);
        registry.counter_add("hss.eviction_events", self.eviction_events);
        registry.counter_add("hss.evicted_pages", self.evicted_pages);
        registry.counter_add("hss.migrated_pages", self.migrated_pages);
        registry.counter_add("hss.bg_migration_events", self.bg_migration_events);
        registry.counter_add("hss.bg_promoted_pages", self.bg_promoted_pages);
        registry.counter_add("hss.bg_demoted_pages", self.bg_demoted_pages);
        registry.gauge_set("hss.avg_latency_us", self.avg_latency_us());
        registry.gauge_set("hss.max_latency_us", self.max_latency_us);
        registry.gauge_set("hss.iops", self.iops());
        registry.gauge_set("hss.eviction_fraction", self.eviction_fraction());
        for (device, &count) in self.placements.iter().enumerate() {
            registry.counter_add(&format!("hss.placements.device{device}"), count);
        }
    }

    /// Average request latency in microseconds (the paper's primary
    /// metric).
    pub fn avg_latency_us(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.sum_latency_us / self.total_requests as f64
        }
    }

    /// Request throughput in I/O operations per second (the paper's
    /// second metric, Fig. 10).
    pub fn iops(&self) -> f64 {
        let span = self.last_completion_us - self.first_arrival_us;
        if span <= 0.0 {
            0.0
        } else {
            self.total_requests as f64 / span * 1e6
        }
    }

    /// Evictions as a fraction of all requests (Fig. 18's y-axis).
    pub fn eviction_fraction(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.eviction_events as f64 / self.total_requests as f64
        }
    }

    /// Fraction of requests the policy placed on `device`
    /// (Fig. 17: preference for the fast device is `placement_fraction(0)`).
    pub fn placement_fraction(&self, device: usize) -> f64 {
        let total: u64 = self.placements.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.placements.get(device).copied().unwrap_or(0) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_latency_divides_by_requests() {
        let mut s = HssStats::new(2);
        s.total_requests = 4;
        s.sum_latency_us = 100.0;
        assert!((s.avg_latency_us() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = HssStats::new(2);
        assert_eq!(s.avg_latency_us(), 0.0);
        assert_eq!(s.iops(), 0.0);
        assert_eq!(s.eviction_fraction(), 0.0);
        assert_eq!(s.placement_fraction(0), 0.0);
    }

    #[test]
    fn iops_uses_wall_span() {
        let mut s = HssStats::new(1);
        s.total_requests = 1_000;
        s.first_arrival_us = 0.0;
        s.last_completion_us = 1e6; // one second
        assert!((s.iops() - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn placement_fraction_normalizes() {
        let mut s = HssStats::new(2);
        s.placements = vec![30, 10];
        assert!((s.placement_fraction(0) - 0.75).abs() < 1e-9);
        assert!((s.placement_fraction(1) - 0.25).abs() < 1e-9);
        assert_eq!(s.placement_fraction(7), 0.0);
    }

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = LatencyHistogram::default();
        for i in 1..=1000u64 {
            h.record(i as f64);
        }
        let p50 = h.percentile_us(50.0);
        let p99 = h.percentile_us(99.0);
        assert!(p50 <= p99);
        assert!(p99 <= 2048.0);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile_us(99.0), 0.0);
    }
}
