//! System-level statistics collected by the storage manager.

use serde::{Deserialize, Serialize};

/// A fixed log-scale latency histogram (µs).
///
/// Sampling and estimation mirror [`sibyl_telemetry::Log2Histogram`]
/// exactly: samples are truncated to whole microseconds, bucket `k ≥ 1`
/// counts values with bit length `k` (i.e. `[2^(k-1), 2^k)`), bucket 0
/// holds exact zeros, and percentiles are estimated by linear
/// interpolation within the covering bucket, clamped to the observed
/// min/max. The two estimators therefore agree bit-for-bit on identical
/// samples — the serving layer's `serve.latency_us` telemetry and this
/// histogram report the *same* p99, pinned by a cross-crate test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket 0 counts exact zeros; bucket `k ≥ 1` counts samples in
    /// `[2^(k-1), 2^k)` µs.
    buckets: Vec<u64>,
    count: u64,
    /// Smallest quantized sample (µs); `u64::MAX` while empty.
    min_us: u64,
    /// Largest quantized sample (µs).
    max_us: u64,
}

/// One bucket per possible bit length, plus one for zero — the same
/// layout as [`sibyl_telemetry::Log2Histogram`].
const LATENCY_BUCKETS: usize = 65;

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; LATENCY_BUCKETS],
            count: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample in microseconds. Negative and
    /// sub-microsecond samples quantize to whole µs (truncation — the
    /// same `as u64` cast the serving engine feeds its telemetry
    /// histogram).
    pub fn record(&mut self, latency_us: f64) {
        let us = latency_us.max(0.0) as u64;
        let idx = if us == 0 {
            0
        } else {
            (64 - us.leading_zeros()) as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Latency percentile (0..100) in microseconds, estimated by linear
    /// interpolation within the covering log2 bucket and clamped to the
    /// observed min/max — the same estimator as
    /// [`sibyl_telemetry::Log2Histogram::percentile`] (the previous
    /// upper-edge rule overestimated by up to 2×). Returns 0 for an
    /// empty histogram.
    pub fn percentile_us(&self, pct: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = pct.clamp(0.0, 100.0) / 100.0;
        // Rank of the sample we want, in [0, count - 1].
        let rank = p * (self.count - 1) as f64;
        let mut below = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let upper = below + c;
            if rank < upper as f64 {
                let within = (rank - below as f64) / c as f64;
                let lo = match k {
                    0 => 0u64,
                    _ => 1u64 << (k - 1),
                } as f64;
                let hi = match k {
                    0 => 1u64,
                    64 => u64::MAX,
                    _ => 1u64 << k,
                } as f64;
                let est = lo + within * (hi - lo);
                return est.clamp(self.min_us as f64, self.max_us as f64);
            }
            below = upper;
        }
        self.max_us as f64
    }
}

/// Aggregate statistics for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HssStats {
    /// Requests served.
    pub total_requests: u64,
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Sum of per-request latencies (µs).
    pub sum_latency_us: f64,
    /// Largest single-request latency (µs).
    pub max_latency_us: f64,
    /// First request arrival time (µs).
    pub first_arrival_us: f64,
    /// Last request completion time (µs).
    pub last_completion_us: f64,
    /// Background eviction events (fast → slower migrations forced by
    /// capacity).
    pub eviction_events: u64,
    /// Pages evicted.
    pub evicted_pages: u64,
    /// Time spent evicting (µs), the paper's `L_e`.
    pub eviction_time_us: f64,
    /// Pages promoted/migrated toward the policy's chosen target.
    pub migrated_pages: u64,
    /// Background-migration batches that moved at least one page
    /// ([`StorageManager::migrate_batch`](crate::StorageManager) calls).
    pub bg_migration_events: u64,
    /// Pages moved to a faster device by background migration.
    pub bg_promoted_pages: u64,
    /// Pages moved to a slower device by background migration.
    pub bg_demoted_pages: u64,
    /// Device time consumed by background-migration I/O (µs) — charged
    /// against the devices' clocks, so it is contention foreground
    /// requests can observe.
    pub bg_migration_us: f64,
    /// Per-device count of requests the policy targeted at that device
    /// (numerators of the paper's Fig. 17 fast-placement preference).
    pub placements: Vec<u64>,
    /// Latency distribution.
    pub histogram: LatencyHistogram,
}

impl HssStats {
    /// Creates zeroed stats for `n_devices` devices.
    pub fn new(n_devices: usize) -> Self {
        HssStats {
            placements: vec![0; n_devices],
            ..Default::default()
        }
    }

    /// Folds the run's storage accounting into a telemetry registry
    /// under the `hss.` namespace: request/eviction/migration counters
    /// plus latency and throughput gauges. Every value is derived from
    /// simulated time and logical counts — no wall clock — so recording
    /// is deterministic.
    pub fn record_registry(&self, registry: &mut sibyl_telemetry::Registry) {
        registry.counter_add("hss.requests", self.total_requests);
        registry.counter_add("hss.reads", self.reads);
        registry.counter_add("hss.writes", self.writes);
        registry.counter_add("hss.eviction_events", self.eviction_events);
        registry.counter_add("hss.evicted_pages", self.evicted_pages);
        registry.counter_add("hss.migrated_pages", self.migrated_pages);
        registry.counter_add("hss.bg_migration_events", self.bg_migration_events);
        registry.counter_add("hss.bg_promoted_pages", self.bg_promoted_pages);
        registry.counter_add("hss.bg_demoted_pages", self.bg_demoted_pages);
        registry.gauge_set("hss.avg_latency_us", self.avg_latency_us());
        registry.gauge_set("hss.max_latency_us", self.max_latency_us);
        registry.gauge_set("hss.iops", self.iops());
        registry.gauge_set("hss.eviction_fraction", self.eviction_fraction());
        for (device, &count) in self.placements.iter().enumerate() {
            registry.counter_add(&format!("hss.placements.device{device}"), count);
        }
    }

    /// Average request latency in microseconds (the paper's primary
    /// metric).
    pub fn avg_latency_us(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.sum_latency_us / self.total_requests as f64
        }
    }

    /// Request throughput in I/O operations per second (the paper's
    /// second metric, Fig. 10).
    pub fn iops(&self) -> f64 {
        let span = self.last_completion_us - self.first_arrival_us;
        if span <= 0.0 {
            0.0
        } else {
            self.total_requests as f64 / span * 1e6
        }
    }

    /// Evictions as a fraction of all requests (Fig. 18's y-axis).
    pub fn eviction_fraction(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.eviction_events as f64 / self.total_requests as f64
        }
    }

    /// Fraction of requests the policy placed on `device`
    /// (Fig. 17: preference for the fast device is `placement_fraction(0)`).
    pub fn placement_fraction(&self, device: usize) -> f64 {
        let total: u64 = self.placements.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.placements.get(device).copied().unwrap_or(0) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_latency_divides_by_requests() {
        let mut s = HssStats::new(2);
        s.total_requests = 4;
        s.sum_latency_us = 100.0;
        assert!((s.avg_latency_us() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = HssStats::new(2);
        assert_eq!(s.avg_latency_us(), 0.0);
        assert_eq!(s.iops(), 0.0);
        assert_eq!(s.eviction_fraction(), 0.0);
        assert_eq!(s.placement_fraction(0), 0.0);
    }

    #[test]
    fn iops_uses_wall_span() {
        let mut s = HssStats::new(1);
        s.total_requests = 1_000;
        s.first_arrival_us = 0.0;
        s.last_completion_us = 1e6; // one second
        assert!((s.iops() - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn placement_fraction_normalizes() {
        let mut s = HssStats::new(2);
        s.placements = vec![30, 10];
        assert!((s.placement_fraction(0) - 0.75).abs() < 1e-9);
        assert!((s.placement_fraction(1) - 0.25).abs() < 1e-9);
        assert_eq!(s.placement_fraction(7), 0.0);
    }

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = LatencyHistogram::default();
        for i in 1..=1000u64 {
            h.record(i as f64);
        }
        let p50 = h.percentile_us(50.0);
        let p99 = h.percentile_us(99.0);
        assert!(p50 <= p99);
        assert!(p99 <= 1000.0, "interpolated p99 cannot exceed max: {p99}");
        assert!(
            p99 >= 512.0,
            "p99 of 1..=1000 lies in the top bucket: {p99}"
        );
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile_us(99.0), 0.0);
    }

    #[test]
    fn histogram_no_longer_overestimates_uniform_samples() {
        // 1000 samples at exactly 100 µs: the old upper-edge rule
        // reported 128 µs for every percentile; interpolation clamps to
        // the observed value.
        let mut h = LatencyHistogram::default();
        for _ in 0..1000 {
            h.record(100.0);
        }
        for pct in [50.0, 90.0, 99.0, 99.9] {
            assert_eq!(h.percentile_us(pct), 100.0, "p{pct}");
        }
    }

    #[test]
    fn percentiles_agree_with_telemetry_estimator_exactly() {
        // The unification contract: identical samples through hss's
        // LatencyHistogram and telemetry's Log2Histogram produce
        // bit-identical percentile estimates at every rank.
        let mut rng_state = 0x5157u64;
        let mut hss = LatencyHistogram::default();
        let mut tel = sibyl_telemetry::Log2Histogram::new();
        for _ in 0..5_000 {
            // Deterministic xorshift sample spanning 0..~1e6 µs.
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            let v = rng_state % 1_000_000;
            hss.record(v as f64);
            tel.record(v);
        }
        for pct in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let ours = hss.percentile_us(pct);
            let theirs = tel.percentile(pct / 100.0);
            assert_eq!(
                ours.to_bits(),
                theirs.to_bits(),
                "p{pct}: hss {ours} vs telemetry {theirs}"
            );
        }
    }

    #[test]
    fn fractional_samples_quantize_like_the_engine_cast() {
        // The serving engine feeds telemetry `latency_us as u64`; the hss
        // histogram must quantize identically so the two p99s agree on
        // the same run.
        let mut hss = LatencyHistogram::default();
        let mut tel = sibyl_telemetry::Log2Histogram::new();
        for v in [0.2, 0.9, 1.7, 3.99, 1000.5, 123456.78] {
            hss.record(v);
            tel.record(v as u64);
        }
        assert_eq!(
            hss.percentile_us(99.0).to_bits(),
            tel.percentile(0.99).to_bits()
        );
    }
}
