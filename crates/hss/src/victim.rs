//! Eviction-victim selection.
//!
//! When a placement overflows a device's capacity the manager must pick
//! pages to demote. The default is LRU (what the paper's storage
//! management layer does); the Oracle baseline plugs in a Belady
//! farthest-future-use selector through the [`VictimPolicy`] trait.

use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use crate::device::DeviceId;
use crate::manager::PageDirectory;
use sibyl_trace::Trace;

/// Chooses eviction victims for the storage manager.
///
/// Implementations may keep their own bookkeeping, fed by
/// [`VictimPolicy::on_place`] notifications for every page placement.
pub trait VictimPolicy: std::fmt::Debug {
    /// Notifies the policy that `lpn` now resides on `device` as of
    /// request sequence number `seq`.
    fn on_place(&mut self, lpn: u64, device: DeviceId, seq: u64) {
        let _ = (lpn, device, seq);
    }

    /// Picks one page to evict from `device`, or `None` to fall back to
    /// LRU order.
    fn select_victim(&mut self, device: DeviceId, dir: &PageDirectory) -> Option<u64>;
}

/// Least-recently-used victim selection (the default).
#[derive(Debug, Clone, Default)]
pub struct LruVictim;

impl VictimPolicy for LruVictim {
    fn select_victim(&mut self, device: DeviceId, dir: &PageDirectory) -> Option<u64> {
        dir.lru_first(device)
    }
}

/// Precomputed future-knowledge index: for every page, the ordered list of
/// request sequence numbers that touch it.
///
/// Built once from the full trace; shared (immutably) between the Oracle
/// placement policy and [`OracleVictim`].
#[derive(Debug, Default)]
pub struct NextUseIndex {
    accesses: HashMap<u64, Vec<u64>>,
}

impl NextUseIndex {
    /// Builds the index from a trace. Request `i` (0-based) touching pages
    /// `p..p+size` records sequence `i` for each page.
    pub fn build(trace: &Trace) -> Self {
        let mut accesses: HashMap<u64, Vec<u64>> = HashMap::new();
        for (i, r) in trace.iter().enumerate() {
            for p in r.pages() {
                accesses.entry(p).or_default().push(i as u64);
            }
        }
        NextUseIndex { accesses }
    }

    /// The sequence number of the first access to `lpn` strictly after
    /// `seq`, or `u64::MAX` if the page is never touched again.
    pub fn next_use_after(&self, lpn: u64, seq: u64) -> u64 {
        match self.accesses.get(&lpn) {
            None => u64::MAX,
            Some(seqs) => {
                let idx = seqs.partition_point(|&s| s <= seq);
                seqs.get(idx).copied().unwrap_or(u64::MAX)
            }
        }
    }

    /// Number of pages indexed.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// `true` when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

/// Belady/farthest-next-use victim selection for the Oracle baseline
/// (§7: the Oracle "exploits complete knowledge of future I/O-access
/// patterns ... to select victim data blocks for eviction from the fast
/// device").
///
/// Maintains a lazy max-heap per device keyed by each resident page's next
/// future use; stale entries (pages that moved or were re-placed) are
/// skipped during selection by re-validating against the [`PageDirectory`]
/// and the index.
#[derive(Debug)]
pub struct OracleVictim {
    future: Arc<NextUseIndex>,
    /// Lazy max-heaps per device: (next_use_seq, lpn).
    heaps: Vec<BinaryHeap<(u64, u64)>>,
}

impl OracleVictim {
    /// Creates a selector for `n_devices` devices sharing the trace's
    /// future-knowledge index.
    pub fn new(n_devices: usize, future: Arc<NextUseIndex>) -> Self {
        OracleVictim {
            future,
            heaps: (0..n_devices).map(|_| BinaryHeap::new()).collect(),
        }
    }
}

impl VictimPolicy for OracleVictim {
    /// `seq` is the manager's 1-based request counter; the placement
    /// happens *during* trace request `seq - 1`, so the relevant future
    /// starts strictly after that index.
    fn on_place(&mut self, lpn: u64, device: DeviceId, seq: u64) {
        if let Some(heap) = self.heaps.get_mut(device.0) {
            heap.push((self.future.next_use_after(lpn, seq.saturating_sub(1)), lpn));
        }
    }

    fn select_victim(&mut self, device: DeviceId, dir: &PageDirectory) -> Option<u64> {
        let heap = self.heaps.get_mut(device.0)?;
        while let Some((_next, lpn)) = heap.pop() {
            if dir.residency(lpn) == Some(device) {
                return Some(lpn);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HssConfig;
    use crate::device::DeviceSpec;
    use crate::manager::StorageManager;
    use sibyl_trace::{IoOp, IoRequest};

    fn manager_with_fast_capacity(pages: u64) -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![pages, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn trace_of(accesses: &[(u64, u64)]) -> Trace {
        // (timestamp=seq, lpn) single-page reads
        Trace::from_requests(
            "v",
            accesses
                .iter()
                .map(|&(ts, lpn)| IoRequest::new(ts, lpn, 1, IoOp::Read))
                .collect(),
        )
    }

    #[test]
    fn lru_selects_oldest_page() {
        let mut mgr = manager_with_fast_capacity(100);
        let fast = DeviceId(0);
        for (i, lpn) in [10u64, 20, 30].iter().enumerate() {
            let req = IoRequest::new(i as u64, *lpn, 1, IoOp::Write);
            let _ = mgr.access(&req, fast);
        }
        // Touch page 10 again so 20 becomes LRU.
        let _ = mgr.access(&IoRequest::new(10, 10, 1, IoOp::Read), fast);
        let mut lru = LruVictim;
        assert_eq!(lru.select_victim(fast, mgr.directory()), Some(20));
    }

    #[test]
    fn next_use_index_reports_future_accesses() {
        let idx = NextUseIndex::build(&trace_of(&[(0, 5), (1, 9), (2, 5), (3, 9), (4, 5)]));
        assert_eq!(idx.next_use_after(5, 0), 2);
        assert_eq!(idx.next_use_after(5, 2), 4);
        assert_eq!(idx.next_use_after(5, 4), u64::MAX);
        assert_eq!(idx.next_use_after(9, 1), 3);
        assert_eq!(idx.next_use_after(12345, 0), u64::MAX);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn oracle_selects_farthest_future_use() {
        // Pages 1, 2, 3 placed at seqs 0, 1, 2; next uses at 10, 500, 100.
        let trace = trace_of(&[(0, 1), (1, 2), (2, 3), (10, 1), (100, 3), (500, 2)]);
        let mut full = Vec::new();
        for (i, r) in trace.iter().enumerate() {
            full.push((i as u64, r.lpn));
        }
        let idx = Arc::new(NextUseIndex::build(&trace));
        let mut oracle = OracleVictim::new(2, Arc::clone(&idx));
        let mut mgr = manager_with_fast_capacity(100);
        let fast = DeviceId(0);
        for (seq, (_, lpn)) in full.iter().take(3).enumerate() {
            let req = IoRequest::new(seq as u64, *lpn, 1, IoOp::Write);
            let _ = mgr.access(&req, fast);
            // on_place takes the manager's 1-based sequence counter.
            oracle.on_place(*lpn, fast, seq as u64 + 1);
        }
        // Page 2's next use (seq 5) is farthest.
        assert_eq!(oracle.select_victim(fast, mgr.directory()), Some(2));
    }

    #[test]
    fn oracle_skips_stale_entries() {
        let trace = trace_of(&[(0, 7), (1, 7)]);
        let idx = Arc::new(NextUseIndex::build(&trace));
        let mut oracle = OracleVictim::new(2, idx);
        let mut mgr = manager_with_fast_capacity(100);
        let fast = DeviceId(0);
        let slow = DeviceId(1);
        let _ = mgr.access(&IoRequest::new(0, 7, 1, IoOp::Write), fast);
        oracle.on_place(7, fast, 1);
        // The page then moves to slow storage; the heap entry is stale.
        let _ = mgr.access(&IoRequest::new(1, 7, 1, IoOp::Write), slow);
        assert_eq!(oracle.select_victim(fast, mgr.directory()), None);
    }

    #[test]
    fn oracle_empty_returns_none() {
        let idx = Arc::new(NextUseIndex::default());
        let mut oracle = OracleVictim::new(2, idx);
        let mgr = manager_with_fast_capacity(10);
        assert_eq!(oracle.select_victim(DeviceId(0), mgr.directory()), None);
    }
}
