//! Where a finding lives decides whether it is a finding at all.
//!
//! Two layers of context feed the rules:
//!
//! 1. **File class** — derived from the workspace-relative path. Library
//!    sources carry the full contract; bench code may read wall clocks
//!    (it measures them); test harnesses may `unwrap`.
//! 2. **Test regions** — spans inside library files under `#[cfg(test)]`
//!    or `#[test]`, found by brace-matching the token stream. Rules that
//!    exist to keep *production* logic deterministic are silent there,
//!    while rules that also guard test hygiene (wall-clock deadlines,
//!    entropy) still apply.
//!
//! This module also parses suppression annotations:
//!
//! ```text
//! // sibyl-lint: allow(rule-name, other-rule) -- justification
//! ```
//!
//! The reason after `--` is mandatory — an allow without a written
//! justification is itself a finding. Doc comments never count as
//! annotations, so documentation (like this) can quote the grammar.

use std::path::Path;

use crate::lexer::{Comment, Lexed, Tok};
use crate::rules::Rule;

/// What kind of source file is being linted; decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library or binary code under a crate's `src/` (including the
    /// workspace facade). Full contract.
    Lib,
    /// The bench crate's library (`crates/bench/src`): measurement
    /// harness code — may read wall clocks, but its *tables* must stay
    /// deterministic, so the data-ordering rules still apply.
    BenchLib,
    /// A `harness = false` bench target under `benches/`.
    BenchTarget,
    /// Integration tests under a `tests/` directory.
    TestCode,
    /// Example binaries under `examples/`.
    ExampleCode,
}

/// Classifies `rel` (a path relative to the workspace root), or `None`
/// for files the scanner must skip entirely: vendored shims (third-party
/// API surface, not project logic), build output, lint fixtures (which
/// contain violations by design), and VCS internals.
pub fn classify(rel: &Path) -> Option<FileClass> {
    let parts: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    for skip in ["shims", "target", "fixtures", ".git"] {
        if parts.contains(&skip) {
            return None;
        }
    }
    let bench_crate = parts.windows(2).any(|w| w == ["crates", "bench"]);
    if parts.contains(&"benches") {
        return Some(FileClass::BenchTarget);
    }
    if bench_crate {
        return Some(FileClass::BenchLib);
    }
    if parts.contains(&"tests") {
        return Some(FileClass::TestCode);
    }
    if parts.contains(&"examples") {
        return Some(FileClass::ExampleCode);
    }
    Some(FileClass::Lib)
}

/// Token-index spans (half-open) of test-only code inside a file:
/// items annotated `#[cfg(test)]` or `#[test]`.
#[derive(Debug, Default)]
pub struct TestSpans(Vec<(usize, usize)>);

impl TestSpans {
    /// `true` if token index `i` lies inside a test-only item.
    pub fn contains(&self, i: usize) -> bool {
        self.0.iter().any(|&(s, e)| s <= i && i < e)
    }
}

/// Finds test-only item spans by walking the token stream.
///
/// An attribute whose tokens include the identifier `test` (and not
/// `not`, so `#[cfg(not(test))]` stays production code) marks the item
/// that follows: the span runs to the item's terminating `;` or the
/// close of its first brace block — which for `#[cfg(test)] mod tests`
/// is the whole module body.
pub fn test_spans(lexed: &Lexed) -> TestSpans {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].tok.is_punct('#') && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('[')) {
            let attr_start = i;
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < toks.len() && depth > 0 {
                match &toks[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(s) if s == "test" => saw_test = true,
                    Tok::Ident(s) if s == "not" => saw_not = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_test && !saw_not {
                let end = item_end(toks, j);
                spans.push((attr_start, end));
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    TestSpans(spans)
}

/// The token index one past the item starting at `i`: past the matching
/// `}` of the first top-level brace block, or past the first `;` before
/// any block opens. Skips further attributes and leading keywords.
fn item_end(toks: &[crate::lexer::Token], mut i: usize) -> usize {
    // Skip any further attributes between the test attribute and the item.
    while i < toks.len()
        && toks[i].tok.is_punct('#')
        && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('['))
    {
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let mut depth = 0i32;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            Tok::Punct(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// One parsed `sibyl-lint:` annotation comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the annotation sits on.
    pub line: u32,
    /// Rules it suppresses.
    pub rules: Vec<Rule>,
    /// Parse problem, if any — malformed annotations become findings
    /// rather than silently suppressing nothing.
    pub error: Option<String>,
}

const PREFIX: &str = "sibyl-lint:";

/// Extracts every `sibyl-lint:` annotation from a file's comments.
/// Doc comments are skipped by design.
pub fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let Some(pos) = c.text.find(PREFIX) else {
            continue;
        };
        let rest = c.text[pos + PREFIX.len()..].trim();
        out.push(parse_one(c.line, rest));
    }
    out
}

fn parse_one(line: u32, rest: &str) -> Allow {
    let malformed = |msg: &str| Allow {
        line,
        rules: Vec::new(),
        error: Some(msg.to_string()),
    };
    let Some(body) = rest.strip_prefix("allow") else {
        return malformed("expected `allow(<rule>, …) -- <reason>`");
    };
    let body = body.trim_start();
    let Some(body) = body.strip_prefix('(') else {
        return malformed("expected `(` after `allow`");
    };
    let Some(close) = body.find(')') else {
        return malformed("unclosed rule list");
    };
    let (list, tail) = body.split_at(close);
    let mut rules = Vec::new();
    for name in list.split(',') {
        let name = name.trim();
        if name.is_empty() {
            return malformed("empty rule name in allow list");
        }
        match Rule::from_name(name) {
            Some(r) => rules.push(r),
            None => {
                return malformed(&format!("unknown rule `{name}`"));
            }
        }
    }
    if rules.is_empty() {
        return malformed("empty allow list");
    }
    let tail = tail[1..].trim(); // past ')'
    let Some(reason) = tail.strip_prefix("--") else {
        return malformed("missing `-- <reason>` justification");
    };
    if reason.trim().is_empty() {
        return malformed("empty justification after `--`");
    }
    Allow {
        line,
        rules,
        error: None,
    }
}

/// Suppression lookup: a finding on `line` is covered by an allow on the
/// same line (trailing comment) or on any comment-only line in the
/// contiguous run directly above it.
#[derive(Debug)]
pub struct Suppressions<'a> {
    allows: &'a [Allow],
    lexed: &'a Lexed,
}

impl<'a> Suppressions<'a> {
    /// Builds the lookup for one file.
    pub fn new(allows: &'a [Allow], lexed: &'a Lexed) -> Self {
        Suppressions { allows, lexed }
    }

    /// `true` if `rule` is allowed at `line`.
    pub fn covers(&self, rule: Rule, line: u32) -> bool {
        if self.at(rule, line) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && !self.lexed.code_lines.contains(&l) {
            if self.at(rule, l) {
                return true;
            }
            l -= 1;
        }
        false
    }

    fn at(&self, rule: Rule, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.line == line && a.error.is_none() && a.rules.contains(&rule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classification_by_path() {
        let f = |p: &str| classify(Path::new(p));
        assert_eq!(f("crates/core/src/agent.rs"), Some(FileClass::Lib));
        assert_eq!(f("src/lib.rs"), Some(FileClass::Lib));
        assert_eq!(f("crates/bench/src/lib.rs"), Some(FileClass::BenchLib));
        assert_eq!(
            f("crates/bench/benches/sec10_overhead.rs"),
            Some(FileClass::BenchTarget)
        );
        assert_eq!(f("tests/smoke.rs"), Some(FileClass::TestCode));
        assert_eq!(
            f("crates/nn/tests/train_batch_parity.rs"),
            Some(FileClass::TestCode)
        );
        assert_eq!(f("examples/quickstart.rs"), Some(FileClass::ExampleCode));
        assert_eq!(f("shims/rand/src/lib.rs"), None);
        assert_eq!(f("crates/lint/tests/fixtures/bad.rs"), None);
        assert_eq!(f("target/debug/build/foo.rs"), None);
    }

    #[test]
    fn cfg_test_mod_span_covers_module_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}";
        let lexed = lex(src);
        let spans = test_spans(&lexed);
        let idx_of = |name: &str| {
            lexed
                .tokens
                .iter()
                .position(|t| t.tok.is_ident(name))
                .expect("token present")
        };
        assert!(!spans.contains(idx_of("live")));
        assert!(spans.contains(idx_of("helper")));
        assert!(!spans.contains(idx_of("after")));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))]\nfn shipping() {}";
        let lexed = lex(src);
        let spans = test_spans(&lexed);
        assert!(!spans.contains(3));
    }

    #[test]
    fn test_fn_span_is_just_that_fn() {
        let src = "#[test]\n#[should_panic]\nfn boom() { let x = 1; }\nfn live() {}";
        let lexed = lex(src);
        let spans = test_spans(&lexed);
        let boom = lexed
            .tokens
            .iter()
            .position(|t| t.tok.is_ident("boom"))
            .expect("boom present");
        let live = lexed
            .tokens
            .iter()
            .position(|t| t.tok.is_ident("live"))
            .expect("live present");
        assert!(spans.contains(boom));
        assert!(!spans.contains(live));
    }

    #[test]
    fn allow_parsing_happy_path() {
        let lexed =
            lex("// sibyl-lint: allow(unwrap-in-lib, wallclock-in-logic) -- invariant\nlet x = 1;");
        let allows = parse_allows(&lexed.comments);
        assert_eq!(allows.len(), 1);
        assert!(allows[0].error.is_none());
        assert_eq!(
            allows[0].rules,
            vec![Rule::UnwrapInLib, Rule::WallclockInLogic]
        );
        let sup = Suppressions::new(&allows, &lexed);
        assert!(sup.covers(Rule::UnwrapInLib, 2));
        assert!(!sup.covers(Rule::EntropyRng, 2));
    }

    #[test]
    fn allow_requires_reason_and_known_rule() {
        let no_reason = lex("// sibyl-lint: allow(unwrap-in-lib)\n");
        assert!(parse_allows(&no_reason.comments)[0].error.is_some());
        let unknown = lex("// sibyl-lint: allow(no-such-rule) -- because\n");
        assert!(parse_allows(&unknown.comments)[0].error.is_some());
    }

    #[test]
    fn doc_comments_never_annotate() {
        let lexed = lex("/// sibyl-lint: allow(unwrap-in-lib) -- doc example\nlet x = 1;");
        assert!(parse_allows(&lexed.comments).is_empty());
    }

    #[test]
    fn suppression_walks_over_comment_only_lines() {
        let src = "// sibyl-lint: allow(unwrap-in-lib) -- reason here\n// more commentary\nlet x = opt.unwrap();";
        let lexed = lex(src);
        let allows = parse_allows(&lexed.comments);
        let sup = Suppressions::new(&allows, &lexed);
        assert!(sup.covers(Rule::UnwrapInLib, 3));
    }

    #[test]
    fn suppression_does_not_cross_code_lines() {
        let src =
            "// sibyl-lint: allow(unwrap-in-lib) -- reason here\nlet y = 1;\nlet x = opt.unwrap();";
        let lexed = lex(src);
        let allows = parse_allows(&lexed.comments);
        let sup = Suppressions::new(&allows, &lexed);
        assert!(!sup.covers(Rule::UnwrapInLib, 3));
    }
}
