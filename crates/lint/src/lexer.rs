//! A lightweight Rust tokenizer.
//!
//! The workspace builds offline, so `syn` is unavailable; the lint rules
//! instead operate on this hand-rolled token stream. The lexer
//! understands exactly as much Rust as the rules need:
//!
//! - identifiers and keywords (including raw identifiers `r#type`),
//! - all literal shapes that could otherwise confuse a scanner — plain,
//!   raw (`r#"…"#`), and byte strings, char literals vs. lifetimes,
//!   numbers with suffixes and exponents,
//! - line and (nested) block comments, kept separately so annotation
//!   comments can be parsed without polluting the token stream,
//! - single-character punctuation.
//!
//! Every token carries its 1-based source line, and the lexer records
//! which lines contain code tokens at all — the annotation-suppression
//! walk uses that to step over comment-only lines.

use std::collections::BTreeSet;

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// Any literal (string, raw string, byte string, char, number),
    /// carrying its raw source text.
    Lit(String),
    /// A lifetime such as `'a`.
    Lifetime,
    /// A single punctuation character.
    Punct(char),
}

impl Tok {
    /// The identifier's text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// `true` if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == name)
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A comment (line or block) with its starting line and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Body text, without the `//` / `/*` framing.
    pub text: String,
    /// `true` for doc comments (`///`, `//!`, `/**`, `/*!`): annotation
    /// parsing ignores those, so rule documentation can quote the
    /// grammar without creating live annotations.
    pub doc: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments excluded).
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
    /// Lines containing at least one code token.
    pub code_lines: BTreeSet<u32>,
}

/// Tokenizes `src`. Never fails: unterminated constructs simply consume
/// to end of input, which is good enough for a linter (the compiler
/// rejects such files anyway).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0);
        if c == Some('\n') {
            self.line += 1;
        }
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.code_lines.insert(line);
        self.out.tokens.push(Token { tok, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_lit(),
                '\'' => self.quote(),
                'r' if matches!(self.peek(1), Some('"' | '#')) => self.raw_prefixed(),
                'b' if matches!(self.peek(1), Some('"' | '\'' | 'r')) => self.byte_prefixed(),
                _ if c.is_alphabetic() || c == '_' => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.i;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.bump();
        }
        let raw: String = self.chars[start..self.i].iter().collect();
        let doc = raw.starts_with("///") || raw.starts_with("//!");
        let text = raw
            .trim_start_matches('/')
            .trim_start_matches('!')
            .to_string();
        self.out.comments.push(Comment { line, text, doc });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.i;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some('*' | '!')) && self.peek(1) != Some('/');
        let mut depth = 1usize;
        while depth > 0 && self.peek(0).is_some() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let raw: String = self.chars[start..self.i].iter().collect();
        let text = raw
            .trim_start_matches("/*")
            .trim_end_matches("*/")
            .to_string();
        self.out.comments.push(Comment { line, text, doc });
    }

    /// A plain (escaped) string body, starting at the opening `"`.
    fn string_lit(&mut self) {
        let line = self.line;
        let start = self.i;
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump();
                self.bump();
            } else if c == '"' {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(Tok::Lit(text), line);
    }

    /// `'` — a lifetime, a loop label, or a char literal.
    fn quote(&mut self) {
        let line = self.line;
        let start = self.i;
        let next = self.peek(1);
        let is_lifetime =
            next.is_some_and(|c| c.is_alphabetic() || c == '_') && self.peek(2) != Some('\'');
        if is_lifetime {
            self.bump(); // '
            while self
                .peek(0)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                self.bump();
            }
            self.push(Tok::Lifetime, line);
            return;
        }
        // Char literal: 'x', '\n', '\u{…}', '\''.
        self.bump(); // opening '
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump();
                self.bump();
            } else if c == '\'' {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(Tok::Lit(text), line);
    }

    /// `r"…"`, `r#"…"#`, or a raw identifier `r#name`.
    fn raw_prefixed(&mut self) {
        let line = self.line;
        // Count hashes after the `r`.
        let mut hashes = 0usize;
        while self.peek(1 + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(1 + hashes) == Some('"') {
            self.raw_string(hashes, line);
        } else if hashes == 1 && self.peek(2).is_some_and(|c| c.is_alphabetic() || c == '_') {
            // Raw identifier r#name.
            self.bump(); // r
            self.bump(); // #
            self.ident();
        } else {
            // Just the identifier `r`.
            self.ident();
        }
    }

    /// `b"…"`, `br#"…"#`, or `b'x'`.
    fn byte_prefixed(&mut self) {
        let line = self.line;
        match self.peek(1) {
            Some('"') => {
                self.bump(); // b
                self.string_lit();
            }
            Some('\'') => {
                self.bump(); // b
                self.quote();
            }
            Some('r') => {
                let mut hashes = 0usize;
                while self.peek(2 + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(2 + hashes) == Some('"') {
                    self.bump(); // b
                    self.raw_string(hashes, line);
                } else {
                    self.ident();
                }
            }
            _ => self.ident(),
        }
    }

    /// A raw string starting at the current `r`, with `hashes` hash
    /// marks before the opening quote.
    fn raw_string(&mut self, hashes: usize, line: u32) {
        let start = self.i;
        self.bump(); // r
        for _ in 0..hashes {
            self.bump();
        }
        self.bump(); // opening "
        'body: while let Some(c) = self.peek(0) {
            if c == '"' {
                // Check for closing quote + hashes.
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        self.bump();
                        continue 'body;
                    }
                }
                self.bump(); // "
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(Tok::Lit(text), line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.i;
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(Tok::Ident(text), line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Float point — but not a range like `1..5`.
                self.bump();
            } else if (c == '+' || c == '-')
                && self
                    .chars
                    .get(self.i.wrapping_sub(1))
                    .is_some_and(|p| *p == 'e' || *p == 'E')
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // Exponent sign in `1.0e-5`.
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push(Tok::Lit(text), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.tok.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("let x = 1;\nfn foo() {}\n");
        assert!(l.tokens[0].tok.is_ident("let"));
        assert_eq!(l.tokens[0].line, 1);
        let fn_tok = l
            .tokens
            .iter()
            .find(|t| t.tok.is_ident("fn"))
            .map(|t| t.line);
        assert_eq!(fn_tok, Some(2));
        assert!(l.code_lines.contains(&1) && l.code_lines.contains(&2));
    }

    #[test]
    fn strings_hide_their_contents() {
        // Identifier-looking text inside string literals must not
        // surface as identifiers — rules match on idents only.
        assert_eq!(
            idents(r#"let s = "Instant::now from_entropy";"#),
            ["let", "s"]
        );
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let src = "let s = r#\"text \" with quote\"#; /* outer /* inner */ still */ let t = 2;";
        assert_eq!(idents(src), ["let", "s", "let", "t"]);
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime))
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| matches!(&t.tok, Tok::Lit(s) if s.starts_with('\'')))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let l = lex(r"let c = '\''; let d = '\n';");
        let lits = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lit(_)))
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let l = lex("for i in 1..15 { let f = 1.5e-3f64; }");
        let lits: Vec<String> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Lit(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lits, ["1", "15", "1.5e-3f64"]);
    }

    #[test]
    fn doc_comments_are_marked() {
        let l = lex("/// doc\n//! inner\n// plain\n/** block doc */\nlet x = 1;");
        let flags: Vec<bool> = l.comments.iter().map(|c| c.doc).collect();
        assert_eq!(flags, [true, true, false, true]);
    }

    #[test]
    fn comment_only_lines_are_not_code_lines() {
        let l = lex("let a = 1;\n// just a comment\nlet b = 2;");
        assert!(l.code_lines.contains(&1));
        assert!(!l.code_lines.contains(&2));
        assert!(l.code_lines.contains(&3));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }
}
