//! `sibyl-lint` — the workspace determinism & concurrency contract,
//! as a program.
//!
//! The Sibyl stack's headline guarantee is bit-identical results across
//! runs: the parity suites (PR 4) pin the numerics after the fact, but
//! nothing stopped a new `HashMap` iteration, an entropy-seeded RNG, or
//! a wall-clock read from silently breaking reproducibility until a
//! long `sec14_scale` run had to bisect it. This crate encodes the
//! contract as six deny-by-default rules checked at build time:
//!
//! | rule | catches |
//! |------|---------|
//! | `wallclock-in-logic` | `Instant::now` / `SystemTime` outside bench code — the one sanctioned library reader is `sibyl-telemetry`'s `measured` module, which quarantines wall-clock behind the excluded `measured.*` metric namespace and carries the workspace's single annotated `Instant::now` |
//! | `unordered-map-iteration` | hash-ordered iteration in non-test code |
//! | `entropy-rng` | RNG construction that is not caller-seeded |
//! | `unwrap-in-lib` | `unwrap`/`expect` in library non-test code |
//! | `guard-across-blocking` | lock guards live across `send`/`recv`/`wait`/`join` |
//! | `unordered-float-reduction` | order-unstable float folds |
//!
//! Findings are suppressible only by an annotation that names the rule
//! *and* writes down why:
//!
//! ```text
//! // sibyl-lint: allow(wallclock-in-logic) -- train_ns telemetry; never feeds decisions
//! ```
//!
//! A malformed annotation is itself a finding (`bad-annotation`) and is
//! not suppressible. The container has no crate registry, so the crate
//! is dependency-free and carries its own tokenizer ([`lexer`]).

#![forbid(unsafe_code)]

pub mod context;
pub mod lexer;
pub mod rules;
pub mod scan;

pub use context::{classify, FileClass};
pub use rules::{Finding, Rule, ALL_RULES};
pub use scan::{lint_source, scan_workspace};
