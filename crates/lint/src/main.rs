//! CLI for the workspace determinism & concurrency contract checker.
//!
//! ```text
//! sibyl-lint [--deny] [--root <dir>] [--list-rules]
//! ```
//!
//! Prints one line per finding (`file:line: [rule] message`). Exit code
//! 0 when clean; with `--deny`, exit code 1 when any finding survives
//! its annotations; exit code 2 on usage or I/O errors. CI runs
//! `cargo run -p sibyl-lint --release -- --deny` ahead of the test jobs.

use std::path::PathBuf;
use std::process::ExitCode;

use sibyl_lint::{scan_workspace, ALL_RULES};

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--list-rules" => {
                for rule in ALL_RULES {
                    println!("{:<28} {}", rule.name(), rule.description());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: sibyl-lint [--deny] [--root <dir>] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let findings = match scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sibyl-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("sibyl-lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "sibyl-lint: {} finding{} (suppress only with `// sibyl-lint: allow(<rule>) -- <reason>`)",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
        if deny {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("sibyl-lint: {msg}");
    eprintln!("usage: sibyl-lint [--deny] [--root <dir>] [--list-rules]");
    ExitCode::from(2)
}
