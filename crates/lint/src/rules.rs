//! The six rules of the determinism & concurrency contract.
//!
//! Every rule is deny-by-default: a match is a finding unless the line
//! carries (or sits under) a `// sibyl-lint: allow(<rule>) -- <reason>`
//! annotation. The checks are token-pattern passes over the
//! [`lexer`](crate::lexer) stream — deliberately heuristic (no type
//! information), tuned so that everything they miss is rare and
//! everything they catch is worth a human decision.

use crate::context::{FileClass, TestSpans};
use crate::lexer::{Lexed, Tok, Token};

/// The rules of the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `Instant::now` / `SystemTime` outside bench code: wall-clock
    /// reads feeding logic break run-to-run reproducibility.
    WallclockInLogic,
    /// Iterating a `HashMap`/`HashSet` (`RandomState` ⇒ order differs
    /// across runs) without immediately imposing an order.
    UnorderedMapIteration,
    /// RNG construction that is not caller-seeded: entropy sources, or
    /// a hard-coded seed buried inside library logic.
    EntropyRng,
    /// `unwrap`/`expect` in library non-test code: panics where the
    /// stack has typed error enums.
    UnwrapInLib,
    /// A lock guard live across a blocking call (`send`/`recv`/`wait`/
    /// `join`): the deadlock shape the coop barrier already met once.
    GuardAcrossBlocking,
    /// An order-unstable floating-point reduction (hash-ordered source
    /// folded into an `f32`/`f64`) in parity-pinned kernels.
    UnorderedFloatReduction,
    /// A malformed suppression annotation — never silently ignored.
    BadAnnotation,
}

/// All real (annotatable) rules, in reporting order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::WallclockInLogic,
    Rule::UnorderedMapIteration,
    Rule::EntropyRng,
    Rule::UnwrapInLib,
    Rule::GuardAcrossBlocking,
    Rule::UnorderedFloatReduction,
];

impl Rule {
    /// The rule's kebab-case name, as used in annotations and output.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallclockInLogic => "wallclock-in-logic",
            Rule::UnorderedMapIteration => "unordered-map-iteration",
            Rule::EntropyRng => "entropy-rng",
            Rule::UnwrapInLib => "unwrap-in-lib",
            Rule::GuardAcrossBlocking => "guard-across-blocking",
            Rule::UnorderedFloatReduction => "unordered-float-reduction",
            Rule::BadAnnotation => "bad-annotation",
        }
    }

    /// Parses a rule name (annotations may name any rule but
    /// `bad-annotation`, which is not suppressible).
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.name() == name)
    }

    /// One-line description for `--list-rules`.
    pub fn description(self) -> &'static str {
        match self {
            Rule::WallclockInLogic => {
                "wall-clock reads (Instant::now / SystemTime) outside bench code"
            }
            Rule::UnorderedMapIteration => {
                "HashMap/HashSet iteration without an imposed order in non-test code"
            }
            Rule::EntropyRng => "RNG construction that is not caller-seeded",
            Rule::UnwrapInLib => "unwrap/expect in library non-test code",
            Rule::GuardAcrossBlocking => {
                "lock guard held across send/recv/wait/join (deadlock shape)"
            }
            Rule::UnorderedFloatReduction => {
                "float reduction over a hash-ordered source (order-unstable sum)"
            }
            Rule::BadAnnotation => "malformed sibyl-lint allow annotation",
        }
    }
}

/// One unsuppressed rule match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path (filled by the scanner).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Whether `rule` applies to code of `class`, inside (`in_test`) or
/// outside test regions. This is the contract's applicability matrix —
/// mirrored in ARCHITECTURE.md's "Determinism contract" section.
fn applies(rule: Rule, class: FileClass, in_test: bool) -> bool {
    use FileClass::*;
    match rule {
        // Bench code measures wall time for a living; everything else —
        // including tests, whose deadline reads must be justified — is
        // covered.
        Rule::WallclockInLogic => !matches!(class, BenchLib | BenchTarget),
        // Data-ordering rules guard anything that produces results or
        // output; tests iterate maps for assertions all the time.
        Rule::UnorderedMapIteration | Rule::UnorderedFloatReduction => {
            !matches!(class, TestCode) && !in_test
        }
        // Entropy is banned everywhere — the whole workspace must be
        // reproducible, benches and tests included.
        Rule::EntropyRng => true,
        Rule::UnwrapInLib => matches!(class, Lib) && !in_test,
        // A deadlock in a test hangs CI just as hard.
        Rule::GuardAcrossBlocking => true,
        Rule::BadAnnotation => true,
    }
}

/// Runs every rule over one lexed file. Returned findings are
/// *unsuppressed* matches; the caller applies annotations.
pub fn check_file(lexed: &Lexed, class: FileClass, spans: &TestSpans) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &lexed.tokens;
    let hash_names = collect_hash_names(toks);

    let mut push = |rule: Rule, idx: usize, message: String| {
        if applies(rule, class, spans.contains(idx)) {
            out.push(Finding {
                file: String::new(),
                line: toks[idx].line,
                rule,
                message,
            });
        }
    };

    for i in 0..toks.len() {
        wallclock(toks, i, &mut push);
        entropy(toks, i, class, spans, &mut push);
        unwrap_in_lib(toks, i, &mut push);
        map_iteration(toks, i, &hash_names, &mut push);
    }
    guard_across_blocking(toks, &mut push);
    out
}

type Push<'a> = dyn FnMut(Rule, usize, String) + 'a;

// ---------------------------------------------------------------- rule 1

fn wallclock(toks: &[Token], i: usize, push: &mut Push<'_>) {
    if let Some(name) = toks[i].tok.ident() {
        match name {
            "SystemTime" | "UNIX_EPOCH" => push(
                Rule::WallclockInLogic,
                i,
                format!("`{name}` is a wall-clock source; results must not depend on it"),
            ),
            "Instant" if path_call(toks, i, "now") => push(
                Rule::WallclockInLogic,
                i,
                "`Instant::now()` in logic; only bench code and annotated telemetry spans \
                 may read the clock"
                    .to_string(),
            ),
            _ => {}
        }
    }
}

/// `toks[i] :: method` — e.g. `Instant :: now`.
fn path_call(toks: &[Token], i: usize, method: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.tok.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.tok.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.tok.is_ident(method))
}

// ---------------------------------------------------------------- rule 3

const ENTROPY_IDENTS: [&str; 6] = [
    "from_entropy",
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_os_rng",
    "getrandom",
];

fn entropy(toks: &[Token], i: usize, class: FileClass, spans: &TestSpans, push: &mut Push<'_>) {
    let Some(name) = toks[i].tok.ident() else {
        return;
    };
    if ENTROPY_IDENTS.contains(&name) {
        push(
            Rule::EntropyRng,
            i,
            format!(
                "`{name}` draws OS entropy; every RNG must be built from a caller-provided seed"
            ),
        );
        return;
    }
    if name == "rand" && path_call(toks, i, "random") {
        push(
            Rule::EntropyRng,
            i,
            "`rand::random` uses the thread RNG; seed explicitly instead".to_string(),
        );
        return;
    }
    // Hard-coded seeds: a literal buried in library logic means the
    // caller cannot vary — or even see — the stream. Applies to library
    // code only; tests and bench targets pin seeds by design.
    let literal_seed_scope =
        matches!(class, FileClass::Lib | FileClass::BenchLib) && !spans.contains(i);
    if literal_seed_scope
        && (name == "seed_from_u64" || name == "from_seed")
        && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('('))
        && toks
            .get(i + 2)
            .is_some_and(|t| matches!(t.tok, Tok::Lit(_)) || t.tok.is_punct('['))
    {
        push(
            Rule::EntropyRng,
            i,
            format!(
                "`{name}` with a hard-coded seed in library code; thread the seed from the caller"
            ),
        );
    }
}

// ---------------------------------------------------------------- rule 4

fn unwrap_in_lib(toks: &[Token], i: usize, push: &mut Push<'_>) {
    if !toks[i].tok.is_punct('.') {
        return;
    }
    let Some(name) = toks.get(i + 1).and_then(|t| t.tok.ident()) else {
        return;
    };
    if (name == "unwrap" || name == "expect")
        && toks.get(i + 2).is_some_and(|t| t.tok.is_punct('('))
    {
        push(
            Rule::UnwrapInLib,
            i + 1,
            format!("`.{name}()` in library code; return the crate's typed error instead"),
        );
    }
}

// ---------------------------------------------------------------- rule 2
// (and rule 6, which triggers on the same sites)

const ITER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "retain_mut",
];

/// Identifiers escaping the iteration rule when they appear in the same
/// statement: the result is ordered (`sort*`, `BTree*`, `BinaryHeap`) or
/// order-insensitive (cardinality, membership, universal tests).
const ORDER_SAFE: [&str; 11] = [
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "count",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "any",
    "all",
    "extend",
];

/// Names declared as `HashMap`/`HashSet` in this file — via type
/// ascription (`name: HashMap<…>`, fields and bindings alike) or direct
/// construction (`name = HashMap::new()`).
fn collect_hash_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        let Some(ty) = toks[i].tok.ident() else {
            continue;
        };
        if ty != "HashMap" && ty != "HashSet" {
            continue;
        }
        // Ascription: walk back over `: & mut std :: collections`.
        let mut j = i;
        while j > 0 {
            j -= 1;
            match &toks[j].tok {
                Tok::Punct(':' | '&') | Tok::Lifetime => continue,
                Tok::Ident(s) if s == "std" || s == "collections" || s == "mut" => continue,
                _ => break,
            }
        }
        let ascribed = toks[j]
            .tok
            .ident()
            .filter(|_| toks.get(j + 1).is_some_and(|t| t.tok.is_punct(':')));
        if let Some(name) = ascribed {
            names.push(name.to_string());
            continue;
        }
        // Construction: `name = HashMap :: new()` (also with_capacity /
        // from / default).
        let constructed = path_call(toks, i, "new")
            || path_call(toks, i, "with_capacity")
            || path_call(toks, i, "from")
            || path_call(toks, i, "default");
        if constructed
            && i >= 2
            && toks[i - 1].tok.is_punct('=')
            && matches!(toks[i - 2].tok, Tok::Ident(_))
        {
            if let Some(name) = toks[i - 2].tok.ident() {
                if name != "mut" {
                    names.push(name.to_string());
                }
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

fn map_iteration(toks: &[Token], i: usize, hash_names: &[String], push: &mut Push<'_>) {
    let Some(name) = toks[i].tok.ident() else {
        return;
    };
    // `for (k, v) in &name {` — iteration without a method call.
    if name == "in" {
        let mut j = i + 1;
        while toks
            .get(j)
            .is_some_and(|t| t.tok.is_punct('&') || t.tok.is_ident("mut"))
        {
            j += 1;
        }
        let target = toks.get(j).and_then(|t| t.tok.ident());
        if let Some(target) = target {
            if hash_names.iter().any(|n| n == target)
                && toks.get(j + 1).is_some_and(|t| t.tok.is_punct('{'))
            {
                push(
                    Rule::UnorderedMapIteration,
                    j,
                    format!(
                        "iterating hash container `{target}`: RandomState makes the order \
                         differ across runs; collect and sort, or annotate why order cannot matter"
                    ),
                );
            }
        }
        return;
    }
    if !hash_names.iter().any(|n| n == name) {
        return;
    }
    if !toks.get(i + 1).is_some_and(|t| t.tok.is_punct('.')) {
        return;
    }
    let Some(method) = toks.get(i + 2).and_then(|t| t.tok.ident()) else {
        return;
    };
    if !ITER_METHODS.contains(&method) {
        return;
    }
    let (start, end) = statement(toks, i);
    if toks[start..end].iter().any(|t| {
        t.tok
            .ident()
            .is_some_and(|s| s.starts_with("sort") || ORDER_SAFE.contains(&s))
    }) {
        return;
    }
    if sorted_soon_after(toks, start, end) {
        return;
    }
    push(
        Rule::UnorderedMapIteration,
        i,
        format!(
            "iterating hash container `{name}` via `.{method}()`: RandomState makes the order \
             differ across runs; collect and sort, or annotate why order cannot matter"
        ),
    );
    float_reduction(toks, i, name, start, end, push);
}

/// Rule 6: the statement both iterates a hash container and folds the
/// stream into a float — the canonical order-unstable reduction.
fn float_reduction(
    toks: &[Token],
    i: usize,
    name: &str,
    start: usize,
    end: usize,
    push: &mut Push<'_>,
) {
    let stmt = &toks[start..end];
    let float_ty = stmt
        .iter()
        .any(|t| t.tok.is_ident("f32") || t.tok.is_ident("f64"));
    let float_fold = stmt.windows(3).any(|w| {
        w[0].tok.is_ident("fold")
            && w[1].tok.is_punct('(')
            && matches!(&w[2].tok, Tok::Lit(s) if s.contains('.'))
    });
    let has_reduce = stmt
        .iter()
        .any(|t| t.tok.is_ident("sum") || t.tok.is_ident("product"));
    if float_fold || (has_reduce && float_ty) {
        push(
            Rule::UnorderedFloatReduction,
            i,
            format!(
                "float reduction over hash-ordered `{name}`: summation order varies run to run, \
                 so the result is not bit-stable"
            ),
        );
    }
}

/// The statement around token `i`: back to the previous `;`/`{`/`}`,
/// forward to the next `;` or block opener at neutral depth.
fn statement(toks: &[Token], i: usize) -> (usize, usize) {
    // The backward walk counts `)`/`]` depth so the `;` inside an array
    // type like `[f32; 4]` does not read as a statement boundary.
    let mut depth = 0i32;
    let mut start = i;
    while start > 0 {
        match toks[start - 1].tok {
            Tok::Punct(')' | ']') => depth += 1,
            Tok::Punct('(' | '[') => depth = (depth - 1).max(0),
            Tok::Punct(';') if depth == 0 => break,
            Tok::Punct('{' | '}') => break,
            _ => {}
        }
        start -= 1;
    }
    let mut paren = 0i32;
    let mut end = i;
    while end < toks.len() {
        match toks[end].tok {
            Tok::Punct('(' | '[') => paren += 1,
            Tok::Punct(')' | ']') => paren -= 1,
            Tok::Punct(';') if paren <= 0 => break,
            Tok::Punct('{' | '}') if paren <= 0 => break,
            _ => {}
        }
        end += 1;
    }
    (start, end)
}

/// If the statement is `let [mut] b = …;`, a `b.sort*` within the next
/// ~100 tokens counts as imposing an order (collect-then-sort idiom).
fn sorted_soon_after(toks: &[Token], start: usize, end: usize) -> bool {
    if !toks[start].tok.is_ident("let") {
        return false;
    }
    let mut b = start + 1;
    if toks.get(b).is_some_and(|t| t.tok.is_ident("mut")) {
        b += 1;
    }
    let Some(bound) = toks.get(b).and_then(|t| t.tok.ident()) else {
        return false;
    };
    let horizon = (end + 100).min(toks.len());
    for j in end..horizon {
        if toks[j].tok.is_ident(bound)
            && toks.get(j + 1).is_some_and(|t| t.tok.is_punct('.'))
            && toks
                .get(j + 2)
                .and_then(|t| t.tok.ident())
                .is_some_and(|m| m.starts_with("sort"))
        {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------- rule 5

const LOCK_METHODS: [&str; 4] = ["lock", "try_lock", "read", "write"];
/// Calls that keep returning the guard rather than consuming it.
const GUARD_PRESERVING: [&str; 3] = ["expect", "unwrap", "unwrap_or_else"];
const BLOCKING: [&str; 10] = [
    "send",
    "recv",
    "recv_timeout",
    "send_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
    "join",
    "park",
    "sleep",
];

fn guard_across_blocking(toks: &[Token], push: &mut Push<'_>) {
    let mut i = 0usize;
    while i < toks.len() {
        let Some(lock_idx) = lock_call_at(toks, i) else {
            i += 1;
            continue;
        };
        let (start, end) = statement(toks, lock_idx);
        // Same-statement: a blocking call anywhere in a statement that
        // also takes a lock holds the (temporary) guard across it.
        if let Some(b) = blocking_in(toks, start, end, lock_idx) {
            push(
                Rule::GuardAcrossBlocking,
                b,
                format!(
                    "lock guard live across blocking `{}()` in the same statement",
                    ident_of(toks, b)
                ),
            );
            i = end;
            continue;
        }
        // Binding statement: `let g = m.lock()…;` where the chain after
        // the lock only re-wraps the guard. Then scan g's scope.
        if let Some(guard) = bound_guard(toks, start, end, lock_idx) {
            scan_guard_scope(toks, end, &guard, push);
        }
        i = end.max(i + 1);
    }
}

fn ident_of(toks: &[Token], i: usize) -> &str {
    toks[i].tok.ident().unwrap_or("?")
}

/// If `toks[i..]` starts a `.lock(` / `.read(` / `.write(` call, returns
/// the index of the method identifier.
fn lock_call_at(toks: &[Token], i: usize) -> Option<usize> {
    if !toks[i].tok.is_punct('.') {
        return None;
    }
    let name = toks.get(i + 1)?.tok.ident()?;
    if LOCK_METHODS.contains(&name) && toks.get(i + 2)?.tok.is_punct('(') {
        Some(i + 1)
    } else {
        None
    }
}

/// First blocking call in `[start, end)` other than the lock call itself.
fn blocking_in(toks: &[Token], start: usize, end: usize, lock_idx: usize) -> Option<usize> {
    (start..end).find(|&j| {
        j != lock_idx
            && toks[j].tok.ident().is_some_and(|s| BLOCKING.contains(&s))
            && toks.get(j + 1).is_some_and(|t| t.tok.is_punct('('))
    })
}

/// For `let [mut] g = <expr with .lock()>;` — returns `g` when the
/// chain keeps the guard alive for the binding (nothing after the lock
/// call but guard-preserving re-wraps), i.e. `g` really is a guard.
fn bound_guard(toks: &[Token], start: usize, end: usize, lock_idx: usize) -> Option<String> {
    if !toks[start].tok.is_ident("let") {
        return None;
    }
    let mut b = start + 1;
    if toks.get(b).is_some_and(|t| t.tok.is_ident("mut")) {
        b += 1;
    }
    let name = toks.get(b)?.tok.ident()?.to_string();
    // `let v = *m.lock();` copies out and drops the temporary guard.
    if toks.get(b + 1).is_some_and(|t| t.tok.is_punct('='))
        && toks.get(b + 2).is_some_and(|t| t.tok.is_punct('*'))
    {
        return None;
    }
    // Walk the chain after the lock call's argument list.
    let mut k = close_of(toks, lock_idx, end)?;
    loop {
        if k + 1 >= end || toks[k + 1].tok.is_punct(';') {
            return Some(name); // chain ends with the guard
        }
        if !toks[k + 1].tok.is_punct('.') {
            return Some(name); // e.g. trailing `}` — treat as guard
        }
        let method = toks.get(k + 2)?.tok.ident()?;
        if !GUARD_PRESERVING.contains(&method) {
            return None; // `.len()`, `.clone()`, … — temporary guard
        }
        k = close_of(toks, k + 2, end)?;
    }
}

/// Index of the `)` closing the call whose name is at `call_idx`
/// (open paren at `call_idx + 1`).
fn close_of(toks: &[Token], call_idx: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(end).skip(call_idx + 1) {
        match t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Walks the guard's lexical scope (from its binding statement to the
/// close of the enclosing block, or an explicit `drop(g)`), flagging
/// blocking calls made while the guard is live.
fn scan_guard_scope(toks: &[Token], from: usize, guard: &str, push: &mut Push<'_>) {
    let mut depth = 0i32;
    let mut j = from;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return; // enclosing block closed — guard dropped
                }
            }
            Tok::Ident(s)
                if s == "drop"
                    && toks.get(j + 1).is_some_and(|t| t.tok.is_punct('('))
                    && toks.get(j + 2).is_some_and(|t| t.tok.is_ident(guard)) =>
            {
                return; // explicit early drop
            }
            Tok::Ident(s)
                if BLOCKING.contains(&s.as_str())
                    && toks.get(j + 1).is_some_and(|t| t.tok.is_punct('(')) =>
            {
                push(
                    Rule::GuardAcrossBlocking,
                    j,
                    format!(
                        "lock guard `{guard}` held across blocking `{s}()` — the barrier/\
                         bounded-queue deadlock shape; drop the guard first or annotate the \
                         protocol that requires it"
                    ),
                );
            }
            _ => {}
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::test_spans;
    use crate::lexer::lex;

    fn findings(src: &str, class: FileClass) -> Vec<(Rule, u32)> {
        let lexed = lex(src);
        let spans = test_spans(&lexed);
        check_file(&lexed, class, &spans)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn rule_names_round_trip() {
        for r in ALL_RULES {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("bad-annotation"), None, "not suppressible");
    }

    #[test]
    fn wallclock_found_in_lib_not_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(
            findings(src, FileClass::Lib),
            vec![(Rule::WallclockInLogic, 1)]
        );
        assert!(findings(src, FileClass::BenchTarget).is_empty());
        assert!(findings(src, FileClass::BenchLib).is_empty());
    }

    #[test]
    fn systemtime_found_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let t = std::time::SystemTime::now(); }\n}";
        assert_eq!(
            findings(src, FileClass::Lib),
            vec![(Rule::WallclockInLogic, 3)]
        );
    }

    #[test]
    fn entropy_sources_banned_everywhere() {
        let src = "fn f() { let r = StdRng::from_entropy(); }";
        for class in [
            FileClass::Lib,
            FileClass::BenchLib,
            FileClass::BenchTarget,
            FileClass::TestCode,
            FileClass::ExampleCode,
        ] {
            assert_eq!(
                findings(src, class),
                vec![(Rule::EntropyRng, 1)],
                "{class:?}"
            );
        }
    }

    #[test]
    fn literal_seed_flagged_in_lib_only() {
        let src = "fn f() { let r = StdRng::seed_from_u64(42); }";
        assert_eq!(findings(src, FileClass::Lib), vec![(Rule::EntropyRng, 1)]);
        assert!(findings(src, FileClass::BenchTarget).is_empty());
        assert!(findings(src, FileClass::TestCode).is_empty());
        let caller = "fn f(seed: u64) { let r = StdRng::seed_from_u64(seed); }";
        assert!(findings(caller, FileClass::Lib).is_empty());
    }

    #[test]
    fn unwrap_in_lib_only_and_not_in_test_mod() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }";
        assert_eq!(findings(src, FileClass::Lib), vec![(Rule::UnwrapInLib, 1)]);
        assert!(findings(src, FileClass::TestCode).is_empty());
        assert!(findings(src, FileClass::ExampleCode).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n fn f(o: Option<u32>) -> u32 { o.unwrap() }\n}";
        assert!(findings(in_test, FileClass::Lib).is_empty());
        let not_unwrap = "fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }";
        assert!(findings(not_unwrap, FileClass::Lib).is_empty());
    }

    #[test]
    fn hash_iteration_flagged_and_sorted_escapes() {
        let src = "struct S { m: HashMap<u64, u64> }\nimpl S {\n fn f(&self) -> Vec<u64> { self.m.values().copied().collect() }\n}";
        assert_eq!(
            findings(src, FileClass::Lib),
            vec![(Rule::UnorderedMapIteration, 3)]
        );
        let sorted = "struct S { m: HashMap<u64, u64> }\nimpl S {\n fn f(&self) -> Vec<u64> { let mut v: Vec<u64> = self.m.values().copied().collect(); v.sort_unstable(); v }\n}";
        assert!(findings(sorted, FileClass::Lib).is_empty());
        let len_only = "struct S { m: HashMap<u64, u64> }\nimpl S {\n fn f(&self) -> usize { self.m.iter().count() }\n}";
        assert!(findings(len_only, FileClass::Lib).is_empty());
    }

    #[test]
    fn array_type_semicolon_does_not_split_the_statement() {
        // The `;` inside `[f32; 4]` must not hide the `let` from the
        // collect-then-sort lookahead.
        let src = "struct S { m: HashMap<u64, [f32; 4]> }\nimpl S {\n fn f(&self) { let mut rows: Vec<(u64, [f32; 4])> = self.m.iter().map(|(&k, &v)| (k, v)).collect(); rows.sort_unstable_by_key(|&(k, _)| k); }\n}";
        assert!(findings(src, FileClass::Lib).is_empty());
    }

    #[test]
    fn for_loop_over_hash_map_flagged() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for (k, v) in &m { use_it(k, v); } }";
        assert_eq!(
            findings(src, FileClass::Lib),
            vec![(Rule::UnorderedMapIteration, 1)]
        );
    }

    #[test]
    fn vec_of_hashsets_is_not_confused_with_the_set() {
        // `shard_pages: Vec<HashSet<u64>>` — iterating the Vec is ordered.
        let src = "fn f(shard_pages: Vec<HashSet<u64>>) -> Vec<u64> { shard_pages.iter().map(|p| p.len() as u64).collect() }";
        assert!(findings(src, FileClass::Lib).is_empty());
    }

    #[test]
    fn float_reduction_over_hash_map() {
        let src = "struct S { m: HashMap<u64, f64> }\nimpl S {\n fn f(&self) -> f64 { self.m.values().sum::<f64>() }\n}";
        let got = findings(src, FileClass::Lib);
        assert!(got.contains(&(Rule::UnorderedFloatReduction, 3)), "{got:?}");
        assert!(got.contains(&(Rule::UnorderedMapIteration, 3)));
        // Integer sums do not trip the float rule.
        let int = "struct S { m: HashMap<u64, u64> }\nimpl S {\n fn f(&self) -> u64 { self.m.values().sum::<u64>() }\n}";
        let got = findings(int, FileClass::Lib);
        assert!(!got.iter().any(|(r, _)| *r == Rule::UnorderedFloatReduction));
        // Slice sums are ordered — no findings at all.
        let slice = "fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }";
        assert!(findings(slice, FileClass::Lib).is_empty());
    }

    #[test]
    fn guard_across_wait_flagged() {
        let src = "fn f(&self) {\n let mut state = self.state.lock().expect(\"p\");\n while state.x == 0 {\n  state = self.cv.wait(state).expect(\"p\");\n }\n}";
        let got = findings(src, FileClass::Lib);
        assert!(got.contains(&(Rule::GuardAcrossBlocking, 4)), "{got:?}");
    }

    #[test]
    fn guard_dropped_before_send_is_clean() {
        let src = "fn f(&self) {\n let g = self.m.lock();\n let v = g.val;\n drop(g);\n self.tx.send(v);\n}";
        let got: Vec<_> = findings(src, FileClass::Lib)
            .into_iter()
            .filter(|(r, _)| *r == Rule::GuardAcrossBlocking)
            .collect();
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn guard_scope_ends_at_block_close() {
        let src = "fn f(&self) {\n { let g = self.m.lock(); g.bump(); }\n self.tx.send(1);\n}";
        let got: Vec<_> = findings(src, FileClass::Lib)
            .into_iter()
            .filter(|(r, _)| *r == Rule::GuardAcrossBlocking)
            .collect();
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn temporary_guard_copy_is_not_a_binding() {
        // `let v = *m.lock();` drops the guard at statement end.
        let src = "fn f(&self) {\n let v = *self.m.lock();\n self.tx.send(v);\n}";
        let got: Vec<_> = findings(src, FileClass::Lib)
            .into_iter()
            .filter(|(r, _)| *r == Rule::GuardAcrossBlocking)
            .collect();
        assert!(got.is_empty(), "{got:?}");
        // But a same-statement send under the guard is flagged.
        let same = "fn f(&self) { self.tx.send(*self.m.lock()); }";
        let got = findings(same, FileClass::Lib);
        assert!(got.iter().any(|(r, _)| *r == Rule::GuardAcrossBlocking));
    }
}
