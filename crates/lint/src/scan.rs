//! Workspace walking and per-file orchestration.
//!
//! The walk is fully deterministic — directory entries are sorted by
//! name before descent — so the findings list (and therefore the CLI
//! output and exit code) is identical across runs, which is the least a
//! determinism linter can do for itself.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::context::{classify, parse_allows, test_spans, Suppressions};
use crate::lexer::lex;
use crate::rules::{check_file, Finding, Rule};

/// Directories never descended into. `classify` would skip their files
/// anyway; pruning here keeps the walk fast and out of build output.
const SKIP_DIRS: [&str; 4] = ["shims", "target", "fixtures", ".git"];

/// Lints one source file. `rel` is the workspace-relative path used for
/// classification and reporting. Returns the *surviving* findings:
/// matches not covered by a valid `sibyl-lint: allow` annotation, plus a
/// `bad-annotation` finding for every malformed annotation (those are
/// not suppressible). Findings come back sorted by line, then rule.
pub fn lint_source(rel: &Path, src: &str) -> Vec<Finding> {
    let Some(class) = classify(rel) else {
        return Vec::new();
    };
    let rel_str = rel.to_string_lossy().into_owned();
    let lexed = lex(src);
    let spans = test_spans(&lexed);
    let allows = parse_allows(&lexed.comments);
    let sup = Suppressions::new(&allows, &lexed);

    let mut out: Vec<Finding> = check_file(&lexed, class, &spans)
        .into_iter()
        .filter(|f| !sup.covers(f.rule, f.line))
        .map(|mut f| {
            f.file = rel_str.clone();
            f
        })
        .collect();
    for a in &allows {
        if let Some(err) = &a.error {
            out.push(Finding {
                file: rel_str.clone(),
                line: a.line,
                rule: Rule::BadAnnotation,
                message: format!("malformed annotation ({err}); it suppresses nothing"),
            });
        }
    }
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// Scans every `.rs` file under `root` (skipping shims, build output,
/// lint fixtures and VCS internals) and returns all surviving findings,
/// sorted by path, line, rule.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        out.extend(lint_source(&rel, &src));
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(out)
}

fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                collect_rust_files(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotated_finding_is_suppressed() {
        let src = "fn f(o: Option<u32>) -> u32 {\n    // sibyl-lint: allow(unwrap-in-lib) -- invariant: checked above\n    o.unwrap()\n}";
        let got = lint_source(Path::new("crates/core/src/x.rs"), src);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn unannotated_finding_survives_with_path() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }";
        let got = lint_source(Path::new("crates/core/src/x.rs"), src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].file, "crates/core/src/x.rs");
        assert_eq!(got[0].rule, Rule::UnwrapInLib);
    }

    #[test]
    fn malformed_annotation_is_reported_and_suppresses_nothing() {
        let src = "fn f(o: Option<u32>) -> u32 {\n    // sibyl-lint: allow(unwrap-in-lib)\n    o.unwrap()\n}";
        let got = lint_source(Path::new("crates/core/src/x.rs"), src);
        let rules: Vec<Rule> = got.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&Rule::BadAnnotation), "{got:?}");
        assert!(rules.contains(&Rule::UnwrapInLib), "{got:?}");
    }

    #[test]
    fn skipped_paths_produce_no_findings() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }";
        assert!(lint_source(Path::new("shims/rand/src/lib.rs"), src).is_empty());
        assert!(lint_source(Path::new("crates/lint/tests/fixtures/x.rs"), src).is_empty());
    }
}
