//! The `sibyl-lint` binary's contract: exit 0 on a clean tree, exit 1
//! under `--deny` when findings survive, exit 2 on usage errors — and
//! the live workspace itself must scan clean, which is the whole point.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sibyl-lint"))
}

/// A scratch tree under `target/tmp` holding one library source file.
fn scratch_workspace(tag: &str, source: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("lint-cli-{tag}"));
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("create scratch workspace");
    std::fs::write(src_dir.join("lib.rs"), source).expect("write scratch source");
    root
}

#[test]
fn live_workspace_scans_clean_under_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = bin()
        .arg("--deny")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run sibyl-lint");
    assert!(
        out.status.success(),
        "workspace has unsuppressed findings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("workspace clean"));
}

#[test]
fn deny_exits_1_on_findings_and_0_without_deny() {
    let root = scratch_workspace(
        "violating",
        "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n",
    );
    let deny = bin()
        .arg("--deny")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run sibyl-lint");
    assert_eq!(deny.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&deny.stdout);
    assert!(stdout.contains("[unwrap-in-lib]"), "{stdout}");

    // Without --deny the same findings are advisory.
    let warn = bin()
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run sibyl-lint");
    assert_eq!(warn.status.code(), Some(0));
}

#[test]
fn annotated_scratch_tree_is_clean() {
    let root = scratch_workspace(
        "annotated",
        "pub fn f(o: Option<u32>) -> u32 {\n    // sibyl-lint: allow(unwrap-in-lib) -- fixture invariant\n    o.unwrap()\n}\n",
    );
    let out = bin()
        .arg("--deny")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("run sibyl-lint");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn usage_and_io_errors_exit_2() {
    let unknown = bin().arg("--frobnicate").output().expect("run sibyl-lint");
    assert_eq!(unknown.status.code(), Some(2));
    let missing_root = bin()
        .arg("--root")
        .arg("/nonexistent/sibyl-lint-root")
        .output()
        .expect("run sibyl-lint");
    assert_eq!(missing_root.status.code(), Some(2));
}

#[test]
fn list_rules_names_all_six() {
    let out = bin().arg("--list-rules").output().expect("run sibyl-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "wallclock-in-logic",
        "unordered-map-iteration",
        "entropy-rng",
        "unwrap-in-lib",
        "guard-across-blocking",
        "unordered-float-reduction",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}
