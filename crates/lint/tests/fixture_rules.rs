//! Each contract rule, demonstrated end to end on a fixture pair: the
//! `_bad` fixture is caught, the `_allowed` fixture (same shapes, with
//! annotations or order-imposing idioms) is silent.
//!
//! Fixtures live under `tests/fixtures/`, which the workspace scanner
//! skips (they contain violations by design); here they are linted
//! explicitly under a library-crate path.

use std::path::Path;

use sibyl_lint::{lint_source, Rule};

/// Lints one fixture as if it were library code and returns the rules of
/// its surviving findings.
fn lint_fixture(name: &str) -> Vec<Rule> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    lint_source(Path::new("crates/fixture/src/lib.rs"), &src)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

fn count(rules: &[Rule], rule: Rule) -> usize {
    rules.iter().filter(|&&r| r == rule).count()
}

#[test]
fn wallclock_caught_and_silenced() {
    let bad = lint_fixture("wallclock_bad.rs");
    assert_eq!(count(&bad, Rule::WallclockInLogic), 3, "{bad:?}");
    let allowed = lint_fixture("wallclock_allowed.rs");
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn map_iteration_caught_and_silenced() {
    let bad = lint_fixture("map_iteration_bad.rs");
    assert_eq!(count(&bad, Rule::UnorderedMapIteration), 2, "{bad:?}");
    let allowed = lint_fixture("map_iteration_allowed.rs");
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn entropy_caught_and_silenced() {
    let bad = lint_fixture("entropy_bad.rs");
    assert_eq!(count(&bad, Rule::EntropyRng), 2, "{bad:?}");
    let allowed = lint_fixture("entropy_allowed.rs");
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn unwrap_caught_and_silenced() {
    let bad = lint_fixture("unwrap_bad.rs");
    assert_eq!(count(&bad, Rule::UnwrapInLib), 2, "{bad:?}");
    let allowed = lint_fixture("unwrap_allowed.rs");
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn guard_caught_and_silenced() {
    let bad = lint_fixture("guard_bad.rs");
    assert_eq!(count(&bad, Rule::GuardAcrossBlocking), 2, "{bad:?}");
    let allowed = lint_fixture("guard_allowed.rs");
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn float_reduction_caught_and_silenced() {
    let bad = lint_fixture("float_reduction_bad.rs");
    assert_eq!(count(&bad, Rule::UnorderedFloatReduction), 2, "{bad:?}");
    let allowed = lint_fixture("float_reduction_allowed.rs");
    assert!(allowed.is_empty(), "{allowed:?}");
}

#[test]
fn bad_annotations_reported_and_suppress_nothing() {
    let got = lint_fixture("bad_annotation.rs");
    assert_eq!(count(&got, Rule::BadAnnotation), 2, "{got:?}");
    // The malformed annotations must not have silenced the violations
    // they sit on.
    assert_eq!(count(&got, Rule::UnwrapInLib), 2, "{got:?}");
}
