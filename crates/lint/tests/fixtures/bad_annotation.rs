// Fixture: malformed annotations. Each is reported as `bad-annotation`
// and suppresses nothing.

pub fn missing_reason(o: Option<u32>) -> u32 {
    // sibyl-lint: allow(unwrap-in-lib)
    o.unwrap()
}

pub fn unknown_rule(o: Option<u32>) -> u32 {
    // sibyl-lint: allow(no-such-rule) -- because
    o.unwrap()
}
