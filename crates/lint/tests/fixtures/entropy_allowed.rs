// Fixture: caller-seeded construction passes without annotation; a
// deliberate fixed seed carries one.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

pub fn harness_rng() -> StdRng {
    // sibyl-lint: allow(entropy-rng) -- fixed harness seed: the table must measure identical weights every run
    StdRng::seed_from_u64(0x5EC1_0000)
}
