// Fixture: entropy-rng positives. Linted as library code.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn fresh_rng() -> StdRng {
    StdRng::from_entropy()
}

pub fn hidden_seed_rng() -> StdRng {
    StdRng::seed_from_u64(0xDEAD_BEEF)
}
