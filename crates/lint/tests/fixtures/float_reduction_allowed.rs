// Fixture: float reductions silenced — by sorting the stream first (the
// collect-then-sort escape) or by an annotated justification.

use std::collections::HashMap;

pub struct Acc {
    weights: HashMap<u64, f32>,
}

impl Acc {
    pub fn total_sorted(&self) -> f32 {
        let mut ws: Vec<(u64, f32)> = self.weights.iter().map(|(&k, &v)| (k, v)).collect();
        ws.sort_unstable_by_key(|&(k, _)| k);
        ws.iter().map(|&(_, w)| w).sum::<f32>()
    }

    pub fn total(&self) -> f32 {
        // sibyl-lint: allow(unordered-map-iteration, unordered-float-reduction) -- diagnostic gauge only: never compared bit-for-bit or fed back into training
        self.weights.values().sum::<f32>()
    }
}
