// Fixture: unordered-float-reduction positives. Linted as library code.

use std::collections::HashMap;

pub struct Acc {
    weights: HashMap<u64, f32>,
}

impl Acc {
    pub fn total(&self) -> f32 {
        self.weights.values().sum::<f32>()
    }

    pub fn scaled_total(&self) -> f64 {
        self.weights.values().fold(0.0, |acc, &w| acc + w as f64)
    }
}
