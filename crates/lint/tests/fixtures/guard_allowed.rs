// Fixture: guard-across-blocking silenced — by dropping the guard
// before blocking (no finding) or by an annotated condvar protocol.

use std::sync::{Condvar, Mutex};

pub fn publish(m: &Mutex<u64>, tx: &crossbeam::channel::Sender<u64>) {
    let guard = m.lock().unwrap_or_else(|p| p.into_inner());
    let value = *guard;
    drop(guard);
    let _ = tx.send(value);
}

pub fn barrier(m: &Mutex<u64>, cv: &Condvar) {
    let mut gen = m.lock().unwrap_or_else(|p| p.into_inner());
    while *gen == 0 {
        // sibyl-lint: allow(guard-across-blocking) -- condvar protocol: wait() releases the guard while blocked
        gen = cv.wait(gen).unwrap_or_else(|p| p.into_inner());
    }
}
