// Fixture: guard-across-blocking positives. Linted as library code.

use std::sync::Mutex;

pub fn publish(m: &Mutex<u64>, tx: &crossbeam::channel::Sender<u64>) {
    let guard = m.lock().unwrap_or_else(|p| p.into_inner());
    let _ = tx.send(*guard);
}

pub fn inline_publish(m: &Mutex<u64>, tx: &crossbeam::channel::Sender<u64>) {
    let _ = tx.send(*m.lock().unwrap_or_else(|p| p.into_inner()));
}
