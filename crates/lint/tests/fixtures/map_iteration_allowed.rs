// Fixture: hash iteration silenced — by imposing an order (no
// annotation needed) or by an annotated justification.

use std::collections::HashMap;

pub struct Tracker {
    counts: HashMap<u64, u64>,
}

impl Tracker {
    // The collect-then-sort idiom needs no annotation: the lint sees the
    // binding sorted immediately after.
    pub fn dump_sorted(&self) -> Vec<(u64, u64)> {
        let mut rows: Vec<(u64, u64)> = self.counts.iter().map(|(&k, &v)| (k, v)).collect();
        rows.sort_unstable();
        rows
    }

    // Order-insensitive folds escape without annotation too.
    pub fn touched(&self) -> usize {
        self.counts.len()
    }

    pub fn total(&self) -> u64 {
        // sibyl-lint: allow(unordered-map-iteration) -- u64 sum: integer addition is commutative
        self.counts.values().sum::<u64>()
    }
}
