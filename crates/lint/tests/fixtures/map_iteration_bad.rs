// Fixture: unordered-map-iteration positives. Linted as library code.

use std::collections::{HashMap, HashSet};

pub struct Tracker {
    counts: HashMap<u64, u64>,
}

impl Tracker {
    pub fn dump(&self) -> Vec<(u64, u64)> {
        self.counts.iter().map(|(&k, &v)| (k, v)).collect()
    }
}

pub fn first_page(pages: &HashSet<u64>) -> Option<u64> {
    for p in pages.iter() {
        return Some(*p);
    }
    None
}
