// Fixture: unwrap silenced — by an annotated invariant, by a non-panicking
// combinator (no finding to begin with), or by living in test code.

pub fn head(xs: &[u32]) -> u32 {
    // sibyl-lint: allow(unwrap-in-lib) -- invariant: caller is the splitter, which never yields empty chunks
    *xs.first().unwrap()
}

pub fn head_or_zero(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
