// Fixture: unwrap-in-lib positives. Linted as library code.

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u64 {
    s.parse().expect("caller promised a number")
}
