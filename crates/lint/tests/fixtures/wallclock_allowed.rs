// Fixture: the same wall-clock reads, silenced by annotations.

pub fn elapsed_budget() -> std::time::Duration {
    // sibyl-lint: allow(wallclock-in-logic) -- telemetry span: reported, never fed into decisions
    let start = std::time::Instant::now();
    start.elapsed()
}

pub fn epoch_seconds() -> u64 {
    // sibyl-lint: allow(wallclock-in-logic) -- log timestamping only
    let now = std::time::SystemTime::now();
    // sibyl-lint: allow(wallclock-in-logic) -- log timestamping only
    match now.duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
