// Fixture: wallclock-in-logic positives. Linted as library code.

pub fn elapsed_budget() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

pub fn epoch_seconds() -> u64 {
    let now = std::time::SystemTime::now();
    match now.duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
