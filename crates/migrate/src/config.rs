//! Configuration of the background-migration subsystem.

/// Which migration policy runs in the background.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MigratePolicyKind {
    /// No background migration — the baseline, bit-identical to an
    /// engine without the subsystem (no migrator is even constructed).
    #[default]
    None,
    /// The heuristic: promote pages whose resident heat crossed a
    /// threshold, demote LRU-cold fast pages once the fast device fills
    /// past a watermark.
    HotCold,
    /// The Harmonia-style second RL agent: a C51 learner (reusing
    /// `sibyl-core`'s learner/replay machinery) that picks a migration
    /// intensity each tick from page-heat, fast-fill, and hit-rate-delta
    /// features, rewarded by the post-migration latency change.
    Rl,
}

impl MigratePolicyKind {
    /// All three policies, baseline first (the order `sec13_migration`
    /// sweeps).
    pub const ALL: [MigratePolicyKind; 3] = [
        MigratePolicyKind::None,
        MigratePolicyKind::HotCold,
        MigratePolicyKind::Rl,
    ];

    /// `true` unless this is [`MigratePolicyKind::None`].
    pub fn is_active(self) -> bool {
        self != MigratePolicyKind::None
    }
}

impl std::fmt::Display for MigratePolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            MigratePolicyKind::None => "no-migration",
            MigratePolicyKind::HotCold => "hot-cold",
            MigratePolicyKind::Rl => "rl-migration",
        };
        write!(f, "{name}")
    }
}

/// Why a [`MigrateConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateConfigError {
    /// An active policy was configured with `scan_period == 0`: the
    /// migrator would never (or degenerately always) tick.
    ZeroScanPeriod,
    /// `max_moves_per_tick == 0`: ticks could never move anything.
    ZeroMoves,
    /// `scan_limit == 0`: the candidate scan could never see a page.
    ZeroScanLimit,
    /// `demote_watermark` is not a finite fraction in `[0, 1]`.
    InvalidWatermark,
    /// `promote_min_heat == 0`: every resident page would qualify for
    /// promotion, including pages never re-accessed.
    ZeroPromoteHeat,
    /// The RL policy's hyper-parameters are degenerate (non-positive
    /// learning rate, discount outside `[0, 1]`, inverted exploration
    /// anneal, fewer than two atoms, an empty value support, or a zero
    /// buffer/batch/train cadence).
    InvalidRl,
}

impl std::fmt::Display for MigrateConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateConfigError::ZeroScanPeriod => {
                write!(f, "active migration requires scan_period > 0")
            }
            MigrateConfigError::ZeroMoves => {
                write!(f, "active migration requires max_moves_per_tick > 0")
            }
            MigrateConfigError::ZeroScanLimit => {
                write!(f, "active migration requires scan_limit > 0")
            }
            MigrateConfigError::InvalidWatermark => {
                write!(f, "demote_watermark must be a finite fraction in [0, 1]")
            }
            MigrateConfigError::ZeroPromoteHeat => {
                write!(f, "promote_min_heat must be positive")
            }
            MigrateConfigError::InvalidRl => {
                write!(f, "rl-migration hyper-parameters are degenerate")
            }
        }
    }
}

impl std::error::Error for MigrateConfigError {}

/// Hyper-parameters of the [`MigratePolicyKind::Rl`] agent. Smaller than
/// the placement agent's everywhere — it decides once per *tick*, not
/// once per request, so its experience stream is two to three orders of
/// magnitude thinner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlMigrateConfig {
    /// Learning rate of the Adam-trained C51 head.
    pub learning_rate: f32,
    /// Discount factor over ticks.
    pub discount: f32,
    /// Final exploration rate.
    pub exploration: f64,
    /// Initial exploration rate, annealed linearly over
    /// [`RlMigrateConfig::exploration_decay_ticks`].
    pub exploration_initial: f64,
    /// Ticks over which the exploration anneal runs.
    pub exploration_decay_ticks: u64,
    /// Replay-buffer capacity in tick transitions.
    pub buffer_capacity: usize,
    /// Transitions per training batch.
    pub batch_size: usize,
    /// Batches per training step.
    pub batches_per_step: usize,
    /// Ticks between training steps.
    pub train_ticks: u64,
    /// C51 support atoms.
    pub n_atoms: usize,
    /// Lower bound of the value support.
    pub v_min: f32,
    /// Upper bound of the value support.
    pub v_max: f32,
}

impl Default for RlMigrateConfig {
    fn default() -> Self {
        RlMigrateConfig {
            learning_rate: 1e-2,
            discount: 0.8,
            exploration: 0.02,
            exploration_initial: 0.4,
            exploration_decay_ticks: 150,
            buffer_capacity: 256,
            batch_size: 32,
            batches_per_step: 2,
            train_ticks: 4,
            n_atoms: 21,
            v_min: -2.0,
            v_max: 2.0,
        }
    }
}

impl RlMigrateConfig {
    fn is_valid(&self) -> bool {
        self.learning_rate.is_finite()
            && self.learning_rate > 0.0
            && (0.0..=1.0).contains(&self.discount)
            && (0.0..=1.0).contains(&self.exploration)
            && (0.0..=1.0).contains(&self.exploration_initial)
            && self.exploration_initial >= self.exploration
            && self.buffer_capacity > 0
            && self.batch_size > 0
            && self.batches_per_step > 0
            && self.train_ticks > 0
            && self.n_atoms >= 2
            && self.v_min < self.v_max
            && self.v_max > 0.0
    }
}

/// Configuration of the background-migration subsystem.
///
/// # Examples
///
/// ```
/// use sibyl_migrate::{MigrateConfig, MigratePolicyKind};
///
/// let cfg = MigrateConfig::new(MigratePolicyKind::HotCold).with_scan_period(8);
/// cfg.validate().unwrap();
/// assert!(cfg.policy.is_active());
/// assert!(!MigrateConfig::default().policy.is_active());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MigrateConfig {
    /// Which policy runs. Default: [`MigratePolicyKind::None`] — no
    /// migrator is constructed and the host engine is bit-identical to
    /// one without the subsystem.
    pub policy: MigratePolicyKind,
    /// Serving-engine batches between migration ticks (a *logical*
    /// period, counted per shard against its own batch sequence, so
    /// seeded runs stay deterministic). Default: 4.
    pub scan_period: u64,
    /// Upper bound on pages moved per tick. Default: 64.
    pub max_moves_per_tick: usize,
    /// LRU entries examined per device per tick when scanning for
    /// candidates (bounds tick cost on huge directories). Default: 2048.
    pub scan_limit: usize,
    /// Minimum accesses *since the page landed on its current device*
    /// for a slower-device page to become a promotion candidate
    /// (`PageDirectory::heat_since_place`) — so a freshly demoted or
    /// evicted page must earn new accesses before qualifying again.
    /// Default: 2.
    pub promote_min_heat: u64,
    /// Fast-device fill fraction above which the heuristic starts
    /// demoting LRU-cold pages. Default: 0.85.
    pub demote_watermark: f64,
    /// Minimum recency-token age for a fast page to become a demotion
    /// candidate (pages touched more recently are left alone). Default:
    /// 512.
    pub demote_min_idle: u64,
    /// Hyper-parameters of the [`MigratePolicyKind::Rl`] agent.
    pub rl: RlMigrateConfig,
    /// RNG seed for the RL agent's initialization and exploration.
    pub seed: u64,
}

impl Default for MigrateConfig {
    fn default() -> Self {
        MigrateConfig {
            policy: MigratePolicyKind::None,
            scan_period: 4,
            max_moves_per_tick: 64,
            scan_limit: 2048,
            promote_min_heat: 2,
            demote_watermark: 0.85,
            demote_min_idle: 512,
            rl: RlMigrateConfig::default(),
            seed: 0x5EC1_3B17,
        }
    }
}

impl MigrateConfig {
    /// A configuration running the given policy with default knobs.
    pub fn new(policy: MigratePolicyKind) -> Self {
        MigrateConfig {
            policy,
            ..Default::default()
        }
    }

    /// Replaces the policy, keeping every knob (how `MigrationExperiment`
    /// sweeps policies under otherwise identical settings).
    pub fn with_policy(mut self, policy: MigratePolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the batches-between-ticks period.
    pub fn with_scan_period(mut self, period: u64) -> Self {
        self.scan_period = period;
        self
    }

    /// Sets the per-tick move budget.
    pub fn with_max_moves(mut self, moves: usize) -> Self {
        self.max_moves_per_tick = moves;
        self
    }

    /// Sets the promotion heat threshold.
    pub fn with_promote_min_heat(mut self, heat: u64) -> Self {
        self.promote_min_heat = heat;
        self
    }

    /// Sets the RL agent's seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration for its policy.
    ///
    /// # Errors
    ///
    /// Returns a [`MigrateConfigError`] describing the degenerate
    /// setting. [`MigratePolicyKind::None`] accepts anything — the knobs
    /// are unused.
    pub fn validate(&self) -> Result<(), MigrateConfigError> {
        if !self.policy.is_active() {
            return Ok(());
        }
        if self.scan_period == 0 {
            return Err(MigrateConfigError::ZeroScanPeriod);
        }
        if self.max_moves_per_tick == 0 {
            return Err(MigrateConfigError::ZeroMoves);
        }
        if self.scan_limit == 0 {
            return Err(MigrateConfigError::ZeroScanLimit);
        }
        if !(self.demote_watermark.is_finite() && (0.0..=1.0).contains(&self.demote_watermark)) {
            return Err(MigrateConfigError::InvalidWatermark);
        }
        if self.promote_min_heat == 0 {
            return Err(MigrateConfigError::ZeroPromoteHeat);
        }
        if self.policy == MigratePolicyKind::Rl && !self.rl.is_valid() {
            return Err(MigrateConfigError::InvalidRl);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_inactive_and_valid() {
        let cfg = MigrateConfig::default();
        assert_eq!(cfg.policy, MigratePolicyKind::None);
        assert!(!cfg.policy.is_active());
        cfg.validate().unwrap();
        assert_eq!(MigratePolicyKind::ALL.len(), 3);
        assert_eq!(MigratePolicyKind::Rl.to_string(), "rl-migration");
    }

    #[test]
    fn degenerate_knobs_rejected_only_when_active() {
        let inert = MigrateConfig::default().with_scan_period(0);
        inert.validate().unwrap();
        let active = MigrateConfig::new(MigratePolicyKind::HotCold);
        assert_eq!(
            active.clone().with_scan_period(0).validate(),
            Err(MigrateConfigError::ZeroScanPeriod)
        );
        assert_eq!(
            active.clone().with_max_moves(0).validate(),
            Err(MigrateConfigError::ZeroMoves)
        );
        assert_eq!(
            active.clone().with_promote_min_heat(0).validate(),
            Err(MigrateConfigError::ZeroPromoteHeat)
        );
        let mut bad = active.clone();
        bad.scan_limit = 0;
        assert_eq!(bad.validate(), Err(MigrateConfigError::ZeroScanLimit));
        let mut bad = active.clone();
        bad.demote_watermark = f64::NAN;
        assert_eq!(bad.validate(), Err(MigrateConfigError::InvalidWatermark));
        active.validate().unwrap();
    }

    #[test]
    fn rl_knobs_validated_only_for_rl() {
        let mut cfg = MigrateConfig::new(MigratePolicyKind::Rl);
        cfg.rl.learning_rate = 0.0;
        assert_eq!(cfg.validate(), Err(MigrateConfigError::InvalidRl));
        let hot_cold = cfg.clone().with_policy(MigratePolicyKind::HotCold);
        hot_cold.validate().unwrap();
        assert!(MigrateConfigError::InvalidRl.to_string().contains("rl"));
    }
}
