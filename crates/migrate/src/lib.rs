//! # sibyl-migrate
//!
//! A background migration subsystem for the Sibyl reproduction — the
//! Harmonia-style *second* RL agent.
//!
//! Sibyl (ISCA 2022) decides where a page lands on first write; after
//! that, pages move only reactively (on-access promotion toward the
//! policy's target, capacity-driven eviction). Under phase-shifting
//! workloads residency goes stale: the old hot set squats in fast
//! storage while the new one serves from slow, and every reactive
//! promotion still pays one slow access. Harmonia (PAPERS.md) shows a
//! second RL agent dedicated to *proactive* migration, cooperating with
//! the placement agent, recovering that latency. This crate is that
//! subsystem:
//!
//! - [`MigrateConfig`] / [`MigratePolicyKind`] — which policy runs, how
//!   often it ticks, and its move budget.
//! - [`MigrationPolicy`] — the per-tick planning interface over a shared
//!   deterministic candidate scan ([`scan_candidates`]).
//! - [`NoMigration`] — the baseline; the serving engine skips the
//!   subsystem entirely for it, staying bit-identical to a
//!   migration-free engine.
//! - [`HotColdThreshold`] — the heuristic: promote above a heat
//!   threshold, demote LRU-cold fast pages under capacity pressure.
//! - [`RlMigration`] — a tick-level C51 agent reusing `sibyl-core`'s
//!   [`Learner`](sibyl_core::Learner)/replay machinery with its own
//!   feature vector (page heat, fast fill, hit-rate delta) and a reward
//!   built from the post-migration latency change.
//! - [`Migrator`] — the tick driver: window accounting, policy feedback,
//!   plan execution through the bandwidth-accounted
//!   [`StorageManager::migrate_batch`](sibyl_hss::StorageManager::migrate_batch).
//!
//! ## Example
//!
//! ```rust
//! use sibyl_hss::{DeviceId, DeviceSpec, HssConfig, StorageManager};
//! use sibyl_migrate::{MigrateConfig, MigratePolicyKind, Migrator};
//! use sibyl_trace::{IoOp, IoRequest};
//!
//! let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
//!     .with_capacity_pages(vec![64, u64::MAX]);
//! let mut mgr = StorageManager::new(&hss);
//! let mut migrator =
//!     Migrator::new(MigrateConfig::new(MigratePolicyKind::HotCold)).expect("active policy");
//! // A slow-resident page crosses the heat threshold...
//! for t in 0..3 {
//!     let _ = mgr.access(&IoRequest::new(t, 42, 1, IoOp::Read), DeviceId(1));
//! }
//! // ...and the next background tick proactively promotes it.
//! let tick = migrator.tick(&mut mgr);
//! assert_eq!(tick.moved_pages, 1);
//! assert_eq!(mgr.residency(42), Some(DeviceId(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod migrator;
mod policy;
mod rl;

pub use config::{MigrateConfig, MigrateConfigError, MigratePolicyKind, RlMigrateConfig};
pub use migrator::{inert_migrator, Migrator, MigratorStats, TickOutcome};
pub use policy::{
    scan_candidates, CandidateScan, HotColdThreshold, MigrationPolicy, NoMigration, TickFeedback,
    TickWindow,
};
pub use rl::{RlMigration, RlMigrationStats};
