//! The tick driver: snapshots the window, consults the policy, executes
//! the plan through [`StorageManager::migrate_batch`], and feeds the
//! outcome back.

use sibyl_hss::{HssStats, StorageManager};

use crate::config::{MigrateConfig, MigratePolicyKind};
use crate::policy::{
    scan_candidates, HotColdThreshold, MigrationPolicy, NoMigration, TickFeedback, TickWindow,
};
use crate::rl::RlMigration;

/// Cumulative counters of one migrator's run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MigratorStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Pages the policy asked to move.
    pub planned_moves: u64,
    /// Pages promoted (moved to a faster device).
    pub promoted_pages: u64,
    /// Pages demoted (moved to a slower device).
    pub demoted_pages: u64,
    /// Planned moves the executor skipped (stale or capacity-blocked).
    pub skipped_moves: u64,
    /// Device time consumed by migration I/O (µs).
    pub busy_us: f64,
}

impl MigratorStats {
    /// Pages moved in either direction.
    pub fn moved_pages(&self) -> u64 {
        self.promoted_pages + self.demoted_pages
    }

    /// Folds the migrator's cumulative counters into a telemetry
    /// registry under the `migrate.` namespace. All counts are logical
    /// (ticks, pages) and `busy_us` is simulated device time, so
    /// recording is deterministic.
    pub fn record_registry(&self, registry: &mut sibyl_telemetry::Registry) {
        registry.counter_add("migrate.ticks", self.ticks);
        registry.counter_add("migrate.planned_moves", self.planned_moves);
        registry.counter_add("migrate.promoted_pages", self.promoted_pages);
        registry.counter_add("migrate.demoted_pages", self.demoted_pages);
        registry.counter_add("migrate.skipped_moves", self.skipped_moves);
        registry.gauge_set("migrate.busy_us", self.busy_us);
    }
}

/// What one tick did — the host engine folds this into its per-shard
/// report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TickOutcome {
    /// Pages moved this tick.
    pub moved_pages: u64,
    /// Device time this tick's I/O consumed (µs).
    pub busy_us: f64,
    /// Source-side bulk-read portion of `busy_us` (µs) — the xray
    /// `stall.migrate` sub-span split.
    pub read_us: f64,
    /// Destination-side append-write portion of `busy_us` (µs).
    pub write_us: f64,
}

/// The background-migration driver owned by one storage node (one shard
/// of the serving engine, or the single manager of a sequential run).
///
/// Call [`Migrator::tick`] at deterministic logical boundaries (the
/// serving engine uses batch counts). Each tick:
///
/// 1. closes the statistics *window* since the previous tick (requests,
///    mean latency, fast-placement fraction),
/// 2. feeds the previous plan's outcome back to the policy (the RL
///    policy shapes its reward from the latency change),
/// 3. scans the page directory for promotion/demotion candidates,
/// 4. asks the policy for a plan and executes it through
///    [`StorageManager::migrate_batch`] — bandwidth-accounted, so
///    foreground requests observe the contention.
///
/// # Examples
///
/// ```
/// use sibyl_hss::{DeviceId, DeviceSpec, HssConfig, StorageManager};
/// use sibyl_migrate::{MigrateConfig, MigratePolicyKind, Migrator};
/// use sibyl_trace::{IoOp, IoRequest};
///
/// let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd())
///     .with_capacity_pages(vec![64, u64::MAX]);
/// let mut mgr = StorageManager::new(&hss);
/// let mut migrator =
///     Migrator::new(MigrateConfig::new(MigratePolicyKind::HotCold)).expect("active policy");
/// // Re-read a slow-resident page past the heat threshold...
/// for t in 0..3 {
///     let _ = mgr.access(&IoRequest::new(t, 9, 1, IoOp::Read), DeviceId(1));
/// }
/// // ...and the next tick promotes it.
/// let out = migrator.tick(&mut mgr);
/// assert_eq!(out.moved_pages, 1);
/// assert_eq!(mgr.residency(9), Some(DeviceId(0)));
/// ```
#[derive(Debug)]
pub struct Migrator {
    cfg: MigrateConfig,
    policy: Box<dyn MigrationPolicy>,
    stats: MigratorStats,
    prev_window: Option<TickWindow>,
    /// Snapshot of the manager stats at the previous tick:
    /// (requests, sum latency µs, fast placements, last completion µs).
    snapshot: (u64, f64, u64, f64),
    last_moved: u64,
    last_busy: f64,
}

impl Migrator {
    /// Builds the driver for the configured policy, or `None` for
    /// [`MigratePolicyKind::None`] — the host engine then skips the
    /// subsystem entirely, staying bit-identical to an engine without
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid for its policy (engines
    /// should surface [`MigrateConfig::validate`] as an error first).
    pub fn new(cfg: MigrateConfig) -> Option<Migrator> {
        // sibyl-lint: allow(unwrap-in-lib) -- documented panic: engines must surface validate() as an error before constructing
        cfg.validate().expect("invalid migration configuration");
        let policy: Box<dyn MigrationPolicy> = match cfg.policy {
            MigratePolicyKind::None => return None,
            MigratePolicyKind::HotCold => Box::new(HotColdThreshold),
            MigratePolicyKind::Rl => Box::new(RlMigration::new(&cfg)),
        };
        Some(Migrator {
            cfg,
            policy,
            stats: MigratorStats::default(),
            prev_window: None,
            snapshot: (0, 0.0, 0, 0.0),
            last_moved: 0,
            last_busy: 0.0,
        })
    }

    /// The policy's display name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// The configuration this driver runs.
    pub fn config(&self) -> &MigrateConfig {
        &self.cfg
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &MigratorStats {
        &self.stats
    }

    /// Closes the window since the last tick against `stats`.
    fn close_window(&mut self, stats: &HssStats) -> TickWindow {
        let (req0, lat0, fast0, done0) = self.snapshot;
        let requests = stats.total_requests - req0;
        let fast = stats.placements.first().copied().unwrap_or(0);
        let window = TickWindow {
            requests,
            avg_latency_us: if requests == 0 {
                0.0
            } else {
                (stats.sum_latency_us - lat0) / requests as f64
            },
            fast_fraction: if requests == 0 {
                0.0
            } else {
                (fast - fast0) as f64 / requests as f64
            },
            span_us: stats.last_completion_us - done0,
        };
        self.snapshot = (
            stats.total_requests,
            stats.sum_latency_us,
            fast,
            stats.last_completion_us,
        );
        window
    }

    /// Runs one migration tick against `mgr` (see the type docs for the
    /// phase breakdown).
    pub fn tick(&mut self, mgr: &mut StorageManager) -> TickOutcome {
        let window = self.close_window(mgr.stats());
        self.policy.feedback(&TickFeedback {
            window,
            prev: self.prev_window,
            moved_pages: self.last_moved,
            busy_us: self.last_busy,
        });
        let scan = scan_candidates(mgr, &self.cfg);
        let mut moves = self.policy.plan(&scan, &window, &self.cfg);
        moves.truncate(self.cfg.max_moves_per_tick);
        let now = mgr.stats().last_completion_us;
        let out = mgr.migrate_batch(&moves, now);
        self.stats.ticks += 1;
        self.stats.planned_moves += moves.len() as u64;
        self.stats.promoted_pages += out.promoted_pages;
        self.stats.demoted_pages += out.demoted_pages;
        self.stats.skipped_moves += out.skipped;
        self.stats.busy_us += out.busy_us;
        self.prev_window = Some(window);
        self.last_moved = out.moved_pages();
        self.last_busy = out.busy_us;
        TickOutcome {
            moved_pages: out.moved_pages(),
            busy_us: out.busy_us,
            read_us: out.read_us,
            write_us: out.write_us,
        }
    }
}

/// An inert driver built around [`NoMigration`] for harnesses that must
/// hold a `Migrator` regardless of policy (prefer `Migrator::new`
/// returning `None` where possible — skipping the subsystem is what
/// keeps the baseline bit-identical).
pub fn inert_migrator(cfg: MigrateConfig) -> Migrator {
    Migrator {
        cfg,
        policy: Box::new(NoMigration),
        stats: MigratorStats::default(),
        prev_window: None,
        snapshot: (0, 0.0, 0, 0.0),
        last_moved: 0,
        last_busy: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::{DeviceId, DeviceSpec, HssConfig};
    use sibyl_trace::{IoOp, IoRequest};

    fn manager(fast_pages: u64) -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd())
            .with_capacity_pages(vec![fast_pages, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn rd(ts: u64, lpn: u64) -> IoRequest {
        IoRequest::new(ts, lpn, 1, IoOp::Read)
    }

    #[test]
    fn none_policy_builds_no_migrator() {
        assert!(Migrator::new(MigrateConfig::default()).is_none());
        assert!(Migrator::new(MigrateConfig::new(MigratePolicyKind::HotCold)).is_some());
        assert!(Migrator::new(MigrateConfig::new(MigratePolicyKind::Rl)).is_some());
    }

    #[test]
    #[should_panic(expected = "invalid migration configuration")]
    fn invalid_active_config_panics() {
        let _ = Migrator::new(MigrateConfig::new(MigratePolicyKind::HotCold).with_max_moves(0));
    }

    #[test]
    fn hot_cold_migrator_promotes_hot_pages_over_ticks() {
        let mut mgr = manager(64);
        let mut migrator =
            Migrator::new(MigrateConfig::new(MigratePolicyKind::HotCold)).expect("active");
        // Hot slow pages re-read repeatedly; the policy targets slow, so
        // only background migration can move them.
        for t in 0..4u64 {
            for p in 0..8u64 {
                let _ = mgr.access(&rd(t * 100 + p, 500 + p), DeviceId(1));
            }
        }
        let out = migrator.tick(&mut mgr);
        assert_eq!(out.moved_pages, 8, "all hot pages promote");
        assert!(out.busy_us > 0.0);
        for p in 0..8u64 {
            assert_eq!(mgr.residency(500 + p), Some(DeviceId(0)));
        }
        assert_eq!(migrator.stats().promoted_pages, 8);
        assert_eq!(migrator.stats().ticks, 1);
        assert_eq!(mgr.stats().bg_promoted_pages, 8);
        // A quiet second tick finds nothing new to move.
        let quiet = migrator.tick(&mut mgr);
        assert_eq!(quiet.moved_pages, 0);
        assert_eq!(migrator.policy_name(), "hot-cold");
    }

    #[test]
    fn windows_partition_the_request_stream() {
        let mut mgr = manager(64);
        let mut migrator =
            Migrator::new(MigrateConfig::new(MigratePolicyKind::HotCold)).expect("active");
        for t in 0..10u64 {
            let _ = mgr.access(&rd(t, t), DeviceId(1));
        }
        let _ = migrator.tick(&mut mgr);
        let first = migrator.prev_window.expect("window closed");
        assert_eq!(first.requests, 10);
        assert!(first.avg_latency_us > 0.0);
        for t in 10..14u64 {
            let _ = mgr.access(&rd(t, t), DeviceId(0));
        }
        let _ = migrator.tick(&mut mgr);
        let second = migrator.prev_window.expect("window closed");
        assert_eq!(second.requests, 4, "windows must not overlap");
        assert!((second.fast_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rl_migrator_runs_deterministically_against_a_real_manager() {
        let run = || {
            let mut mgr = manager(32);
            let mut migrator =
                Migrator::new(MigrateConfig::new(MigratePolicyKind::Rl)).expect("active");
            for round in 0..30u64 {
                for p in 0..16u64 {
                    let hot = 500 + (round / 10) * 100 + p; // shifting hot set
                    let _ = mgr.access(&rd(round * 1_000 + p, hot), DeviceId(1));
                }
                let _ = migrator.tick(&mut mgr);
            }
            (
                mgr.stats().clone(),
                *migrator.stats(),
                mgr.stats().avg_latency_us().to_bits(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "manager stats must reproduce");
        assert_eq!(a.1, b.1, "migrator stats must reproduce");
        assert_eq!(a.2, b.2, "latency must be bit-identical");
        assert_eq!(a.1.ticks, 30);
    }

    #[test]
    fn inert_migrator_ticks_without_moving() {
        let mut mgr = manager(16);
        for t in 0..20u64 {
            let _ = mgr.access(&rd(t, 100 + t % 4), DeviceId(1));
        }
        let mut inert = inert_migrator(MigrateConfig::default());
        let out = inert.tick(&mut mgr);
        assert_eq!(out, TickOutcome::default());
        assert_eq!(inert.stats().moved_pages(), 0);
        assert_eq!(inert.policy_name(), "no-migration");
        assert_eq!(mgr.stats().bg_migration_events, 0);
    }
}
