//! The migration-policy interface, the candidate scan both policies
//! share, and the two non-learning implementations.

use sibyl_hss::{DeviceId, PageMove, StorageManager};

use crate::config::MigrateConfig;

/// What one migration tick may choose from: promotion candidates pulled
/// from the slower devices' hot ends and demotion candidates from the
/// fast device's cold end, plus the summary features the RL agent
/// observes. Built once per tick by [`scan_candidates`].
#[derive(Debug, Clone)]
pub struct CandidateScan {
    /// Promotion candidates `(heat, lpn, current device)`, hottest first
    /// (ties broken by LPN so the order is deterministic), already capped
    /// at the per-tick move budget.
    pub promote: Vec<(u64, u64, DeviceId)>,
    /// Demotion candidates `(recency age, lpn)` on the fast device,
    /// oldest first — only pages idle for at least
    /// [`MigrateConfig::demote_min_idle`] recency ticks qualify.
    pub demote: Vec<(u64, u64)>,
    /// Fast-device fill fraction (`1 − remaining/capacity`).
    pub fast_fill: f64,
    /// Free pages on the fast device.
    pub free_fast: u64,
    /// The fast device (promotion target).
    pub fast: DeviceId,
    /// The device demotions land on (the next slower one).
    pub demote_to: DeviceId,
}

impl Default for CandidateScan {
    /// An empty scan over the conventional dual-HSS device ids.
    fn default() -> Self {
        CandidateScan {
            promote: Vec::new(),
            demote: Vec::new(),
            fast_fill: 0.0,
            free_fast: 0,
            fast: DeviceId(0),
            demote_to: DeviceId(1),
        }
    }
}

/// Scans the manager's page directory for migration candidates.
///
/// Promotion candidates come from each slower device's *recent* LRU end
/// (up to [`MigrateConfig::scan_limit`] entries per device — hot pages
/// are by definition recently touched, so the cold tail can be skipped
/// on huge directories) with at least
/// [`MigrateConfig::promote_min_heat`] accesses *since the page landed
/// on its current device* — a just-demoted or just-evicted page carries
/// its old heat but must earn fresh accesses before it can qualify
/// again, which is what breaks the demote/re-promote ping-pong.
/// Candidates are still *ranked* by total heat (long-term hotness
/// decides who goes first). Demotion candidates come from
/// the fast device's cold end, oldest first, stopping at the first page
/// younger than [`MigrateConfig::demote_min_idle`] recency ticks.
pub fn scan_candidates(mgr: &StorageManager, cfg: &MigrateConfig) -> CandidateScan {
    let fast = mgr.fastest();
    let dir = mgr.directory();
    let now = dir.current_token();
    let mut promote = Vec::new();
    for d in 1..mgr.num_devices() {
        let dev = DeviceId(d);
        for (_, lpn) in dir.iter_lru(dev).rev().take(cfg.scan_limit) {
            if dir.heat_since_place(lpn) >= cfg.promote_min_heat {
                promote.push((dir.heat(lpn), lpn, dev));
            }
        }
    }
    promote.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    promote.truncate(cfg.max_moves_per_tick);

    let mut demote = Vec::new();
    for (token, lpn) in dir.iter_lru(fast).take(cfg.scan_limit) {
        let age = now - token;
        if age < cfg.demote_min_idle || demote.len() >= cfg.max_moves_per_tick {
            // Oldest-first iteration: every later entry is younger still.
            break;
        }
        demote.push((age, lpn));
    }

    let capacity_known = mgr.capacity(fast) != u64::MAX;
    CandidateScan {
        promote,
        demote,
        fast_fill: if capacity_known {
            1.0 - mgr.remaining_fraction(fast)
        } else {
            0.0
        },
        free_fast: mgr.remaining_capacity(fast),
        fast,
        demote_to: DeviceId((fast.0 + 1).min(mgr.num_devices() - 1)),
    }
}

/// Cumulative request statistics over the window between two migration
/// ticks — the signal migration rewards are built from.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TickWindow {
    /// Requests the manager served during the window.
    pub requests: u64,
    /// Mean request latency over the window (µs; 0 for an empty window).
    pub avg_latency_us: f64,
    /// Fraction of the window's requests placed on the fast device.
    pub fast_fraction: f64,
    /// Simulated wall-clock span of the window (µs).
    pub span_us: f64,
}

/// What a policy learns about its *previous* tick's plan once the next
/// window has closed: the window that followed the plan, the window that
/// preceded it, and what the plan actually did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickFeedback {
    /// The window that elapsed since the plan executed.
    pub window: TickWindow,
    /// The window before it (`None` on the first tick).
    pub prev: Option<TickWindow>,
    /// Pages the plan actually moved.
    pub moved_pages: u64,
    /// Device time the plan's I/O consumed (µs).
    pub busy_us: f64,
}

/// A background-migration policy: plans page moves at each tick and
/// (optionally) learns from the latency change its previous plan caused.
pub trait MigrationPolicy: std::fmt::Debug + Send {
    /// A short display name (used in result tables).
    fn name(&self) -> &str;

    /// Plans this tick's moves from the candidate scan. Implementations
    /// should order demotions before promotions — the executor skips
    /// promotions the fast device has no room for, and demotions free
    /// room within the same batch.
    fn plan(
        &mut self,
        scan: &CandidateScan,
        window: &TickWindow,
        cfg: &MigrateConfig,
    ) -> Vec<PageMove>;

    /// Receives the outcome of the previous tick's plan. Default: ignore
    /// (heuristics don't learn).
    fn feedback(&mut self, fb: &TickFeedback) {
        let _ = fb;
    }
}

/// Pages per promotion cluster (the serving engine's 64-page routing
/// region). Promotions are picked cluster-wise so the executor's sorted
/// bulk reads become a few long contiguous runs instead of one
/// positioning cost per scattered page — migration moves extents, the
/// way real tiering engines do.
const CLUSTER_BITS: u32 = 6;

/// Builds a hot/cold move list from a candidate scan: demotions first
/// (freeing fast capacity the executor can hand to promotions in the
/// same batch), then promotions bounded by the free room and the move
/// budget. Promotion candidates are grouped into 64-page clusters ranked
/// by total heat, so each tick moves a few hot *extents* rather than the
/// globally hottest scattered pages — on positioning-dominated devices
/// (HDD) this amortizes the seek across the whole run. Shared by
/// [`HotColdThreshold`] and the RL policy's action arms.
pub(crate) fn hot_cold_plan(
    scan: &CandidateScan,
    cfg: &MigrateConfig,
    do_promote: bool,
    do_demote: bool,
) -> Vec<PageMove> {
    let budget = cfg.max_moves_per_tick;
    let mut moves = Vec::new();
    let mut demoted = 0usize;
    if do_demote {
        // Ceiling split so a budget of 1 can still demote — otherwise a
        // full fast device with no demotions would leave an active policy
        // permanently inert (no free room, no freed room).
        for &(_, lpn) in scan.demote.iter().take(budget.div_ceil(2)) {
            moves.push(PageMove {
                lpn,
                to: scan.demote_to,
            });
            demoted += 1;
        }
    }
    if do_promote {
        // `free_fast` can be astronomically large (unlimited-capacity
        // device); clamp into the budget before any arithmetic so the
        // sum cannot overflow.
        let free = scan.free_fast.min(budget as u64) as usize;
        let mut room = (free + demoted).min(budget - demoted);
        // Cluster candidates by region, rank regions by total heat
        // (ties by id for determinism), then promote whole clusters
        // while they fit the remaining room.
        let mut clusters: std::collections::BTreeMap<u64, (u64, Vec<u64>)> =
            std::collections::BTreeMap::new();
        for &(heat, lpn, _) in &scan.promote {
            let c = clusters.entry(lpn >> CLUSTER_BITS).or_default();
            c.0 += heat;
            c.1.push(lpn);
        }
        let mut ranked: Vec<(u64, u64, Vec<u64>)> = clusters
            .into_iter()
            .map(|(region, (heat, lpns))| (heat, region, lpns))
            .collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, _, mut lpns) in ranked {
            if room == 0 {
                break;
            }
            lpns.sort_unstable();
            lpns.truncate(room);
            room -= lpns.len();
            moves.extend(lpns.into_iter().map(|lpn| PageMove { lpn, to: scan.fast }));
        }
    }
    moves
}

/// The do-nothing baseline. The serving engine never constructs a
/// migrator for [`MigratePolicyKind::None`](crate::MigratePolicyKind) at
/// all; this implementation exists so drivers that *must* hold a policy
/// (tests, custom loops) have an explicit inert one.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMigration;

impl MigrationPolicy for NoMigration {
    fn name(&self) -> &str {
        "no-migration"
    }

    fn plan(
        &mut self,
        _scan: &CandidateScan,
        _window: &TickWindow,
        _cfg: &MigrateConfig,
    ) -> Vec<PageMove> {
        Vec::new()
    }
}

/// The heuristic: always promote pages above the heat threshold; demote
/// LRU-cold fast pages once the fast device fills past the watermark.
#[derive(Debug, Clone, Copy, Default)]
pub struct HotColdThreshold;

impl MigrationPolicy for HotColdThreshold {
    fn name(&self) -> &str {
        "hot-cold"
    }

    fn plan(
        &mut self,
        scan: &CandidateScan,
        _window: &TickWindow,
        cfg: &MigrateConfig,
    ) -> Vec<PageMove> {
        let do_demote = scan.fast_fill >= cfg.demote_watermark;
        hot_cold_plan(scan, cfg, true, do_demote)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::{DeviceSpec, HssConfig};
    use sibyl_trace::{IoOp, IoRequest};

    fn manager(fast_pages: u64) -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd())
            .with_capacity_pages(vec![fast_pages, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn rd(ts: u64, lpn: u64) -> IoRequest {
        IoRequest::new(ts, lpn, 1, IoOp::Read)
    }

    #[test]
    fn scan_finds_hot_slow_pages_and_cold_fast_pages() {
        let mut m = manager(4);
        // Hot slow pages: 100 and 101, re-read three times each.
        for t in 0..3u64 {
            let _ = m.access(&rd(t, 100), DeviceId(1));
            let _ = m.access(&rd(t, 101), DeviceId(1));
        }
        // A cold slow page and two fast-resident pages.
        let _ = m.access(&rd(3, 200), DeviceId(1));
        let _ = m.access(&rd(4, 300), DeviceId(0));
        let _ = m.access(&rd(5, 301), DeviceId(0));
        let mut cfg = MigrateConfig::new(crate::MigratePolicyKind::HotCold);
        cfg.demote_min_idle = 1; // everything on fast is "idle" for the test
        let scan = scan_candidates(&m, &cfg);
        let promoted: Vec<u64> = scan.promote.iter().map(|&(_, lpn, _)| lpn).collect();
        assert_eq!(promoted, vec![100, 101], "hot slow pages, hottest first");
        assert!(scan.promote.iter().all(|&(h, _, _)| h >= 3));
        let demote: Vec<u64> = scan.demote.iter().map(|&(_, lpn)| lpn).collect();
        assert_eq!(demote, vec![300], "only pages older than min idle");
        assert_eq!(scan.fast, DeviceId(0));
        assert_eq!(scan.demote_to, DeviceId(1));
        assert_eq!(scan.free_fast, 2);
        assert!((scan.fast_fill - 0.5).abs() < 1e-9);
    }

    #[test]
    fn demoted_pages_need_fresh_accesses_to_requalify() {
        // A hot page is promoted, then demoted; it carries its heat but
        // must not reappear as a promotion candidate until re-accessed —
        // the anti-ping-pong contract.
        let mut m = manager(8);
        let mut cfg = MigrateConfig::new(crate::MigratePolicyKind::HotCold);
        cfg.demote_min_idle = 1;
        for t in 0..4u64 {
            let _ = m.access(&rd(t, 100), DeviceId(1));
        }
        assert_eq!(
            scan_candidates(&m, &cfg)
                .promote
                .iter()
                .map(|&(_, l, _)| l)
                .collect::<Vec<_>>(),
            vec![100]
        );
        let _ = m.migrate_batch(
            &[sibyl_hss::PageMove {
                lpn: 100,
                to: DeviceId(0),
            }],
            0.0,
        );
        let _ = m.migrate_batch(
            &[sibyl_hss::PageMove {
                lpn: 100,
                to: DeviceId(1),
            }],
            0.0,
        );
        assert!(
            scan_candidates(&m, &cfg).promote.is_empty(),
            "a just-demoted page must not requalify without new accesses"
        );
        // Fresh accesses past the threshold requalify it.
        let _ = m.access(&rd(10, 100), DeviceId(1));
        let _ = m.access(&rd(11, 100), DeviceId(1));
        assert_eq!(scan_candidates(&m, &cfg).promote.len(), 1);
    }

    #[test]
    fn unlimited_fast_capacity_does_not_overflow_the_plan() {
        let scan = CandidateScan {
            promote: vec![(5, 100, DeviceId(1))],
            demote: vec![(900, 7)],
            fast_fill: 0.0,
            free_fast: u64::MAX,
            fast: DeviceId(0),
            demote_to: DeviceId(1),
        };
        let cfg = MigrateConfig::new(crate::MigratePolicyKind::HotCold);
        let moves = hot_cold_plan(&scan, &cfg, true, true);
        assert!(moves.iter().any(|m| m.to == DeviceId(0)));
    }

    #[test]
    fn hot_cold_plan_respects_capacity_and_budget() {
        let scan = CandidateScan {
            promote: (0..10).map(|i| (5, 100 + i, DeviceId(1))).collect(),
            demote: vec![(900, 7), (800, 8)],
            fast_fill: 1.0,
            free_fast: 1,
            fast: DeviceId(0),
            demote_to: DeviceId(1),
        };
        let mut cfg = MigrateConfig::new(crate::MigratePolicyKind::HotCold);
        cfg.max_moves_per_tick = 6;
        let moves = hot_cold_plan(&scan, &cfg, true, true);
        // 2 demotions (≤ budget/2), then promotions bounded by
        // free (1) + demoted (2) = 3.
        assert_eq!(moves.len(), 5);
        assert_eq!(moves[0].to, DeviceId(1));
        assert_eq!(moves[1].to, DeviceId(1));
        assert!(moves[2..].iter().all(|m| m.to == DeviceId(0)));
        // Promote-only keeps within free capacity alone.
        let promote_only = hot_cold_plan(&scan, &cfg, true, false);
        assert_eq!(promote_only.len(), 1);
    }

    #[test]
    fn heuristic_demotes_only_above_watermark() {
        let scan = CandidateScan {
            promote: vec![(9, 50, DeviceId(1))],
            demote: vec![(1_000, 7)],
            fast_fill: 0.5,
            free_fast: 8,
            fast: DeviceId(0),
            demote_to: DeviceId(1),
        };
        let cfg = MigrateConfig::new(crate::MigratePolicyKind::HotCold);
        let mut policy = HotColdThreshold;
        let calm = policy.plan(&scan, &TickWindow::default(), &cfg);
        assert!(calm.iter().all(|m| m.to == DeviceId(0)), "no demotion yet");
        let mut full = scan.clone();
        full.fast_fill = 0.95;
        let pressured = policy.plan(&full, &TickWindow::default(), &cfg);
        assert!(pressured.iter().any(|m| m.to == DeviceId(1)));
        assert_eq!(policy.name(), "hot-cold");
    }

    #[test]
    fn no_migration_plans_nothing() {
        let mut p = NoMigration;
        let cfg = MigrateConfig::default();
        assert!(p
            .plan(&CandidateScan::default(), &TickWindow::default(), &cfg)
            .is_empty());
        assert_eq!(p.name(), "no-migration");
        // Default feedback is callable and inert.
        p.feedback(&TickFeedback {
            window: TickWindow::default(),
            prev: None,
            moved_pages: 0,
            busy_us: 0.0,
        });
    }
}
