//! The Harmonia-style second RL agent: a tick-level C51 policy that
//! chooses how aggressively to migrate, trained online from the latency
//! change each plan causes.
//!
//! Where the placement agent decides *per request*, this agent decides
//! per migration *tick*: its three actions are "move nothing", "promote
//! hot pages", and "promote and demote". The candidate machinery is the
//! same deterministic scan the heuristic uses ([`hot_cold_plan`]); what
//! the agent learns is *when* each intensity pays — promotion is free
//! latency when the hot set went stale after a phase shift, but pure
//! cost when residency already matches the workload. It reuses
//! `sibyl-core`'s [`Learner`] (replay buffer, C51 head, two-network
//! training) with its own feature vector and reward, exactly the
//! "second agent, same machinery" structure Harmonia describes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sibyl_core::{Categorical, Experience, Learner, SibylConfig};
use sibyl_hss::PageMove;
use sibyl_nn::Mlp;

use crate::config::MigrateConfig;
use crate::policy::{hot_cold_plan, CandidateScan, MigrationPolicy, TickFeedback, TickWindow};

/// Tick actions: nothing, promote-only, promote + demote.
const N_ACTIONS: usize = 3;

/// Observation features: fast fill, candidate heat, candidate
/// availability, hit-rate delta.
const OBS_LEN: usize = 4;

/// Counters describing the RL migration agent's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RlMigrationStats {
    /// Ticks decided.
    pub decisions: u64,
    /// Decisions taken by random exploration.
    pub explorations: u64,
    /// Tick transitions pushed into the replay buffer.
    pub experiences: u64,
    /// Training steps completed.
    pub train_steps: u64,
}

/// The tick-level RL migration policy.
#[derive(Debug)]
pub struct RlMigration {
    head: Categorical,
    learner: Learner,
    inference: Mlp,
    rng: StdRng,
    exploration: f64,
    exploration_initial: f64,
    exploration_decay_ticks: u64,
    train_ticks: u64,
    /// The decision awaiting its reward and next observation.
    pending: Option<(Vec<f32>, usize)>,
    /// Reward computed by the latest [`MigrationPolicy::feedback`] call,
    /// consumed when the next plan supplies the next observation.
    last_reward: Option<f32>,
    /// Fast-placement fraction of the previous window (hit-rate-delta
    /// feature).
    prev_fast_fraction: f64,
    stats: RlMigrationStats,
}

impl RlMigration {
    /// Builds the agent from a migration configuration.
    ///
    /// # Panics
    ///
    /// Panics if the RL knobs are degenerate
    /// (see [`MigrateConfig::validate`]).
    pub fn new(cfg: &MigrateConfig) -> Self {
        let rl = &cfg.rl;
        // The learner is sibyl-core's, configured for the tick-level MDP:
        // `train_interval` is unused (training is driven by tick count
        // here), so it is pinned to 1.
        let sibyl = SibylConfig {
            discount: rl.discount,
            learning_rate: rl.learning_rate,
            exploration: rl.exploration,
            exploration_initial: rl.exploration_initial,
            exploration_decay_requests: rl.exploration_decay_ticks,
            batch_size: rl.batch_size,
            buffer_capacity: rl.buffer_capacity,
            batches_per_step: rl.batches_per_step,
            train_interval: 1,
            hidden_dims: [16, 16],
            n_atoms: rl.n_atoms,
            v_min: rl.v_min,
            v_max: rl.v_max,
            seed: cfg.seed ^ 0x4A8A_9D2E,
            ..Default::default()
        };
        let learner = Learner::new(&sibyl, N_ACTIONS, OBS_LEN);
        let inference = learner.weights_snapshot();
        RlMigration {
            head: Categorical::new(N_ACTIONS, rl.n_atoms, rl.v_min, rl.v_max),
            learner,
            inference,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x31C2_A70D),
            exploration: rl.exploration,
            exploration_initial: rl.exploration_initial,
            exploration_decay_ticks: rl.exploration_decay_ticks,
            train_ticks: rl.train_ticks,
            pending: None,
            last_reward: None,
            prev_fast_fraction: 0.0,
            stats: RlMigrationStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> &RlMigrationStats {
        &self.stats
    }

    /// The observation for one tick: every feature normalized into
    /// `[0, 1]`.
    fn observe(&self, scan: &CandidateScan, window: &TickWindow, cfg: &MigrateConfig) -> Vec<f32> {
        let mean_heat = if scan.promote.is_empty() {
            0.0
        } else {
            scan.promote.iter().map(|&(h, _, _)| h as f64).sum::<f64>() / scan.promote.len() as f64
        };
        let avail = scan.promote.len() as f64 / cfg.max_moves_per_tick.max(1) as f64;
        let hit_delta = (window.fast_fraction - self.prev_fast_fraction).clamp(-0.5, 0.5) + 0.5;
        vec![
            scan.fast_fill.clamp(0.0, 1.0) as f32,
            (mean_heat / (mean_heat + 8.0)) as f32,
            avail.clamp(0.0, 1.0) as f32,
            hit_delta as f32,
        ]
    }

    /// Linear ε anneal over ticks, mirroring the placement agent's
    /// schedule shape.
    fn epsilon(&self) -> f64 {
        let progress = if self.exploration_decay_ticks == 0 {
            1.0
        } else {
            (self.stats.decisions as f64 / self.exploration_decay_ticks as f64).min(1.0)
        };
        self.exploration_initial + (self.exploration - self.exploration_initial) * progress
    }
}

impl MigrationPolicy for RlMigration {
    fn name(&self) -> &str {
        "rl-migration"
    }

    /// Shapes the previous plan's reward from the post-migration latency
    /// change: the relative improvement of the window that followed the
    /// plan over the window that preceded it (clamped to `[-1, 1]`),
    /// minus a small cost proportional to how much was moved — so "move
    /// everything every tick" only wins when moving actually pays.
    fn feedback(&mut self, fb: &TickFeedback) {
        let Some(prev) = fb.prev else {
            self.last_reward = None;
            return;
        };
        if prev.requests == 0 || fb.window.requests == 0 || prev.avg_latency_us <= 0.0 {
            self.last_reward = None;
            return;
        }
        let improvement = ((prev.avg_latency_us - fb.window.avg_latency_us) / prev.avg_latency_us)
            .clamp(-1.0, 1.0);
        let cost = 0.05 * (fb.moved_pages as f64 / 64.0).min(1.0);
        self.last_reward = Some((improvement - cost) as f32);
    }

    fn plan(
        &mut self,
        scan: &CandidateScan,
        window: &TickWindow,
        cfg: &MigrateConfig,
    ) -> Vec<PageMove> {
        let obs = self.observe(scan, window, cfg);
        // Finalize the previous decision now that its reward (from
        // `feedback`) and next observation are both known.
        if let (Some((prev_obs, action)), Some(reward)) =
            (self.pending.take(), self.last_reward.take())
        {
            self.learner.push(Experience {
                obs: prev_obs,
                action,
                reward,
                next_obs: obs.clone(),
            });
            self.stats.experiences += 1;
        }
        // Train on the tick schedule.
        if self.stats.decisions > 0
            && self.stats.decisions.is_multiple_of(self.train_ticks)
            && self.learner.train_step().is_some()
        {
            self.inference = self.learner.weights_snapshot();
            self.stats.train_steps = self.learner.train_steps();
        }
        // ε-greedy action selection.
        let action = if self.rng.gen::<f64>() < self.epsilon() {
            self.stats.explorations += 1;
            self.rng.gen_range(0..N_ACTIONS)
        } else {
            self.head.best_action(&self.inference.infer(&obs))
        };
        self.stats.decisions += 1;
        self.prev_fast_fraction = window.fast_fraction;
        self.pending = Some((obs, action));
        match action {
            0 => Vec::new(),
            1 => hot_cold_plan(scan, cfg, true, false),
            _ => hot_cold_plan(scan, cfg, true, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MigratePolicyKind;
    use sibyl_hss::DeviceId;

    fn cfg() -> MigrateConfig {
        MigrateConfig::new(MigratePolicyKind::Rl)
    }

    fn scan() -> CandidateScan {
        CandidateScan {
            promote: vec![(5, 100, DeviceId(1)), (4, 101, DeviceId(1))],
            demote: vec![(900, 7)],
            fast_fill: 0.8,
            free_fast: 16,
            fast: DeviceId(0),
            demote_to: DeviceId(1),
        }
    }

    fn window(avg: f64) -> TickWindow {
        TickWindow {
            requests: 100,
            avg_latency_us: avg,
            fast_fraction: 0.5,
            span_us: 10_000.0,
        }
    }

    /// Drives the agent through `n` ticks with a fixed improvement signal.
    fn drive(agent: &mut RlMigration, n: u64, improving: bool) {
        let c = cfg();
        let mut prev: Option<TickWindow> = None;
        let mut moved = 0u64;
        for i in 0..n {
            let avg = if improving {
                1_000.0 / (1.0 + i as f64 * 0.01)
            } else {
                1_000.0
            };
            let w = window(avg);
            agent.feedback(&TickFeedback {
                window: w,
                prev,
                moved_pages: moved,
                busy_us: 0.0,
            });
            let moves = agent.plan(&scan(), &w, &c);
            moved = moves.len() as u64;
            prev = Some(w);
        }
    }

    #[test]
    fn agent_collects_experiences_and_trains() {
        let mut agent = RlMigration::new(&cfg());
        drive(&mut agent, 60, true);
        let st = agent.stats();
        assert_eq!(st.decisions, 60);
        assert!(st.experiences >= 50, "experiences: {}", st.experiences);
        assert!(st.train_steps > 0, "agent must train on the tick schedule");
        assert!(st.explorations > 0, "initial ε must explore");
        assert_eq!(agent.name(), "rl-migration");
    }

    #[test]
    fn seeded_agents_are_deterministic() {
        let run = || {
            let mut agent = RlMigration::new(&cfg());
            let mut trail = Vec::new();
            let c = cfg();
            let mut prev: Option<TickWindow> = None;
            for i in 0..40u64 {
                let w = window(500.0 + (i % 7) as f64 * 50.0);
                agent.feedback(&TickFeedback {
                    window: w,
                    prev,
                    moved_pages: i % 3,
                    busy_us: 0.0,
                });
                trail.push(agent.plan(&scan(), &w, &c));
                prev = Some(w);
            }
            trail
        };
        assert_eq!(run(), run(), "seeded RL migration must be deterministic");
    }

    #[test]
    fn first_tick_has_no_reward_to_learn_from() {
        let mut agent = RlMigration::new(&cfg());
        agent.feedback(&TickFeedback {
            window: window(100.0),
            prev: None,
            moved_pages: 0,
            busy_us: 0.0,
        });
        let _ = agent.plan(&scan(), &window(100.0), &cfg());
        assert_eq!(agent.stats().experiences, 0);
        // Second tick closes the first window: now an experience exists.
        agent.feedback(&TickFeedback {
            window: window(90.0),
            prev: Some(window(100.0)),
            moved_pages: 2,
            busy_us: 5.0,
        });
        let _ = agent.plan(&scan(), &window(90.0), &cfg());
        assert_eq!(agent.stats().experiences, 1);
    }

    #[test]
    fn actions_map_to_plan_shapes() {
        // Whatever the agent picks, the plan is one of the three shapes;
        // over many ticks with a high-exploration config all three appear.
        let mut c = cfg();
        c.rl.exploration = 1.0;
        c.rl.exploration_initial = 1.0;
        let mut agent = RlMigration::new(&c);
        let mut shapes = std::collections::HashSet::new();
        let mut prev: Option<TickWindow> = None;
        for _ in 0..60 {
            let w = window(100.0);
            agent.feedback(&TickFeedback {
                window: w,
                prev,
                moved_pages: 0,
                busy_us: 0.0,
            });
            let moves = agent.plan(&scan(), &w, &c);
            let demotes = moves.iter().filter(|m| m.to == DeviceId(1)).count();
            let promotes = moves.len() - demotes;
            shapes.insert((promotes > 0, demotes > 0));
            prev = Some(w);
        }
        assert!(shapes.contains(&(false, false)), "action 0: nothing");
        assert!(shapes.contains(&(true, false)), "action 1: promote only");
        assert!(shapes.contains(&(true, true)), "action 2: promote+demote");
    }
}
