//! Element-wise activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// An element-wise activation function.
///
/// The Sibyl paper uses the swish activation (`x · sigmoid(x)`,
/// Ramachandran et al.) on all fully-connected layers, noting it
/// outperforms ReLU for the data-placement task (§6.2.2).
///
/// # Examples
///
/// ```
/// use sibyl_nn::Activation;
/// assert_eq!(Activation::Relu.apply(-1.0), 0.0);
/// assert!((Activation::Swish.apply(0.0)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Activation {
    /// Identity: `f(x) = x`.
    #[default]
    Linear,
    /// Rectified linear unit: `f(x) = max(0, x)`.
    Relu,
    /// Swish (a.k.a. SiLU): `f(x) = x · σ(x)`. The paper's choice.
    Swish,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid: `f(x) = 1 / (1 + e^-x)`.
    Sigmoid,
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Activation {
    /// Applies the activation to a single pre-activation value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::Swish => x * sigmoid(x),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => sigmoid(x),
        }
    }

    /// Derivative `df/dx` expressed in terms of the pre-activation `x`.
    #[inline]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Swish => {
                let s = sigmoid(x);
                s + x * s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = sigmoid(x);
                s * (1.0 - s)
            }
        }
    }

    /// Applies the activation in place over a slice of pre-activations.
    pub fn apply_slice(self, xs: &mut [f32]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const ALL: [Activation; 5] = [
        Activation::Linear,
        Activation::Relu,
        Activation::Swish,
        Activation::Tanh,
        Activation::Sigmoid,
    ];

    #[test]
    fn swish_matches_reference_points() {
        // swish(1) = 1 * sigmoid(1) ≈ 0.731058
        assert!((Activation::Swish.apply(1.0) - 0.731_058).abs() < 1e-4);
        // swish is slightly negative for small negative inputs
        assert!(Activation::Swish.apply(-1.0) < 0.0);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-5.0), 0.0);
        assert_eq!(Activation::Relu.apply(5.0), 5.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut v = [-1.0f32, 0.0, 2.5];
        Activation::Tanh.apply_slice(&mut v);
        assert_eq!(v[1], 0.0);
        assert!((v[2] - 2.5f32.tanh()).abs() < 1e-6);
    }

    proptest! {
        /// Every activation's analytic derivative matches a central finite
        /// difference (away from the ReLU kink).
        #[test]
        fn derivatives_match_finite_differences(x in -4.0f32..4.0) {
            let h = 1e-3f32;
            for act in ALL {
                if act == Activation::Relu && x.abs() < 2.0 * h {
                    continue; // non-differentiable at 0
                }
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative(x);
                prop_assert!(
                    (numeric - analytic).abs() < 5e-3,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }

        /// Sigmoid output is a probability; swish is bounded below.
        #[test]
        fn ranges_hold(x in -50.0f32..50.0) {
            let s = Activation::Sigmoid.apply(x);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(Activation::Swish.apply(x) >= -0.2785);
        }
    }
}
