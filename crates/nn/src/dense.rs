//! Fully-connected layer with cached forward state for backpropagation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::half;
use crate::init::xavier_uniform;
use crate::linalg;

/// A fully-connected layer `y = act(W·x + b)`.
///
/// Weights are stored row-major as `(out_dim × in_dim)`. The layer caches
/// its last input and pre-activation during [`Dense::forward`] so
/// [`Dense::backward`] can compute exact gradients; use
/// [`Dense::infer`] for cache-free inference (the paper's inference
/// network is never trained directly, §6.2.2).
///
/// # Examples
///
/// ```
/// use sibyl_nn::{Activation, Dense};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut layer = Dense::new(3, 2, Activation::Relu, &mut rng);
/// let y = layer.forward(&[1.0, 0.0, -1.0]);
/// assert_eq!(y.len(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    act: Activation,
    w: Vec<f32>,
    b: Vec<f32>,
    #[serde(skip)]
    dw: Vec<f32>,
    #[serde(skip)]
    db: Vec<f32>,
    #[serde(skip)]
    cache_x: Vec<f32>,
    #[serde(skip)]
    cache_z: Vec<f32>,
    /// Rows in the cached forward state: 1 after [`Dense::forward`],
    /// `batch` after [`Dense::forward_batch`], 0 when nothing is cached.
    #[serde(skip)]
    cache_batch: usize,
    /// Binary16 shadow of `w`, kept in sync by [`Dense::refresh_f16`]
    /// while the f16 inference fast path is enabled; empty otherwise.
    /// Runtime-only state (like the caches): a deserialized layer starts
    /// with the fast path disabled until [`Dense::enable_f16`] is called.
    #[serde(skip)]
    f16_w: Vec<u16>,
    /// Binary16 shadow of `b`; same lifecycle as `f16_w`.
    #[serde(skip)]
    f16_b: Vec<u16>,
}

impl Dense {
    /// Creates a layer with Xavier-uniform weights and zero biases.
    ///
    /// # Panics
    ///
    /// Panics if `in_dim` or `out_dim` is zero.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "Dense: dimensions must be non-zero"
        );
        let mut w = vec![0.0; in_dim * out_dim];
        xavier_uniform(&mut w, in_dim, out_dim, rng);
        Dense {
            in_dim,
            out_dim,
            act,
            w,
            b: vec![0.0; out_dim],
            dw: vec![0.0; in_dim * out_dim],
            db: vec![0.0; out_dim],
            cache_x: Vec::new(),
            cache_z: Vec::new(),
            cache_batch: 0,
            f16_w: Vec::new(),
            f16_b: Vec::new(),
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Number of trainable parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Multiply-accumulate operations for one forward pass, as counted by
    /// the paper's overhead analysis (§10.1).
    pub fn mac_count(&self) -> usize {
        self.in_dim * self.out_dim
    }

    /// Forward pass that caches `x` and the pre-activation for
    /// [`Dense::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.in_dim,
            "Dense::forward: input length mismatch"
        );
        self.cache_x.clear();
        self.cache_x.extend_from_slice(x);
        let mut z = Vec::new();
        linalg::matvec_bias(&self.w, &self.b, x, self.out_dim, self.in_dim, &mut z);
        self.cache_z.clear();
        self.cache_z.extend_from_slice(&z);
        self.cache_batch = 1;
        self.act.apply_slice(&mut z);
        z
    }

    /// Forward pass over a whole batch that caches the inputs and
    /// pre-activations for [`Dense::backward_batch`] — the training twin
    /// of [`Dense::infer_batch`], just as [`Dense::forward`] is the
    /// training twin of [`Dense::infer`].
    ///
    /// `xs` is row-major `(batch × in_dim)`; the result is row-major
    /// `(batch × out_dim)`, and each output row is bit-identical to
    /// [`Dense::forward`] on the corresponding input (the batched kernel
    /// keeps every dot product's accumulation order unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `xs.len() != batch * in_dim`.
    pub fn forward_batch(&mut self, xs: &[f32], batch: usize) -> Vec<f32> {
        assert!(batch > 0, "Dense::forward_batch: empty batch");
        assert_eq!(
            xs.len(),
            batch * self.in_dim,
            "Dense::forward_batch: input shape mismatch"
        );
        self.cache_x.clear();
        self.cache_x.extend_from_slice(xs);
        let mut z = Vec::new();
        linalg::matmul_bias(
            &self.w,
            &self.b,
            xs,
            self.out_dim,
            self.in_dim,
            batch,
            &mut z,
        );
        self.cache_z.clear();
        self.cache_z.extend_from_slice(&z);
        self.cache_batch = batch;
        self.act.apply_slice(&mut z);
        z
    }

    /// Cache-free forward pass for inference. Writes activations into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn infer(&self, x: &[f32], out: &mut Vec<f32>) {
        assert_eq!(x.len(), self.in_dim, "Dense::infer: input length mismatch");
        linalg::matvec_bias(&self.w, &self.b, x, self.out_dim, self.in_dim, out);
        self.act.apply_slice(out);
    }

    /// Cache-free forward pass over a whole batch. `xs` is row-major
    /// `(batch × in_dim)`; `out` is refilled row-major
    /// `(batch × out_dim)`. Each output row is bit-identical to what
    /// [`Dense::infer`] produces for the corresponding input — the
    /// batched path only restructures the loops for weight-row reuse.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != batch * in_dim`.
    pub fn infer_batch(&self, xs: &[f32], batch: usize, out: &mut Vec<f32>) {
        assert_eq!(
            xs.len(),
            batch * self.in_dim,
            "Dense::infer_batch: input shape mismatch"
        );
        linalg::matmul_bias(&self.w, &self.b, xs, self.out_dim, self.in_dim, batch, out);
        self.act.apply_slice(out);
    }

    /// Enables the f16 inference fast path: allocates the binary16 shadow
    /// buffers and encodes the current weights into them. Idempotent.
    ///
    /// After this, [`Dense::infer_batch_f16`] may be called, and every
    /// weight mutation through [`Dense::copy_weights_from`] re-encodes the
    /// shadows automatically. Training state is untouched — the f32
    /// master weights remain the source of truth.
    pub fn enable_f16(&mut self) {
        half::quantize_to_bits(&self.w, &mut self.f16_w);
        half::quantize_to_bits(&self.b, &mut self.f16_b);
    }

    /// Whether the f16 shadow buffers are allocated and in sync.
    pub fn f16_enabled(&self) -> bool {
        !self.f16_w.is_empty()
    }

    /// Re-encodes the binary16 shadow buffers from the current f32
    /// weights. No-op while the fast path is disabled, so the training
    /// hot loop never pays for it.
    pub fn refresh_f16(&mut self) {
        if self.f16_enabled() {
            half::quantize_to_bits(&self.w, &mut self.f16_w);
            half::quantize_to_bits(&self.b, &mut self.f16_b);
        }
    }

    /// Storage bytes of the binary16 shadow buffers (0 when disabled) —
    /// the §10.2 footprint the shadow actually occupies.
    pub fn f16_storage_bytes(&self) -> usize {
        half::storage_bytes(self.f16_w.len() + self.f16_b.len())
    }

    /// Cache-free batched forward pass reading the binary16 shadow
    /// weights instead of the f32 masters: the opt-in quantized inference
    /// fast path (`QuantMode::F16` at the serving layer).
    ///
    /// The shadows are decoded into the caller-provided `scratch` once
    /// per call — O(params), amortized over the whole batch — and the
    /// decoded values then run through the same tiled f32 kernel as
    /// [`Dense::infer_batch`]: compute stays f32, only the weight
    /// *storage* is 16-bit. Output differs from the f32 path only by the
    /// binary16 rounding of the weights (≤ 2⁻¹¹ relative per weight),
    /// a bound the kernel-parity property suite pins.
    ///
    /// # Panics
    ///
    /// Panics if the fast path is not enabled ([`Dense::enable_f16`]) or
    /// `xs.len() != batch * in_dim`.
    pub fn infer_batch_f16(
        &self,
        xs: &[f32],
        batch: usize,
        scratch: &mut Vec<f32>,
        out: &mut Vec<f32>,
    ) {
        assert!(
            self.f16_enabled(),
            "Dense::infer_batch_f16: fast path not enabled (call enable_f16 first)"
        );
        assert_eq!(
            xs.len(),
            batch * self.in_dim,
            "Dense::infer_batch_f16: input shape mismatch"
        );
        // Decode weights then biases into one scratch buffer: the weight
        // matrix occupies the first `out_dim·in_dim` slots.
        scratch.clear();
        scratch.reserve(self.f16_w.len() + self.f16_b.len());
        for &bits in &self.f16_w {
            scratch.push(half::f16_bits_to_f32(bits));
        }
        for &bits in &self.f16_b {
            scratch.push(half::f16_bits_to_f32(bits));
        }
        let (w, b) = scratch.split_at(self.f16_w.len());
        linalg::matmul_bias(w, b, xs, self.out_dim, self.in_dim, batch, out);
        self.act.apply_slice(out);
    }

    /// Backward pass: given `dL/dy`, accumulates `dL/dW` and `dL/db` into
    /// the layer's gradient buffers and returns `dL/dx`.
    ///
    /// Must be preceded by a call to [`Dense::forward`] for the same input.
    ///
    /// # Panics
    ///
    /// Panics if `dy.len() != out_dim` or no forward pass was cached.
    pub fn backward(&mut self, dy: &[f32]) -> Vec<f32> {
        assert_eq!(
            dy.len(),
            self.out_dim,
            "Dense::backward: delta length mismatch"
        );
        assert_eq!(
            self.cache_x.len(),
            self.in_dim,
            "Dense::backward called without a cached forward pass"
        );
        // dz = dy ⊙ act'(z)
        let mut dz = Vec::with_capacity(self.out_dim);
        for (i, &d) in dy.iter().enumerate() {
            dz.push(d * self.act.derivative(self.cache_z[i]));
        }
        linalg::outer_acc(&mut self.dw, &dz, &self.cache_x);
        linalg::add_assign(&mut self.db, &dz);
        let mut dx = Vec::new();
        linalg::matvec_transpose(&self.w, &dz, self.out_dim, self.in_dim, &mut dx);
        dx
    }

    /// Batched backward pass: given the row-major `(batch × out_dim)`
    /// upstream gradient `dy`, accumulates the whole batch's `dL/dW` and
    /// `dL/db` into the layer's gradient buffers and returns the
    /// row-major `(batch × in_dim)` gradient `dL/dx`.
    ///
    /// Must be preceded by a [`Dense::forward_batch`] call with the same
    /// `batch`. The accumulation order per gradient element is kept
    /// identical to `batch` sequential [`Dense::forward`] +
    /// [`Dense::backward`] calls in sample order — per weight row, each
    /// sample's contribution lands in ascending sample order — so the
    /// batched training path is bit-exact against the per-sample loop
    /// (pinned by the `train_batch_parity` property suite).
    ///
    /// # Panics
    ///
    /// Panics if `dy.len() != batch * out_dim` or the cached forward
    /// state does not match `batch`.
    pub fn backward_batch(&mut self, dy: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(
            dy.len(),
            batch * self.out_dim,
            "Dense::backward_batch: delta shape mismatch"
        );
        assert_eq!(
            self.cache_batch, batch,
            "Dense::backward_batch called without a matching forward_batch"
        );
        // dz = dy ⊙ act'(z), element-wise over the whole batch — the same
        // scalar derivative per element as the per-sample path.
        let mut dz = Vec::with_capacity(dy.len());
        for (i, &d) in dy.iter().enumerate() {
            dz.push(d * self.act.derivative(self.cache_z[i]));
        }
        linalg::matmul_at_b_acc(
            &mut self.dw,
            &dz,
            &self.cache_x,
            self.out_dim,
            self.in_dim,
            batch,
        );
        linalg::col_sum_acc(&mut self.db, &dz, batch);
        let mut dx = Vec::new();
        linalg::matmul_transpose(&self.w, &dz, self.out_dim, self.in_dim, batch, &mut dx);
        dx
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dw.iter_mut().for_each(|g| *g = 0.0);
        self.db.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Immutable views of `(weights, biases)`.
    pub fn params(&self) -> (&[f32], &[f32]) {
        (&self.w, &self.b)
    }

    /// Mutable views of `(weights, biases)`.
    pub fn params_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.w, &mut self.b)
    }

    /// Immutable views of `(weight grads, bias grads)`.
    pub fn grads(&self) -> (&[f32], &[f32]) {
        (&self.dw, &self.db)
    }

    /// Mutable parameter and gradient views, in the order
    /// `(w, dw, b, db)`, for optimizer updates.
    pub fn params_and_grads_mut(&mut self) -> (&mut [f32], &mut [f32], &mut [f32], &mut [f32]) {
        (&mut self.w, &mut self.dw, &mut self.b, &mut self.db)
    }

    /// Copies weights and biases from another layer of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn copy_weights_from(&mut self, other: &Dense) {
        assert_eq!(
            self.in_dim, other.in_dim,
            "copy_weights_from: in_dim mismatch"
        );
        assert_eq!(
            self.out_dim, other.out_dim,
            "copy_weights_from: out_dim mismatch"
        );
        self.w.copy_from_slice(&other.w);
        self.b.copy_from_slice(&other.b);
        self.refresh_f16();
    }

    /// Restores gradient/cache buffers after deserialization.
    pub(crate) fn ensure_buffers(&mut self) {
        if self.dw.len() != self.w.len() {
            self.dw = vec![0.0; self.w.len()];
        }
        if self.db.len() != self.b.len() {
            self.db = vec![0.0; self.b.len()];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn forward_shapes() {
        let mut layer = Dense::new(4, 3, Activation::Linear, &mut rng());
        let y = layer.forward(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y.len(), 3);
        assert_eq!(layer.num_params(), 4 * 3 + 3);
        assert_eq!(layer.mac_count(), 12);
    }

    #[test]
    fn infer_matches_forward() {
        let mut layer = Dense::new(5, 2, Activation::Swish, &mut rng());
        let x = [0.3, -0.5, 0.9, 0.0, 2.0];
        let y1 = layer.forward(&x);
        let mut y2 = Vec::new();
        layer.infer(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn forward_rejects_bad_input() {
        let mut layer = Dense::new(4, 3, Activation::Linear, &mut rng());
        let _ = layer.forward(&[1.0]);
    }

    #[test]
    fn copy_weights_makes_layers_identical() {
        let mut a = Dense::new(3, 3, Activation::Tanh, &mut rng());
        let mut src_rng = rand::rngs::StdRng::seed_from_u64(77);
        let b = Dense::new(3, 3, Activation::Tanh, &mut src_rng);
        a.copy_weights_from(&b);
        let x = [0.1, 0.2, 0.3];
        let mut ya = Vec::new();
        let mut yb = Vec::new();
        a.infer(&x, &mut ya);
        b.infer(&x, &mut yb);
        assert_eq!(ya, yb);
    }

    #[test]
    fn infer_batch_f16_close_to_f32_and_refreshes_on_copy() {
        let mut layer = Dense::new(6, 4, Activation::Swish, &mut rng());
        layer.enable_f16();
        assert!(layer.f16_enabled());
        assert_eq!(layer.f16_storage_bytes(), (6 * 4 + 4) * 2);
        let xs: Vec<f32> = (0..12).map(|i| (i as f32) * 0.17 - 1.0).collect();
        let mut scratch = Vec::new();
        let (mut y16, mut y32) = (Vec::new(), Vec::new());
        layer.infer_batch_f16(&xs, 2, &mut scratch, &mut y16);
        layer.infer_batch(&xs, 2, &mut y32);
        assert_eq!(y16.len(), y32.len());
        for (a, b) in y16.iter().zip(&y32) {
            assert!((a - b).abs() < 1e-2, "f16 {a} vs f32 {b}");
        }
        // copy_weights_from must re-encode the shadows.
        let mut src_rng = rand::rngs::StdRng::seed_from_u64(99);
        let other = Dense::new(6, 4, Activation::Swish, &mut src_rng);
        layer.copy_weights_from(&other);
        let mut y16b = Vec::new();
        layer.infer_batch_f16(&xs, 2, &mut scratch, &mut y16b);
        assert_ne!(y16, y16b, "shadow must track the new weights");
    }

    #[test]
    #[should_panic(expected = "fast path not enabled")]
    fn infer_batch_f16_requires_enable() {
        let layer = Dense::new(3, 2, Activation::Linear, &mut rng());
        let (mut scratch, mut out) = (Vec::new(), Vec::new());
        layer.infer_batch_f16(&[0.0; 3], 1, &mut scratch, &mut out);
    }

    #[test]
    fn serde_roundtrip_preserves_weights() {
        let layer = Dense::new(3, 2, Activation::Swish, &mut rng());
        let json = serde_json_like(&layer);
        assert!(json.contains("Swish"));
    }

    // serde_json is not a dependency; spot-check through bincode-free debug
    // formatting that serialization derives exist by using serde's
    // Serialize trait bound at compile time.
    fn serde_json_like<T: serde::Serialize + std::fmt::Debug>(t: &T) -> String {
        format!("{t:?}")
    }

    /// Finite-difference gradient check: perturb each weight and compare
    /// dL/dw against (L(w+h) - L(w-h)) / 2h for the scalar loss L = Σ y².
    #[test]
    fn gradient_check_weights() {
        let mut layer = Dense::new(4, 3, Activation::Swish, &mut rng());
        let x = [0.5, -0.2, 0.8, 0.1];

        let loss = |layer: &Dense, x: &[f32]| -> f32 {
            let mut y = Vec::new();
            layer.infer(x, &mut y);
            y.iter().map(|v| v * v).sum()
        };

        // Analytic gradient.
        let y = layer.forward(&x);
        let dy: Vec<f32> = y.iter().map(|v| 2.0 * v).collect();
        layer.zero_grad();
        let _ = layer.backward(&dy);
        let (dw, _db) = {
            let (dw, db) = layer.grads();
            (dw.to_vec(), db.to_vec())
        };

        let h = 1e-3f32;
        // Indexes both the mutated weights and the saved gradient, so an
        // iterator over either alone doesn't fit.
        #[allow(clippy::needless_range_loop)]
        for idx in 0..layer.w.len() {
            let orig = layer.w[idx];
            layer.w[idx] = orig + h;
            let lp = loss(&layer, &x);
            layer.w[idx] = orig - h;
            let lm = loss(&layer, &x);
            layer.w[idx] = orig;
            let numeric = (lp - lm) / (2.0 * h);
            assert!(
                (numeric - dw[idx]).abs() < 2e-2,
                "weight {idx}: numeric {numeric} vs analytic {}",
                dw[idx]
            );
        }
    }

    proptest! {
        /// Input gradients match finite differences for random inputs.
        #[test]
        fn gradient_check_inputs(seed in 0u64..500) {
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let mut layer = Dense::new(3, 2, Activation::Tanh, &mut r);
            let x: Vec<f32> = (0..3).map(|_| {
                use rand::Rng;
                r.gen_range(-1.0f32..1.0)
            }).collect();

            let y = layer.forward(&x);
            let dy: Vec<f32> = y.iter().map(|v| 2.0 * v).collect();
            layer.zero_grad();
            let dx = layer.backward(&dy);

            let loss = |layer: &Dense, x: &[f32]| -> f32 {
                let mut y = Vec::new();
                layer.infer(x, &mut y);
                y.iter().map(|v| v * v).sum()
            };

            let h = 1e-3f32;
            for i in 0..x.len() {
                let mut xp = x.clone();
                xp[i] += h;
                let mut xm = x.clone();
                xm[i] -= h;
                let numeric = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * h);
                prop_assert!((numeric - dx[i]).abs() < 2e-2);
            }
        }
    }
}
