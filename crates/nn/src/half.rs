//! IEEE 754 binary16 (half-precision) conversion utilities.
//!
//! The paper stores network weights and rewards in half precision to reach
//! its 124.4 KiB total overhead (§10.2: 780 16-bit weights ⇒ 12.2 KiB per
//! network ... sic, the paper rounds generously; we reproduce the same
//! accounting). Computation stays in `f32`: these helpers quantize values
//! through binary16, encode/decode real 16-bit storage buffers
//! ([`quantize_to_bits`]/[`dequantize_bits`] back the opt-in f16 inference
//! fast path in [`Dense`](crate::Dense)), and measure the storage
//! footprint.

/// Converts an `f32` to its IEEE 754 binary16 bit pattern
/// (round-to-nearest-even), handling subnormals, infinities, and NaN.
///
/// # Examples
///
/// ```
/// use sibyl_nn::half::{f32_to_f16_bits, f16_bits_to_f32};
/// let bits = f32_to_f16_bits(1.0);
/// assert_eq!(bits, 0x3C00);
/// assert_eq!(f16_bits_to_f32(bits), 1.0);
/// ```
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN
        return if frac == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00 // quiet NaN
        };
    }

    // Re-bias exponent from 127 to 15.
    let unbiased = exp - 127;
    let new_exp = unbiased + 15;

    if new_exp >= 0x1F {
        // Overflow -> infinity.
        return sign | 0x7C00;
    }
    if new_exp <= 0 {
        // Subnormal or zero in f16.
        if new_exp < -10 {
            return sign; // underflows to zero
        }
        // Add implicit leading 1 and shift into subnormal position.
        let mant = frac | 0x0080_0000;
        let shift = (14 - new_exp) as u32;
        let sub = mant >> shift;
        // Round to nearest even.
        let round_bit = 1u32 << (shift - 1);
        let lower = mant & (round_bit | (round_bit - 1));
        let mut half = sub as u16;
        if lower > round_bit || (lower == round_bit && (sub & 1) == 1) {
            half += 1;
        }
        return sign | half;
    }

    // Normal number: keep top 10 fraction bits with round-to-nearest-even.
    let mut half = (new_exp as u16) << 10 | (frac >> 13) as u16;
    let round_bits = frac & 0x1FFF;
    if round_bits > 0x1000 || (round_bits == 0x1000 && (half & 1) == 1) {
        half = half.wrapping_add(1); // may carry into the exponent, which is correct
    }
    sign | half
}

/// Converts an IEEE 754 binary16 bit pattern back to `f32`.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let frac = (bits & 0x03FF) as u32;

    let out = if exp == 0 {
        if frac == 0 {
            sign // signed zero
        } else {
            // Subnormal (value = frac · 2⁻²⁴): normalize. After shifting
            // the leading 1 up to bit 10 in k steps the value is
            // (1 + f/1024) · 2^(−14−k), so the biased f32 exponent is
            // 127 − 14 + e with e = −k.
            let mut e = 0i32;
            let mut f = frac;
            while f & 0x0400 == 0 {
                f <<= 1;
                e -= 1;
            }
            let f = f & 0x03FF;
            let exp32 = (127 - 14 + e) as u32;
            sign | (exp32 << 23) | (f << 13)
        }
    } else if exp == 0x1F {
        if frac == 0 {
            sign | 0x7F80_0000 // infinity
        } else {
            sign | 0x7FC0_0000 // NaN
        }
    } else {
        let exp32 = exp + 127 - 15;
        sign | (exp32 << 23) | (frac << 13)
    };
    f32::from_bits(out)
}

/// Quantizes a value through binary16 and back (the precision the paper's
/// stored weights actually have).
pub fn quantize(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Quantizes a slice in place through binary16.
pub fn quantize_slice(xs: &mut [f32]) {
    for x in xs {
        *x = quantize(*x);
    }
}

/// Encodes a slice of `f32` values into binary16 bit patterns, refilling
/// `out` (cleared first). This is the storage direction of the f16
/// inference fast path: `Dense` keeps its shadow weight buffers as
/// `Vec<u16>` produced by this function.
pub fn quantize_to_bits(xs: &[f32], out: &mut Vec<u16>) {
    out.clear();
    out.reserve(xs.len());
    for &x in xs {
        out.push(f32_to_f16_bits(x));
    }
}

/// Decodes a slice of binary16 bit patterns back into `f32`, refilling
/// `out` (cleared first). The inference fast path decodes a layer's shadow
/// buffers once per batched call, then runs the f32 tiled kernels on the
/// decoded values — compute stays f32, only storage is 16-bit.
pub fn dequantize_bits(bits: &[u16], out: &mut Vec<f32>) {
    out.clear();
    out.reserve(bits.len());
    for &b in bits {
        out.push(f16_bits_to_f32(b));
    }
}

/// Storage bytes needed to hold `n` half-precision values.
pub const fn storage_bytes(n: usize) -> usize {
    n * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_constants() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // max finite f16
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(1e10), 0x7C00); // overflow
    }

    #[test]
    fn roundtrip_exact_for_representable() {
        for &v in &[0.5f32, 0.25, 1.5, 3.0, -100.0, 2048.0] {
            assert_eq!(f16_bits_to_f32(f32_to_f16_bits(v)), v);
        }
    }

    #[test]
    fn nan_survives() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive f16 subnormal is 2^-24 ≈ 5.96e-8.
        let tiny = 5.96e-8f32;
        let q = quantize(tiny);
        assert!(q > 0.0 && q < 1e-7);
        // Below half of the smallest subnormal underflows to zero.
        assert_eq!(quantize(1e-9), 0.0);
    }

    #[test]
    fn storage_accounting() {
        // The paper: 780 weights + 52 biases stored in f16.
        assert_eq!(storage_bytes(780 + 52), 1664);
    }

    #[test]
    fn quantize_slice_applies_elementwise() {
        let mut v = [1.0f32, 1.0001, -0.3333];
        quantize_slice(&mut v);
        assert_eq!(v[0], 1.0);
        assert!((v[1] - 1.0).abs() < 1e-3);
        assert!((v[2] + 0.3333).abs() < 1e-3);
    }

    proptest! {
        /// Quantization error is within half an ULP of binary16 for normal
        /// values: relative error ≤ 2^-11.
        #[test]
        fn quantization_error_bounded(x in -60000.0f32..60000.0) {
            prop_assume!(x.abs() > 6.2e-5); // skip the subnormal range
            let q = quantize(x);
            let rel = ((q - x) / x).abs();
            prop_assert!(rel <= 4.9e-4, "x={x} q={q} rel={rel}");
        }

        /// Quantization is idempotent.
        #[test]
        fn quantize_idempotent(x in -60000.0f32..60000.0) {
            let q = quantize(x);
            prop_assert_eq!(quantize(q).to_bits(), q.to_bits());
        }

        /// Sign is always preserved.
        #[test]
        fn sign_preserved(x in -60000.0f32..60000.0) {
            let q = quantize(x);
            prop_assert_eq!(q.is_sign_negative(), x.is_sign_negative());
        }
    }
}
