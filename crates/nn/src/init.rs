//! Weight initialization schemes.

use rand::Rng;

/// Fills `w` with Xavier/Glorot-uniform samples for a layer with the given
/// fan-in and fan-out: `U(-√(6/(in+out)), +√(6/(in+out)))`.
///
/// Glorot initialization keeps forward activations and backward gradients
/// at comparable variance in small tanh/swish networks like the paper's
/// 6-20-30-|A| placement network.
pub fn xavier_uniform<R: Rng + ?Sized>(w: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut R) {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    for v in w {
        *v = rng.gen_range(-limit..=limit);
    }
}

/// Fills `w` with He/Kaiming-uniform samples: `U(-√(6/in), +√(6/in))`.
///
/// Preferred for ReLU networks; provided for the baseline policies that use
/// ReLU classifiers (e.g. Archivist).
pub fn he_uniform<R: Rng + ?Sized>(w: &mut [f32], fan_in: usize, rng: &mut R) {
    let limit = (6.0 / fan_in as f32).sqrt();
    for v in w {
        *v = rng.gen_range(-limit..=limit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut w = vec![0.0; 1000];
        xavier_uniform(&mut w, 20, 30, &mut rng);
        let limit = (6.0f32 / 50.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= limit + f32::EPSILON));
        // Not degenerate: some spread.
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.05);
    }

    #[test]
    fn he_respects_limit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut w = vec![0.0; 500];
        he_uniform(&mut w, 6, &mut rng);
        let limit = 1.0f32;
        assert!(w.iter().all(|v| v.abs() <= limit + f32::EPSILON));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        let mut r1 = rand::rngs::StdRng::seed_from_u64(9);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(9);
        xavier_uniform(&mut a, 4, 4, &mut r1);
        xavier_uniform(&mut b, 4, 4, &mut r2);
        assert_eq!(a, b);
    }
}
