//! # sibyl-nn
//!
//! Minimal neural-network substrate for the Sibyl reproduction.
//!
//! The Sibyl paper (ISCA 2022) uses a tiny feed-forward network — two hidden
//! layers of 20 and 30 neurons with swish activations, roughly 780 weights —
//! trained online with stochastic gradient descent. The paper builds on
//! TF-Agents; this crate implements the same building blocks from scratch so
//! the whole system is self-contained:
//!
//! - [`Dense`] fully-connected layers with configurable [`Activation`]
//!   (including the paper's swish),
//! - [`Mlp`] multi-layer perceptrons with exact backpropagation,
//! - [`Rnn`] a small Elman recurrent network with truncated
//!   backpropagation-through-time (used by the RNN-HSS baseline adapted
//!   from Kleio),
//! - [`Sgd`]/[`Adam`] optimizers behind the [`Optimizer`] trait,
//! - [`loss`] functions (MSE, softmax cross-entropy) and [`softmax`]
//!   utilities used by the C51 categorical head,
//! - [`half`] IEEE 754 half-precision conversion used to account for the
//!   paper's 16-bit weight storage (§10.2).
//!
//! Backpropagation is verified against finite differences by property tests.
//!
//! ## Example
//!
//! ```rust
//! use sibyl_nn::{Activation, Mlp, Sgd};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // The paper's network shape: 6 inputs, hidden 20 and 30, 2 outputs.
//! let mut net = Mlp::new(&[6, 20, 30, 2], Activation::Swish, Activation::Linear, &mut rng);
//! let mut sgd = Sgd::new(1e-2);
//! // One supervised step towards a fixed target.
//! let x = [0.1, 0.5, -0.3, 0.8, 0.0, 1.0];
//! let target = [1.0, 0.0];
//! for _ in 0..500 {
//!     let y = net.forward(&x);
//!     let dl: Vec<f32> = y.iter().zip(&target).map(|(y, t)| 2.0 * (y - t)).collect();
//!     net.zero_grad();
//!     net.backward(&dl);
//!     net.apply_grads(&mut sgd, 1.0);
//! }
//! let y = net.forward(&x);
//! assert!((y[0] - 1.0).abs() < 0.05 && y[1].abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod activation;
mod dense;
pub mod half;
pub mod init;
pub mod linalg;
pub mod loss;
mod mlp;
mod optim;
mod rnn;

pub use activation::Activation;
pub use dense::Dense;
pub use mlp::{mean_params, Mlp};
pub use optim::{Adam, Optimizer, Sgd};
pub use rnn::Rnn;

/// Computes a numerically stable softmax of `logits` into `out`.
///
/// `out` is cleared and refilled with `logits.len()` probabilities. An empty
/// input produces an empty output. The result sums to 1 (up to
/// floating-point error).
///
/// # Examples
///
/// ```
/// let mut p = Vec::new();
/// sibyl_nn::softmax(&[1.0, 1.0], &mut p);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &[f32], out: &mut Vec<f32>) {
    out.clear();
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for &l in logits {
        let e = (l - max).exp();
        sum += e;
        out.push(e);
    }
    for p in out.iter_mut() {
        *p /= sum;
    }
}

/// Returns the index of the maximum element, breaking ties towards the
/// lowest index. Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(sibyl_nn::argmax(&[0.1, 0.7, 0.2]), Some(1));
/// assert_eq!(sibyl_nn::argmax(&[]), None);
/// ```
pub fn argmax(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut out = Vec::new();
        softmax(&[0.5, -1.0, 3.0, 0.0], &mut out);
        let s: f32 = out.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut out = Vec::new();
        softmax(&[1000.0, 1000.0], &mut out);
        assert!((out[0] - 0.5).abs() < 1e-6);
        assert!(out.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn softmax_empty_input() {
        let mut out = vec![1.0];
        softmax(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn argmax_picks_first_of_ties() {
        assert_eq!(argmax(&[1.0, 1.0, 0.0]), Some(0));
    }

    #[test]
    fn argmax_single() {
        assert_eq!(argmax(&[42.0]), Some(0));
    }
}
