//! Small dense linear-algebra helpers shared by the layer implementations.
//!
//! The batched kernels (`matmul_bias`, `matmul_transpose`,
//! `matmul_at_b_acc`, `col_sum_acc`) are tiled so their inner loops are
//! bounds-check-free and rustc autovectorizes them, under one hard
//! constraint: every output element's floating-point accumulation chain
//! runs in *exactly* the order of the retained [`scalar`] references.
//! f32 addition is not associative, so a kernel may never vectorize
//! *within* one dot product's chain — instead the tiled kernels
//! vectorize *across* independent outputs (one SIMD lane per batch
//! sample), which reorders nothing. The `kernel_parity` property suite
//! pins bit-for-bit equality against [`scalar`] across random shapes,
//! including every tile-remainder size.

/// Batch samples processed per register tile by [`matmul_bias`]: one
/// output accumulator lane per sample, sized to a 256-bit f32 vector.
pub const BATCH_TILE: usize = 8;

/// Weight/gradient rows processed per tile by [`matmul_at_b_acc`], so
/// each streamed input row is reused across several gradient rows.
pub const ROW_TILE: usize = 4;

/// The pre-tiling scalar reference kernels, retained verbatim.
///
/// These are the semantics the tiled kernels must reproduce bit for bit
/// — kept as always-compiled public API (not `cfg(test)`) because the
/// `kernel_parity` integration suite compares against them from outside
/// the crate, and `sec10_overhead` measures them at runtime for its
/// before/after ns/MAC columns.
pub mod scalar {
    /// Reference `out = X·Wᵀ + b`: one [`super::dot`] per output element,
    /// r-outer / s-inner (the pre-tiling [`super::matmul_bias`] body).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, exactly like the tiled kernel.
    pub fn matmul_bias(
        w: &[f32],
        b: &[f32],
        xs: &[f32],
        rows: usize,
        cols: usize,
        batch: usize,
        out: &mut Vec<f32>,
    ) {
        assert_eq!(w.len(), rows * cols, "matmul_bias: weight shape mismatch");
        assert_eq!(xs.len(), batch * cols, "matmul_bias: input shape mismatch");
        assert_eq!(b.len(), rows, "matmul_bias: bias length mismatch");
        out.clear();
        out.resize(batch * rows, 0.0);
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            let br = b[r];
            for s in 0..batch {
                let x = &xs[s * cols..(s + 1) * cols];
                out[s * rows + r] = super::dot(row, x) + br;
            }
        }
    }

    /// Reference `out = D·W`: r-outer / s-middle elementwise accumulation
    /// (the pre-tiling [`super::matmul_transpose`] body).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, exactly like the tiled kernel.
    pub fn matmul_transpose(
        w: &[f32],
        d: &[f32],
        rows: usize,
        cols: usize,
        batch: usize,
        out: &mut Vec<f32>,
    ) {
        assert_eq!(
            w.len(),
            rows * cols,
            "matmul_transpose: weight shape mismatch"
        );
        assert_eq!(
            d.len(),
            batch * rows,
            "matmul_transpose: delta shape mismatch"
        );
        out.clear();
        out.resize(batch * cols, 0.0);
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            for s in 0..batch {
                let dr = d[s * rows + r];
                let orow = &mut out[s * cols..(s + 1) * cols];
                for (o, &wv) in orow.iter_mut().zip(row) {
                    *o += wv * dr;
                }
            }
        }
    }

    /// Reference `dw += Dᵀ·X`: r-outer / s-middle with the gradient row
    /// hoisted (the pre-tiling [`super::matmul_at_b_acc`] body).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, exactly like the tiled kernel.
    pub fn matmul_at_b_acc(
        dw: &mut [f32],
        d: &[f32],
        xs: &[f32],
        rows: usize,
        cols: usize,
        batch: usize,
    ) {
        assert_eq!(
            dw.len(),
            rows * cols,
            "matmul_at_b_acc: gradient shape mismatch"
        );
        assert_eq!(
            d.len(),
            batch * rows,
            "matmul_at_b_acc: delta shape mismatch"
        );
        assert_eq!(
            xs.len(),
            batch * cols,
            "matmul_at_b_acc: input shape mismatch"
        );
        for r in 0..rows {
            let grow = &mut dw[r * cols..(r + 1) * cols];
            for s in 0..batch {
                let dr = d[s * rows + r];
                let x = &xs[s * cols..(s + 1) * cols];
                for (g, &xv) in grow.iter_mut().zip(x) {
                    *g += dr * xv;
                }
            }
        }
    }

    /// Reference batched bias gradient: one [`super::add_assign`] per
    /// sample (the pre-tiling [`super::col_sum_acc`] body).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, exactly like the tiled kernel.
    pub fn col_sum_acc(db: &mut [f32], d: &[f32], batch: usize) {
        let rows = db.len();
        assert_eq!(d.len(), batch * rows, "col_sum_acc: delta shape mismatch");
        for s in 0..batch {
            super::add_assign(db, &d[s * rows..(s + 1) * rows]);
        }
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Computes `out = W·x + b` where `w` is a row-major `(rows × cols)` matrix.
///
/// `out` is cleared and refilled with `rows` values.
///
/// # Panics
///
/// Panics if `w.len() != rows * cols` or `x.len() != cols` or
/// `b.len() != rows`.
pub fn matvec_bias(w: &[f32], b: &[f32], x: &[f32], rows: usize, cols: usize, out: &mut Vec<f32>) {
    assert_eq!(w.len(), rows * cols, "matvec_bias: weight shape mismatch");
    assert_eq!(x.len(), cols, "matvec_bias: input length mismatch");
    assert_eq!(b.len(), rows, "matvec_bias: bias length mismatch");
    out.clear();
    out.reserve(rows);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        out.push(dot(row, x) + b[r]);
    }
}

/// Computes `out = X·Wᵀ + b` for a batch of inputs: `xs` is row-major
/// `(batch × cols)` — one input per row — and `out` is refilled row-major
/// `(batch × rows)`, so each output row is laid out exactly like a
/// [`matvec_bias`] result for the corresponding input.
///
/// Tiled for autovectorization: the batch is processed [`BATCH_TILE`]
/// samples at a time, their inputs packed lane-interleaved
/// (`xt[k·TILE + j]` = feature `k` of sample `j`) so the hot loop is a
/// broadcast weight times one contiguous 8-lane load — one SIMD lane per
/// *sample*. Each output element still accumulates its `cols` products in
/// ascending-`k` order from a `0.0` start, exactly the
/// [`scalar::matmul_bias`] chain, so results are bit-identical to the
/// reference (and to the per-request [`matvec_bias`] path the serving
/// engine's decisions are pinned against); vectorization happens across
/// independent outputs, never within one dot product. The `batch %
/// BATCH_TILE` remainder takes the scalar path.
///
/// # Panics
///
/// Panics if `w.len() != rows * cols`, `xs.len() != batch * cols`, or
/// `b.len() != rows`.
pub fn matmul_bias(
    w: &[f32],
    b: &[f32],
    xs: &[f32],
    rows: usize,
    cols: usize,
    batch: usize,
    out: &mut Vec<f32>,
) {
    assert_eq!(w.len(), rows * cols, "matmul_bias: weight shape mismatch");
    assert_eq!(xs.len(), batch * cols, "matmul_bias: input shape mismatch");
    assert_eq!(b.len(), rows, "matmul_bias: bias length mismatch");
    out.clear();
    out.resize(batch * rows, 0.0);
    let full = batch / BATCH_TILE * BATCH_TILE;
    if full > 0 {
        // Lane-interleaved pack buffer, reused across the tiles of one
        // call: packing costs O(cols · TILE) once per tile and is repaid
        // across all `rows` weight rows.
        let mut xt = vec![0.0f32; cols * BATCH_TILE];
        for s0 in (0..full).step_by(BATCH_TILE) {
            let tile = &xs[s0 * cols..(s0 + BATCH_TILE) * cols];
            for (j, x) in tile.chunks_exact(cols).enumerate() {
                for (k, &xv) in x.iter().enumerate() {
                    xt[k * BATCH_TILE + j] = xv;
                }
            }
            for r in 0..rows {
                let row = &w[r * cols..(r + 1) * cols];
                // One accumulator lane per sample; `chunks_exact` keeps
                // the inner loop free of bounds checks so it compiles to
                // a broadcast-multiply + vector add per feature.
                let mut acc = [0.0f32; BATCH_TILE];
                for (lanes, &wv) in xt.chunks_exact(BATCH_TILE).zip(row) {
                    for (a, &xv) in acc.iter_mut().zip(lanes) {
                        *a += wv * xv;
                    }
                }
                let br = b[r];
                for (j, &a) in acc.iter().enumerate() {
                    out[(s0 + j) * rows + r] = a + br;
                }
            }
        }
    }
    for s in full..batch {
        let x = &xs[s * cols..(s + 1) * cols];
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            out[s * rows + r] = dot(row, x) + b[r];
        }
    }
}

/// Computes `out = D·W` for a batch of backpropagated deltas: `d` is
/// row-major `(batch × rows)` — one delta per row — and `out` is refilled
/// row-major `(batch × cols)`, so each output row is laid out exactly like
/// a [`matvec_transpose`] result for the corresponding delta.
///
/// This is the batched input-gradient pass of training. The nest runs
/// sample-outer so each sample's output row stays hot while every weight
/// row is streamed over it; the innermost loop is a bounds-check-free
/// broadcast-multiply-accumulate over the contiguous output row, which
/// rustc autovectorizes. Each output element still accumulates its `rows`
/// terms in ascending-`r` order — exactly the [`scalar::matmul_transpose`]
/// and [`matvec_transpose`] chain — so the batched backward pass is
/// bit-identical to the per-sample one, which the training parity
/// property tests pin down.
///
/// # Panics
///
/// Panics if `w.len() != rows * cols` or `d.len() != batch * rows`.
pub fn matmul_transpose(
    w: &[f32],
    d: &[f32],
    rows: usize,
    cols: usize,
    batch: usize,
    out: &mut Vec<f32>,
) {
    assert_eq!(
        w.len(),
        rows * cols,
        "matmul_transpose: weight shape mismatch"
    );
    assert_eq!(
        d.len(),
        batch * rows,
        "matmul_transpose: delta shape mismatch"
    );
    out.clear();
    out.resize(batch * cols, 0.0);
    if rows == 0 || cols == 0 {
        return;
    }
    for (drow, orow) in d.chunks_exact(rows).zip(out.chunks_exact_mut(cols)) {
        for (wrow, &dr) in w.chunks_exact(cols).zip(drow) {
            for (o, &wv) in orow.iter_mut().zip(wrow) {
                *o += wv * dr;
            }
        }
    }
}

/// Accumulates the weight gradient of a whole batch,
/// `dw += Dᵀ·X`, into a row-major `(rows × cols)` gradient buffer:
/// `d` is row-major `(batch × rows)` deltas, `xs` row-major
/// `(batch × cols)` inputs.
///
/// Equivalent to `batch` successive [`outer_acc`] calls in sample order —
/// and bit-identical to them: for every gradient element the per-sample
/// contributions are added in ascending sample order onto the existing
/// value, exactly the floating-point accumulation sequence the sequential
/// per-sample training loop (and the retained [`scalar::matmul_at_b_acc`]
/// reference) produces. Gradient rows are blocked [`ROW_TILE`] at a time
/// so each input row loaded from `xs` is reused across the whole block
/// before it leaves cache; within the block the innermost loop is a
/// bounds-check-free broadcast-multiply-accumulate over the contiguous
/// gradient row, which rustc autovectorizes.
///
/// # Panics
///
/// Panics if `dw.len() != rows * cols`, `d.len() != batch * rows`, or
/// `xs.len() != batch * cols`.
pub fn matmul_at_b_acc(
    dw: &mut [f32],
    d: &[f32],
    xs: &[f32],
    rows: usize,
    cols: usize,
    batch: usize,
) {
    assert_eq!(
        dw.len(),
        rows * cols,
        "matmul_at_b_acc: gradient shape mismatch"
    );
    assert_eq!(
        d.len(),
        batch * rows,
        "matmul_at_b_acc: delta shape mismatch"
    );
    assert_eq!(
        xs.len(),
        batch * cols,
        "matmul_at_b_acc: input shape mismatch"
    );
    if rows == 0 || cols == 0 {
        return;
    }
    for r0 in (0..rows).step_by(ROW_TILE) {
        let r1 = (r0 + ROW_TILE).min(rows);
        let block = &mut dw[r0 * cols..r1 * cols];
        for (x, dsrow) in xs.chunks_exact(cols).zip(d.chunks_exact(rows)) {
            for (grow, &dr) in block.chunks_exact_mut(cols).zip(&dsrow[r0..r1]) {
                for (g, &xv) in grow.iter_mut().zip(x) {
                    *g += dr * xv;
                }
            }
        }
    }
}

/// Accumulates per-column sums of a row-major `(batch × rows)` delta
/// matrix into `db` — the batched bias gradient, `db[r] += Σ_s d[s][r]`,
/// with the per-element additions in ascending sample order so the result
/// is bit-identical to `batch` successive [`add_assign`] calls (the
/// retained [`scalar::col_sum_acc`] reference). `chunks_exact` keeps the
/// elementwise inner loop free of bounds checks so it autovectorizes.
///
/// # Panics
///
/// Panics if `d.len() != batch * db.len()`.
pub fn col_sum_acc(db: &mut [f32], d: &[f32], batch: usize) {
    let rows = db.len();
    assert_eq!(d.len(), batch * rows, "col_sum_acc: delta shape mismatch");
    if rows == 0 {
        return;
    }
    for drow in d.chunks_exact(rows) {
        for (b, &dv) in db.iter_mut().zip(drow) {
            *b += dv;
        }
    }
}

/// Computes `out = Wᵀ·d` where `w` is row-major `(rows × cols)`:
/// the gradient w.r.t. the layer input during backpropagation.
///
/// `out` is cleared and refilled with `cols` values.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn matvec_transpose(w: &[f32], d: &[f32], rows: usize, cols: usize, out: &mut Vec<f32>) {
    assert_eq!(
        w.len(),
        rows * cols,
        "matvec_transpose: weight shape mismatch"
    );
    assert_eq!(d.len(), rows, "matvec_transpose: delta length mismatch");
    out.clear();
    out.resize(cols, 0.0);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        let dr = d[r];
        for (o, &wv) in out.iter_mut().zip(row) {
            *o += wv * dr;
        }
    }
}

/// Accumulates the outer product `dw += d ⊗ x` into a row-major
/// `(rows × cols)` gradient buffer.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn outer_acc(dw: &mut [f32], d: &[f32], x: &[f32]) {
    let rows = d.len();
    let cols = x.len();
    assert_eq!(dw.len(), rows * cols, "outer_acc: gradient shape mismatch");
    for r in 0..rows {
        let dr = d[r];
        let row = &mut dw[r * cols..(r + 1) * cols];
        for (w, &xv) in row.iter_mut().zip(x) {
            *w += dr * xv;
        }
    }
}

/// Adds `src` element-wise into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add_assign: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Scales every element of `xs` by `k`.
#[inline]
pub fn scale(xs: &mut [f32], k: f32) {
    for x in xs {
        *x *= k;
    }
}

/// Euclidean (L2) norm of a slice.
#[inline]
pub fn l2_norm(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Clips the global L2 norm of a gradient slice to `max_norm`, returning the
/// scaling factor applied (1.0 when no clipping occurred).
///
/// Gradient clipping keeps the online C51 updates stable when the reward
/// scale shifts abruptly (e.g. at workload phase changes).
pub fn clip_l2_norm(xs: &mut [f32], max_norm: f32) -> f32 {
    let norm = l2_norm(xs);
    if norm > max_norm && norm > 0.0 {
        let k = max_norm / norm;
        scale(xs, k);
        k
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matvec_bias_identity() {
        // 2x2 identity times [3, 4] plus bias [1, 1]
        let w = [1.0, 0.0, 0.0, 1.0];
        let b = [1.0, 1.0];
        let mut out = Vec::new();
        matvec_bias(&w, &b, &[3.0, 4.0], 2, 2, &mut out);
        assert_eq!(out, vec![4.0, 5.0]);
    }

    #[test]
    fn matvec_transpose_matches_manual() {
        // W = [[1, 2], [3, 4]] (rows=2, cols=2); Wᵀ·[1, 1] = [4, 6]
        let w = [1.0, 2.0, 3.0, 4.0];
        let mut out = Vec::new();
        matvec_transpose(&w, &[1.0, 1.0], 2, 2, &mut out);
        assert_eq!(out, vec![4.0, 6.0]);
    }

    #[test]
    fn outer_acc_accumulates() {
        let mut dw = vec![0.0; 4];
        outer_acc(&mut dw, &[1.0, 2.0], &[3.0, 4.0]);
        outer_acc(&mut dw, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(dw, vec![6.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn matmul_bias_rows_match_matvec() {
        // W = [[1, 2], [3, 4]], b = [0.5, -0.5]; two stacked inputs.
        let w = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, -0.5];
        let xs = [1.0, 0.0, 0.0, 1.0];
        let mut batched = Vec::new();
        matmul_bias(&w, &b, &xs, 2, 2, 2, &mut batched);
        for s in 0..2 {
            let mut single = Vec::new();
            matvec_bias(&w, &b, &xs[s * 2..(s + 1) * 2], 2, 2, &mut single);
            assert_eq!(&batched[s * 2..(s + 1) * 2], &single[..]);
        }
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn matmul_bias_rejects_ragged_batch() {
        let mut out = Vec::new();
        matmul_bias(&[1.0, 2.0], &[0.0], &[1.0, 2.0, 3.0], 1, 2, 2, &mut out);
    }

    #[test]
    fn matmul_transpose_rows_match_matvec_transpose() {
        // W = [[1, 2, 3], [4, 5, 6]] (rows=2, cols=3); two stacked deltas.
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let d = [1.0, 0.5, -1.0, 2.0];
        let mut batched = Vec::new();
        matmul_transpose(&w, &d, 2, 3, 2, &mut batched);
        for s in 0..2 {
            let mut single = Vec::new();
            matvec_transpose(&w, &d[s * 2..(s + 1) * 2], 2, 3, &mut single);
            assert_eq!(&batched[s * 3..(s + 1) * 3], &single[..]);
        }
    }

    #[test]
    fn matmul_at_b_acc_matches_sequential_outer_acc() {
        let d = [1.0, 2.0, -0.5, 3.0]; // batch=2, rows=2
        let xs = [3.0, 4.0, 1.0, -2.0]; // batch=2, cols=2
        let mut batched = vec![0.25; 4]; // pre-existing gradient
        let mut sequential = vec![0.25; 4];
        matmul_at_b_acc(&mut batched, &d, &xs, 2, 2, 2);
        for s in 0..2 {
            outer_acc(
                &mut sequential,
                &d[s * 2..(s + 1) * 2],
                &xs[s * 2..(s + 1) * 2],
            );
        }
        assert_eq!(batched, sequential);
    }

    #[test]
    fn col_sum_acc_matches_sequential_add_assign() {
        let d = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // batch=3, rows=2
        let mut batched = vec![0.5, -0.5];
        let mut sequential = vec![0.5, -0.5];
        col_sum_acc(&mut batched, &d, 3);
        for s in 0..3 {
            add_assign(&mut sequential, &d[s * 2..(s + 1) * 2]);
        }
        assert_eq!(batched, sequential);
    }

    #[test]
    #[should_panic(expected = "delta shape mismatch")]
    fn matmul_at_b_acc_rejects_ragged_delta() {
        let mut dw = vec![0.0; 4];
        matmul_at_b_acc(&mut dw, &[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0, 4.0], 2, 2, 2);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut g = vec![0.1, 0.1];
        let k = clip_l2_norm(&mut g, 10.0);
        assert_eq!(k, 1.0);
        assert_eq!(g, vec![0.1, 0.1]);
    }

    #[test]
    fn clip_shrinks_large_gradients() {
        let mut g = vec![30.0, 40.0]; // norm 50
        clip_l2_norm(&mut g, 5.0);
        assert!((l2_norm(&g) - 5.0).abs() < 1e-4);
    }

    proptest! {
        /// matvec followed by transpose-matvec is consistent with the
        /// scalar quadratic form dᵀ·W·x computed two ways.
        #[test]
        fn quadratic_form_consistency(
            w in proptest::collection::vec(-2.0f32..2.0, 6),
            x in proptest::collection::vec(-2.0f32..2.0, 3),
            d in proptest::collection::vec(-2.0f32..2.0, 2),
        ) {
            let b = vec![0.0; 2];
            let mut wx = Vec::new();
            matvec_bias(&w, &b, &x, 2, 3, &mut wx);
            let lhs = dot(&d, &wx);
            let mut wtd = Vec::new();
            matvec_transpose(&w, &d, 2, 3, &mut wtd);
            let rhs = dot(&wtd, &x);
            prop_assert!((lhs - rhs).abs() < 1e-3);
        }

        /// Clipping never increases the norm and respects the bound.
        #[test]
        fn clip_invariants(mut g in proptest::collection::vec(-10.0f32..10.0, 1..32),
                           max in 0.1f32..20.0) {
            let before = l2_norm(&g);
            clip_l2_norm(&mut g, max);
            let after = l2_norm(&g);
            prop_assert!(after <= before + 1e-4);
            prop_assert!(after <= max + 1e-3);
        }
    }
}
