//! Small dense linear-algebra helpers shared by the layer implementations.
//!
//! The networks in this workspace are tiny (hundreds of weights), so the
//! kernels below favour clarity over blocking/SIMD tricks; they are still
//! easily fast enough to meet the paper's inference budget (§10.1 counts
//! 780 multiply-accumulates per decision).

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Computes `out = W·x + b` where `w` is a row-major `(rows × cols)` matrix.
///
/// `out` is cleared and refilled with `rows` values.
///
/// # Panics
///
/// Panics if `w.len() != rows * cols` or `x.len() != cols` or
/// `b.len() != rows`.
pub fn matvec_bias(w: &[f32], b: &[f32], x: &[f32], rows: usize, cols: usize, out: &mut Vec<f32>) {
    assert_eq!(w.len(), rows * cols, "matvec_bias: weight shape mismatch");
    assert_eq!(x.len(), cols, "matvec_bias: input length mismatch");
    assert_eq!(b.len(), rows, "matvec_bias: bias length mismatch");
    out.clear();
    out.reserve(rows);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        out.push(dot(row, x) + b[r]);
    }
}

/// Computes `out = X·Wᵀ + b` for a batch of inputs: `xs` is row-major
/// `(batch × cols)` — one input per row — and `out` is refilled row-major
/// `(batch × rows)`, so each output row is laid out exactly like a
/// [`matvec_bias`] result for the corresponding input.
///
/// The loop nest is ordered so one weight row is streamed across the whole
/// batch before moving to the next (the batched-inference amortization the
/// serving engine relies on), while each individual dot product accumulates
/// in the same order as [`matvec_bias`] — outputs are bit-identical to the
/// per-request path, which the parity property tests pin down.
///
/// # Panics
///
/// Panics if `w.len() != rows * cols`, `xs.len() != batch * cols`, or
/// `b.len() != rows`.
pub fn matmul_bias(
    w: &[f32],
    b: &[f32],
    xs: &[f32],
    rows: usize,
    cols: usize,
    batch: usize,
    out: &mut Vec<f32>,
) {
    assert_eq!(w.len(), rows * cols, "matmul_bias: weight shape mismatch");
    assert_eq!(xs.len(), batch * cols, "matmul_bias: input shape mismatch");
    assert_eq!(b.len(), rows, "matmul_bias: bias length mismatch");
    out.clear();
    out.resize(batch * rows, 0.0);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        let br = b[r];
        for s in 0..batch {
            let x = &xs[s * cols..(s + 1) * cols];
            out[s * rows + r] = dot(row, x) + br;
        }
    }
}

/// Computes `out = D·W` for a batch of backpropagated deltas: `d` is
/// row-major `(batch × rows)` — one delta per row — and `out` is refilled
/// row-major `(batch × cols)`, so each output row is laid out exactly like
/// a [`matvec_transpose`] result for the corresponding delta.
///
/// This is the batched input-gradient pass of training. The loop nest
/// streams one weight row across the whole batch before moving to the
/// next (the same weight-reuse restructuring as [`matmul_bias`]), while
/// each output element accumulates its `rows` terms in exactly the order
/// [`matvec_transpose`] adds them — so the batched backward pass is
/// bit-identical to the per-sample one, which the training parity
/// property tests pin down.
///
/// # Panics
///
/// Panics if `w.len() != rows * cols` or `d.len() != batch * rows`.
pub fn matmul_transpose(
    w: &[f32],
    d: &[f32],
    rows: usize,
    cols: usize,
    batch: usize,
    out: &mut Vec<f32>,
) {
    assert_eq!(
        w.len(),
        rows * cols,
        "matmul_transpose: weight shape mismatch"
    );
    assert_eq!(
        d.len(),
        batch * rows,
        "matmul_transpose: delta shape mismatch"
    );
    out.clear();
    out.resize(batch * cols, 0.0);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        for s in 0..batch {
            let dr = d[s * rows + r];
            let orow = &mut out[s * cols..(s + 1) * cols];
            for (o, &wv) in orow.iter_mut().zip(row) {
                *o += wv * dr;
            }
        }
    }
}

/// Accumulates the weight gradient of a whole batch,
/// `dw += Dᵀ·X`, into a row-major `(rows × cols)` gradient buffer:
/// `d` is row-major `(batch × rows)` deltas, `xs` row-major
/// `(batch × cols)` inputs.
///
/// Equivalent to `batch` successive [`outer_acc`] calls in sample order —
/// and bit-identical to them: for every gradient element the per-sample
/// contributions are added in ascending sample order onto the existing
/// value, exactly the floating-point accumulation sequence the sequential
/// per-sample training loop produces. The restructuring only hoists the
/// gradient row out of the sample loop for locality.
///
/// # Panics
///
/// Panics if `dw.len() != rows * cols`, `d.len() != batch * rows`, or
/// `xs.len() != batch * cols`.
pub fn matmul_at_b_acc(
    dw: &mut [f32],
    d: &[f32],
    xs: &[f32],
    rows: usize,
    cols: usize,
    batch: usize,
) {
    assert_eq!(
        dw.len(),
        rows * cols,
        "matmul_at_b_acc: gradient shape mismatch"
    );
    assert_eq!(
        d.len(),
        batch * rows,
        "matmul_at_b_acc: delta shape mismatch"
    );
    assert_eq!(
        xs.len(),
        batch * cols,
        "matmul_at_b_acc: input shape mismatch"
    );
    for r in 0..rows {
        let grow = &mut dw[r * cols..(r + 1) * cols];
        for s in 0..batch {
            let dr = d[s * rows + r];
            let x = &xs[s * cols..(s + 1) * cols];
            for (g, &xv) in grow.iter_mut().zip(x) {
                *g += dr * xv;
            }
        }
    }
}

/// Accumulates per-column sums of a row-major `(batch × rows)` delta
/// matrix into `db` — the batched bias gradient, `db[r] += Σ_s d[s][r]`,
/// with the per-element additions in ascending sample order so the result
/// is bit-identical to `batch` successive [`add_assign`] calls.
///
/// # Panics
///
/// Panics if `d.len() != batch * db.len()`.
pub fn col_sum_acc(db: &mut [f32], d: &[f32], batch: usize) {
    let rows = db.len();
    assert_eq!(d.len(), batch * rows, "col_sum_acc: delta shape mismatch");
    for s in 0..batch {
        add_assign(db, &d[s * rows..(s + 1) * rows]);
    }
}

/// Computes `out = Wᵀ·d` where `w` is row-major `(rows × cols)`:
/// the gradient w.r.t. the layer input during backpropagation.
///
/// `out` is cleared and refilled with `cols` values.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn matvec_transpose(w: &[f32], d: &[f32], rows: usize, cols: usize, out: &mut Vec<f32>) {
    assert_eq!(
        w.len(),
        rows * cols,
        "matvec_transpose: weight shape mismatch"
    );
    assert_eq!(d.len(), rows, "matvec_transpose: delta length mismatch");
    out.clear();
    out.resize(cols, 0.0);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        let dr = d[r];
        for (o, &wv) in out.iter_mut().zip(row) {
            *o += wv * dr;
        }
    }
}

/// Accumulates the outer product `dw += d ⊗ x` into a row-major
/// `(rows × cols)` gradient buffer.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn outer_acc(dw: &mut [f32], d: &[f32], x: &[f32]) {
    let rows = d.len();
    let cols = x.len();
    assert_eq!(dw.len(), rows * cols, "outer_acc: gradient shape mismatch");
    for r in 0..rows {
        let dr = d[r];
        let row = &mut dw[r * cols..(r + 1) * cols];
        for (w, &xv) in row.iter_mut().zip(x) {
            *w += dr * xv;
        }
    }
}

/// Adds `src` element-wise into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add_assign: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Scales every element of `xs` by `k`.
#[inline]
pub fn scale(xs: &mut [f32], k: f32) {
    for x in xs {
        *x *= k;
    }
}

/// Euclidean (L2) norm of a slice.
#[inline]
pub fn l2_norm(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Clips the global L2 norm of a gradient slice to `max_norm`, returning the
/// scaling factor applied (1.0 when no clipping occurred).
///
/// Gradient clipping keeps the online C51 updates stable when the reward
/// scale shifts abruptly (e.g. at workload phase changes).
pub fn clip_l2_norm(xs: &mut [f32], max_norm: f32) -> f32 {
    let norm = l2_norm(xs);
    if norm > max_norm && norm > 0.0 {
        let k = max_norm / norm;
        scale(xs, k);
        k
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matvec_bias_identity() {
        // 2x2 identity times [3, 4] plus bias [1, 1]
        let w = [1.0, 0.0, 0.0, 1.0];
        let b = [1.0, 1.0];
        let mut out = Vec::new();
        matvec_bias(&w, &b, &[3.0, 4.0], 2, 2, &mut out);
        assert_eq!(out, vec![4.0, 5.0]);
    }

    #[test]
    fn matvec_transpose_matches_manual() {
        // W = [[1, 2], [3, 4]] (rows=2, cols=2); Wᵀ·[1, 1] = [4, 6]
        let w = [1.0, 2.0, 3.0, 4.0];
        let mut out = Vec::new();
        matvec_transpose(&w, &[1.0, 1.0], 2, 2, &mut out);
        assert_eq!(out, vec![4.0, 6.0]);
    }

    #[test]
    fn outer_acc_accumulates() {
        let mut dw = vec![0.0; 4];
        outer_acc(&mut dw, &[1.0, 2.0], &[3.0, 4.0]);
        outer_acc(&mut dw, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(dw, vec![6.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn matmul_bias_rows_match_matvec() {
        // W = [[1, 2], [3, 4]], b = [0.5, -0.5]; two stacked inputs.
        let w = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, -0.5];
        let xs = [1.0, 0.0, 0.0, 1.0];
        let mut batched = Vec::new();
        matmul_bias(&w, &b, &xs, 2, 2, 2, &mut batched);
        for s in 0..2 {
            let mut single = Vec::new();
            matvec_bias(&w, &b, &xs[s * 2..(s + 1) * 2], 2, 2, &mut single);
            assert_eq!(&batched[s * 2..(s + 1) * 2], &single[..]);
        }
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn matmul_bias_rejects_ragged_batch() {
        let mut out = Vec::new();
        matmul_bias(&[1.0, 2.0], &[0.0], &[1.0, 2.0, 3.0], 1, 2, 2, &mut out);
    }

    #[test]
    fn matmul_transpose_rows_match_matvec_transpose() {
        // W = [[1, 2, 3], [4, 5, 6]] (rows=2, cols=3); two stacked deltas.
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let d = [1.0, 0.5, -1.0, 2.0];
        let mut batched = Vec::new();
        matmul_transpose(&w, &d, 2, 3, 2, &mut batched);
        for s in 0..2 {
            let mut single = Vec::new();
            matvec_transpose(&w, &d[s * 2..(s + 1) * 2], 2, 3, &mut single);
            assert_eq!(&batched[s * 3..(s + 1) * 3], &single[..]);
        }
    }

    #[test]
    fn matmul_at_b_acc_matches_sequential_outer_acc() {
        let d = [1.0, 2.0, -0.5, 3.0]; // batch=2, rows=2
        let xs = [3.0, 4.0, 1.0, -2.0]; // batch=2, cols=2
        let mut batched = vec![0.25; 4]; // pre-existing gradient
        let mut sequential = vec![0.25; 4];
        matmul_at_b_acc(&mut batched, &d, &xs, 2, 2, 2);
        for s in 0..2 {
            outer_acc(
                &mut sequential,
                &d[s * 2..(s + 1) * 2],
                &xs[s * 2..(s + 1) * 2],
            );
        }
        assert_eq!(batched, sequential);
    }

    #[test]
    fn col_sum_acc_matches_sequential_add_assign() {
        let d = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // batch=3, rows=2
        let mut batched = vec![0.5, -0.5];
        let mut sequential = vec![0.5, -0.5];
        col_sum_acc(&mut batched, &d, 3);
        for s in 0..3 {
            add_assign(&mut sequential, &d[s * 2..(s + 1) * 2]);
        }
        assert_eq!(batched, sequential);
    }

    #[test]
    #[should_panic(expected = "delta shape mismatch")]
    fn matmul_at_b_acc_rejects_ragged_delta() {
        let mut dw = vec![0.0; 4];
        matmul_at_b_acc(&mut dw, &[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0, 4.0], 2, 2, 2);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut g = vec![0.1, 0.1];
        let k = clip_l2_norm(&mut g, 10.0);
        assert_eq!(k, 1.0);
        assert_eq!(g, vec![0.1, 0.1]);
    }

    #[test]
    fn clip_shrinks_large_gradients() {
        let mut g = vec![30.0, 40.0]; // norm 50
        clip_l2_norm(&mut g, 5.0);
        assert!((l2_norm(&g) - 5.0).abs() < 1e-4);
    }

    proptest! {
        /// matvec followed by transpose-matvec is consistent with the
        /// scalar quadratic form dᵀ·W·x computed two ways.
        #[test]
        fn quadratic_form_consistency(
            w in proptest::collection::vec(-2.0f32..2.0, 6),
            x in proptest::collection::vec(-2.0f32..2.0, 3),
            d in proptest::collection::vec(-2.0f32..2.0, 2),
        ) {
            let b = vec![0.0; 2];
            let mut wx = Vec::new();
            matvec_bias(&w, &b, &x, 2, 3, &mut wx);
            let lhs = dot(&d, &wx);
            let mut wtd = Vec::new();
            matvec_transpose(&w, &d, 2, 3, &mut wtd);
            let rhs = dot(&wtd, &x);
            prop_assert!((lhs - rhs).abs() < 1e-3);
        }

        /// Clipping never increases the norm and respects the bound.
        #[test]
        fn clip_invariants(mut g in proptest::collection::vec(-10.0f32..10.0, 1..32),
                           max in 0.1f32..20.0) {
            let before = l2_norm(&g);
            clip_l2_norm(&mut g, max);
            let after = l2_norm(&g);
            prop_assert!(after <= before + 1e-4);
            prop_assert!(after <= max + 1e-3);
        }
    }
}
