//! Loss functions and their gradients.
//!
//! The C51 agent in `sibyl-core` minimizes the cross-entropy between a
//! projected target distribution and the predicted categorical distribution
//! (Bellemare et al., 2017); the supervised baselines use MSE and one-hot
//! cross-entropy.

use crate::softmax;

/// Mean-squared error `mean((y - t)²)` over a prediction/target pair.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse(y: &[f32], t: &[f32]) -> f32 {
    assert_eq!(y.len(), t.len(), "mse: length mismatch");
    assert!(!y.is_empty(), "mse: empty input");
    y.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / y.len() as f32
}

/// Gradient of [`mse`] with respect to `y`: `2(y - t)/n`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse_grad(y: &[f32], t: &[f32], out: &mut Vec<f32>) {
    assert_eq!(y.len(), t.len(), "mse_grad: length mismatch");
    assert!(!y.is_empty(), "mse_grad: empty input");
    out.clear();
    let n = y.len() as f32;
    for (a, b) in y.iter().zip(t) {
        out.push(2.0 * (a - b) / n);
    }
}

/// Cross-entropy `−Σ tᵢ·log softmax(z)ᵢ` between logits `z` and a target
/// probability vector `t` (which may be soft, as in the C51 projection).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn cross_entropy_logits(z: &[f32], t: &[f32]) -> f32 {
    assert_eq!(z.len(), t.len(), "cross_entropy_logits: length mismatch");
    assert!(!z.is_empty(), "cross_entropy_logits: empty input");
    let mut p = Vec::new();
    softmax(z, &mut p);
    let mut loss = 0.0f32;
    for (pi, ti) in p.iter().zip(t) {
        if *ti > 0.0 {
            loss -= ti * pi.max(1e-12).ln();
        }
    }
    loss
}

/// Gradient of [`cross_entropy_logits`] with respect to the logits:
/// `softmax(z) − t` (assuming `t` sums to 1).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn cross_entropy_logits_grad(z: &[f32], t: &[f32], out: &mut Vec<f32>) {
    assert_eq!(
        z.len(),
        t.len(),
        "cross_entropy_logits_grad: length mismatch"
    );
    assert!(!z.is_empty(), "cross_entropy_logits_grad: empty input");
    softmax(z, out);
    for (o, &ti) in out.iter_mut().zip(t) {
        *o -= ti;
    }
}

/// Kullback–Leibler divergence `KL(t ‖ p)` between two probability vectors.
///
/// Returns 0 for identical distributions; always non-negative up to
/// floating-point error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn kl_divergence(t: &[f32], p: &[f32]) -> f32 {
    assert_eq!(t.len(), p.len(), "kl_divergence: length mismatch");
    assert!(!t.is_empty(), "kl_divergence: empty input");
    let mut kl = 0.0f32;
    for (&ti, &pi) in t.iter().zip(p) {
        if ti > 0.0 {
            kl += ti * (ti.max(1e-12) / pi.max(1e-12)).ln();
        }
    }
    kl
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mse_zero_for_equal() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mse_known_value() {
        // ((1-0)^2 + (0-2)^2) / 2 = 2.5
        assert!((mse(&[1.0, 0.0], &[0.0, 2.0]) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_minimized_at_target() {
        // Logits strongly favouring class 0 vs a one-hot target at 0.
        let good = cross_entropy_logits(&[10.0, -10.0], &[1.0, 0.0]);
        let bad = cross_entropy_logits(&[-10.0, 10.0], &[1.0, 0.0]);
        assert!(good < 1e-3);
        assert!(bad > 5.0);
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.25f32, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-6);
    }

    #[test]
    fn ce_grad_matches_finite_difference() {
        let z = [0.3f32, -0.2, 0.8];
        let t = [0.2f32, 0.5, 0.3];
        let mut g = Vec::new();
        cross_entropy_logits_grad(&z, &t, &mut g);
        let h = 1e-3f32;
        for i in 0..z.len() {
            let mut zp = z;
            zp[i] += h;
            let mut zm = z;
            zm[i] -= h;
            let numeric =
                (cross_entropy_logits(&zp, &t) - cross_entropy_logits(&zm, &t)) / (2.0 * h);
            assert!(
                (numeric - g[i]).abs() < 1e-2,
                "logit {i}: numeric {numeric} vs analytic {}",
                g[i]
            );
        }
    }

    proptest! {
        /// KL divergence is non-negative for random distributions.
        #[test]
        fn kl_nonnegative(raw_t in proptest::collection::vec(0.01f32..1.0, 4),
                          raw_p in proptest::collection::vec(0.01f32..1.0, 4)) {
            let ts: f32 = raw_t.iter().sum();
            let ps: f32 = raw_p.iter().sum();
            let t: Vec<f32> = raw_t.iter().map(|x| x / ts).collect();
            let p: Vec<f32> = raw_p.iter().map(|x| x / ps).collect();
            prop_assert!(kl_divergence(&t, &p) >= -1e-5);
        }

        /// Cross-entropy gradient sums to ~0 when the target sums to 1
        /// (softmax output also sums to 1).
        #[test]
        fn ce_grad_sums_to_zero(z in proptest::collection::vec(-3.0f32..3.0, 5),
                                raw_t in proptest::collection::vec(0.01f32..1.0, 5)) {
            let ts: f32 = raw_t.iter().sum();
            let t: Vec<f32> = raw_t.iter().map(|x| x / ts).collect();
            let mut g = Vec::new();
            cross_entropy_logits_grad(&z, &t, &mut g);
            let s: f32 = g.iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }
}
