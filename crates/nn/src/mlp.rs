//! Multi-layer perceptron assembled from [`Dense`] layers.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::dense::Dense;
use crate::optim::Optimizer;

/// A feed-forward network of [`Dense`] layers.
///
/// The Sibyl paper's placement network is `Mlp::new(&[6, 20, 30, |A|·atoms],
/// Activation::Swish, Activation::Linear, rng)`: 6 state features in, two
/// swish hidden layers of 20 and 30 neurons, and a linear head whose logits
/// are soft-maxed per action by the C51 agent (Fig. 7(b)).
///
/// # Examples
///
/// ```
/// use sibyl_nn::{Activation, Mlp};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let net = Mlp::new(&[6, 20, 30, 2], Activation::Swish, Activation::Linear, &mut rng);
/// // 6·20 + 20·30 + 30·2 = 780 weights, exactly the paper's §10.1 count.
/// assert_eq!(net.mac_count(), 780);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes.
    ///
    /// `dims` lists the input size followed by each layer's output size;
    /// hidden layers use `hidden_act` and the final layer uses `out_act`.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() < 2` or any dimension is zero.
    pub fn new<R: Rng + ?Sized>(
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp: need at least input and output dims");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                out_act
            } else {
                hidden_act
            };
            layers.push(Dense::new(dims[i], dims[i + 1], act, rng));
        }
        Mlp { layers }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers
            .last()
            // sibyl-lint: allow(unwrap-in-lib) -- invariant: Mlp::new rejects empty layer stacks
            .expect("Mlp has at least one layer")
            .out_dim()
    }

    /// The number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Multiply-accumulate operations per forward pass (§10.1 of the paper
    /// counts 780 for the 6-20-30-2 network).
    pub fn mac_count(&self) -> usize {
        self.layers.iter().map(Dense::mac_count).sum()
    }

    /// Forward pass that caches intermediate state for [`Mlp::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Cache-free inference; cheaper and usable through a shared reference.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_dim()`.
    pub fn infer(&self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.infer(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Cache-free batched inference: one matrix-matrix pass per layer
    /// instead of one matrix-vector pass per request.
    ///
    /// `xs` holds `batch` inputs row-major (`batch × in_dim`); the result
    /// is row-major `(batch × out_dim)`. Row `i` is bit-identical to
    /// `self.infer(&xs[i*in_dim..(i+1)*in_dim])` — the batched kernels
    /// keep every dot product's accumulation order unchanged — so batched
    /// serving decisions match per-request decisions exactly. The win is
    /// locality: each weight row is streamed once per *batch* rather than
    /// once per *request*, which is what lets the serving engine amortize
    /// C51 inference across a shard's queue.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `xs.len() != batch * self.in_dim()`.
    pub fn infer_batch(&self, xs: &[f32], batch: usize) -> Vec<f32> {
        assert!(batch > 0, "Mlp::infer_batch: empty batch");
        assert_eq!(
            xs.len(),
            batch * self.in_dim(),
            "Mlp::infer_batch: input shape mismatch"
        );
        let mut cur = xs.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.infer_batch(&cur, batch, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Enables the f16 inference fast path on every layer: allocates
    /// binary16 shadow weight buffers and encodes the current weights.
    /// Idempotent. [`Mlp::copy_weights_from`] and [`Mlp::set_flat_params`]
    /// keep the shadows in sync afterwards; training state is untouched.
    pub fn enable_f16(&mut self) {
        for layer in &mut self.layers {
            layer.enable_f16();
        }
    }

    /// Whether the f16 fast path is enabled (on the first layer, which
    /// implies all layers — [`Mlp::enable_f16`] is all-or-nothing).
    pub fn f16_enabled(&self) -> bool {
        self.layers.first().is_some_and(Dense::f16_enabled)
    }

    /// Batched inference through the binary16 shadow weights: the opt-in
    /// quantized fast path (`QuantMode::F16` at the serving layer).
    ///
    /// Per layer, the f16 shadows are decoded once — O(params), amortized
    /// over the batch — and the decoded f32 values run through the same
    /// tiled kernels as [`Mlp::infer_batch`]; compute stays f32, only the
    /// weight storage is 16-bit (§10.2's footprint made real). Outputs
    /// differ from the f32 path only by the binary16 rounding of the
    /// weights; the kernel-parity suite pins the error bound and the
    /// serving golden test pins that placement decisions do not change.
    ///
    /// # Panics
    ///
    /// Panics if the fast path is not enabled ([`Mlp::enable_f16`]),
    /// `batch == 0`, or `xs.len() != batch * self.in_dim()`.
    pub fn infer_batch_f16(&self, xs: &[f32], batch: usize) -> Vec<f32> {
        assert!(batch > 0, "Mlp::infer_batch_f16: empty batch");
        assert_eq!(
            xs.len(),
            batch * self.in_dim(),
            "Mlp::infer_batch_f16: input shape mismatch"
        );
        let mut cur = xs.to_vec();
        let mut next = Vec::new();
        let mut scratch = Vec::new();
        for layer in &self.layers {
            layer.infer_batch_f16(&cur, batch, &mut scratch, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Batched forward pass that caches every layer's inputs and
    /// pre-activations for [`Mlp::backward_batch`] — the training twin of
    /// [`Mlp::infer_batch`], just as [`Mlp::forward`] is the training
    /// twin of [`Mlp::infer`].
    ///
    /// `xs` holds `batch` inputs row-major; row `i` of the result is
    /// bit-identical to `self.forward(&xs[i*in_dim..(i+1)*in_dim])`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `xs.len() != batch * self.in_dim()`.
    pub fn forward_batch(&mut self, xs: &[f32], batch: usize) -> Vec<f32> {
        assert!(batch > 0, "Mlp::forward_batch: empty batch");
        assert_eq!(
            xs.len(),
            batch * self.in_dim(),
            "Mlp::forward_batch: input shape mismatch"
        );
        let mut cur = xs.to_vec();
        for layer in &mut self.layers {
            cur = layer.forward_batch(&cur, batch);
        }
        cur
    }

    /// Backward pass from `dL/dy`; accumulates gradients in every layer and
    /// returns `dL/dx`.
    ///
    /// Must follow a [`Mlp::forward`] call.
    pub fn backward(&mut self, dy: &[f32]) -> Vec<f32> {
        let mut d = dy.to_vec();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d);
        }
        d
    }

    /// Batched backward pass from the row-major `(batch × out_dim)`
    /// upstream gradient `dy`: accumulates the whole batch's gradients in
    /// every layer with one matrix-matrix pass each and returns the
    /// row-major `(batch × in_dim)` gradient `dL/dx`.
    ///
    /// Must follow a [`Mlp::forward_batch`] call with the same `batch`.
    /// The bit-identity contract of the batched training path: calling
    /// `forward_batch` + `backward_batch` once leaves gradient buffers
    /// (and therefore the subsequent optimizer step) bit-identical to
    /// `batch` sequential [`Mlp::forward`] + [`Mlp::backward`] calls in
    /// sample order, because every per-element floating-point
    /// accumulation happens in the same order — the batched kernels only
    /// restructure the loops so each weight matrix streams once per
    /// *batch* instead of once per *sample*. The `train_batch_parity`
    /// property suite pins this across random shapes, batch sizes, and
    /// activations.
    ///
    /// # Panics
    ///
    /// Panics if `dy.len() != batch * self.out_dim()` or the cached
    /// forward state does not match.
    pub fn backward_batch(&mut self, dy: &[f32], batch: usize) -> Vec<f32> {
        let mut d = dy.to_vec();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward_batch(&d, batch);
        }
        d
    }

    /// Clears accumulated gradients in all layers.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Applies accumulated gradients through `opt`, scaling them by
    /// `scale` first (use `1.0 / batch_size` for mean-gradient training).
    /// Accepts `&mut dyn Optimizer` as well as concrete optimizers.
    pub fn apply_grads<O: Optimizer + ?Sized>(&mut self, opt: &mut O, scale: f32) {
        let mut param_index = 0;
        for layer in &mut self.layers {
            let (w, dw, b, db) = layer.params_and_grads_mut();
            if scale != 1.0 {
                crate::linalg::scale(dw, scale);
                crate::linalg::scale(db, scale);
            }
            opt.update(param_index, w, dw);
            param_index += 1;
            opt.update(param_index, b, db);
            param_index += 1;
        }
    }

    /// Copies all weights from another network of identical shape.
    ///
    /// Used by the paper's two-network design: the training network's
    /// weights are copied to the inference network every 1000 requests
    /// (Algorithm 1, line 19).
    ///
    /// # Panics
    ///
    /// Panics if layer shapes differ.
    pub fn copy_weights_from(&mut self, other: &Mlp) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "copy_weights_from: layer count mismatch"
        );
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            dst.copy_weights_from(src);
        }
    }

    /// Iterates over the layers.
    pub fn layers(&self) -> impl Iterator<Item = &Dense> {
        self.layers.iter()
    }

    /// Flattens all parameters into a single vector (weights then biases,
    /// layer by layer). Useful for checkpointing and tests.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            let (w, b) = layer.params();
            out.extend_from_slice(w);
            out.extend_from_slice(b);
        }
        out
    }

    /// Restores all parameters from a flat vector produced by
    /// [`Mlp::flat_params`] (weights then biases, layer by layer) — the
    /// dual operation, used by checkpoint restore and by the cooperation
    /// layer's federated weight averaging.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != self.num_params()`.
    pub fn set_flat_params(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.num_params(),
            "Mlp::set_flat_params: parameter count mismatch"
        );
        let mut off = 0;
        for layer in &mut self.layers {
            let (w, b) = layer.params_mut();
            w.copy_from_slice(&flat[off..off + w.len()]);
            off += w.len();
            b.copy_from_slice(&flat[off..off + b.len()]);
            off += b.len();
            layer.refresh_f16();
        }
    }

    /// Restores internal buffers after deserialization.
    pub fn ensure_buffers(&mut self) {
        for layer in &mut self.layers {
            layer.ensure_buffers();
        }
    }
}

/// Element-wise mean of parameter vectors (federated averaging across
/// cooperating agents' networks).
///
/// Computed baseline-relative — `out[j] = s₀[j] + (Σᵢ (sᵢ[j] − s₀[j])) / n`
/// — which is the exact arithmetic mean, but with two properties plain
/// summation lacks: averaging `n` *identical* vectors returns the input
/// bit-for-bit (every difference term is exactly zero), and for the
/// near-agreeing parameter sets weight averaging produces in practice the
/// summation happens on small differences instead of large magnitudes,
/// avoiding cancellation. The fold order is the slice order, so the
/// result is deterministic for a fixed input order.
///
/// # Panics
///
/// Panics if `sources` is empty or the vectors' lengths differ.
pub fn mean_params(sources: &[&[f32]]) -> Vec<f32> {
    assert!(!sources.is_empty(), "mean_params: no sources");
    let base = sources[0];
    assert!(
        sources.iter().all(|s| s.len() == base.len()),
        "mean_params: length mismatch"
    );
    let inv_n = 1.0f32 / sources.len() as f32;
    let mut out = base.to_vec();
    for (j, o) in out.iter_mut().enumerate() {
        let mut diff = 0.0f32;
        for s in &sources[1..] {
            diff += s[j] - base[j];
        }
        *o += diff * inv_n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn paper_network_has_780_weights() {
        let net = Mlp::new(
            &[6, 20, 30, 2],
            Activation::Swish,
            Activation::Linear,
            &mut rng(0),
        );
        assert_eq!(net.mac_count(), 780);
        // 780 weights + 52 biases
        assert_eq!(net.num_params(), 832);
        assert_eq!(net.in_dim(), 6);
        assert_eq!(net.out_dim(), 2);
        assert_eq!(net.num_layers(), 3);
    }

    #[test]
    fn infer_matches_forward() {
        let mut net = Mlp::new(
            &[4, 8, 3],
            Activation::Swish,
            Activation::Linear,
            &mut rng(1),
        );
        let x = [0.2, -0.4, 0.6, 0.8];
        assert_eq!(net.forward(&x), net.infer(&x));
    }

    #[test]
    fn copy_weights_synchronizes_outputs() {
        let train = Mlp::new(
            &[4, 8, 2],
            Activation::Swish,
            Activation::Linear,
            &mut rng(2),
        );
        let mut infer = Mlp::new(
            &[4, 8, 2],
            Activation::Swish,
            Activation::Linear,
            &mut rng(3),
        );
        let x = [0.5, 0.5, -0.5, -0.5];
        assert_ne!(train.infer(&x), infer.infer(&x));
        infer.copy_weights_from(&train);
        assert_eq!(train.infer(&x), infer.infer(&x));
    }

    #[test]
    fn sgd_training_reduces_loss() {
        let mut net = Mlp::new(
            &[2, 16, 1],
            Activation::Tanh,
            Activation::Linear,
            &mut rng(4),
        );
        let mut opt = Sgd::new(0.05);
        // Learn XOR-ish continuous function f(a, b) = a * b.
        let data: Vec<([f32; 2], f32)> = vec![
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 0.0),
            ([1.0, 0.0], 0.0),
            ([1.0, 1.0], 1.0),
            ([0.5, 0.5], 0.25),
        ];
        let loss_of = |net: &Mlp| -> f32 {
            data.iter()
                .map(|(x, t)| {
                    let y = net.infer(x)[0];
                    (y - t) * (y - t)
                })
                .sum::<f32>()
        };
        let before = loss_of(&net);
        for _ in 0..400 {
            net.zero_grad();
            for (x, t) in &data {
                let y = net.forward(x);
                let dl = [2.0 * (y[0] - t)];
                net.backward(&dl);
            }
            net.apply_grads(&mut opt, 1.0 / data.len() as f32);
        }
        let after = loss_of(&net);
        assert!(
            after < before * 0.2,
            "loss did not drop: {before} -> {after}"
        );
    }

    #[test]
    fn flat_params_length_matches() {
        let net = Mlp::new(
            &[3, 5, 2],
            Activation::Relu,
            Activation::Linear,
            &mut rng(5),
        );
        assert_eq!(net.flat_params().len(), net.num_params());
    }

    #[test]
    fn whole_network_gradient_check() {
        let mut net = Mlp::new(
            &[3, 6, 4, 2],
            Activation::Swish,
            Activation::Linear,
            &mut rng(6),
        );
        let x = [0.4, -0.7, 0.2];
        let y = net.forward(&x);
        let dy: Vec<f32> = y.iter().map(|v| 2.0 * v).collect();
        net.zero_grad();
        let dx = net.backward(&dy);

        let loss = |net: &Mlp, x: &[f32]| -> f32 { net.infer(x).iter().map(|v| v * v).sum() };
        let h = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let numeric = (loss(&net, &xp) - loss(&net, &xm)) / (2.0 * h);
            assert!(
                (numeric - dx[i]).abs() < 2e-2,
                "input {i}: numeric {numeric} vs analytic {}",
                dx[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "need at least input and output dims")]
    fn rejects_degenerate_shape() {
        let _ = Mlp::new(&[4], Activation::Linear, Activation::Linear, &mut rng(7));
    }

    #[test]
    fn set_flat_params_roundtrips() {
        let src = Mlp::new(
            &[4, 7, 3],
            Activation::Swish,
            Activation::Linear,
            &mut rng(20),
        );
        let mut dst = Mlp::new(
            &[4, 7, 3],
            Activation::Swish,
            Activation::Linear,
            &mut rng(21),
        );
        let x = [0.4, -0.2, 0.9, 0.1];
        assert_ne!(src.infer(&x), dst.infer(&x));
        dst.set_flat_params(&src.flat_params());
        assert_eq!(src.infer(&x), dst.infer(&x));
        assert_eq!(src.flat_params(), dst.flat_params());
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn set_flat_params_rejects_wrong_length() {
        let mut net = Mlp::new(
            &[3, 4, 2],
            Activation::Relu,
            Activation::Linear,
            &mut rng(22),
        );
        net.set_flat_params(&[0.0; 3]);
    }

    #[test]
    fn mean_params_averages_two_vectors() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [3.0f32, 0.0, 5.0];
        assert_eq!(mean_params(&[&a, &b]), vec![2.0, 1.0, 4.0]);
    }

    #[test]
    fn mean_params_single_source_is_identity() {
        let a = [0.1f32, -0.7, 3.3];
        assert_eq!(mean_params(&[&a]), a.to_vec());
    }

    #[test]
    #[should_panic(expected = "no sources")]
    fn mean_params_rejects_empty() {
        let _ = mean_params(&[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mean_params_rejects_ragged() {
        let _ = mean_params(&[&[1.0, 2.0], &[1.0]]);
    }

    #[test]
    fn infer_batch_of_one_matches_infer() {
        let net = Mlp::new(
            &[6, 20, 30, 4],
            Activation::Swish,
            Activation::Linear,
            &mut rng(8),
        );
        let x = [0.3, -0.1, 0.9, 0.0, 0.5, -0.7];
        assert_eq!(net.infer_batch(&x, 1), net.infer(&x));
    }

    #[test]
    fn infer_batch_f16_tracks_weight_sync() {
        let net = Mlp::new(
            &[6, 20, 30, 4],
            Activation::Swish,
            Activation::Linear,
            &mut rng(40),
        );
        let mut quant = Mlp::new(
            &[6, 20, 30, 4],
            Activation::Swish,
            Activation::Linear,
            &mut rng(41),
        );
        quant.enable_f16();
        assert!(quant.f16_enabled());
        let xs: Vec<f32> = (0..2 * 6).map(|i| (i as f32).cos()).collect();
        // Both sync paths must re-encode the shadows.
        quant.copy_weights_from(&net);
        let via_copy = quant.infer_batch_f16(&xs, 2);
        quant.set_flat_params(&net.flat_params());
        let via_flat = quant.infer_batch_f16(&xs, 2);
        assert_eq!(via_copy, via_flat);
        // And the quantized output stays close to the f32 path.
        for (a, b) in via_copy.iter().zip(net.infer_batch(&xs, 2)) {
            assert!((a - b).abs() < 2e-2, "f16 {a} vs f32 {b}");
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn infer_batch_rejects_empty() {
        let net = Mlp::new(
            &[3, 4, 2],
            Activation::Swish,
            Activation::Linear,
            &mut rng(9),
        );
        let _ = net.infer_batch(&[], 0);
    }

    #[test]
    fn forward_batch_matches_infer_batch_and_caches() {
        let mut net = Mlp::new(
            &[4, 9, 3],
            Activation::Swish,
            Activation::Linear,
            &mut rng(30),
        );
        let xs: Vec<f32> = (0..3 * 4).map(|i| (i as f32).sin()).collect();
        let cached = net.forward_batch(&xs, 3);
        assert_eq!(cached, net.infer_batch(&xs, 3));
        // The cached state supports an immediate batched backward pass.
        let dy = vec![1.0f32; 3 * 3];
        let dx = net.backward_batch(&dy, 3);
        assert_eq!(dx.len(), 3 * 4);
    }

    #[test]
    #[should_panic(expected = "without a matching forward_batch")]
    fn backward_batch_rejects_stale_cache() {
        let mut net = Mlp::new(
            &[3, 4, 2],
            Activation::Swish,
            Activation::Linear,
            &mut rng(31),
        );
        let _ = net.forward_batch(&[0.1; 6], 2);
        let _ = net.backward_batch(&[1.0; 6], 3);
    }

    proptest! {
        /// Averaging N copies of the same network is bit-identical to the
        /// input — the invariant the cooperation layer's weight-averaging
        /// relies on so that already-converged shards are not perturbed by
        /// a sync round.
        #[test]
        fn mean_of_identical_params_is_identity(seed in 0u64..200, n in 1usize..9) {
            let mut r = rng(seed);
            let net = Mlp::new(
                &[5, 12, 7, 3],
                Activation::Swish,
                Activation::Linear,
                &mut r,
            );
            let flat = net.flat_params();
            let sources: Vec<&[f32]> = (0..n).map(|_| flat.as_slice()).collect();
            let mean = mean_params(&sources);
            prop_assert_eq!(
                mean.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                flat.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }

        /// Batched inference is bit-identical to the per-request path for
        /// random weights, inputs, and batch sizes — the guarantee the
        /// serving engine's batched C51 decisions rest on.
        #[test]
        fn infer_batch_matches_per_request(seed in 0u64..200, batch in 1usize..9) {
            let mut r = rng(seed);
            let net = Mlp::new(
                &[5, 12, 7, 3],
                Activation::Swish,
                Activation::Linear,
                &mut r,
            );
            let xs: Vec<f32> = (0..batch * 5)
                .map(|_| {
                    use rand::Rng;
                    r.gen_range(-2.0f32..2.0)
                })
                .collect();
            let out = net.infer_batch(&xs, batch);
            prop_assert_eq!(out.len(), batch * 3);
            for i in 0..batch {
                let single = net.infer(&xs[i * 5..(i + 1) * 5]);
                prop_assert_eq!(&out[i * 3..(i + 1) * 3], &single[..]);
            }
        }
    }
}
