//! Gradient-descent optimizers.

use std::collections::HashMap;

/// A first-order optimizer that updates a parameter slice in place from its
/// gradient slice.
///
/// `param_id` identifies the parameter group (e.g. one layer's weight
/// matrix) so stateful optimizers such as [`Adam`] can keep per-parameter
/// moment estimates across calls.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step: `params ← params - f(grads)`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params.len() != grads.len()`.
    fn update(&mut self, param_id: usize, params: &mut [f32], grads: &[f32]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Changes the learning rate (Sibyl_Opt in §8.3 retunes α online for
    /// mixed workloads).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent, the paper's optimizer (§6.1, line 18
/// of Algorithm 1): `w ← w − α·∇w`.
///
/// # Examples
///
/// ```
/// use sibyl_nn::{Optimizer, Sgd};
/// let mut opt = Sgd::new(0.1);
/// let mut w = [1.0f32];
/// opt.update(0, &mut w, &[0.5]);
/// assert!((w[0] - 0.95).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(
            lr.is_finite() && lr > 0.0,
            "Sgd: learning rate must be positive"
        );
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, _param_id: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "Sgd::update: length mismatch");
        for (p, &g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(
            lr.is_finite() && lr > 0.0,
            "Sgd: learning rate must be positive"
        );
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias-corrected moment estimates.
///
/// Not used by the paper's default configuration but provided as an
/// extension point for the hyper-parameter studies (§8.5 explores the
/// learning-rate axis; Adam makes the agent far less sensitive to it).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Per-parameter-group first/second moment buffers and step counts.
    state: HashMap<usize, AdamState>,
}

#[derive(Debug, Clone)]
struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        Adam::with_betas(lr, 0.9, 0.999)
    }

    /// Creates an Adam optimizer with explicit betas.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or betas are outside `[0, 1)`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(
            lr.is_finite() && lr > 0.0,
            "Adam: learning rate must be positive"
        );
        assert!((0.0..1.0).contains(&beta1), "Adam: beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "Adam: beta2 must be in [0, 1)");
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn update(&mut self, param_id: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "Adam::update: length mismatch");
        let st = self.state.entry(param_id).or_insert_with(|| AdamState {
            m: vec![0.0; params.len()],
            v: vec![0.0; params.len()],
            t: 0,
        });
        assert_eq!(
            st.m.len(),
            params.len(),
            "Adam::update: parameter group {param_id} changed size"
        );
        st.t += 1;
        let b1t = 1.0 - self.beta1.powi(st.t as i32);
        let b2t = 1.0 - self.beta2.powi(st.t as i32);
        for i in 0..params.len() {
            st.m[i] = self.beta1 * st.m[i] + (1.0 - self.beta1) * grads[i];
            st.v[i] = self.beta2 * st.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = st.m[i] / b1t;
            let v_hat = st.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(
            lr.is_finite() && lr > 0.0,
            "Adam: learning rate must be positive"
        );
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_step_is_linear_in_lr() {
        let mut opt = Sgd::new(0.5);
        let mut w = [2.0f32];
        opt.update(0, &mut w, &[1.0]);
        assert!((w[0] - 1.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize f(w) = (w - 3)^2
        let mut opt = Adam::new(0.1);
        let mut w = [0.0f32];
        for _ in 0..500 {
            let g = [2.0 * (w[0] - 3.0)];
            opt.update(0, &mut w, &g);
        }
        assert!((w[0] - 3.0).abs() < 0.05, "w = {}", w[0]);
    }

    #[test]
    fn adam_keeps_separate_state_per_group() {
        let mut opt = Adam::new(0.1);
        let mut a = [0.0f32];
        let mut b = [0.0f32];
        for _ in 0..200 {
            let ga = [2.0 * (a[0] - 1.0)];
            opt.update(0, &mut a, &ga);
            let gb = [2.0 * (b[0] + 1.0)];
            opt.update(1, &mut b, &gb);
        }
        assert!((a[0] - 1.0).abs() < 0.1);
        assert!((b[0] + 1.0).abs() < 0.1);
    }

    #[test]
    fn learning_rate_accessors_roundtrip() {
        let mut s = Sgd::new(0.1);
        s.set_learning_rate(0.01);
        assert!((s.learning_rate() - 0.01).abs() < 1e-9);
        let mut a = Adam::new(0.1);
        a.set_learning_rate(0.02);
        assert!((a.learning_rate() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn sgd_beats_adam_on_tiny_budget() {
        // Sanity check that both make progress in a couple of steps.
        let mut s = Sgd::new(0.2);
        let mut a = Adam::new(0.2);
        let mut ws = [5.0f32];
        let mut wa = [5.0f32];
        for _ in 0..10 {
            let gs = [2.0 * ws[0]];
            s.update(0, &mut ws, &gs);
            let ga = [2.0 * wa[0]];
            a.update(0, &mut wa, &ga);
        }
        assert!(ws[0].abs() < 5.0);
        assert!(wa[0].abs() < 5.0);
    }
}
