//! A small Elman recurrent network with backpropagation through time.
//!
//! Used by the RNN-HSS baseline (adapted from Kleio, HPDC'19) to predict
//! page hotness from short windows of access history. The Sibyl paper
//! contrasts its tiny feed-forward agent against exactly this kind of
//! "sophisticated RNN-based mechanism" (§4.2 (5), §12).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::init::xavier_uniform;
use crate::linalg;
use crate::loss;

/// An Elman RNN: `h_t = tanh(Wxh·x_t + Whh·h_{t−1} + bh)` with a linear
/// read-out `y = Why·h_T + by` from the final hidden state.
///
/// Training performs full backpropagation through time over the (short)
/// input sequence with a softmax cross-entropy loss on the final output —
/// sequence classification, which is how RNN-HSS labels pages hot or cold.
///
/// # Examples
///
/// ```
/// use sibyl_nn::Rnn;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let mut rnn = Rnn::new(4, 8, 2, &mut rng);
/// let seq = vec![vec![0.1, 0.0, 0.3, 1.0]; 6];
/// let logits = rnn.forward(&seq);
/// assert_eq!(logits.len(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rnn {
    in_dim: usize,
    hidden_dim: usize,
    out_dim: usize,
    wxh: Vec<f32>,
    whh: Vec<f32>,
    bh: Vec<f32>,
    why: Vec<f32>,
    by: Vec<f32>,
}

impl Rnn {
    /// Creates an RNN with Xavier-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            in_dim > 0 && hidden_dim > 0 && out_dim > 0,
            "Rnn: dimensions must be non-zero"
        );
        let mut wxh = vec![0.0; hidden_dim * in_dim];
        let mut whh = vec![0.0; hidden_dim * hidden_dim];
        let mut why = vec![0.0; out_dim * hidden_dim];
        xavier_uniform(&mut wxh, in_dim, hidden_dim, rng);
        xavier_uniform(&mut whh, hidden_dim, hidden_dim, rng);
        xavier_uniform(&mut why, hidden_dim, out_dim, rng);
        Rnn {
            in_dim,
            hidden_dim,
            out_dim,
            wxh,
            whh,
            bh: vec![0.0; hidden_dim],
            why,
            by: vec![0.0; out_dim],
        }
    }

    /// Input dimensionality per time step.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.wxh.len() + self.whh.len() + self.bh.len() + self.why.len() + self.by.len()
    }

    /// Multiply-accumulates per time step plus the read-out, for the
    /// overhead comparison against Sibyl's feed-forward net (§10.1 / §12).
    pub fn mac_count_per_step(&self) -> usize {
        self.hidden_dim * self.in_dim + self.hidden_dim * self.hidden_dim
    }

    /// Runs the sequence and returns the final-step output logits.
    ///
    /// An empty sequence yields the read-out of the zero hidden state.
    ///
    /// # Panics
    ///
    /// Panics if any step's input length differs from `in_dim`.
    pub fn forward(&self, xs: &[Vec<f32>]) -> Vec<f32> {
        let (hs, _zs) = self.run(xs);
        // sibyl-lint: allow(unwrap-in-lib) -- invariant: run() always yields the initial hidden state h_0
        let h_last = hs.last().expect("run always yields h_0");
        let mut y = Vec::new();
        linalg::matvec_bias(
            &self.why,
            &self.by,
            h_last,
            self.out_dim,
            self.hidden_dim,
            &mut y,
        );
        y
    }

    /// Forward pass retaining every hidden state; `hs[0]` is the initial
    /// zero state, `hs[t+1]` the state after consuming `xs[t]`.
    fn run(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let mut hs = Vec::with_capacity(xs.len() + 1);
        let mut zs = Vec::with_capacity(xs.len());
        hs.push(vec![0.0; self.hidden_dim]);
        let mut zx = Vec::new();
        let mut zh = Vec::new();
        for x in xs {
            assert_eq!(x.len(), self.in_dim, "Rnn: input length mismatch");
            linalg::matvec_bias(
                &self.wxh,
                &self.bh,
                x,
                self.hidden_dim,
                self.in_dim,
                &mut zx,
            );
            let zero_bias = vec![0.0; self.hidden_dim];
            linalg::matvec_bias(
                &self.whh,
                &zero_bias,
                // sibyl-lint: allow(unwrap-in-lib) -- invariant: hs starts with h_0 and only grows
                hs.last().expect("hs non-empty"),
                self.hidden_dim,
                self.hidden_dim,
                &mut zh,
            );
            let z: Vec<f32> = zx.iter().zip(&zh).map(|(a, b)| a + b).collect();
            let h: Vec<f32> = z.iter().map(|v| v.tanh()).collect();
            zs.push(z);
            hs.push(h);
        }
        (hs, zs)
    }

    /// One training step: softmax cross-entropy between the final-step
    /// logits and `target` (a probability vector, typically one-hot), full
    /// BPTT, gradient clipping at L2 norm 5, and an SGD update with rate
    /// `lr`. Returns the loss before the update.
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != out_dim`, the sequence is empty, or any
    /// step's input length differs from `in_dim`.
    pub fn train_step(&mut self, xs: &[Vec<f32>], target: &[f32], lr: f32) -> f32 {
        assert_eq!(
            target.len(),
            self.out_dim,
            "Rnn::train_step: target length mismatch"
        );
        assert!(!xs.is_empty(), "Rnn::train_step: empty sequence");
        let (hs, _zs) = self.run(xs);
        // sibyl-lint: allow(unwrap-in-lib) -- invariant: run() always yields the initial hidden state h_0
        let h_last = hs.last().expect("hs non-empty");
        let mut y = Vec::new();
        linalg::matvec_bias(
            &self.why,
            &self.by,
            h_last,
            self.out_dim,
            self.hidden_dim,
            &mut y,
        );
        let loss_val = loss::cross_entropy_logits(&y, target);

        // Gradient buffers.
        let mut d_wxh = vec![0.0; self.wxh.len()];
        let mut d_whh = vec![0.0; self.whh.len()];
        let mut d_bh = vec![0.0; self.bh.len()];
        let mut d_why = vec![0.0; self.why.len()];
        let mut d_by = vec![0.0; self.by.len()];

        // dL/dy = softmax(y) - target.
        let mut dy = Vec::new();
        loss::cross_entropy_logits_grad(&y, target, &mut dy);

        // Read-out gradients.
        linalg::outer_acc(&mut d_why, &dy, h_last);
        linalg::add_assign(&mut d_by, &dy);
        let mut dh = Vec::new();
        linalg::matvec_transpose(&self.why, &dy, self.out_dim, self.hidden_dim, &mut dh);

        // BPTT.
        for t in (0..xs.len()).rev() {
            let h_t = &hs[t + 1];
            let h_prev = &hs[t];
            // dz = dh ⊙ (1 - h²)   (tanh derivative via the activation value)
            let dz: Vec<f32> = dh.iter().zip(h_t).map(|(d, h)| d * (1.0 - h * h)).collect();
            linalg::outer_acc(&mut d_wxh, &dz, &xs[t]);
            linalg::outer_acc(&mut d_whh, &dz, h_prev);
            linalg::add_assign(&mut d_bh, &dz);
            linalg::matvec_transpose(&self.whh, &dz, self.hidden_dim, self.hidden_dim, &mut dh);
        }

        // Clip and apply.
        for g in [&mut d_wxh, &mut d_whh, &mut d_bh, &mut d_why, &mut d_by] {
            linalg::clip_l2_norm(g, 5.0);
        }
        for (p, g) in [
            (&mut self.wxh, &d_wxh),
            (&mut self.whh, &d_whh),
            (&mut self.bh, &d_bh),
            (&mut self.why, &d_why),
            (&mut self.by, &d_by),
        ] {
            for (pv, &gv) in p.iter_mut().zip(g.iter()) {
                *pv -= lr * gv;
            }
        }
        loss_val
    }

    /// Class prediction for a sequence: index of the largest final logit.
    ///
    /// # Panics
    ///
    /// Panics if any step's input length differs from `in_dim`.
    pub fn classify(&self, xs: &[Vec<f32>]) -> usize {
        // sibyl-lint: allow(unwrap-in-lib) -- invariant: out_dim > 0 is enforced at construction
        crate::argmax(&self.forward(xs)).expect("out_dim > 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn forward_shape_and_determinism() {
        let rnn = Rnn::new(3, 5, 2, &mut rng(0));
        let seq = vec![vec![0.1, 0.2, 0.3]; 4];
        let a = rnn.forward(&seq);
        let b = rnn.forward(&seq);
        assert_eq!(a.len(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sequence_reads_zero_state() {
        let rnn = Rnn::new(3, 5, 2, &mut rng(1));
        let y = rnn.forward(&[]);
        // Read-out of h=0 is just the bias, which starts at zero.
        assert!(y.iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn learns_to_separate_two_sequence_classes() {
        let mut rnn = Rnn::new(2, 12, 2, &mut rng(2));
        // Class 0: rising sequences; class 1: falling sequences.
        let rising: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32 / 6.0, 0.0]).collect();
        let falling: Vec<Vec<f32>> = (0..6).map(|i| vec![(5 - i) as f32 / 6.0, 0.0]).collect();
        for _ in 0..300 {
            rnn.train_step(&rising, &[1.0, 0.0], 0.05);
            rnn.train_step(&falling, &[0.0, 1.0], 0.05);
        }
        assert_eq!(rnn.classify(&rising), 0);
        assert_eq!(rnn.classify(&falling), 1);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rnn = Rnn::new(2, 8, 2, &mut rng(3));
        let seq = vec![vec![1.0, -1.0]; 5];
        let first = rnn.train_step(&seq, &[1.0, 0.0], 0.1);
        let mut last = first;
        for _ in 0..100 {
            last = rnn.train_step(&seq, &[1.0, 0.0], 0.1);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn mac_count_reflects_shapes() {
        let rnn = Rnn::new(4, 10, 2, &mut rng(4));
        assert_eq!(rnn.mac_count_per_step(), 4 * 10 + 10 * 10);
        assert_eq!(rnn.num_params(), 40 + 100 + 10 + 20 + 2);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn rejects_bad_step_width() {
        let rnn = Rnn::new(3, 4, 2, &mut rng(5));
        let _ = rnn.forward(&[vec![1.0]]);
    }
}
