//! Property pins for `sibyl_nn::half`, the binary16 codec.
//!
//! This PR promotes the module from a storage-accounting helper (§10.2's
//! 16-bit weight footprint) to a load-bearing storage format: the f16
//! inference fast path stores real `Vec<u16>` shadow weights encoded and
//! decoded by these functions. So the codec is pinned first: round-trip
//! exactness for everything binary16 represents, correct
//! round-to-nearest-even at ties, subnormal/Inf/NaN handling, and order
//! preservation — the properties the parity suite's error envelope and
//! the serving golden test implicitly build on.

use proptest::prelude::*;

use sibyl_nn::half::{
    dequantize_bits, f16_bits_to_f32, f32_to_f16_bits, quantize, quantize_to_bits,
};

proptest! {
    /// Every finite binary16 value round-trips bit-exactly:
    /// decode(bits) → f32 → encode = the same bits. This sweeps all
    /// 63,488 finite bit patterns over the proptest runs (the generator
    /// covers the full u16 range; Inf/NaN patterns are asserted
    /// separately below).
    #[test]
    fn representable_values_roundtrip_exactly(hi in 0u16..=0xFF, lo in 0u16..=0xFF) {
        let pattern = (hi << 8) | lo;
        let exp = (pattern >> 10) & 0x1F;
        prop_assume!(exp != 0x1F); // Inf/NaN handled in dedicated tests
        let value = f16_bits_to_f32(pattern);
        let back = f32_to_f16_bits(value);
        prop_assert!(back == pattern, "value {}: bits {:#06x} -> {:#06x}", value, pattern, back);
    }

    /// Exactly-representable f32 values (10 or fewer significant
    /// fraction bits, in-range exponent) survive quantization untouched.
    #[test]
    fn short_mantissa_values_quantize_to_themselves(
        mantissa in 0u32..1024,
        exp in -14i32..16,
        negative in proptest::bool::ANY,
    ) {
        // value = ±(1 + mantissa/1024) · 2^exp — exactly a binary16 normal.
        let magnitude = (1.0 + mantissa as f32 / 1024.0) * (exp as f32).exp2();
        let value = if negative { -magnitude } else { magnitude };
        prop_assert_eq!(quantize(value).to_bits(), value.to_bits());
    }

    /// Round-to-nearest-even at exact midpoints: a value halfway between
    /// two adjacent binary16 normals lands on the one with an even
    /// mantissa, whichever side that is.
    #[test]
    fn midpoints_round_to_even(mantissa in 0u32..1023, exp in -14i32..15) {
        let lower = (1.0 + mantissa as f32 / 1024.0) * (exp as f32).exp2();
        let upper = (1.0 + (mantissa + 1) as f32 / 1024.0) * (exp as f32).exp2();
        // The midpoint is exactly representable in f32 (11 fraction bits).
        let mid = (lower + upper) / 2.0;
        let rounded = quantize(mid);
        prop_assert!(
            rounded == lower || rounded == upper,
            "midpoint {} escaped [{}, {}]",
            mid,
            lower,
            upper
        );
        let landed = f32_to_f16_bits(rounded);
        prop_assert!(landed & 1 == 0, "tie {:#06x} must land on an even mantissa", landed);
    }

    /// Encoding is monotone on finite positives: x ≤ y ⇒ bits(x) ≤
    /// bits(y). (For positive IEEE values the bit patterns order like the
    /// values, so an order-preserving encoder is what makes f16 argmax
    /// agree with f32 argmax outside genuine near-ties.)
    #[test]
    fn encoding_is_monotone_on_finite_positives(
        a in 0.0f32..65504.0,
        b in 0.0f32..65504.0,
    ) {
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(f32_to_f16_bits(x) <= f32_to_f16_bits(y), "x={} y={}", x, y);
    }

    /// The slice codec is elementwise: encode-then-decode equals the
    /// per-value quantize, positions preserved.
    #[test]
    fn slice_codec_is_elementwise(values in proptest::collection::vec(-70000.0f32..70000.0, 0..40)) {
        let mut bits = Vec::new();
        quantize_to_bits(&values, &mut bits);
        prop_assert_eq!(bits.len(), values.len());
        let mut decoded = Vec::new();
        dequantize_bits(&bits, &mut decoded);
        prop_assert_eq!(decoded.len(), values.len());
        for (d, v) in decoded.iter().zip(&values) {
            prop_assert_eq!(d.to_bits(), quantize(*v).to_bits());
        }
    }

    /// Subnormal binary16 range: magnitudes in (2⁻²⁵, 2⁻¹⁴) quantize to a
    /// subnormal (or the nearest normal boundary) within half a subnormal
    /// ULP (2⁻²⁵), and never produce garbage above the range.
    #[test]
    fn subnormal_range_quantizes_within_half_ulp(x in 6e-8f32..6.1e-5) {
        let q = quantize(x);
        prop_assert!(q >= 0.0 && q.is_finite());
        prop_assert!((q - x).abs() <= (-25.0f32).exp2(), "x={} q={}", x, q);
    }
}

#[test]
fn infinities_and_nan_are_preserved() {
    assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
    assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xFC00);
    assert_eq!(f16_bits_to_f32(0x7C00), f32::INFINITY);
    assert_eq!(f16_bits_to_f32(0xFC00), f32::NEG_INFINITY);
    assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    assert!(f16_bits_to_f32(f32_to_f16_bits(-f32::NAN)).is_nan());
    // Overflowing finites saturate to infinity, preserving sign.
    assert_eq!(f32_to_f16_bits(1e20), 0x7C00);
    assert_eq!(f32_to_f16_bits(-1e20), 0xFC00);
}

#[test]
fn signed_zero_and_underflow() {
    assert_eq!(f32_to_f16_bits(0.0), 0x0000);
    assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
    // Below half the smallest subnormal, magnitudes underflow to ±0.
    assert_eq!(quantize(1e-9), 0.0);
    assert!(quantize(-1e-9).is_sign_negative());
    assert_eq!(quantize(-1e-9), -0.0);
}

#[test]
fn boundary_constants() {
    // Largest finite binary16 and the smallest positive normal/subnormal.
    assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF);
    assert_eq!(f16_bits_to_f32(0x7BFF), 65504.0);
    assert_eq!(f16_bits_to_f32(0x0400), (-14.0f32).exp2()); // min normal
    assert_eq!(f16_bits_to_f32(0x0001), (-24.0f32).exp2()); // min subnormal
}
