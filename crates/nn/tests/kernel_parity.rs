//! The tiled-kernel bit-identity pin and the f16 fast-path error pin.
//!
//! The tiled kernels in `sibyl_nn::linalg` exist purely for speed — their
//! inner loops are bounds-check-free so rustc autovectorizes them — so
//! they must change nothing about the numbers: every output element's
//! accumulation chain runs in exactly the order of the retained
//! [`linalg::scalar`] references, making results bit-for-bit identical.
//! These property tests pin that across random shapes, with the dimension
//! palette deliberately straddling every tile boundary
//! (`BATCH_TILE` − 1 / exact / + 1, `ROW_TILE` likewise, 1, and odd
//! primes) so remainder paths are exercised as hard as full tiles.
//!
//! The f16 half of the suite pins the quantized inference fast path: its
//! outputs stay within a fixed error envelope of the f32 path, and on
//! random C51 heads the greedy placement decision (argmax of expected
//! value) survives quantization whenever the f32 decision margin exceeds
//! the quantization noise.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use sibyl_nn::linalg::{self, scalar, BATCH_TILE, ROW_TILE};
use sibyl_nn::{softmax, Activation, Mlp};

/// Dimension palette straddling the tile boundaries: 1, ROW_TILE−1,
/// ROW_TILE, ROW_TILE+1, BATCH_TILE−1, BATCH_TILE, BATCH_TILE+1, odd
/// primes, and a two-tile size.
const DIMS: [usize; 11] = [
    1,
    ROW_TILE - 1,
    ROW_TILE,
    ROW_TILE + 1,
    BATCH_TILE - 1,
    BATCH_TILE,
    BATCH_TILE + 1,
    11,
    13,
    17,
    2 * BATCH_TILE,
];

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn random_vec(r: &mut rand::rngs::StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| r.gen_range(-2.0f32..2.0)).collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// Tiled `matmul_bias` is bit-identical to the scalar reference for
    /// every shape in the palette — full tiles, remainders, and the
    /// degenerate single-row/column cases alike.
    #[test]
    fn matmul_bias_matches_scalar(
        seed in 0u64..400,
        ri in 0usize..DIMS.len(),
        ci in 0usize..DIMS.len(),
        bi in 0usize..DIMS.len(),
    ) {
        let (rows, cols, batch) = (DIMS[ri], DIMS[ci], DIMS[bi]);
        let mut r = rng(seed);
        let w = random_vec(&mut r, rows * cols);
        let b = random_vec(&mut r, rows);
        let xs = random_vec(&mut r, batch * cols);
        let (mut tiled, mut reference) = (Vec::new(), Vec::new());
        linalg::matmul_bias(&w, &b, &xs, rows, cols, batch, &mut tiled);
        scalar::matmul_bias(&w, &b, &xs, rows, cols, batch, &mut reference);
        prop_assert_eq!(bits(&tiled), bits(&reference));
    }

    /// Tiled `matmul_transpose` is bit-identical to the scalar reference.
    #[test]
    fn matmul_transpose_matches_scalar(
        seed in 0u64..400,
        ri in 0usize..DIMS.len(),
        ci in 0usize..DIMS.len(),
        bi in 0usize..DIMS.len(),
    ) {
        let (rows, cols, batch) = (DIMS[ri], DIMS[ci], DIMS[bi]);
        let mut r = rng(seed);
        let w = random_vec(&mut r, rows * cols);
        let d = random_vec(&mut r, batch * rows);
        let (mut tiled, mut reference) = (Vec::new(), Vec::new());
        linalg::matmul_transpose(&w, &d, rows, cols, batch, &mut tiled);
        scalar::matmul_transpose(&w, &d, rows, cols, batch, &mut reference);
        prop_assert_eq!(bits(&tiled), bits(&reference));
    }

    /// Tiled `matmul_at_b_acc` accumulates bit-identically to the scalar
    /// reference — on top of a non-zero prior gradient, so the
    /// accumulation (not just a fresh sum) is pinned.
    #[test]
    fn matmul_at_b_acc_matches_scalar(
        seed in 0u64..400,
        ri in 0usize..DIMS.len(),
        ci in 0usize..DIMS.len(),
        bi in 0usize..DIMS.len(),
    ) {
        let (rows, cols, batch) = (DIMS[ri], DIMS[ci], DIMS[bi]);
        let mut r = rng(seed);
        let prior = random_vec(&mut r, rows * cols);
        let d = random_vec(&mut r, batch * rows);
        let xs = random_vec(&mut r, batch * cols);
        let mut tiled = prior.clone();
        let mut reference = prior;
        linalg::matmul_at_b_acc(&mut tiled, &d, &xs, rows, cols, batch);
        scalar::matmul_at_b_acc(&mut reference, &d, &xs, rows, cols, batch);
        prop_assert_eq!(bits(&tiled), bits(&reference));
    }

    /// Tiled `col_sum_acc` accumulates bit-identically to the scalar
    /// reference, again on top of a non-zero prior.
    #[test]
    fn col_sum_acc_matches_scalar(
        seed in 0u64..400,
        ri in 0usize..DIMS.len(),
        bi in 0usize..DIMS.len(),
    ) {
        let (rows, batch) = (DIMS[ri], DIMS[bi]);
        let mut r = rng(seed);
        let prior = random_vec(&mut r, rows);
        let d = random_vec(&mut r, batch * rows);
        let mut tiled = prior.clone();
        let mut reference = prior;
        linalg::col_sum_acc(&mut tiled, &d, batch);
        scalar::col_sum_acc(&mut reference, &d, batch);
        prop_assert_eq!(bits(&tiled), bits(&reference));
    }

    /// The f16 fast path stays inside a pinned error envelope of the f32
    /// path on the paper's network shape: per output,
    /// `|y16 − y32| ≤ 1e-2 · (1 + |y32|)`. The envelope is deliberately
    /// loose against binary16's 2⁻¹¹ per-weight rounding — it pins the
    /// path against gross regressions (wrong shadow, stale refresh,
    /// double quantization), not against float-level drift.
    #[test]
    fn f16_inference_error_is_bounded(
        seed in 0u64..300,
        batch in 1usize..12,
    ) {
        let mut r = rng(seed);
        let mut net = Mlp::new(
            &[6, 20, 30, 8],
            Activation::Swish,
            Activation::Linear,
            &mut r,
        );
        net.enable_f16();
        let xs = random_vec(&mut r, batch * 6);
        let y32 = net.infer_batch(&xs, batch);
        let y16 = net.infer_batch_f16(&xs, batch);
        prop_assert_eq!(y16.len(), y32.len());
        for (a, b) in y16.iter().zip(&y32) {
            prop_assert!(
                (a - b).abs() <= 1e-2 * (1.0 + b.abs()),
                "f16 {} vs f32 {}",
                a,
                b
            );
        }
    }

    /// Greedy C51 placement decisions survive quantization: on random C51
    /// heads (per-action softmax over atoms, expected value over the
    /// support), the f16 argmax equals the f32 argmax whenever the f32
    /// decision margin (top-2 Q-value gap) exceeds the quantization
    /// noise floor. Near-ties are allowed to flip — the serving golden
    /// test separately pins that zero flips occur on the reference trace.
    #[test]
    fn f16_argmax_matches_on_random_c51_heads(
        seed in 0u64..300,
        n_actions in 2usize..4,
        n_atoms in 2usize..12,
    ) {
        let mut r = rng(seed);
        let mut net = Mlp::new(
            &[6, 20, 30, n_actions * n_atoms],
            Activation::Swish,
            Activation::Linear,
            &mut r,
        );
        net.enable_f16();
        let x = random_vec(&mut r, 6);
        let logits32 = net.infer_batch(&x, 1);
        let logits16 = net.infer_batch_f16(&x, 1);

        // Expected value per action over the C51 support, mirroring the
        // agent's ValueHead::best_action.
        let (v_min, v_max) = (-1.0f32, 4.0f32);
        let dz = (v_max - v_min) / (n_atoms - 1) as f32;
        let q_values = |logits: &[f32]| -> Vec<f32> {
            let mut probs = Vec::new();
            (0..n_actions)
                .map(|a| {
                    softmax(&logits[a * n_atoms..(a + 1) * n_atoms], &mut probs);
                    probs
                        .iter()
                        .enumerate()
                        .map(|(i, p)| p * (v_min + i as f32 * dz))
                        .sum()
                })
                .collect()
        };
        let q32 = q_values(&logits32);
        let q16 = q_values(&logits16);
        let best32 = sibyl_nn::argmax(&q32).expect("non-empty head");
        let best16 = sibyl_nn::argmax(&q16).expect("non-empty head");

        if best16 != best32 {
            // A flip is only acceptable when the f32 decision was a
            // near-tie: the runner-up sat within the quantization noise.
            let mut sorted = q32.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite Q-values"));
            let margin = sorted[0] - sorted[1];
            prop_assert!(
                margin < 5e-2,
                "argmax flipped on a clear margin: q32={:?} q16={:?} margin={}",
                q32,
                q16,
                margin
            );
        }
    }
}
