//! The batched-training bit-identity pin.
//!
//! The batched training path (`forward_batch` + `backward_batch`) exists
//! purely for locality — each weight matrix streams once per *batch*
//! instead of once per *sample* — so it must change nothing about the
//! numbers: gradients, input deltas, and therefore every optimizer step
//! downstream must be bit-for-bit identical to the per-sample
//! `forward` + `backward` loop it replaces. These property tests pin that
//! contract across random shapes, batch sizes, and activations, mirroring
//! the `infer_batch` parity pin the serving engine's inference already
//! rests on.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use sibyl_nn::{Activation, Dense, Mlp, Sgd};

const ACTS: [Activation; 5] = [
    Activation::Linear,
    Activation::Relu,
    Activation::Swish,
    Activation::Tanh,
    Activation::Sigmoid,
];

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn random_vec(r: &mut rand::rngs::StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| r.gen_range(-2.0f32..2.0)).collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    /// One `Dense::forward_batch` + `Dense::backward_batch` round leaves
    /// the gradient buffers and input deltas bit-identical to `batch`
    /// sequential `forward` + `backward` calls in sample order — even
    /// when accumulating on top of non-zero gradients from an earlier
    /// round (the sequential loop never zeroes between samples).
    #[test]
    fn dense_backward_batch_is_bit_identical(
        seed in 0u64..300,
        batch in 1usize..10,
        in_dim in 1usize..7,
        out_dim in 1usize..7,
        act_idx in 0usize..ACTS.len(),
    ) {
        let mut r = rng(seed);
        let act = ACTS[act_idx];
        let mut batched = Dense::new(in_dim, out_dim, act, &mut r);
        let mut sequential = batched.clone();
        let xs = random_vec(&mut r, batch * in_dim);
        let dys = random_vec(&mut r, batch * out_dim);

        // Seed both gradient buffers with the same prior round so the
        // accumulation (not just the fresh sum) is pinned.
        let prior_x = random_vec(&mut r, in_dim);
        let prior_dy = random_vec(&mut r, out_dim);
        for layer in [&mut batched, &mut sequential] {
            let _ = layer.forward(&prior_x);
            let _ = layer.backward(&prior_dy);
        }

        let ys = batched.forward_batch(&xs, batch);
        let dxs = batched.backward_batch(&dys, batch);

        for s in 0..batch {
            let y = sequential.forward(&xs[s * in_dim..(s + 1) * in_dim]);
            prop_assert_eq!(bits(&ys[s * out_dim..(s + 1) * out_dim]), bits(&y));
            let dx = sequential.backward(&dys[s * out_dim..(s + 1) * out_dim]);
            prop_assert_eq!(bits(&dxs[s * in_dim..(s + 1) * in_dim]), bits(&dx));
        }
        let (bdw, bdb) = batched.grads();
        let (sdw, sdb) = sequential.grads();
        prop_assert_eq!(bits(bdw), bits(sdw));
        prop_assert_eq!(bits(bdb), bits(sdb));
    }

    /// The whole-network contract: `Mlp::forward_batch` +
    /// `Mlp::backward_batch` accumulates every layer's gradients
    /// bit-identically to the per-sample loop, across random hidden
    /// shapes, batch sizes, and both the paper's activations and the
    /// rest of the palette.
    #[test]
    fn mlp_backward_batch_is_bit_identical(
        seed in 0u64..300,
        batch in 1usize..10,
        hidden in 1usize..12,
        act_idx in 0usize..ACTS.len(),
    ) {
        let mut r = rng(seed);
        let act = ACTS[act_idx];
        let dims = [4, hidden, hidden.max(2), 3];
        let mut batched = Mlp::new(&dims, act, Activation::Linear, &mut r);
        let mut sequential = batched.clone();
        batched.zero_grad();
        sequential.zero_grad();
        let xs = random_vec(&mut r, batch * 4);
        let dys = random_vec(&mut r, batch * 3);

        let ys = batched.forward_batch(&xs, batch);
        let dxs = batched.backward_batch(&dys, batch);

        for s in 0..batch {
            let y = sequential.forward(&xs[s * 4..(s + 1) * 4]);
            prop_assert_eq!(bits(&ys[s * 3..(s + 1) * 3]), bits(&y));
            let dx = sequential.backward(&dys[s * 3..(s + 1) * 3]);
            prop_assert_eq!(bits(&dxs[s * 4..(s + 1) * 4]), bits(&dx));
        }
        for (bl, sl) in batched.layers().zip(sequential.layers()) {
            let (bdw, bdb) = bl.grads();
            let (sdw, sdb) = sl.grads();
            prop_assert_eq!(bits(bdw), bits(sdw));
            prop_assert_eq!(bits(bdb), bits(sdb));
        }
    }

    /// End-to-end through the optimizer: a mean-gradient SGD step taken
    /// from batched gradients lands on bit-identical parameters — the
    /// exact invariant `Learner::train_step` relies on.
    #[test]
    fn sgd_step_from_batched_gradients_is_bit_identical(
        seed in 0u64..150,
        batch in 1usize..9,
    ) {
        let mut r = rng(seed);
        let mut batched = Mlp::new(
            &[5, 8, 6, 2],
            Activation::Swish,
            Activation::Linear,
            &mut r,
        );
        let mut sequential = batched.clone();
        let xs = random_vec(&mut r, batch * 5);
        let dys = random_vec(&mut r, batch * 2);

        batched.zero_grad();
        let _ = batched.forward_batch(&xs, batch);
        let _ = batched.backward_batch(&dys, batch);
        let mut opt_b = Sgd::new(0.01);
        batched.apply_grads(&mut opt_b, 1.0 / batch as f32);

        sequential.zero_grad();
        for s in 0..batch {
            let _ = sequential.forward(&xs[s * 5..(s + 1) * 5]);
            let _ = sequential.backward(&dys[s * 2..(s + 1) * 2]);
        }
        let mut opt_s = Sgd::new(0.01);
        sequential.apply_grads(&mut opt_s, 1.0 / batch as f32);

        prop_assert_eq!(bits(&batched.flat_params()), bits(&sequential.flat_params()));
    }
}
