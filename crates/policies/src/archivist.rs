//! Archivist, after Ren et al. (ICCD 2019): a supervised neural-network
//! classifier that predicts the target device for data placement.
//!
//! As characterized in the Sibyl paper (§3, §8.6): Archivist classifies
//! pages at the beginning of an epoch and *does not change its placement
//! decision throughout the execution of that epoch*; it performs no
//! promotion or eviction of its own, and — crucially — receives no
//! system-level feedback, so it often mispredicts and classifies the same
//! share of requests hot regardless of the fast device's size.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sibyl_hss::{DeviceId, PlacementContext, PlacementPolicy};
use sibyl_nn::{Activation, Mlp, Sgd};
use sibyl_trace::IoRequest;

/// Static tuning knobs for [`Archivist`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchivistConfig {
    /// Requests per epoch.
    pub epoch_requests: u64,
    /// Training passes over the previous epoch's examples at each
    /// boundary.
    pub train_epochs: usize,
    /// Classifier learning rate.
    pub learning_rate: f32,
    /// RNG seed for network initialization and example shuffling.
    pub seed: u64,
}

impl Default for ArchivistConfig {
    fn default() -> Self {
        ArchivistConfig {
            epoch_requests: 2_000,
            train_epochs: 3,
            learning_rate: 0.05,
            seed: 0xA2C1,
        }
    }
}

/// Per-page example collected during an epoch.
#[derive(Debug, Clone, Copy)]
struct Example {
    features: [f32; 4],
    hot: bool,
}

/// The Archivist supervised baseline.
///
/// # Examples
///
/// ```
/// use sibyl_policies::Archivist;
/// use sibyl_hss::PlacementPolicy;
/// assert_eq!(Archivist::default().name(), "Archivist");
/// ```
#[derive(Debug)]
pub struct Archivist {
    config: ArchivistConfig,
    classifier: Mlp,
    rng: StdRng,
    /// Pinned per-page targets for the current epoch.
    epoch_targets: HashMap<u64, DeviceId>,
    /// First-touch features and epoch access counts for label generation.
    epoch_features: HashMap<u64, [f32; 4]>,
    epoch_counts: HashMap<u64, u64>,
    requests_in_epoch: u64,
    trained: bool,
}

impl Default for Archivist {
    fn default() -> Self {
        Archivist::new(ArchivistConfig::default())
    }
}

impl Archivist {
    /// Creates Archivist with explicit configuration.
    pub fn new(config: ArchivistConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let classifier = Mlp::new(&[4, 16, 2], Activation::Relu, Activation::Linear, &mut rng);
        Archivist {
            config,
            classifier,
            rng,
            epoch_targets: HashMap::new(),
            epoch_features: HashMap::new(),
            epoch_counts: HashMap::new(),
            requests_in_epoch: 0,
            trained: false,
        }
    }

    fn features(req: &IoRequest, ctx: &PlacementContext<'_>) -> [f32; 4] {
        let tracker = ctx.manager.tracker();
        let count = tracker.access_count(req.lpn);
        let interval = tracker.access_interval(req.lpn).unwrap_or(u64::MAX);
        [
            (req.size_pages as f32 / 64.0).min(1.0),
            if req.op.is_write() { 1.0 } else { 0.0 },
            ((1 + count) as f32).ln() / 8.0,
            if interval == u64::MAX {
                1.0
            } else {
                ((1 + interval) as f32).ln() / 16.0
            },
        ]
    }

    /// Trains on the finished epoch and resets per-epoch state.
    fn roll_epoch(&mut self) {
        // Label: a page was hot if its epoch access count reached the
        // epoch's median count among touched pages (top half hot).
        let mut counts: Vec<u64> = self.epoch_counts.values().copied().collect();
        if !counts.is_empty() {
            counts.sort_unstable();
            let median = counts[counts.len() / 2].max(2);
            // Collect in LPN order: `epoch_features` is a HashMap, and
            // training in its run-dependent iteration order would make the
            // classifier weights differ between identical runs.
            let mut rows: Vec<(u64, [f32; 4])> = self
                .epoch_features
                .iter()
                .map(|(&lpn, &features)| (lpn, features))
                .collect();
            rows.sort_unstable_by_key(|&(lpn, _)| lpn);
            let mut examples: Vec<Example> = rows
                .iter()
                .map(|&(lpn, features)| Example {
                    features,
                    hot: self.epoch_counts.get(&lpn).copied().unwrap_or(0) >= median,
                })
                .collect();
            let mut opt = Sgd::new(self.config.learning_rate);
            for _ in 0..self.config.train_epochs {
                examples.shuffle(&mut self.rng);
                for ex in &examples {
                    let logits = self.classifier.forward(&ex.features);
                    let target = if ex.hot { [1.0f32, 0.0] } else { [0.0f32, 1.0] };
                    let mut grad = Vec::new();
                    sibyl_nn::loss::cross_entropy_logits_grad(&logits, &target, &mut grad);
                    self.classifier.zero_grad();
                    self.classifier.backward(&grad);
                    self.classifier.apply_grads(&mut opt, 1.0);
                }
            }
            self.trained = true;
        }
        self.epoch_targets.clear();
        self.epoch_features.clear();
        self.epoch_counts.clear();
        self.requests_in_epoch = 0;
    }
}

impl PlacementPolicy for Archivist {
    fn name(&self) -> &str {
        "Archivist"
    }

    fn place(&mut self, req: &IoRequest, ctx: &PlacementContext<'_>) -> DeviceId {
        if self.requests_in_epoch >= self.config.epoch_requests {
            self.roll_epoch();
        }
        self.requests_in_epoch += 1;
        for p in req.pages() {
            *self.epoch_counts.entry(p).or_insert(0) += 1;
        }

        if let Some(&pinned) = self.epoch_targets.get(&req.lpn) {
            return pinned;
        }
        let features = Self::features(req, ctx);
        self.epoch_features.entry(req.lpn).or_insert(features);
        let target = if self.trained {
            let logits = self.classifier.infer(&features);
            if logits[0] >= logits[1] {
                ctx.manager.fastest()
            } else {
                ctx.manager.slowest()
            }
        } else {
            // Before the first boundary there is nothing to train on.
            ctx.manager.slowest()
        };
        self.epoch_targets.insert(req.lpn, target);
        target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::{DeviceSpec, HssConfig, StorageManager};
    use sibyl_trace::IoOp;

    fn manager() -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![1024, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn run_one(p: &mut Archivist, mgr: &mut StorageManager, req: IoRequest) -> DeviceId {
        let target = {
            let ctx = PlacementContext {
                manager: mgr,
                seq: 0,
            };
            p.place(&req, &ctx)
        };
        let _ = mgr.access(&req, target);
        target
    }

    #[test]
    fn untrained_epoch_defaults_to_slow() {
        let mut mgr = manager();
        let mut p = Archivist::default();
        let d = run_one(&mut p, &mut mgr, IoRequest::new(0, 1, 1, IoOp::Read));
        assert_eq!(d, DeviceId(1));
    }

    #[test]
    fn target_is_pinned_within_epoch() {
        let mut mgr = manager();
        let mut p = Archivist::new(ArchivistConfig {
            epoch_requests: 1_000,
            ..Default::default()
        });
        let first = run_one(&mut p, &mut mgr, IoRequest::new(0, 42, 1, IoOp::Read));
        for i in 1..50u64 {
            let again = run_one(&mut p, &mut mgr, IoRequest::new(i, 42, 1, IoOp::Write));
            assert_eq!(again, first, "placement changed mid-epoch at {i}");
        }
    }

    #[test]
    fn learns_to_separate_hot_from_cold_after_epochs() {
        let mut mgr = manager();
        let mut p = Archivist::new(ArchivistConfig {
            epoch_requests: 400,
            train_epochs: 5,
            ..Default::default()
        });
        // Two epochs of strongly bimodal traffic: pages 0..4 hammered with
        // small writes, pages 1000+ streamed once with large reads.
        let mut ts = 0u64;
        for _ in 0..2 {
            for i in 0..400u64 {
                let req = if i % 2 == 0 {
                    IoRequest::new(ts, i % 4, 1, IoOp::Write)
                } else {
                    IoRequest::new(ts, 1_000 + i * 8, 8, IoOp::Read)
                };
                let _ = run_one(&mut p, &mut mgr, req);
                ts += 1;
            }
        }
        // Third epoch: the classifier should send the hammered page fast
        // and the cold streaming page slow.
        let hot = run_one(&mut p, &mut mgr, IoRequest::new(ts, 0, 1, IoOp::Write));
        let cold = run_one(
            &mut p,
            &mut mgr,
            IoRequest::new(ts + 1, 50_000, 8, IoOp::Read),
        );
        assert_eq!(hot, DeviceId(0), "hot page misclassified");
        assert_eq!(cold, DeviceId(1), "cold page misclassified");
    }
}
