//! Cold-Data Eviction (CDE), after Matsui et al. (Proc. IEEE 2017),
//! reimplemented as described in the Sibyl paper's §3: "CDE allocates hot
//! or random write requests in the faster storage, whereas cold and
//! sequential write requests are evicted to the slower device."
//!
//! CDE is write-allocation-centric: reads are served wherever the data
//! lives (no promotion). Its two thresholds — what counts as *hot* and
//! what counts as *random* — are exactly the statically-tuned parameters
//! whose rigidity the paper criticizes (§3 (1b)).

use serde::{Deserialize, Serialize};

use sibyl_hss::{DeviceId, PlacementContext, PlacementPolicy};
use sibyl_trace::IoRequest;

/// Static tuning knobs for [`Cde`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdeConfig {
    /// A page with at least this many prior accesses is *hot*.
    pub hot_access_count: u64,
    /// A request with at most this many pages is *random* (the paper
    /// quantifies randomness by request size, §3).
    pub random_max_pages: u32,
}

impl Default for CdeConfig {
    fn default() -> Self {
        CdeConfig {
            hot_access_count: 4,
            random_max_pages: 4, // ≤ 16 KiB counts as random
        }
    }
}

/// The CDE heuristic baseline.
///
/// # Examples
///
/// ```
/// use sibyl_policies::Cde;
/// use sibyl_hss::PlacementPolicy;
/// assert_eq!(Cde::default().name(), "CDE");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cde {
    config: CdeConfig,
}

impl Cde {
    /// Creates CDE with explicit thresholds.
    pub fn new(config: CdeConfig) -> Self {
        Cde { config }
    }
}

impl PlacementPolicy for Cde {
    fn name(&self) -> &str {
        "CDE"
    }

    fn place(&mut self, req: &IoRequest, ctx: &PlacementContext<'_>) -> DeviceId {
        let mgr = ctx.manager;
        if req.op.is_write() {
            let hot = mgr.tracker().access_count(req.lpn) >= self.config.hot_access_count;
            let random = req.size_pages <= self.config.random_max_pages;
            if hot || random {
                mgr.fastest()
            } else {
                mgr.slowest()
            }
        } else {
            // Reads are served in place; never-seen pages default to slow.
            mgr.residency(req.lpn).unwrap_or_else(|| mgr.slowest())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::{DeviceSpec, HssConfig, StorageManager};
    use sibyl_trace::IoOp;

    fn manager() -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![1024, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn place(p: &mut Cde, mgr: &StorageManager, req: &IoRequest) -> DeviceId {
        let ctx = PlacementContext {
            manager: mgr,
            seq: 0,
        };
        p.place(req, &ctx)
    }

    #[test]
    fn small_random_write_goes_fast() {
        let mgr = manager();
        let mut p = Cde::default();
        let req = IoRequest::new(0, 100, 1, IoOp::Write);
        assert_eq!(place(&mut p, &mgr, &req), DeviceId(0));
    }

    #[test]
    fn large_cold_write_goes_slow() {
        let mgr = manager();
        let mut p = Cde::default();
        let req = IoRequest::new(0, 100, 32, IoOp::Write);
        assert_eq!(place(&mut p, &mgr, &req), DeviceId(1));
    }

    #[test]
    fn hot_large_write_goes_fast() {
        let mut mgr = manager();
        let mut p = Cde::default();
        // Touch page 100 enough times to cross the hot threshold.
        for i in 0..4u64 {
            let _ = mgr.access(&IoRequest::new(i, 100, 1, IoOp::Read), DeviceId(1));
        }
        let req = IoRequest::new(10, 100, 32, IoOp::Write);
        assert_eq!(place(&mut p, &mgr, &req), DeviceId(0));
    }

    #[test]
    fn reads_are_served_in_place() {
        let mut mgr = manager();
        let mut p = Cde::default();
        let _ = mgr.access(&IoRequest::new(0, 7, 1, IoOp::Write), DeviceId(0));
        let read = IoRequest::new(1, 7, 1, IoOp::Read);
        assert_eq!(place(&mut p, &mgr, &read), DeviceId(0));
        let unknown = IoRequest::new(2, 999, 1, IoOp::Read);
        assert_eq!(place(&mut p, &mgr, &unknown), DeviceId(1));
    }

    #[test]
    fn thresholds_are_configurable() {
        let mgr = manager();
        let mut p = Cde::new(CdeConfig {
            hot_access_count: 1,
            random_max_pages: 0, // nothing is "random"
        });
        // Cold (never accessed) non-random write -> slow.
        let req = IoRequest::new(0, 5, 1, IoOp::Write);
        assert_eq!(place(&mut p, &mgr, &req), DeviceId(1));
    }
}
