//! The Slow-Only and Fast-Only extreme baselines (§3, §7).

use sibyl_hss::{DeviceId, PlacementContext, PlacementPolicy};
use sibyl_trace::IoRequest;

/// Places every request on the slowest device — the "no fast storage"
/// lower bound.
///
/// # Examples
///
/// ```
/// use sibyl_policies::SlowOnly;
/// use sibyl_hss::PlacementPolicy;
/// let p = SlowOnly;
/// assert_eq!(p.name(), "Slow-Only");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SlowOnly;

impl PlacementPolicy for SlowOnly {
    fn name(&self) -> &str {
        "Slow-Only"
    }

    fn place(&mut self, _req: &IoRequest, ctx: &PlacementContext<'_>) -> DeviceId {
        ctx.manager.slowest()
    }
}

/// Places every request on the fastest device — the upper bound every
/// figure normalizes against. Run it with unlimited fast capacity
/// (`HssConfig::with_unlimited_capacities`), as the paper's Fast-Only has
/// the whole working set resident in fast storage.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastOnly;

impl PlacementPolicy for FastOnly {
    fn name(&self) -> &str {
        "Fast-Only"
    }

    fn place(&mut self, _req: &IoRequest, ctx: &PlacementContext<'_>) -> DeviceId {
        ctx.manager.fastest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::{DeviceSpec, HssConfig, StorageManager};
    use sibyl_trace::IoOp;

    fn ctx_manager() -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![16, u64::MAX]);
        StorageManager::new(&cfg)
    }

    #[test]
    fn slow_only_targets_last_device() {
        let mgr = ctx_manager();
        let mut p = SlowOnly;
        let req = IoRequest::new(0, 0, 1, IoOp::Write);
        let ctx = PlacementContext {
            manager: &mgr,
            seq: 0,
        };
        assert_eq!(p.place(&req, &ctx), DeviceId(1));
    }

    #[test]
    fn fast_only_targets_first_device() {
        let mgr = ctx_manager();
        let mut p = FastOnly;
        let req = IoRequest::new(0, 0, 1, IoOp::Read);
        let ctx = PlacementContext {
            manager: &mgr,
            seq: 0,
        };
        assert_eq!(p.place(&req, &ctx), DeviceId(0));
    }
}
