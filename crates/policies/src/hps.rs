//! History-based Page Selection (HPS), after Meswani et al. (HPCA 2015),
//! as described in the Sibyl paper's §3: "HPS uses the access count of
//! pages to periodically migrate cold pages to the slower storage
//! device."
//!
//! HPS divides time into fixed epochs. Pages whose access count in the
//! previous epoch reached a threshold form the *hot set*; requests to
//! hot-set pages are placed in fast storage and everything else is kept
//! in (or demoted to) slow storage. The epoch length and hot threshold
//! are design-time constants — the adaptivity gap the paper targets.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use sibyl_hss::{DeviceId, PlacementContext, PlacementPolicy};
use sibyl_trace::IoRequest;

/// Static tuning knobs for [`Hps`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HpsConfig {
    /// Requests per epoch.
    pub epoch_requests: u64,
    /// Accesses within one epoch for a page to join the next epoch's hot
    /// set.
    pub hot_threshold: u64,
}

impl Default for HpsConfig {
    fn default() -> Self {
        HpsConfig {
            epoch_requests: 2_000,
            hot_threshold: 2,
        }
    }
}

/// The HPS heuristic baseline.
///
/// # Examples
///
/// ```
/// use sibyl_policies::Hps;
/// use sibyl_hss::PlacementPolicy;
/// assert_eq!(Hps::default().name(), "HPS");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Hps {
    config: HpsConfig,
    /// Access counts accumulated in the current epoch.
    epoch_counts: HashMap<u64, u64>,
    /// Hot set computed at the last epoch boundary.
    hot_set: HashSet<u64>,
    requests_in_epoch: u64,
}

impl Hps {
    /// Creates HPS with explicit epoch length and hot threshold.
    pub fn new(config: HpsConfig) -> Self {
        Hps {
            config,
            ..Default::default()
        }
    }

    /// The number of pages currently considered hot.
    pub fn hot_set_len(&self) -> usize {
        self.hot_set.len()
    }

    fn roll_epoch(&mut self) {
        self.hot_set = self
            // sibyl-lint: allow(unordered-map-iteration) -- drains into a HashSet: membership is order-insensitive, no ordered output is produced
            .epoch_counts
            .drain()
            .filter(|&(_, c)| c >= self.config.hot_threshold)
            .map(|(p, _)| p)
            .collect();
        self.requests_in_epoch = 0;
    }
}

impl PlacementPolicy for Hps {
    fn name(&self) -> &str {
        "HPS"
    }

    fn place(&mut self, req: &IoRequest, ctx: &PlacementContext<'_>) -> DeviceId {
        if self.requests_in_epoch >= self.config.epoch_requests {
            self.roll_epoch();
        }
        self.requests_in_epoch += 1;
        for p in req.pages() {
            *self.epoch_counts.entry(p).or_insert(0) += 1;
        }
        if self.hot_set.contains(&req.lpn) {
            ctx.manager.fastest()
        } else {
            ctx.manager.slowest()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::{DeviceSpec, HssConfig, StorageManager};
    use sibyl_trace::IoOp;

    fn manager() -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![1024, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn place(p: &mut Hps, mgr: &StorageManager, req: &IoRequest) -> DeviceId {
        let ctx = PlacementContext {
            manager: mgr,
            seq: 0,
        };
        p.place(req, &ctx)
    }

    #[test]
    fn first_epoch_places_everything_slow() {
        let mgr = manager();
        let mut p = Hps::default();
        for i in 0..100u64 {
            let req = IoRequest::new(i, 5, 1, IoOp::Read);
            assert_eq!(place(&mut p, &mgr, &req), DeviceId(1));
        }
    }

    #[test]
    fn hot_pages_promote_after_epoch_boundary() {
        let mgr = manager();
        let mut p = Hps::new(HpsConfig {
            epoch_requests: 10,
            hot_threshold: 3,
        });
        // Epoch 1: page 7 accessed 5 times, page 8 once.
        for i in 0..10u64 {
            let lpn = if i < 5 { 7 } else { 8 + i };
            let _ = place(&mut p, &mgr, &IoRequest::new(i, lpn, 1, IoOp::Read));
        }
        // Epoch 2: page 7 is hot, page 8 is not.
        let hot = place(&mut p, &mgr, &IoRequest::new(20, 7, 1, IoOp::Read));
        assert_eq!(hot, DeviceId(0));
        let cold = place(&mut p, &mgr, &IoRequest::new(21, 8, 1, IoOp::Read));
        assert_eq!(cold, DeviceId(1));
        assert_eq!(p.hot_set_len(), 1);
    }

    #[test]
    fn hot_set_expires_when_page_cools() {
        let mgr = manager();
        let mut p = Hps::new(HpsConfig {
            epoch_requests: 4,
            hot_threshold: 2,
        });
        // Epoch 1: page 7 hot.
        for i in 0..4u64 {
            let _ = place(&mut p, &mgr, &IoRequest::new(i, 7, 1, IoOp::Read));
        }
        // Epoch 2: page 7 untouched; other pages dominate.
        for i in 4..8u64 {
            let _ = place(&mut p, &mgr, &IoRequest::new(i, 100 + i, 1, IoOp::Read));
        }
        // Epoch 3: page 7 no longer hot.
        let d = place(&mut p, &mgr, &IoRequest::new(9, 7, 1, IoOp::Read));
        assert_eq!(d, DeviceId(1));
    }
}
