//! # sibyl-policies
//!
//! The baseline data-placement policies the Sibyl paper compares against
//! (§3, §7), each implementing [`sibyl_hss::PlacementPolicy`]:
//!
//! - [`SlowOnly`] / [`FastOnly`] — the extreme bounds (all data on the
//!   slow / fast device).
//! - [`Cde`] — Cold-Data Eviction (Matsui et al.): hot or random write
//!   requests go to fast storage; cold and sequential ones to slow.
//! - [`Hps`] — History-based Page Selection (Meswani et al.): per-epoch
//!   access counts decide a hot set that lives in fast storage.
//! - [`Archivist`] — a supervised neural-network classifier (Ren et al.)
//!   that pins each page's target device for a whole epoch, with no
//!   promotion or eviction of its own.
//! - [`RnnHss`] — an RNN hotness predictor adapted from Kleio (Doudali et
//!   al.): offline profiling phase, then per-page hot/cold classification.
//! - [`Oracle`] — complete future knowledge (placement by next-use
//!   distance, Belady eviction).
//! - [`TriHybridHeuristic`] — the hot/cold/frozen three-device heuristic
//!   (Matsui et al. \[76\]) used as the tri-HSS baseline in §8.7.
//!
//! None of these baselines consume system feedback (latency/evictions);
//! that gap is exactly what the paper's RL formulation closes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod archivist;
mod cde;
mod extremes;
mod hps;
mod oracle;
mod rnn_hss;
mod tri_hybrid;

pub use archivist::{Archivist, ArchivistConfig};
pub use cde::{Cde, CdeConfig};
pub use extremes::{FastOnly, SlowOnly};
pub use hps::{Hps, HpsConfig};
pub use oracle::{Oracle, OracleConfig};
pub use rnn_hss::{RnnHss, RnnHssConfig};
pub use tri_hybrid::{TriHybridConfig, TriHybridHeuristic};
