//! The Oracle baseline (§7, after Meswani et al. [113]): "exploits
//! complete knowledge of future I/O-access patterns to perform data
//! placement and to select victim data blocks for eviction from the fast
//! device."
//!
//! Placement is Belady-style: a request's pages go to the fastest device
//! whose *reuse horizon* covers the page's next future access; pages that
//! will not be reused soon go straight to slower storage. Eviction uses
//! the farthest-next-use selector ([`sibyl_hss::OracleVictim`]). The
//! paper uses the Oracle as the ceiling every policy is measured against
//! (Sibyl reaches ~80 % of it, §8.1).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sibyl_hss::{
    DeviceId, NextUseIndex, OracleVictim, PlacementContext, PlacementPolicy, VictimPolicy,
};
use sibyl_trace::{IoRequest, Trace};

/// Tuning for [`Oracle`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Scales the reuse horizon for *read* requests: a read's pages are
    /// promoted to device `d` only when the next use arrives within
    /// `horizon_scale × capacity(d) / avg_request_pages` future requests
    /// (promotion has no immediate benefit, only future hits).
    pub horizon_scale: f64,
    /// Scales the horizon for *write* requests. Writes benefit from fast
    /// placement immediately (the write itself is served faster), so the
    /// Oracle is more aggressive with them.
    pub write_horizon_scale: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            horizon_scale: 4.0,
            write_horizon_scale: 24.0,
        }
    }
}

/// The future-knowledge Oracle baseline.
///
/// # Examples
///
/// ```
/// use sibyl_policies::Oracle;
/// use sibyl_hss::PlacementPolicy;
/// assert_eq!(Oracle::default().name(), "Oracle");
/// ```
#[derive(Debug, Default)]
pub struct Oracle {
    config: OracleConfig,
    future: Option<Arc<NextUseIndex>>,
    num_devices: usize,
    /// Average request size (pages) over the trace, used to convert
    /// page-denominated capacities into request-denominated horizons.
    avg_request_pages: f64,
}

impl Oracle {
    /// Creates an Oracle with explicit horizon scaling.
    pub fn new(config: OracleConfig) -> Self {
        Oracle {
            config,
            future: None,
            num_devices: 0,
            avg_request_pages: 1.0,
        }
    }
}

impl PlacementPolicy for Oracle {
    fn name(&self) -> &str {
        "Oracle"
    }

    fn prepare(&mut self, num_devices: usize, trace: &Trace) {
        self.future = Some(Arc::new(NextUseIndex::build(trace)));
        self.num_devices = num_devices;
        let total_pages: u64 = trace.iter().map(|r| r.size_pages as u64).sum();
        self.avg_request_pages = (total_pages as f64 / trace.len().max(1) as f64).max(1.0);
    }

    fn victim_policy(&self) -> Option<Box<dyn VictimPolicy + Send>> {
        let future = self.future.as_ref()?;
        Some(Box::new(OracleVictim::new(
            self.num_devices.max(2),
            Arc::clone(future),
        )))
    }

    /// The Oracle *knows* a slow-targeted read's page will not be reused
    /// within the fast device's horizon, so moving it out is a free,
    /// deliberate cleanup — not an under-trained guess.
    fn wants_read_demotion(&self) -> bool {
        true
    }

    fn place(&mut self, req: &IoRequest, ctx: &PlacementContext<'_>) -> DeviceId {
        let future = self
            .future
            .as_ref()
            // sibyl-lint: allow(unwrap-in-lib) -- documented precondition: prepare() must run before place(); policy-harness bug otherwise
            .expect("Oracle::place called before prepare()");
        let next = future.next_use_after(req.lpn, ctx.seq);
        if next == u64::MAX {
            // Never used again: nothing to gain from fast placement.
            return ctx.manager.slowest();
        }
        let distance = next - ctx.seq;
        let scale = if req.op.is_write() {
            self.config.write_horizon_scale
        } else {
            self.config.horizon_scale
        };
        // Fastest device whose horizon covers the reuse distance. A
        // device holding `cap` pages retains a page for roughly
        // `cap / avg_request_pages` requests before LRU pressure evicts
        // it — the Belady-style cache-worthiness test.
        let n = ctx.manager.num_devices();
        for d in 0..n - 1 {
            let cap = ctx.manager.capacity(DeviceId(d));
            if cap == u64::MAX {
                return DeviceId(d);
            }
            let horizon = (cap as f64 / self.avg_request_pages * scale) as u64;
            if distance <= horizon {
                return DeviceId(d);
            }
        }
        ctx.manager.slowest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::{DeviceSpec, HssConfig, StorageManager};
    use sibyl_trace::IoOp;

    fn manager(fast_pages: u64) -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![fast_pages, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn trace(lpns: &[u64]) -> Trace {
        Trace::from_requests(
            "o",
            lpns.iter()
                .enumerate()
                .map(|(i, &l)| IoRequest::new(i as u64, l, 1, IoOp::Read))
                .collect(),
        )
    }

    #[test]
    fn soon_reused_pages_go_fast() {
        // Page 5 reused immediately; page 9 never again.
        let t = trace(&[5, 5, 9]);
        let mut o = Oracle::default();
        o.prepare(2, &t);
        let mgr = manager(100);
        let ctx = PlacementContext {
            manager: &mgr,
            seq: 0,
        };
        assert_eq!(o.place(&t.requests()[0], &ctx), DeviceId(0));
        let ctx = PlacementContext {
            manager: &mgr,
            seq: 2,
        };
        assert_eq!(o.place(&t.requests()[2], &ctx), DeviceId(1));
    }

    #[test]
    fn horizon_respects_fast_capacity() {
        // Page 5's next reuse is 50 requests away; fast capacity is 10
        // pages, so the reuse distance exceeds the horizon.
        let mut lpns = vec![5u64];
        lpns.extend(1_000..1_049);
        lpns.push(5);
        let t = trace(&lpns);
        let mut o = Oracle::default();
        o.prepare(2, &t);
        let mgr = manager(10);
        let ctx = PlacementContext {
            manager: &mgr,
            seq: 0,
        };
        assert_eq!(o.place(&t.requests()[0], &ctx), DeviceId(1));
        // With a generous horizon it flips to fast.
        let mut o2 = Oracle::new(OracleConfig {
            horizon_scale: 10.0,
            write_horizon_scale: 10.0,
        });
        o2.prepare(2, &t);
        let ctx = PlacementContext {
            manager: &mgr,
            seq: 0,
        };
        assert_eq!(o2.place(&t.requests()[0], &ctx), DeviceId(0));
    }

    #[test]
    fn provides_belady_victim_policy_after_prepare() {
        let t = trace(&[1, 2, 1]);
        let mut o = Oracle::default();
        assert!(
            o.victim_policy().is_none(),
            "no victim policy before prepare"
        );
        o.prepare(2, &t);
        assert!(o.victim_policy().is_some());
    }

    #[test]
    #[should_panic(expected = "before prepare")]
    fn place_without_prepare_panics() {
        let mut o = Oracle::default();
        let mgr = manager(10);
        let ctx = PlacementContext {
            manager: &mgr,
            seq: 0,
        };
        let req = IoRequest::new(0, 0, 1, IoOp::Read);
        let _ = o.place(&req, &ctx);
    }
}
