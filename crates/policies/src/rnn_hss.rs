//! RNN-HSS, adapted from Kleio (Doudali et al., HPDC 2019) the way the
//! Sibyl paper does (§3, §7): "a supervised learning-based mechanism that
//! exploits recurrent neural networks to predict the hotness of a page and
//! place hot pages in fast storage."
//!
//! Kleio trains one RNN per page, which the paper calls impractical; like
//! the paper's adaptation we train a single small Elman RNN over per-page
//! access-history windows. The pipeline is deliberately *offline*: an
//! initial profiling phase collects windowed access counts, the RNN is
//! trained once on that profile, and the frozen model classifies pages
//! hot/cold for the rest of the run — no system feedback, no retraining,
//! which is exactly the adaptivity gap Sibyl exploits.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sibyl_hss::{DeviceId, PlacementContext, PlacementPolicy};
use sibyl_nn::Rnn;
use sibyl_trace::IoRequest;

/// Static tuning knobs for [`RnnHss`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RnnHssConfig {
    /// Requests in the offline profiling phase.
    pub profile_requests: u64,
    /// Requests per history window.
    pub window_requests: u64,
    /// History windows fed to the RNN per prediction.
    pub history_windows: usize,
    /// Per-window access count for a page to be labeled hot.
    pub hot_threshold: u64,
    /// Hidden-state width of the RNN.
    pub hidden_dim: usize,
    /// Training passes over the profile.
    pub train_epochs: usize,
    /// Training examples sampled from the profile (caps training cost).
    pub max_examples: usize,
    /// Learning rate for BPTT.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RnnHssConfig {
    fn default() -> Self {
        RnnHssConfig {
            profile_requests: 4_000,
            window_requests: 250,
            history_windows: 6,
            hot_threshold: 2,
            hidden_dim: 10,
            train_epochs: 4,
            max_examples: 2_000,
            learning_rate: 0.05,
            seed: 0x12EE,
        }
    }
}

/// Sparse per-page window history: (window index, access count) pairs for
/// the most recent touched windows.
#[derive(Debug, Clone, Default)]
struct PageHistory {
    entries: Vec<(u64, u32)>,
}

impl PageHistory {
    fn touch(&mut self, window: u64, keep: usize) {
        match self.entries.last_mut() {
            Some((w, c)) if *w == window => *c += 1,
            _ => {
                self.entries.push((window, 1));
                if self.entries.len() > keep {
                    self.entries.remove(0);
                }
            }
        }
    }

    /// Densifies the last `k` windows ending at `window` (exclusive),
    /// filling untouched windows with zero.
    fn sequence(&self, window: u64, k: usize) -> Vec<Vec<f32>> {
        let mut seq = Vec::with_capacity(k);
        for i in 0..k {
            let w = window.saturating_sub((k - i) as u64);
            let count = self
                .entries
                .iter()
                .find(|&&(ew, _)| ew == w)
                .map(|&(_, c)| c)
                .unwrap_or(0);
            seq.push(vec![
                ((1 + count) as f32).ln() / 4.0,
                if count > 0 { 1.0 } else { 0.0 },
            ]);
        }
        seq
    }

    fn count_in(&self, window: u64) -> u32 {
        self.entries
            .iter()
            .find(|&&(w, _)| w == window)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }
}

/// The RNN-HSS supervised baseline.
///
/// # Examples
///
/// ```
/// use sibyl_policies::RnnHss;
/// use sibyl_hss::PlacementPolicy;
/// assert_eq!(RnnHss::default().name(), "RNN-HSS");
/// ```
#[derive(Debug)]
pub struct RnnHss {
    config: RnnHssConfig,
    rnn: Rnn,
    rng: StdRng,
    histories: HashMap<u64, PageHistory>,
    requests_seen: u64,
    trained: bool,
}

impl Default for RnnHss {
    fn default() -> Self {
        RnnHss::new(RnnHssConfig::default())
    }
}

impl RnnHss {
    /// Creates RNN-HSS with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `history_windows` is zero.
    pub fn new(config: RnnHssConfig) -> Self {
        assert!(
            config.history_windows > 0,
            "RnnHss: history_windows must be >= 1"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let rnn = Rnn::new(2, config.hidden_dim, 2, &mut rng);
        RnnHss {
            config,
            rnn,
            rng,
            histories: HashMap::new(),
            requests_seen: 0,
            trained: false,
        }
    }

    /// `true` once the offline profiling phase has finished and the RNN
    /// was trained.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    fn current_window(&self) -> u64 {
        self.requests_seen / self.config.window_requests
    }

    /// One-shot offline training on the collected profile.
    fn train_offline(&mut self) {
        let k = self.config.history_windows;
        let label_window = self.current_window().saturating_sub(1);
        let mut examples: Vec<(Vec<Vec<f32>>, bool)> = Vec::new();
        // Build examples in LPN order: `histories` is a HashMap, and its
        // iteration order differs across runs, which would feed the RNN a
        // run-dependent example sequence and break bit-reproducibility.
        let mut lpns: Vec<u64> = self.histories.keys().copied().collect();
        lpns.sort_unstable();
        for lpn in lpns {
            let Some(hist) = self.histories.get(&lpn) else {
                continue;
            };
            if hist.entries.is_empty() {
                continue;
            }
            let seq = hist.sequence(label_window, k);
            let hot = hist.count_in(label_window) >= self.config.hot_threshold as u32;
            examples.push((seq, hot));
        }
        // Balance classes so the (typically dominant) cold class does not
        // swamp training: oversample the minority class to parity.
        let hot_count = examples.iter().filter(|(_, h)| *h).count();
        if hot_count == 0 || hot_count == examples.len() {
            self.trained = true; // degenerate profile; classify by prior
            return;
        }
        examples.shuffle(&mut self.rng);
        examples.truncate(self.config.max_examples);
        let (hot, cold): (Vec<_>, Vec<_>) = examples.iter().cloned().partition(|(_, h)| *h);
        let (minority, majority) = if hot.len() < cold.len() {
            (hot, cold)
        } else {
            (cold, hot)
        };
        if !minority.is_empty() {
            let deficit = majority.len().saturating_sub(minority.len());
            for i in 0..deficit {
                examples.push(minority[i % minority.len()].clone());
            }
        }
        for _ in 0..self.config.train_epochs {
            examples.shuffle(&mut self.rng);
            for (seq, hot) in &examples {
                let target = if *hot { [1.0f32, 0.0] } else { [0.0f32, 1.0] };
                let _ = self.rnn.train_step(seq, &target, self.config.learning_rate);
            }
        }
        self.trained = true;
    }
}

impl PlacementPolicy for RnnHss {
    fn name(&self) -> &str {
        "RNN-HSS"
    }

    fn place(&mut self, req: &IoRequest, ctx: &PlacementContext<'_>) -> DeviceId {
        let window = self.current_window();
        self.requests_seen += 1;
        let keep = self.config.history_windows + 2;
        self.histories
            .entry(req.lpn)
            .or_default()
            .touch(window, keep);

        if !self.trained {
            if self.requests_seen >= self.config.profile_requests {
                self.train_offline();
            }
            // During profiling everything stays in slow storage (Kleio
            // profiles the application offline before placement).
            return ctx.manager.slowest();
        }

        let seq = self
            .histories
            .get(&req.lpn)
            .map(|h| h.sequence(window + 1, self.config.history_windows))
            .unwrap_or_else(|| vec![vec![0.0, 0.0]; self.config.history_windows]);
        if self.rnn.classify(&seq) == 0 {
            ctx.manager.fastest()
        } else {
            ctx.manager.slowest()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::{DeviceSpec, HssConfig, StorageManager};
    use sibyl_trace::IoOp;

    fn manager() -> StorageManager {
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![1024, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn small_config() -> RnnHssConfig {
        RnnHssConfig {
            profile_requests: 600,
            window_requests: 100,
            history_windows: 4,
            hot_threshold: 2,
            train_epochs: 6,
            ..Default::default()
        }
    }

    fn run_one(p: &mut RnnHss, mgr: &mut StorageManager, req: IoRequest) -> DeviceId {
        let target = {
            let ctx = PlacementContext {
                manager: mgr,
                seq: 0,
            };
            p.place(&req, &ctx)
        };
        let _ = mgr.access(&req, target);
        target
    }

    #[test]
    fn profiling_phase_places_slow() {
        let mut mgr = manager();
        let mut p = RnnHss::new(small_config());
        for i in 0..100u64 {
            let d = run_one(&mut p, &mut mgr, IoRequest::new(i, i % 3, 1, IoOp::Read));
            assert_eq!(d, DeviceId(1));
        }
        assert!(!p.is_trained());
    }

    #[test]
    fn trains_after_profile_and_separates_hot_cold() {
        let mut mgr = manager();
        let mut p = RnnHss::new(small_config());
        // Profile: pages 0..3 hot every window; pages 1000+ touched once.
        let mut ts = 0u64;
        for i in 0..600u64 {
            let req = if i % 2 == 0 {
                IoRequest::new(ts, i % 3, 1, IoOp::Write)
            } else {
                IoRequest::new(ts, 1_000 + i, 1, IoOp::Read)
            };
            let _ = run_one(&mut p, &mut mgr, req);
            ts += 1;
        }
        assert!(p.is_trained());
        // Keep the hot pages hot for a couple more windows, then check.
        for i in 0..300u64 {
            let req = if i % 2 == 0 {
                IoRequest::new(ts, i % 3, 1, IoOp::Write)
            } else {
                IoRequest::new(ts, 5_000 + i, 1, IoOp::Read)
            };
            let _ = run_one(&mut p, &mut mgr, req);
            ts += 1;
        }
        let hot = run_one(&mut p, &mut mgr, IoRequest::new(ts, 0, 1, IoOp::Write));
        let cold = run_one(
            &mut p,
            &mut mgr,
            IoRequest::new(ts + 1, 99_999, 1, IoOp::Read),
        );
        assert_eq!(hot, DeviceId(0), "hot page should go fast");
        assert_eq!(cold, DeviceId(1), "cold page should go slow");
    }

    #[test]
    fn page_history_sequence_fills_gaps_with_zeros() {
        let mut h = PageHistory::default();
        h.touch(0, 8);
        h.touch(0, 8);
        h.touch(3, 8);
        let seq = h.sequence(4, 4);
        assert_eq!(seq.len(), 4);
        // Windows 0..4: [2 accesses, 0, 0, 1 access]
        assert!(seq[0][1] > 0.0);
        assert_eq!(seq[1][1], 0.0);
        assert_eq!(seq[2][1], 0.0);
        assert!(seq[3][1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "history_windows must be >= 1")]
    fn rejects_zero_windows() {
        let cfg = RnnHssConfig {
            history_windows: 0,
            ..Default::default()
        };
        let _ = RnnHss::new(cfg);
    }
}
