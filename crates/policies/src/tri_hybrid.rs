//! The tri-hybrid heuristic baseline (§8.7), after Matsui et al. [76]:
//! "divides pages into hot, cold, and frozen data and allocates these
//! pages to H, M, and L devices, respectively. A system architect needs to
//! statically define the hotness values and explicitly handle the eviction
//! and promotion between the three devices during design-time."
//!
//! The static thresholds below are exactly the kind of design-time
//! commitment the paper criticizes: they cannot react to device or
//! workload changes, which is why Sibyl beats this policy by 23.9–48.2 %.

use serde::{Deserialize, Serialize};

use sibyl_hss::{DeviceId, PlacementContext, PlacementPolicy};
use sibyl_trace::IoRequest;

/// Static hotness thresholds for [`TriHybridHeuristic`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriHybridConfig {
    /// Access count at or above which a page is *hot* → H (device 0).
    pub hot_access_count: u64,
    /// Access count at or above which a page is *cold* (but not frozen)
    /// → M (device 1). Below this the page is *frozen* → L.
    pub cold_access_count: u64,
    /// Writes of at most this many pages count as random and are bumped
    /// one tier up (CDE lineage: the policy is "based on the CDE policy").
    pub random_max_pages: u32,
}

impl Default for TriHybridConfig {
    fn default() -> Self {
        TriHybridConfig {
            hot_access_count: 8,
            cold_access_count: 2,
            random_max_pages: 2,
        }
    }
}

/// The hot/cold/frozen three-device heuristic.
///
/// # Examples
///
/// ```
/// use sibyl_policies::TriHybridHeuristic;
/// use sibyl_hss::PlacementPolicy;
/// assert_eq!(TriHybridHeuristic::default().name(), "Heuristic-Tri-Hybrid");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TriHybridHeuristic {
    config: TriHybridConfig,
}

impl TriHybridHeuristic {
    /// Creates the heuristic with explicit thresholds.
    pub fn new(config: TriHybridConfig) -> Self {
        TriHybridHeuristic { config }
    }
}

impl PlacementPolicy for TriHybridHeuristic {
    fn name(&self) -> &str {
        "Heuristic-Tri-Hybrid"
    }

    fn place(&mut self, req: &IoRequest, ctx: &PlacementContext<'_>) -> DeviceId {
        let mgr = ctx.manager;
        let n = mgr.num_devices();
        let count = mgr.tracker().access_count(req.lpn);
        // Tier by hotness: 0 = hot, 1 = cold, 2 = frozen.
        let mut tier = if count >= self.config.hot_access_count {
            0usize
        } else if count >= self.config.cold_access_count {
            1
        } else {
            2
        };
        // Random writes are bumped one tier up (CDE heritage).
        if req.op.is_write() && req.size_pages <= self.config.random_max_pages && tier > 0 {
            tier -= 1;
        }
        DeviceId(tier.min(n - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::{DeviceSpec, HssConfig, StorageManager};
    use sibyl_trace::IoOp;

    fn tri_manager() -> StorageManager {
        let cfg = HssConfig::tri(
            DeviceSpec::optane_ssd(),
            DeviceSpec::tlc_ssd(),
            DeviceSpec::hdd(),
        )
        .with_capacity_pages(vec![64, 128, u64::MAX]);
        StorageManager::new(&cfg)
    }

    fn place(p: &mut TriHybridHeuristic, mgr: &StorageManager, req: &IoRequest) -> DeviceId {
        let ctx = PlacementContext {
            manager: mgr,
            seq: 0,
        };
        p.place(req, &ctx)
    }

    #[test]
    fn frozen_pages_go_to_l() {
        let mgr = tri_manager();
        let mut p = TriHybridHeuristic::default();
        let req = IoRequest::new(0, 500, 8, IoOp::Read);
        assert_eq!(place(&mut p, &mgr, &req), DeviceId(2));
    }

    #[test]
    fn warm_pages_go_to_m_hot_pages_to_h() {
        let mut mgr = tri_manager();
        let mut p = TriHybridHeuristic::default();
        // 3 accesses -> cold tier (M).
        for i in 0..3u64 {
            let _ = mgr.access(&IoRequest::new(i, 9, 1, IoOp::Read), DeviceId(2));
        }
        let req = IoRequest::new(10, 9, 8, IoOp::Read);
        assert_eq!(place(&mut p, &mgr, &req), DeviceId(1));
        // 8+ accesses -> hot tier (H).
        for i in 3..9u64 {
            let _ = mgr.access(&IoRequest::new(i, 9, 1, IoOp::Read), DeviceId(2));
        }
        let req = IoRequest::new(20, 9, 8, IoOp::Read);
        assert_eq!(place(&mut p, &mgr, &req), DeviceId(0));
    }

    #[test]
    fn random_write_bumps_one_tier() {
        let mgr = tri_manager();
        let mut p = TriHybridHeuristic::default();
        // Frozen page, but a small random write -> M instead of L.
        let req = IoRequest::new(0, 77, 1, IoOp::Write);
        assert_eq!(place(&mut p, &mgr, &req), DeviceId(1));
        // Large write stays frozen.
        let req = IoRequest::new(1, 88, 16, IoOp::Write);
        assert_eq!(place(&mut p, &mgr, &req), DeviceId(2));
    }

    #[test]
    fn degrades_gracefully_on_dual_hss() {
        // On a 2-device system the frozen tier clamps to the slow device.
        let cfg = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::hdd())
            .with_capacity_pages(vec![64, u64::MAX]);
        let mgr = StorageManager::new(&cfg);
        let mut p = TriHybridHeuristic::default();
        let req = IoRequest::new(0, 500, 8, IoOp::Read);
        assert_eq!(place(&mut p, &mgr, &req), DeviceId(1));
    }
}
