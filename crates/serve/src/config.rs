//! Configuration of the sharded serving engine.

use sibyl_core::SibylConfig;
use sibyl_hss::HssConfig;

/// Configuration of a sharded serving run: how many worker shards to
/// spawn, how deep each shard's inference batches may grow, and the
/// per-shard storage and agent configurations.
///
/// Every shard owns a private [`sibyl_hss::StorageManager`] (its own
/// devices) plus a private [`sibyl_core::SibylAgent`] seeded from
/// [`SibylConfig::seed`] and the shard index, so an `N`-shard engine
/// models a scale-out deployment of `N` independent hybrid-storage nodes,
/// each serving its own partition of the LBA regions (see
/// [`crate::shard_of`] for the boundary-straddle caveat).
///
/// # Examples
///
/// ```
/// use sibyl_hss::{DeviceSpec, HssConfig};
/// use sibyl_serve::ServeConfig;
///
/// let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
/// let cfg = ServeConfig::new(hss).with_shards(4).with_max_batch(64);
/// assert_eq!(cfg.shards, 4);
/// cfg.validate();
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards; requests are routed by LBA hash. Default: 4.
    pub shards: usize,
    /// Maximum requests drained into one batched-inference decision.
    /// Default: 32. A shard blocks until its batch is full or the trace
    /// is exhausted, so batch boundaries — and therefore results — are
    /// deterministic regardless of thread scheduling.
    pub max_batch: usize,
    /// Capacity of each shard's bounded request channel (router
    /// backpressure). Default: 1024.
    pub queue_capacity: usize,
    /// Trace-replay time compression, as in the sim crate's
    /// `Experiment::with_time_scale`: every timestamp is divided by this
    /// factor, putting the system in the device-bound regime where
    /// throughput differentiates. Default: 1.0 (no compression).
    pub time_scale: f64,
    /// The hybrid-storage configuration instantiated per shard. Fraction
    /// capacities resolve against each shard's own footprint.
    pub hss: HssConfig,
    /// The agent configuration instantiated per shard (the seed is
    /// perturbed per shard).
    pub sibyl: SibylConfig,
}

impl ServeConfig {
    /// Creates a serving configuration with default sharding (4 shards,
    /// batches of up to 32) over the given storage configuration and the
    /// paper's default agent hyper-parameters.
    pub fn new(hss: HssConfig) -> Self {
        ServeConfig {
            shards: 4,
            max_batch: 32,
            queue_capacity: 1024,
            time_scale: 1.0,
            hss,
            sibyl: SibylConfig::default(),
        }
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the maximum inference batch size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the per-shard request-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the replay time compression (>1 compresses think time).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "time scale must be positive"
        );
        self.time_scale = scale;
        self
    }

    /// Replaces the per-shard agent configuration.
    pub fn with_sibyl(mut self, sibyl: SibylConfig) -> Self {
        self.sibyl = sibyl;
        self
    }

    /// The agent seed for one shard: the base seed perturbed by the shard
    /// index so shards explore independently while staying reproducible.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        self.sibyl
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1))
    }

    /// Validates ranges (including the embedded agent configuration).
    ///
    /// # Panics
    ///
    /// Panics if any knob is outside its documented range.
    pub fn validate(&self) {
        assert!(self.shards > 0, "ServeConfig: shards must be positive");
        assert!(
            self.max_batch > 0,
            "ServeConfig: max_batch must be positive"
        );
        assert!(
            self.queue_capacity > 0,
            "ServeConfig: queue_capacity must be positive"
        );
        assert!(
            self.time_scale.is_finite() && self.time_scale > 0.0,
            "ServeConfig: time_scale must be positive"
        );
        self.sibyl.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::DeviceSpec;

    fn hss() -> HssConfig {
        HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd())
    }

    #[test]
    fn defaults_are_valid() {
        let cfg = ServeConfig::new(hss());
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.max_batch, 32);
        cfg.validate();
    }

    #[test]
    fn builders_apply() {
        let cfg = ServeConfig::new(hss())
            .with_shards(8)
            .with_max_batch(4)
            .with_queue_capacity(64)
            .with_time_scale(40.0);
        assert_eq!(cfg.shards, 8);
        assert_eq!(cfg.max_batch, 4);
        assert_eq!(cfg.queue_capacity, 64);
        assert_eq!(cfg.time_scale, 40.0);
        cfg.validate();
    }

    #[test]
    fn shard_seeds_differ_but_are_stable() {
        let cfg = ServeConfig::new(hss());
        assert_ne!(cfg.shard_seed(0), cfg.shard_seed(1));
        assert_eq!(cfg.shard_seed(3), cfg.shard_seed(3));
    }

    #[test]
    #[should_panic(expected = "shards must be positive")]
    fn zero_shards_rejected() {
        ServeConfig::new(hss()).with_shards(0).validate();
    }

    #[test]
    #[should_panic(expected = "max_batch must be positive")]
    fn zero_batch_rejected() {
        ServeConfig::new(hss()).with_max_batch(0).validate();
    }
}
