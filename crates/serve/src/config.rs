//! Configuration of the sharded serving engine.

use sibyl_coop::CoopConfig;
use sibyl_core::{QuantMode, SibylConfig, TrainingMode};
use sibyl_hss::HssConfig;
use sibyl_migrate::MigrateConfig;
use sibyl_telemetry::TelemetryConfig;
use sibyl_xray::XrayConfig;

use crate::engine::ServeError;

/// How each batch's placement-decision compute is billed by the §10
/// overhead model.
///
/// The default, [`DecideCost::PerMac`], is the original analytic model:
/// one forward pass of `inference_macs ×
/// [`nn_ns_per_mac`](ServeConfig::nn_ns_per_mac)` per batch, amortized
/// over the batch's requests (free when `nn_ns_per_mac` is 0 — exactly
/// the pre-fit engine, bit for bit).
///
/// [`DecideCost::TwoTerm`] instead bills the *measured* shape of the
/// batched decide path: `sibyl-bench`'s `sec10_overhead` sweep times
/// `place_batch` across batch sizes and fits `setup_us + per_row_us ×
/// rows` to the medians, and this variant replays that fit inside the
/// simulation — so the modeled bill carries the real kernels' fixed
/// per-batch setup (feature encoding, dispatch) on top of the per-row
/// stream, rather than assuming pure MAC proportionality. The fit is in
/// microseconds and does not scale with `nn_ns_per_mac`; training is
/// still billed through the MAC rate (the fit only measures inference).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DecideCost {
    /// MAC-proportional forward pass per batch (the default; exactly the
    /// model the engine used before the calibrated fit existed).
    #[default]
    PerMac,
    /// A calibrated two-term fit: each batch of `n` requests is billed
    /// `setup_us + per_row_us × n` microseconds, amortized over the
    /// batch. Produce one with `sibyl-bench`'s `TwoTermFit::decide_cost`.
    TwoTerm {
        /// Fixed per-batch setup cost in microseconds.
        setup_us: f64,
        /// Marginal cost per batched request in microseconds.
        per_row_us: f64,
    },
}

impl DecideCost {
    /// The modeled decide bill for one batch of `rows` requests, in
    /// microseconds. `macs` and `ns_per_mac` feed the [`PerMac`]
    /// (analytic) variant only.
    ///
    /// [`PerMac`]: DecideCost::PerMac
    pub fn batch_us(&self, macs: Option<usize>, ns_per_mac: f64, rows: usize) -> f64 {
        match *self {
            DecideCost::PerMac => {
                if ns_per_mac > 0.0 {
                    macs.map_or(0.0, |macs| macs as f64 * ns_per_mac / 1_000.0)
                } else {
                    0.0
                }
            }
            DecideCost::TwoTerm {
                setup_us,
                per_row_us,
            } => setup_us + per_row_us * rows as f64,
        }
    }

    /// True when the fit's terms are finite and non-negative (trivially
    /// true for [`DecideCost::PerMac`]).
    pub fn is_valid(&self) -> bool {
        match *self {
            DecideCost::PerMac => true,
            DecideCost::TwoTerm {
                setup_us,
                per_row_us,
            } => {
                setup_us.is_finite()
                    && setup_us >= 0.0
                    && per_row_us.is_finite()
                    && per_row_us >= 0.0
            }
        }
    }
}

/// Configuration of a sharded serving run: how many worker shards to
/// spawn, how deep each shard's inference batches may grow, how (and
/// whether) shard agents cooperate, and the per-shard storage and agent
/// configurations.
///
/// Every shard owns a private [`sibyl_hss::StorageManager`] (its own
/// devices) plus a private [`sibyl_core::SibylAgent`] seeded from
/// [`SibylConfig::seed`] and the shard index, so an `N`-shard engine
/// models a scale-out deployment of `N` hybrid-storage nodes, each
/// serving its own partition of the LBA regions (see [`crate::shard_of`]
/// for the boundary-straddle caveat). With a cooperative
/// [`CoopConfig::mode`] the nodes additionally exchange experiences
/// and/or federated-averaged weights at deterministic sync rounds.
///
/// # Examples
///
/// ```
/// use sibyl_hss::{DeviceSpec, HssConfig};
/// use sibyl_serve::ServeConfig;
///
/// let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
/// let cfg = ServeConfig::new(hss).with_shards(4).with_max_batch(64);
/// assert_eq!(cfg.shards, 4);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards; requests are routed by LBA hash. Default: 4.
    pub shards: usize,
    /// Maximum requests drained into one batched-inference decision.
    /// Default: 32. A shard blocks until its batch is full or the trace
    /// is exhausted, so batch boundaries — and therefore results — are
    /// deterministic regardless of thread scheduling.
    pub max_batch: usize,
    /// Capacity of each shard's bounded request channel (router
    /// backpressure). Default: 1024. Ignored under a cooperative
    /// [`CoopConfig::mode`]: sync barriers must never backpressure the
    /// router (a full queue behind a barrier-parked shard would deadlock
    /// the run), so cooperative runs use unbounded queues.
    pub queue_capacity: usize,
    /// Trace-replay time compression, as in the sim crate's
    /// `Experiment::with_time_scale`: every timestamp is divided by this
    /// factor, putting the system in the device-bound regime where
    /// throughput differentiates. Default: 1.0 (no compression).
    pub time_scale: f64,
    /// Simulated NN-inference cost in nanoseconds per multiply-accumulate
    /// (the §10 overhead model). When positive, each batch is charged one
    /// forward pass — `inference_macs × nn_ns_per_mac` — amortized over
    /// the batch: batched inference streams the weight matrices once per
    /// *batch*, so the per-request placement-decision delay shrinks as
    /// batches grow, and serve metrics show the batching win in latency
    /// rather than IOPS alone. The delay holds back device dispatch and
    /// counts toward each request's reported latency
    /// (`StorageManager::access_after`); it is not compressed by
    /// [`ServeConfig::time_scale`] (thinking time compresses; compute
    /// does not). Training is billed through the same rate: each train
    /// step charges `batches_per_step` batched forward+backward weight
    /// streams, delaying the shard's next batch (§10 charges training to
    /// request latency too; see [`crate::ShardReport::train_busy_us`]).
    /// Default: 0.0 (NN compute is free, as before the overhead model
    /// was coupled in).
    pub nn_ns_per_mac: f64,
    /// Which model prices the per-batch decide bill: the analytic
    /// MAC-proportional default, or a [`DecideCost::TwoTerm`] fit
    /// calibrated from measured kernel timings (see [`DecideCost`]).
    /// Training cost always goes through [`ServeConfig::nn_ns_per_mac`].
    pub decide_cost: DecideCost,
    /// When positive, every shard samples a learning-curve point
    /// (cumulative average latency, fast-placement fraction) every
    /// `curve_every` batches into [`crate::ShardReport::curve`].
    /// Default: 0 (disabled).
    pub curve_every: u64,
    /// How shard agents cooperate (shared replay / weight averaging /
    /// both). Default: [`sibyl_coop::CoopMode::Independent`] — no
    /// cooperation, bit-identical to an engine without the layer.
    pub coop: CoopConfig,
    /// The background-migration subsystem run by every shard against its
    /// private storage node: which policy plans moves, how many batches
    /// between ticks, and the per-tick move budget. Default:
    /// [`sibyl_migrate::MigratePolicyKind::None`] — no migrator is
    /// constructed and the engine is bit-identical to one without the
    /// subsystem. Ticks sit at deterministic batch-count boundaries
    /// (after every [`MigrateConfig::scan_period`] of a shard's own
    /// batches), and migration I/O is charged against device time
    /// through [`sibyl_hss::StorageManager::migrate_batch`], so
    /// foreground requests observe the contention.
    pub migrate: MigrateConfig,
    /// The hybrid-storage configuration instantiated per shard. Fraction
    /// capacities resolve against each shard's own footprint.
    pub hss: HssConfig,
    /// The agent configuration instantiated per shard (the seed is
    /// perturbed per shard).
    pub sibyl: SibylConfig,
    /// Precision of every shard agent's batched decide path. Default:
    /// [`QuantMode::Off`] — full f32, bit-identical to an engine without
    /// the knob. [`QuantMode::F16`] switches the per-shard inference
    /// networks to binary16 weight storage (compute stays f32); the
    /// serving golden test pins that this changes zero placement
    /// decisions on the reference trace. Overrides
    /// [`SibylConfig::quant_mode`] per shard, the same way the per-shard
    /// seed overrides [`SibylConfig::seed`].
    pub quant: QuantMode,
    /// Telemetry recording for the run. Default:
    /// [`TelemetryConfig::off`] — no sink is allocated, no event is
    /// recorded, and the engine is pinned bit-identical to one without
    /// the subsystem. When enabled, every shard collects a metrics
    /// registry plus a bounded event trace into
    /// [`crate::ServeReport::telemetry`], keyed on logical time (request
    /// and batch counts) so two enabled runs export byte-identical
    /// JSONL; wall-clock durations are confined to the `measured.*`
    /// namespace, which is excluded from equality and the deterministic
    /// export. Overrides [`SibylConfig::telemetry`] per shard, the same
    /// way the per-shard seed overrides [`SibylConfig::seed`].
    pub telemetry: TelemetryConfig,
    /// Per-request span tracing for the run. Default:
    /// [`XrayConfig::Off`] — no tracer is constructed and the engine is
    /// pinned bit-identical to one without the subsystem.
    /// [`XrayConfig::Sampled(k)`](XrayConfig::Sampled) traces a
    /// deterministic `1/2^k` subset of requests — the sampling decision
    /// is a stateless hash of `(base seed, lba, per-shard seq)`, so the
    /// traced set is identical across runs and thread schedules — and
    /// collects critical-path attribution, folded-stacks exports, and
    /// tail forensics into [`crate::ServeReport::xray`]. Span durations
    /// are simulated time quantized to logical nanoseconds: tracing
    /// reads no wall clock and perturbs zero placement decisions.
    pub xray: XrayConfig,
}

impl ServeConfig {
    /// Creates a serving configuration with default sharding (4 shards,
    /// batches of up to 32, no cooperation) over the given storage
    /// configuration and the paper's default agent hyper-parameters.
    pub fn new(hss: HssConfig) -> Self {
        ServeConfig {
            shards: 4,
            max_batch: 32,
            queue_capacity: 1024,
            time_scale: 1.0,
            nn_ns_per_mac: 0.0,
            decide_cost: DecideCost::PerMac,
            curve_every: 0,
            coop: CoopConfig::default(),
            migrate: MigrateConfig::default(),
            hss,
            sibyl: SibylConfig::default(),
            quant: QuantMode::Off,
            telemetry: TelemetryConfig::off(),
            xray: XrayConfig::Off,
        }
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the maximum inference batch size.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the per-shard request-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the replay time compression (>1 compresses think time).
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        self.time_scale = scale;
        self
    }

    /// Sets the simulated NN-inference cost (ns per MAC; 0 disables).
    pub fn with_nn_ns_per_mac(mut self, ns_per_mac: f64) -> Self {
        self.nn_ns_per_mac = ns_per_mac;
        self
    }

    /// Replaces the decide-cost model (see [`DecideCost`]).
    pub fn with_decide_cost(mut self, decide_cost: DecideCost) -> Self {
        self.decide_cost = decide_cost;
        self
    }

    /// Sets the telemetry recording level for every shard.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the per-request span-tracing mode (see [`XrayConfig`]).
    pub fn with_xray(mut self, xray: XrayConfig) -> Self {
        self.xray = xray;
        self
    }

    /// Enables learning-curve sampling every `batches` batches per shard
    /// (0 disables).
    pub fn with_curve_every(mut self, batches: u64) -> Self {
        self.curve_every = batches;
        self
    }

    /// Replaces the cooperation configuration.
    pub fn with_coop(mut self, coop: CoopConfig) -> Self {
        self.coop = coop;
        self
    }

    /// Replaces the background-migration configuration.
    pub fn with_migrate(mut self, migrate: MigrateConfig) -> Self {
        self.migrate = migrate;
        self
    }

    /// Replaces the per-shard agent configuration.
    pub fn with_sibyl(mut self, sibyl: SibylConfig) -> Self {
        self.sibyl = sibyl;
        self
    }

    /// Sets the decide-path precision for every shard agent.
    pub fn with_quant(mut self, quant: QuantMode) -> Self {
        self.quant = quant;
        self
    }

    /// The agent seed for one shard: the base seed perturbed by the shard
    /// index so shards explore independently while staying reproducible.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        self.sibyl
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1))
    }

    /// The migration-policy seed for one shard, perturbed like
    /// [`ServeConfig::shard_seed`] so per-shard RL migrators explore
    /// independently while staying reproducible.
    pub fn migrate_seed(&self, shard: usize) -> u64 {
        self.migrate
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1))
    }

    /// Validates ranges, returning a descriptive [`ServeError`] for
    /// degenerate settings (0 shards, 0-deep batches, a cooperative mode
    /// with a zero sync period, …) instead of panicking mid-run.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    ///
    /// # Panics
    ///
    /// The embedded [`SibylConfig`] still validates by panicking
    /// (see [`SibylConfig::validate`]).
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.shards == 0 {
            return Err(ServeError::ZeroShards);
        }
        if self.max_batch == 0 {
            return Err(ServeError::ZeroMaxBatch);
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::ZeroQueueCapacity);
        }
        if !(self.time_scale.is_finite() && self.time_scale > 0.0) {
            return Err(ServeError::InvalidTimeScale);
        }
        if !(self.nn_ns_per_mac.is_finite() && self.nn_ns_per_mac >= 0.0) {
            return Err(ServeError::InvalidNnCost);
        }
        if !self.decide_cost.is_valid() {
            return Err(ServeError::InvalidDecideCost);
        }
        self.telemetry.validate().map_err(ServeError::Telemetry)?;
        self.xray.validate().map_err(ServeError::Xray)?;
        self.coop.validate().map_err(ServeError::Coop)?;
        self.migrate.validate().map_err(ServeError::Migrate)?;
        if self.coop.mode.is_cooperative() && self.sibyl.training_mode != TrainingMode::Synchronous
        {
            return Err(ServeError::CoopRequiresSynchronousTraining);
        }
        self.sibyl.validate();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_coop::{CoopConfigError, CoopMode};
    use sibyl_hss::DeviceSpec;

    fn hss() -> HssConfig {
        HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd())
    }

    #[test]
    fn defaults_are_valid() {
        let cfg = ServeConfig::new(hss());
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.max_batch, 32);
        assert_eq!(cfg.nn_ns_per_mac, 0.0);
        assert_eq!(cfg.decide_cost, DecideCost::PerMac);
        assert_eq!(cfg.coop.mode, CoopMode::Independent);
        assert!(!cfg.telemetry.enabled());
        cfg.validate().unwrap();
    }

    #[test]
    fn builders_apply() {
        let cfg = ServeConfig::new(hss())
            .with_shards(8)
            .with_max_batch(4)
            .with_queue_capacity(64)
            .with_time_scale(40.0)
            .with_nn_ns_per_mac(2.0)
            .with_curve_every(16)
            .with_coop(CoopConfig::new(CoopMode::Both).with_sync_period(4))
            .with_quant(QuantMode::F16)
            .with_decide_cost(DecideCost::TwoTerm {
                setup_us: 3.0,
                per_row_us: 0.5,
            })
            .with_telemetry(TelemetryConfig::events());
        assert_eq!(cfg.shards, 8);
        assert_eq!(cfg.quant, QuantMode::F16);
        assert_eq!(
            cfg.decide_cost,
            DecideCost::TwoTerm {
                setup_us: 3.0,
                per_row_us: 0.5,
            }
        );
        assert_eq!(cfg.telemetry, TelemetryConfig::events());
        assert_eq!(cfg.max_batch, 4);
        assert_eq!(cfg.queue_capacity, 64);
        assert_eq!(cfg.time_scale, 40.0);
        assert_eq!(cfg.nn_ns_per_mac, 2.0);
        assert_eq!(cfg.curve_every, 16);
        assert_eq!(cfg.coop.mode, CoopMode::Both);
        cfg.validate().unwrap();
    }

    #[test]
    fn shard_seeds_differ_but_are_stable() {
        let cfg = ServeConfig::new(hss());
        assert_ne!(cfg.shard_seed(0), cfg.shard_seed(1));
        assert_eq!(cfg.shard_seed(3), cfg.shard_seed(3));
    }

    #[test]
    fn degenerate_settings_return_descriptive_errors() {
        assert_eq!(
            ServeConfig::new(hss()).with_shards(0).validate(),
            Err(ServeError::ZeroShards)
        );
        assert_eq!(
            ServeConfig::new(hss()).with_max_batch(0).validate(),
            Err(ServeError::ZeroMaxBatch)
        );
        assert_eq!(
            ServeConfig::new(hss()).with_queue_capacity(0).validate(),
            Err(ServeError::ZeroQueueCapacity)
        );
        assert_eq!(
            ServeConfig::new(hss()).with_time_scale(0.0).validate(),
            Err(ServeError::InvalidTimeScale)
        );
        assert_eq!(
            ServeConfig::new(hss()).with_time_scale(f64::NAN).validate(),
            Err(ServeError::InvalidTimeScale)
        );
        assert_eq!(
            ServeConfig::new(hss()).with_nn_ns_per_mac(-1.0).validate(),
            Err(ServeError::InvalidNnCost)
        );
        assert_eq!(
            ServeConfig::new(hss())
                .with_coop(CoopConfig::new(CoopMode::WeightAverage).with_sync_period(0))
                .validate(),
            Err(ServeError::Coop(CoopConfigError::ZeroSyncPeriod))
        );
        assert_eq!(
            ServeConfig::new(hss())
                .with_coop(CoopConfig::new(CoopMode::SharedReplay).with_share_fraction(0.0))
                .validate(),
            Err(ServeError::Coop(CoopConfigError::InvalidShareFraction))
        );
    }

    #[test]
    fn decide_cost_models_price_batches() {
        assert_eq!(DecideCost::PerMac.batch_us(Some(1_380), 10.0, 32), 13.8);
        assert_eq!(DecideCost::PerMac.batch_us(Some(1_380), 0.0, 32), 0.0);
        assert_eq!(DecideCost::PerMac.batch_us(None, 10.0, 32), 0.0);
        let fit = DecideCost::TwoTerm {
            setup_us: 2.0,
            per_row_us: 0.25,
        };
        // The fit is measured, so it ignores the MAC rate entirely.
        assert_eq!(fit.batch_us(Some(1_380), 0.0, 8), 4.0);
        assert_eq!(fit.batch_us(None, 99.0, 8), 4.0);
    }

    #[test]
    fn degenerate_decide_cost_and_telemetry_are_errors() {
        assert_eq!(
            ServeConfig::new(hss())
                .with_decide_cost(DecideCost::TwoTerm {
                    setup_us: -1.0,
                    per_row_us: 0.1,
                })
                .validate(),
            Err(ServeError::InvalidDecideCost)
        );
        assert_eq!(
            ServeConfig::new(hss())
                .with_decide_cost(DecideCost::TwoTerm {
                    setup_us: 1.0,
                    per_row_us: f64::NAN,
                })
                .validate(),
            Err(ServeError::InvalidDecideCost)
        );
        let mut telemetry = TelemetryConfig::events();
        telemetry.event_capacity = 0;
        assert!(matches!(
            ServeConfig::new(hss()).with_telemetry(telemetry).validate(),
            Err(ServeError::Telemetry(_))
        ));
        ServeConfig::new(hss())
            .with_telemetry(TelemetryConfig::full())
            .validate()
            .unwrap();
    }

    #[test]
    fn cooperative_modes_require_synchronous_training() {
        let mut cfg = ServeConfig::new(hss()).with_coop(CoopConfig::new(CoopMode::WeightAverage));
        cfg.sibyl.training_mode = sibyl_core::TrainingMode::Background;
        assert_eq!(
            cfg.validate(),
            Err(ServeError::CoopRequiresSynchronousTraining)
        );
        // Background training stays fine without cooperation.
        let mut indep = ServeConfig::new(hss());
        indep.sibyl.training_mode = sibyl_core::TrainingMode::Background;
        indep.validate().unwrap();
    }
}
