//! The sharded serving engine: LBA-hash routing, per-shard workers,
//! batched-inference request draining, cooperative sync rounds, and
//! background-migration ticks.

use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Receiver};

use sibyl_coop::{CoopConfigError, Coordinator};
use sibyl_core::{SibylAgent, TrainingMode};
use sibyl_hss::{AccessOutcome, StorageManager};
use sibyl_migrate::{MigrateConfig, MigrateConfigError, Migrator};
use sibyl_telemetry::{
    measured, Log2Histogram, ShardTelemetry, TelemetryConfig, TelemetryConfigError,
    TelemetryReport, TelemetrySink, TraceEvent,
};
use sibyl_trace::{IoRequest, Trace};
use sibyl_xray::{
    RequestObservation, ShardXray, XrayConfig, XrayConfigError, XrayReport, XrayTracer,
};

use crate::config::{DecideCost, ServeConfig};
use crate::report::{CurvePoint, ServeReport, ShardReport};

/// Errors from serving runs: an unusable trace or a degenerate
/// configuration ([`ServeConfig::validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The trace contains no requests.
    EmptyTrace,
    /// `shards == 0`: there would be nothing to route to.
    ZeroShards,
    /// `max_batch == 0`: a shard could never fill a batch.
    ZeroMaxBatch,
    /// `queue_capacity == 0`: the router could never hand off a request.
    ZeroQueueCapacity,
    /// `time_scale` is not positive and finite.
    InvalidTimeScale,
    /// `nn_ns_per_mac` is negative or not finite.
    InvalidNnCost,
    /// A [`DecideCost::TwoTerm`](crate::DecideCost) fit carries a
    /// negative or non-finite term.
    InvalidDecideCost,
    /// The telemetry configuration is degenerate.
    Telemetry(TelemetryConfigError),
    /// The xray span-tracing configuration is degenerate.
    Xray(XrayConfigError),
    /// The cooperation configuration is degenerate.
    Coop(CoopConfigError),
    /// The background-migration configuration is degenerate.
    Migrate(MigrateConfigError),
    /// A worker shard died mid-run (its thread panicked), so the trace
    /// could not be fully served. Carries the dead shard's index. This
    /// surfaces as an error instead of poisoning the caller with a
    /// router-side panic.
    ShardDown {
        /// Index of the shard whose worker died.
        shard: usize,
    },
    /// The OS refused to spawn a worker thread for this shard, so the
    /// engine could not be brought up. Like [`ServeError::ShardDown`],
    /// this is surfaced as a typed error rather than a router panic.
    SpawnFailed {
        /// Index of the shard whose worker could not be spawned.
        shard: usize,
    },
    /// A cooperative mode was combined with
    /// [`TrainingMode::Background`](sibyl_core::TrainingMode): weight
    /// export/import and replay absorption need the learner on the shard
    /// thread, and background trainers would break the determinism the
    /// sync barriers exist to preserve.
    CoopRequiresSynchronousTraining,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::EmptyTrace => write!(f, "trace contains no requests"),
            ServeError::ZeroShards => write!(f, "ServeConfig: shards must be positive"),
            ServeError::ZeroMaxBatch => write!(f, "ServeConfig: max_batch must be positive"),
            ServeError::ZeroQueueCapacity => {
                write!(f, "ServeConfig: queue_capacity must be positive")
            }
            ServeError::InvalidTimeScale => {
                write!(f, "ServeConfig: time_scale must be positive and finite")
            }
            ServeError::InvalidNnCost => {
                write!(
                    f,
                    "ServeConfig: nn_ns_per_mac must be non-negative and finite"
                )
            }
            ServeError::InvalidDecideCost => {
                write!(
                    f,
                    "ServeConfig: decide-cost fit terms must be non-negative and finite"
                )
            }
            ServeError::Telemetry(e) => write!(f, "ServeConfig: {e}"),
            ServeError::Xray(e) => write!(f, "ServeConfig: {e}"),
            ServeError::Coop(e) => write!(f, "ServeConfig: {e}"),
            ServeError::Migrate(e) => write!(f, "ServeConfig: {e}"),
            ServeError::ShardDown { shard } => {
                write!(f, "worker shard {shard} died before the trace was served")
            }
            ServeError::SpawnFailed { shard } => {
                write!(f, "could not spawn the worker thread for shard {shard}")
            }
            ServeError::CoopRequiresSynchronousTraining => {
                write!(
                    f,
                    "ServeConfig: cooperative modes require synchronous training"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Pages per routing region (`2^REGION_BITS` = 64 pages, 256 KiB at 4 KiB
/// pages). Sized to the trace generators' maximum request size, so a
/// request's pages almost always share one region — and therefore one
/// shard.
pub const REGION_BITS: u32 = 6;

/// The shard a request routes to: a mixing hash of its starting LPN's
/// *region* (`lpn >> REGION_BITS`) modulo the shard count. Same LPN →
/// same region → same shard, so each shard's access-frequency features
/// stay meaningful, and whole regions colocate, so multi-page requests
/// land on the shard that owns (nearly all of) their pages.
///
/// Routing is by the request's *starting* LPN: a request that straddles
/// a region boundary carries its tail pages to the start region's shard,
/// so a page in the straddled tail can materialize in more than one
/// shard's private manager. Shard-private copies are modeled
/// independently (no cross-shard invalidation) — an approximation that
/// only occurs at region boundaries and is the price of stateless
/// routing; cross-shard migration is an open ROADMAP item.
pub fn shard_of(lpn: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    // splitmix64 finalizer — cheap, stateless, and avalanching, so
    // adjacent regions spread evenly across shards.
    let mut h = (lpn >> REGION_BITS).wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h % shards as u64) as usize
}

/// Serves a whole materialized trace through the sharded engine.
///
/// Thin wrapper over [`serve_stream`] — the trace's requests are fed
/// straight from the slice, so existing call sites keep their exact
/// behavior (bit-identical reports) while the engine itself is
/// stream-fed. For production-sized runs, hand [`serve_stream`] an
/// infinite generator (e.g. [`sibyl_trace::stream::SpecStream`]) bounded
/// with `.take(n)` instead of materializing a `Vec` of requests.
///
/// # Errors
///
/// Returns [`ServeError::EmptyTrace`] for an empty trace, or whatever
/// [`serve_stream`] returns.
///
/// # Panics
///
/// Panics if the embedded [`SibylConfig`](sibyl_core::SibylConfig) is
/// invalid.
pub fn serve_trace(config: &ServeConfig, trace: &Trace) -> Result<ServeReport, ServeError> {
    serve_stream(config, trace.iter().copied())
}

/// Serves a finite request stream through the sharded engine and collects
/// per-shard reports — without ever materializing the workload.
///
/// This is the engine's real entry point ([`serve_trace`] delegates
/// here). The stream is consumed twice: a *footprint pre-pass* over a
/// clone computes each shard's unique-page count (so fraction-mode
/// capacities resolve against exactly the data that shard will hold,
/// identically to the materialized path), then the *routing pass* feeds
/// requests one at a time into the shard queues. Peak router memory is
/// therefore bounded by the workload's footprint (the pre-pass page
/// sets) plus the bounded queues — never by the trace length — which is
/// what makes 10M-request runs practical: a seeded generator stream
/// costs O(footprint) memory where a materialized `Trace` costs 24 bytes
/// per request.
///
/// The stream must be **finite** (bound an infinite generator with
/// `.take(n)`) and `Clone` must replay the identical sequence — true for
/// every seeded [`sibyl_trace::stream::RequestStream`] and for slice
/// iterators.
///
/// The caller thread acts as the router: it walks the stream in
/// timestamp order, compresses timestamps by [`ServeConfig::time_scale`],
/// and sends each request over a channel to the shard selected by
/// [`shard_of`].
/// Each worker shard owns a private [`StorageManager`] + [`SibylAgent`]
/// pair and repeatedly blocks until it has accumulated
/// [`ServeConfig::max_batch`] requests (or the trace is exhausted),
/// decides the whole batch with one [`SibylAgent::place_batch`] call —
/// batched C51 inference — then serves the batch and feeds the outcomes
/// back.
///
/// Under a cooperative [`CoopConfig`](sibyl_coop::CoopConfig) mode, every
/// shard additionally arrives at a [`Coordinator`] sync round after each
/// `sync_period` of its batches: experience-sharing modes publish the
/// tap's selections and absorb every other shard's, weight-averaging
/// modes contribute training-net parameters and adopt the federated
/// mean. Sync rounds sit at logical (batch-count) boundaries, and a
/// shard whose subsequence is exhausted leaves the coordinator, so the
/// contributor set of every round — hence every result — is independent
/// of thread scheduling. Cooperative runs use *unbounded* shard queues:
/// a sync barrier must never backpressure the router (a full queue
/// behind a barrier-parked shard would deadlock the run); independent
/// runs keep the bounded-queue backpressure exactly as before.
///
/// When [`ServeConfig::migrate`] runs an active policy, every shard
/// additionally ticks a private [`Migrator`] after each
/// `scan_period` of its batches — another logical boundary, so seeded
/// runs stay deterministic — promoting hot slower-device pages and
/// demoting cold fast ones through the bandwidth-accounted
/// [`StorageManager::migrate_batch`]; the migration I/O advances the
/// shard's device clocks, so subsequent foreground requests observe the
/// contention ([`ShardReport::migrations`] /
/// [`ShardReport::migration_busy_us`]).
///
/// When [`ServeConfig::nn_ns_per_mac`] is positive, every batch is
/// charged one simulated NN forward pass amortized over its requests
/// (see the field's docs), so placement-decision compute shows up in the
/// latency metrics. Training is charged through the same model: a train
/// step bills `batches_per_step` batched forward+backward weight streams
/// (the batched `train_step` streams each weight matrix once per replay
/// batch, exactly like batched inference), and the bill delays the
/// shard's *next* batch — the §10 overhead analysis's point that both
/// halves of the two-network design cost request latency. Training is
/// billed only under synchronous training; a background trainer runs
/// concurrently off the decision path and is not charged.
///
/// Because shards fill batches by blocking on their queue rather than
/// draining opportunistically, batch boundaries are fixed chunks of each
/// shard's request subsequence. With the default
/// [`TrainingMode::Synchronous`](sibyl_core::TrainingMode), results are
/// therefore bit-identical across runs for a given config and trace,
/// regardless of thread scheduling — in every cooperation mode.
/// [`TrainingMode::Background`](sibyl_core::TrainingMode) keeps the
/// trainer off the decision path instead: weight adoption then depends
/// on trainer-thread timing, so run-to-run metric drift is expected, not
/// a bug (and cooperative modes therefore reject it).
///
/// # Errors
///
/// Returns [`ServeError::EmptyTrace`] for a stream that yields no
/// requests, the configuration's first violated constraint (see
/// [`ServeConfig::validate`]), or [`ServeError::SpawnFailed`] when the
/// OS refuses a worker thread.
///
/// # Panics
///
/// Panics if the embedded [`SibylConfig`](sibyl_core::SibylConfig) is
/// invalid.
pub fn serve_stream<S>(config: &ServeConfig, stream: S) -> Result<ServeReport, ServeError>
where
    S: Iterator<Item = IoRequest> + Clone,
{
    config.validate()?;

    // Footprint pre-pass over a clone of the stream, so fraction-mode
    // capacities resolve against the data each shard will actually hold
    // — the same per-shard footprints the materialized path computes.
    // Sets keep this O(unique pages), not O(total request pages): the
    // one regeneration pass buys footprint-bounded memory for the run.
    let mut shard_pages: Vec<std::collections::HashSet<u64>> =
        vec![std::collections::HashSet::new(); config.shards];
    let mut total_requests = 0u64;
    for req in stream.clone() {
        let s = shard_of(req.lpn, config.shards);
        shard_pages[s].extend(req.pages());
        total_requests += 1;
    }
    if total_requests == 0 {
        return Err(ServeError::EmptyTrace);
    }
    let footprints: Vec<u64> = shard_pages.iter().map(|pages| pages.len() as u64).collect();
    drop(shard_pages);

    let coordinator = config
        .coop
        .mode
        .is_cooperative()
        .then(|| Coordinator::new(config.coop, config.shards));

    let mut senders = Vec::with_capacity(config.shards);
    let mut workers = Vec::with_capacity(config.shards);
    for (shard, &footprint) in footprints.iter().enumerate() {
        let (tx, rx) = if coordinator.is_some() {
            unbounded::<IoRequest>()
        } else {
            bounded::<IoRequest>(config.queue_capacity)
        };
        senders.push(tx);
        let resolved = config.hss.resolved(footprint.max(1));
        let mut sibyl = config.sibyl.clone();
        sibyl.seed = config.shard_seed(shard);
        sibyl.quant_mode = config.quant;
        sibyl.telemetry = config.telemetry;
        let mut migrate = config.migrate.clone();
        migrate.seed = config.migrate_seed(shard);
        let task = ShardTask {
            shard,
            rx,
            resolved,
            sibyl,
            max_batch: config.max_batch,
            nn_ns_per_mac: config.nn_ns_per_mac,
            decide_cost: config.decide_cost,
            curve_every: config.curve_every,
            coop: coordinator.clone(),
            migrate,
            telemetry: config.telemetry,
            xray: config.xray,
            // The *base* seed, not the shard-perturbed one: a request's
            // sampling decision must depend only on (seed, lba, seq), so
            // re-sharding a run keeps comparable sampled sets.
            xray_seed: config.sibyl.seed,
        };
        let spawned = std::thread::Builder::new()
            .name(format!("sibyl-shard-{shard}"))
            .spawn(move || run_shard(task));
        match spawned {
            Ok(handle) => workers.push(handle),
            Err(_) => {
                // Unblock the shards already spawned — with their senders
                // gone they drain an empty queue, leave any coordinator,
                // and exit — then surface a typed error instead of
                // panicking the router.
                drop(senders);
                for worker in workers {
                    let _ = worker.join();
                }
                return Err(ServeError::SpawnFailed { shard });
            }
        }
    }

    // Route. Bounded channels (independent runs) give backpressure: the
    // router stalls when a shard's queue is full instead of buffering the
    // whole stream. A send can only fail when the receiving worker died
    // (dropped its receiver by panicking); stop routing and surface that
    // as an error rather than panicking the router.
    let mut dead_shard: Option<usize> = None;
    for req in stream {
        let mut routed = req;
        if config.time_scale != 1.0 {
            routed.timestamp_us = (req.timestamp_us as f64 / config.time_scale) as u64;
        }
        let s = shard_of(routed.lpn, config.shards);
        if senders[s].send(routed).is_err() {
            dead_shard = Some(s);
            break;
        }
    }
    drop(senders); // end-of-stream (or abort): workers drain and exit

    let mut shards: Vec<ShardReport> = Vec::with_capacity(workers.len());
    let mut shard_telemetry: Vec<ShardTelemetry> = Vec::new();
    let mut shard_xrays: Vec<ShardXray> = Vec::new();
    for (shard, handle) in workers.into_iter().enumerate() {
        match handle.join() {
            Ok((report, telemetry, xray)) => {
                shards.push(report);
                shard_telemetry.extend(telemetry);
                shard_xrays.extend(xray);
            }
            // Prefer the panicking shard's index over the shard whose
            // queue the router noticed first — they can differ when one
            // shard's death aborts routing to the others.
            Err(_) => dead_shard = Some(shard),
        }
    }
    if let Some(shard) = dead_shard {
        return Err(ServeError::ShardDown { shard });
    }
    shards.sort_by_key(|s| s.shard);
    let telemetry = config
        .telemetry
        .enabled()
        .then(|| TelemetryReport::new(shard_telemetry));
    let xray = config.xray.enabled().then(|| XrayReport::new(shard_xrays));
    Ok(ServeReport {
        shards,
        telemetry,
        xray,
    })
}

/// Everything one worker shard needs, moved onto its thread.
struct ShardTask {
    shard: usize,
    rx: Receiver<IoRequest>,
    resolved: sibyl_hss::HssConfig,
    sibyl: sibyl_core::SibylConfig,
    max_batch: usize,
    nn_ns_per_mac: f64,
    decide_cost: DecideCost,
    curve_every: u64,
    coop: Option<Arc<Coordinator>>,
    migrate: MigrateConfig,
    telemetry: TelemetryConfig,
    xray: XrayConfig,
    xray_seed: u64,
}

/// Deregisters a shard from the coordinator when its thread exits — on
/// the normal path *and* on unwind. Without this, a panicking shard
/// would leave `members` overcounted and every peer parked at the sync
/// barrier forever, turning a loud `join` panic into a silent hang.
struct LeaveGuard {
    coord: Arc<Coordinator>,
    member: usize,
}

impl Drop for LeaveGuard {
    fn drop(&mut self) {
        self.coord.leave(self.member);
    }
}

/// One worker shard's lifetime: fill a batch (blocking), decide it with
/// batched inference, serve it (charging amortized NN time when
/// configured), feed rewards back, and arrive at cooperative sync rounds
/// on its logical batch boundaries; repeat until the router hangs up,
/// then leave the coordinator (via a drop guard, so a panicking shard
/// releases its peers instead of wedging the barrier).
fn run_shard(task: ShardTask) -> (ShardReport, Option<ShardTelemetry>, Option<ShardXray>) {
    let mut manager = StorageManager::new(&task.resolved);
    let mut agent = SibylAgent::new(task.sibyl);
    // `XrayConfig::Off` builds no tracer — same discipline as the sink
    // and the migrator: a disabled engine holds no xray branch that ever
    // fires, pinning it bit-identical to one without the subsystem.
    let mut xray = XrayTracer::new(&task.xray, task.shard, task.xray_seed);
    // `TelemetryConfig::off()` builds no sink: every telemetry branch
    // below is an `if let Some(..)` that never fires, keeping the
    // disabled engine bit-identical to one without the subsystem. The
    // stopwatch is the one wall-clock read, and its total can only land
    // in the `measured.*` namespace — excluded from report equality and
    // the deterministic export.
    let mut sink = TelemetrySink::new(&task.telemetry);
    let stopwatch = sink.as_ref().map(|_| measured::Stopwatch::start());
    // Per-request latency samples accumulate into a shard-local histogram
    // and merge into the registry once at teardown: a name lookup per
    // request is the kind of hot-path cost the ≤3% overhead pin exists
    // to keep out, and bucket counts merge commutatively, so the final
    // registry (and export) is identical either way.
    let mut latency_hist = match &sink {
        Some(s) if s.histograms() => Some(Log2Histogram::new()),
        _ => None,
    };
    let _leave_guard = task.coop.as_ref().map(|coord| LeaveGuard {
        coord: Arc::clone(coord),
        member: task.shard,
    });
    if let Some(coord) = &task.coop {
        if coord.config().mode.shares_experiences() {
            agent.set_experience_tap(coord.config().share_fraction);
            agent.set_foreign_weight(coord.config().foreign_weight);
        }
    }
    // `MigratePolicyKind::None` builds no migrator: the loop below then
    // contains no migration branch at all, keeping the baseline
    // bit-identical to the engine before the subsystem existed.
    let mut migrator = Migrator::new(task.migrate);
    let mut batch: Vec<IoRequest> = Vec::with_capacity(task.max_batch);
    let mut outcomes: Vec<AccessOutcome> = Vec::with_capacity(task.max_batch);
    let mut batches = 0u64;
    let mut requests = 0u64;
    let mut coop_syncs = 0u64;
    let mut nn_busy_us = 0.0f64;
    let mut train_busy_us = 0.0f64;
    let mut migrations = 0u64;
    let mut migration_busy_us = 0.0f64;
    // Training time billed by the §10 model but not yet charged to any
    // request: a train step runs after a batch's outcomes are fed back,
    // so its cost lands on the *next* batch's dispatch.
    let mut pending_train_us = 0.0f64;
    let mut charged_train_steps = 0u64;
    // Train steps already turned into `TraceEvent::TrainStep` records —
    // tracked separately from `charged_train_steps`, which only advances
    // when the §10 cost model is billing.
    let mut event_train_steps = 0u64;
    let mut curve: Vec<CurvePoint> = Vec::new();
    let mut disconnected = false;
    while !disconnected {
        batch.clear();
        match task.rx.recv() {
            Ok(req) => batch.push(req),
            Err(_) => break,
        }
        while batch.len() < task.max_batch {
            match task.rx.recv() {
                Ok(req) => batch.push(req),
                Err(_) => {
                    disconnected = true;
                    break;
                }
            }
        }
        let targets = agent.place_batch(&batch, &manager);
        // §10 overhead model: one forward pass per batch — the batched
        // kernels stream each weight matrix once per *batch* — amortized
        // evenly across the batch's requests as an arrival delay, plus
        // any training bill carried over from the previous batch. The
        // default `DecideCost::PerMac` keeps the analytic MAC bill;
        // `DecideCost::TwoTerm` replays the measured setup + per-row fit.
        let batch_decide_us =
            task.decide_cost
                .batch_us(agent.inference_macs(), task.nn_ns_per_mac, batch.len());
        let per_req_nn_us = batch_decide_us / batch.len() as f64;
        let per_req_delay_us = per_req_nn_us + pending_train_us / batch.len() as f64;
        pending_train_us = 0.0;
        if let Some(sink) = &mut sink {
            sink.event(TraceEvent::BatchDecided {
                batch: batches,
                requests: batch.len(),
                decide_us: batch_decide_us,
            });
        }
        outcomes.clear();
        for (req, &target) in batch.iter().zip(&targets) {
            nn_busy_us += per_req_nn_us;
            let outcome = manager.access_after(req, target, per_req_delay_us);
            if let Some(sink) = &mut sink {
                sink.event(TraceEvent::RequestServed {
                    lpn: req.lpn,
                    device: target.0,
                    latency_us: outcome.latency_us,
                });
                if outcome.evicted_pages > 0 {
                    sink.event(TraceEvent::Eviction {
                        lpn: req.lpn,
                        pages: outcome.evicted_pages,
                    });
                }
            }
            if let Some(h) = &mut latency_hist {
                h.record(outcome.latency_us as u64);
            }
            if let Some(x) = &mut xray {
                // The storage manager's sub-span hook is valid right
                // after `access_after`: which device sat on the critical
                // path and how its time split into queueing vs transfer.
                let detail = manager.last_access_detail();
                let summary = x.observe_request(&RequestObservation {
                    lba: req.lpn,
                    timestamp_us: req.timestamp_us as f64,
                    arrival_us: outcome.arrival_us,
                    latency_us: outcome.latency_us,
                    decide_us: per_req_nn_us,
                    train_us: per_req_delay_us - per_req_nn_us,
                    queue_us: detail.queue_us,
                    batch: batch.len(),
                    device: detail.device,
                    target: outcome.target.0,
                    promoted: outcome.migrated_pages,
                    evicted: outcome.evicted_pages,
                });
                // Sampled spans double as `xray.*` telemetry histograms:
                // the quantized decomposition is already exact, so the
                // registry sees the same logical-ns values the report
                // aggregates. Sampling keeps this off the per-request
                // hot path at any k > 0.
                if let Some(s) = summary {
                    if let Some(sink) = &mut sink {
                        if sink.histograms() {
                            let registry = sink.registry_mut();
                            registry.histogram_record("xray.latency_ns", s.latency_ns);
                            registry.histogram_record("xray.decide_ns", s.decide_ns);
                            registry.histogram_record("xray.train_ns", s.train_ns);
                            registry.histogram_record("xray.queue_ns", s.queue_ns);
                            registry.histogram_record("xray.transfer_ns", s.transfer_ns);
                            registry.histogram_record("xray.queue_wait_ns", s.queue_wait_ns);
                        }
                    }
                }
            }
            outcomes.push(outcome);
        }
        if let Some(sink) = &mut sink {
            let registry = sink.registry_mut();
            registry.counter_add("serve.requests", batch.len() as u64);
            registry.counter_add("serve.batches", 1);
            if sink.histograms() {
                let registry = sink.registry_mut();
                registry.histogram_record("serve.batch_fill", batch.len() as u64);
                registry.histogram_record("serve.decide_ns", (batch_decide_us * 1_000.0) as u64);
            }
        }
        agent.feedback_batch(&outcomes);
        // Training is billed only in synchronous mode, where the learner
        // really does run inline on the decision path; a background
        // trainer is concurrent by design (and its weight-adoption
        // timing is thread-schedule dependent), so charging it to
        // request latency would be both wrong and nondeterministic.
        if task.nn_ns_per_mac > 0.0 && agent.config().training_mode == TrainingMode::Synchronous {
            let new_steps = agent.stats().train_steps - charged_train_steps;
            if new_steps > 0 {
                // The batched train step streams each weight matrix once
                // forward and once backward per replay batch — two passes
                // at the same ns/MAC rate batched inference is billed.
                let step_us = agent.inference_macs().map_or(0.0, |macs| {
                    2.0 * agent.config().batches_per_step as f64 * macs as f64 * task.nn_ns_per_mac
                        / 1_000.0
                });
                let billed = new_steps as f64 * step_us;
                pending_train_us += billed;
                train_busy_us += billed;
            }
            charged_train_steps = agent.stats().train_steps;
        }
        if let Some(sink) = &mut sink {
            // Synchronous train steps happen inside `feedback_batch`, so
            // the count delta over this batch is deterministic; the loss
            // comes from the agent's introspection probe (telemetry is
            // propagated into `SibylConfig`, so it is always on here).
            let steps = agent.stats().train_steps;
            if steps > event_train_steps {
                let loss = agent.probe().last_loss.map_or(f64::NAN, f64::from);
                for step in event_train_steps..steps {
                    sink.event(TraceEvent::TrainStep {
                        step: step + 1,
                        loss,
                    });
                }
                event_train_steps = steps;
            }
        }
        batches += 1;
        requests += batch.len() as u64;
        // Background-migration tick at deterministic batch-count
        // boundaries: the migrator scans residency/heat, plans, and
        // executes moves whose I/O is charged against this shard's
        // device clocks — the next batch's requests queue behind it.
        if let Some(m) = &mut migrator {
            if batches.is_multiple_of(m.config().scan_period) {
                let tick = m.tick(&mut manager);
                migrations += tick.moved_pages;
                migration_busy_us += tick.busy_us;
                if let Some(x) = &mut xray {
                    x.observe_migration_tick(tick.read_us, tick.write_us, tick.moved_pages);
                }
                if let Some(sink) = &mut sink {
                    sink.event(TraceEvent::MigrationTick {
                        tick: batches / m.config().scan_period,
                        moved_pages: tick.moved_pages,
                        busy_us: tick.busy_us,
                    });
                }
            }
        }
        if task.curve_every > 0 && batches.is_multiple_of(task.curve_every) {
            let point = CurvePoint::from_stats(manager.stats());
            if let Some(sink) = &mut sink {
                // The learning curve doubles as a registry time series —
                // keyed on the shard's request count, logical time — and
                // at `Full` level the same cadence samples the agent's RL
                // introspection probe (pure: no RNG, no mutation).
                let registry = sink.registry_mut();
                registry.series_push("curve.avg_latency_us", point.requests, point.avg_latency_us);
                registry.series_push(
                    "curve.fast_fraction",
                    point.requests,
                    point.fast_placement_fraction,
                );
                if sink.histograms() {
                    let probe = agent.probe();
                    let registry = sink.registry_mut();
                    registry.series_push("rl.epsilon", batches, probe.epsilon);
                    registry.series_push("rl.buffer_len", batches, probe.buffer_len as f64);
                    registry.series_push("rl.q_spread", batches, probe.q_spread);
                    registry.series_push("rl.argmax_entropy", batches, probe.argmax_entropy);
                    if let Some(loss) = probe.last_loss {
                        registry.series_push("rl.loss", batches, f64::from(loss));
                    }
                    registry.histogram_merge("rl.replay_age", &probe.buffer_age);
                }
            }
            curve.push(point);
        }
        if let Some(coord) = &task.coop {
            if batches.is_multiple_of(coord.config().sync_period) {
                let weights = if coord.config().mode.averages_weights() {
                    agent.export_weights()
                } else {
                    None
                };
                let published = if coord.config().mode.shares_experiences() {
                    agent.take_published()
                } else {
                    Vec::new()
                };
                let outcome = coord.sync(task.shard, weights, published);
                if let Some(avg) = &outcome.weights {
                    agent.import_weights(avg);
                }
                if !outcome.shared.is_empty() {
                    agent.absorb_experiences(&outcome.shared);
                }
                coop_syncs += 1;
                if let Some(x) = &mut xray {
                    x.observe_coop_sync();
                }
                if let Some(sink) = &mut sink {
                    sink.event(TraceEvent::CoopSync {
                        round: coop_syncs,
                        batches,
                    });
                    sink.registry_mut().counter_add("coop.syncs", 1);
                }
            }
        }
    }
    let telemetry = sink.map(|mut sink| {
        // Fold the run's terminal state into the registry: the agent's
        // internal `rl.*` series and `measured.train_ns`, the storage
        // manager's `hss.*` counters, the migrator's `migrate.*`
        // counters, and the cooperation configuration. Shard-local state
        // only — global coordinator counters keep advancing while other
        // shards drain, so reading them here would make the export
        // depend on teardown timing.
        if let Some(h) = &latency_hist {
            // Guarded on non-empty so a shard that served nothing exports
            // exactly what per-request recording would have: no entry.
            if h.count() > 0 {
                sink.registry_mut().histogram_merge("serve.latency_us", h);
            }
        }
        if let Some(registry) = agent.take_telemetry() {
            sink.registry_mut().absorb(registry);
        }
        // Directory footprint at teardown: the compact directory is
        // append-only (pages move devices but are never forgotten), so
        // the final size is the run's peak. Gauges merge by max, so the
        // cross-shard report shows the largest shard's directory.
        sink.registry_mut()
            .gauge_set("dir.bytes", manager.directory().directory_bytes() as f64);
        sink.registry_mut()
            .gauge_set("dir.pages", manager.directory().len() as f64);
        manager.stats().record_registry(sink.registry_mut());
        if let Some(m) = &migrator {
            m.stats().record_registry(sink.registry_mut());
        }
        if let Some(coord) = &task.coop {
            coord.config().record_registry(sink.registry_mut());
        }
        if let Some(stopwatch) = stopwatch {
            stopwatch.stop_into(sink.registry_mut(), "measured.shard_run_ns");
        }
        sink.finish(task.shard)
    });
    let report = ShardReport {
        shard: task.shard,
        requests,
        batches,
        directory_bytes: manager.directory().directory_bytes() as u64,
        directory_pages: manager.directory().len() as u64,
        coop_syncs,
        nn_busy_us,
        train_busy_us,
        migrations,
        migration_busy_us,
        curve,
        stats: manager.stats().clone(),
        agent: agent.stats().clone(),
    };
    (report, telemetry, xray.map(XrayTracer::finish))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_coop::{CoopConfig, CoopMode};
    use sibyl_core::SibylConfig;
    use sibyl_hss::{DeviceSpec, HssConfig};
    use sibyl_migrate::MigratePolicyKind;
    use sibyl_trace::{mix, msrc};

    fn fast_sibyl() -> SibylConfig {
        SibylConfig {
            buffer_capacity: 256,
            train_interval: 128,
            batch_size: 32,
            batches_per_step: 2,
            n_atoms: 11,
            exploration: 0.05,
            exploration_initial: 0.3,
            exploration_decay_requests: 500,
            ..Default::default()
        }
    }

    fn config(shards: usize, max_batch: usize) -> ServeConfig {
        let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
        ServeConfig::new(hss)
            .with_shards(shards)
            .with_max_batch(max_batch)
            .with_sibyl(fast_sibyl())
    }

    fn mixed_trace(n_per_component: usize) -> sibyl_trace::Trace {
        mix::Mix::Mix2.generate(n_per_component, 7)
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for lpn in [0u64, 1, 4096, u64::MAX] {
            let s = shard_of(lpn, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(lpn, 4));
        }
        assert_eq!(shard_of(12345, 1), 0);
    }

    #[test]
    fn shard_of_keeps_a_region_together() {
        // All 64 pages of one region — the span of the largest generated
        // request — route to the same shard.
        let region_shard = shard_of(0, 8);
        for lpn in 0..(1u64 << REGION_BITS) {
            assert_eq!(shard_of(lpn, 8), region_shard);
        }
    }

    #[test]
    fn shard_of_spreads_adjacent_regions() {
        let mut hit = vec![false; 8];
        for region in 0..64u64 {
            hit[shard_of(region << REGION_BITS, 8)] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never hit: {hit:?}");
    }

    #[test]
    fn every_request_is_served_exactly_once() {
        let trace = mixed_trace(1_000);
        let report = serve_trace(&config(4, 16), &trace).unwrap();
        assert_eq!(report.shards.len(), 4);
        assert_eq!(report.total_requests(), trace.len() as u64);
        for s in &report.shards {
            assert_eq!(s.stats.total_requests, s.requests);
            assert_eq!(s.agent.decisions, s.requests);
            assert!(s.batches >= s.requests.div_ceil(16));
            assert_eq!(s.coop_syncs, 0, "no cooperation by default");
            assert_eq!(s.agent.shared_published, 0);
            assert_eq!(s.agent.shared_absorbed, 0);
        }
    }

    #[test]
    fn seeded_run_reproduces_identical_metrics() {
        let trace = mixed_trace(1_000);
        let cfg = config(4, 32);
        let a = serve_trace(&cfg, &trace).unwrap();
        let b = serve_trace(&cfg, &trace).unwrap();
        assert_eq!(a, b, "sharded serving must be deterministic");
        assert_eq!(a.aggregate(), b.aggregate());
    }

    #[test]
    fn more_shards_increase_aggregate_iops() {
        let trace = mixed_trace(1_500);
        let one = serve_trace(&config(1, 16).with_time_scale(40.0), &trace).unwrap();
        let four = serve_trace(&config(4, 16).with_time_scale(40.0), &trace).unwrap();
        let (i1, i4) = (one.aggregate().iops, four.aggregate().iops);
        assert!(
            i4 > i1,
            "4 shards ({i4:.0} IOPS) should out-serve 1 shard ({i1:.0} IOPS)"
        );
    }

    #[test]
    fn single_shard_single_batch_matches_sequential_structure() {
        // max_batch = 1 degenerates to the sequential decision path: one
        // request per inference round.
        let trace = msrc::generate(msrc::Workload::Rsrch0, 300, 3);
        let report = serve_trace(&config(1, 1), &trace).unwrap();
        assert_eq!(report.shards[0].batches, 300);
        assert!((report.shards[0].avg_batch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_an_error() {
        let trace = sibyl_trace::Trace::from_requests("empty", vec![]);
        assert_eq!(
            serve_trace(&config(2, 8), &trace),
            Err(ServeError::EmptyTrace)
        );
        assert_eq!(
            ServeError::EmptyTrace.to_string(),
            "trace contains no requests"
        );
    }

    #[test]
    fn streamed_run_is_bit_identical_to_vec_fed_run() {
        // Satellite of the scale work: feeding the engine from the seeded
        // generator stream must reproduce the materialized golden Mix2
        // run exactly — same shard reports, same placement decisions —
        // because the stream's prefix is bit-identical to the Vec and the
        // router is the same loop either way.
        let n = 600;
        let trace = mix::Mix::Mix2.generate(n, 7);
        let cfg = config(4, 8);
        let vec_fed = serve_trace(&cfg, &trace).unwrap();
        let streamed = serve_stream(&cfg, mix::Mix::Mix2.stream(n, 7).take(trace.len())).unwrap();
        assert_eq!(vec_fed, streamed);
        // And a materialized trace adapts into the stream path unchanged.
        let adapted = serve_stream(&cfg, trace.clone().into_stream()).unwrap();
        assert_eq!(vec_fed, adapted);
    }

    #[test]
    fn streamed_runs_scale_directory_with_footprint_not_length() {
        // Serving the same infinite stream for 4x the requests must not
        // grow the directory 4x: pages repeat, the directory tracks the
        // footprint. (The wider sweep lives in the sec14_scale bench.)
        let cfg = config(2, 8);
        let short = serve_stream(&cfg, mix::Mix::Mix2.stream(400, 7).take(800)).unwrap();
        let long = serve_stream(&cfg, mix::Mix::Mix2.stream(400, 7).take(3_200)).unwrap();
        assert_eq!(long.total_requests(), 4 * short.total_requests());
        assert!(short.peak_directory_bytes() > 0);
        assert!(
            long.total_directory_bytes() < 3 * short.total_directory_bytes(),
            "directory must be footprint-bounded: short {} bytes, long {} bytes",
            short.total_directory_bytes(),
            long.total_directory_bytes()
        );
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert_eq!(
            serve_stream(&config(2, 8), std::iter::empty()),
            Err(ServeError::EmptyTrace)
        );
    }

    #[test]
    fn degenerate_config_is_an_error_not_a_panic() {
        let trace = mixed_trace(10);
        assert_eq!(
            serve_trace(&config(0, 8), &trace),
            Err(ServeError::ZeroShards)
        );
        assert_eq!(
            serve_trace(&config(2, 0), &trace),
            Err(ServeError::ZeroMaxBatch)
        );
        let coop_zero = config(2, 8).with_coop(CoopConfig::new(CoopMode::Both).with_sync_period(0));
        assert!(matches!(
            serve_trace(&coop_zero, &trace),
            Err(ServeError::Coop(_))
        ));
    }

    #[test]
    fn background_training_mode_serves_and_shuts_down() {
        let mut cfg = config(2, 16);
        cfg.sibyl.training_mode = sibyl_core::TrainingMode::Background;
        let trace = mixed_trace(500);
        let report = serve_trace(&cfg, &trace).unwrap();
        assert_eq!(report.total_requests(), trace.len() as u64);
    }

    #[test]
    fn cooperative_modes_serve_every_request_and_sync() {
        let trace = mixed_trace(1_000);
        for mode in [
            CoopMode::SharedReplay,
            CoopMode::WeightAverage,
            CoopMode::Both,
        ] {
            let cfg = config(4, 16).with_coop(CoopConfig::new(mode).with_sync_period(4));
            let report = serve_trace(&cfg, &trace).unwrap();
            assert_eq!(report.total_requests(), trace.len() as u64, "{mode}");
            let total_syncs: u64 = report.shards.iter().map(|s| s.coop_syncs).sum();
            assert!(total_syncs > 0, "{mode}: no sync rounds happened");
            if mode.shares_experiences() {
                let absorbed: u64 = report.shards.iter().map(|s| s.agent.shared_absorbed).sum();
                assert!(absorbed > 0, "{mode}: nothing crossed shard boundaries");
            }
            if mode.averages_weights() {
                for s in &report.shards {
                    assert!(
                        s.agent.weight_syncs >= s.coop_syncs,
                        "{mode}: shard {} adopted no averaged weights",
                        s.shard
                    );
                }
            }
        }
    }

    #[test]
    fn cooperative_runs_are_deterministic() {
        let trace = mixed_trace(800);
        for mode in [
            CoopMode::SharedReplay,
            CoopMode::WeightAverage,
            CoopMode::Both,
        ] {
            let cfg = config(4, 16).with_coop(CoopConfig::new(mode).with_sync_period(4));
            let a = serve_trace(&cfg, &trace).unwrap();
            let b = serve_trace(&cfg, &trace).unwrap();
            assert_eq!(a, b, "{mode}: cooperative serving must be deterministic");
        }
    }

    #[test]
    fn independent_mode_is_bit_identical_to_baseline_engine() {
        // CoopMode::Independent must take the exact PR-2 code path: no
        // coordinator, bounded queues, no tap — so its report matches a
        // config that never mentions cooperation, bit for bit, even with
        // the other coop knobs set to exotic values.
        let trace = mixed_trace(1_000);
        let baseline = serve_trace(&config(4, 16), &trace).unwrap();
        let explicit = config(4, 16).with_coop(
            CoopConfig::new(CoopMode::Independent)
                .with_sync_period(3)
                .with_share_fraction(0.9),
        );
        let report = serve_trace(&explicit, &trace).unwrap();
        assert_eq!(report, baseline);
        for s in &report.shards {
            assert_eq!(s.coop_syncs, 0);
            assert_eq!(s.agent.shared_published, 0);
            assert_eq!(s.agent.shared_absorbed, 0);
        }
    }

    #[test]
    fn cooperation_survives_tiny_queues_without_deadlock() {
        // A barrier-parked shard must not wedge the router: cooperative
        // runs switch to unbounded queues, so even a 1-slot capacity and
        // a short sync period finish.
        let trace = mixed_trace(600);
        let cfg = config(4, 8)
            .with_queue_capacity(1)
            .with_coop(CoopConfig::new(CoopMode::Both).with_sync_period(1));
        let report = serve_trace(&cfg, &trace).unwrap();
        assert_eq!(report.total_requests(), trace.len() as u64);
    }

    #[test]
    fn no_migration_is_bit_identical_to_baseline_engine() {
        // MigratePolicyKind::None must take the exact pre-subsystem code
        // path: no migrator, no ticks — so its report matches a config
        // that never mentions migration, bit for bit, even with every
        // other migration knob set to exotic values.
        let trace = mixed_trace(1_000);
        let baseline = serve_trace(&config(4, 16), &trace).unwrap();
        let explicit = config(4, 16).with_migrate(
            MigrateConfig::new(MigratePolicyKind::None)
                .with_scan_period(1)
                .with_max_moves(1_000)
                .with_promote_min_heat(1)
                .with_seed(99),
        );
        let report = serve_trace(&explicit, &trace).unwrap();
        assert_eq!(report, baseline);
        for s in &report.shards {
            assert_eq!(s.migrations, 0);
            assert_eq!(s.migration_busy_us, 0.0);
            assert_eq!(s.stats.bg_migration_events, 0);
        }
    }

    #[test]
    fn active_migration_moves_pages_and_charges_device_time() {
        let trace = mixed_trace(1_500);
        for policy in [MigratePolicyKind::HotCold, MigratePolicyKind::Rl] {
            let cfg = config(2, 16).with_migrate(MigrateConfig::new(policy).with_scan_period(2));
            let report = serve_trace(&cfg, &trace).unwrap();
            assert_eq!(report.total_requests(), trace.len() as u64, "{policy}");
            let moved: u64 = report.shards.iter().map(|s| s.migrations).sum();
            let busy: f64 = report.shards.iter().map(|s| s.migration_busy_us).sum();
            assert!(moved > 0, "{policy}: no pages migrated");
            assert!(busy > 0.0, "{policy}: migration I/O must cost device time");
            for s in &report.shards {
                assert_eq!(
                    s.stats.bg_promoted_pages + s.stats.bg_demoted_pages,
                    s.migrations,
                    "{policy}: shard {} counters disagree with manager stats",
                    s.shard
                );
            }
        }
    }

    #[test]
    fn migrating_runs_are_deterministic() {
        let trace = mixed_trace(1_000);
        for policy in [MigratePolicyKind::HotCold, MigratePolicyKind::Rl] {
            let cfg = config(4, 16).with_migrate(MigrateConfig::new(policy).with_scan_period(4));
            let a = serve_trace(&cfg, &trace).unwrap();
            let b = serve_trace(&cfg, &trace).unwrap();
            assert_eq!(a, b, "{policy}: migrating runs must be deterministic");
        }
    }

    #[test]
    fn degenerate_migration_config_is_an_error_not_a_panic() {
        let trace = mixed_trace(10);
        let cfg = config(2, 8)
            .with_migrate(MigrateConfig::new(MigratePolicyKind::HotCold).with_scan_period(0));
        assert!(matches!(
            serve_trace(&cfg, &trace),
            Err(ServeError::Migrate(_))
        ));
    }

    #[test]
    fn dead_shard_surfaces_as_shard_down_error() {
        // A capacity-limited slowest device makes StorageManager::new
        // panic inside every worker thread; the router must fold that
        // into ServeError::ShardDown instead of panicking on send/join.
        let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd())
            .with_capacity_pages(vec![10, 10]);
        let cfg = ServeConfig::new(hss)
            .with_shards(2)
            .with_max_batch(8)
            .with_sibyl(fast_sibyl());
        let trace = mixed_trace(200);
        match serve_trace(&cfg, &trace) {
            Err(ServeError::ShardDown { shard }) => {
                assert!(shard < 2);
                assert!(ServeError::ShardDown { shard }
                    .to_string()
                    .contains(&format!("shard {shard}")));
            }
            other => panic!("expected ShardDown, got {other:?}"),
        }
    }

    #[test]
    fn nn_cost_charges_latency_and_amortizes_with_batch() {
        let trace = mixed_trace(800);
        let free = serve_trace(&config(2, 1), &trace).unwrap();
        let charged_b1 = serve_trace(&config(2, 1).with_nn_ns_per_mac(10.0), &trace).unwrap();
        let charged_b32 = serve_trace(&config(2, 32).with_nn_ns_per_mac(10.0), &trace).unwrap();
        assert!(
            charged_b1.aggregate().avg_latency_us > free.aggregate().avg_latency_us,
            "charging inference time must raise latency"
        );
        let busy_b1: f64 = charged_b1.shards.iter().map(|s| s.nn_busy_us).sum();
        let busy_b32: f64 = charged_b32.shards.iter().map(|s| s.nn_busy_us).sum();
        assert!(busy_b1 > 0.0 && busy_b32 > 0.0);
        assert!(
            busy_b32 < busy_b1 / 8.0,
            "batched inference must amortize the pass: {busy_b32:.0} vs {busy_b1:.0} µs"
        );
        assert_eq!(
            free.shards.iter().map(|s| s.nn_busy_us).sum::<f64>(),
            0.0,
            "disabled model must charge nothing"
        );
        assert_eq!(
            free.shards.iter().map(|s| s.train_busy_us).sum::<f64>(),
            0.0,
            "disabled model must charge no training either"
        );
    }

    #[test]
    fn training_is_charged_through_the_nn_cost_model() {
        let trace = mixed_trace(1_200);
        let cfg = config(2, 8).with_nn_ns_per_mac(10.0);
        let report = serve_trace(&cfg, &trace).unwrap();
        for s in &report.shards {
            assert!(
                s.agent.train_steps > 0,
                "shard {} never trained — the charge has nothing to bill",
                s.shard
            );
            // Each train step bills batches_per_step forward+backward
            // weight streams of the 1380-MAC C51 net at 10 ns/MAC.
            let expected = s.agent.train_steps as f64
                * 2.0
                * cfg.sibyl.batches_per_step as f64
                * 1380.0
                * 10.0
                / 1_000.0;
            assert!(
                (s.train_busy_us - expected).abs() < 1e-6 * expected,
                "shard {}: train_busy_us {} vs expected {}",
                s.shard,
                s.train_busy_us,
                expected
            );
        }
        // The training bill delays subsequent batches, so it must show up
        // in served latency on top of the inference-only charge.
        let inference_only = {
            let mut sib = fast_sibyl();
            sib.train_interval = u64::MAX; // never train
            let cfg = ServeConfig::new(HssConfig::dual(
                DeviceSpec::optane_ssd(),
                DeviceSpec::tlc_ssd(),
            ))
            .with_shards(2)
            .with_max_batch(8)
            .with_nn_ns_per_mac(10.0)
            .with_sibyl(sib);
            serve_trace(&cfg, &trace).unwrap()
        };
        assert_eq!(
            inference_only
                .shards
                .iter()
                .map(|s| s.train_busy_us)
                .sum::<f64>(),
            0.0,
            "an untrained run must bill no training time"
        );
    }

    #[test]
    fn background_training_is_never_billed_to_latency() {
        // A background trainer runs concurrently off the decision path,
        // so the §10 model must not charge it (and must not let its
        // thread-schedule-dependent step timing perturb latencies).
        let trace = mixed_trace(800);
        let mut cfg = config(2, 8).with_nn_ns_per_mac(10.0);
        cfg.sibyl.training_mode = sibyl_core::TrainingMode::Background;
        let report = serve_trace(&cfg, &trace).unwrap();
        assert_eq!(
            report.shards.iter().map(|s| s.train_busy_us).sum::<f64>(),
            0.0,
            "background training must not be billed"
        );
        assert!(
            report.shards.iter().map(|s| s.nn_busy_us).sum::<f64>() > 0.0,
            "inference is still charged"
        );
    }

    #[test]
    fn telemetry_off_is_bit_identical_to_baseline_engine() {
        // TelemetryConfig::off() must take the exact pre-subsystem code
        // path: no sink, no events, no registry — so its report matches
        // a config that never mentions telemetry, bit for bit, even with
        // the ring capacity set to an exotic value.
        let trace = mixed_trace(1_000);
        let baseline = serve_trace(&config(4, 16), &trace).unwrap();
        let mut off = TelemetryConfig::off();
        off.event_capacity = 7;
        let report = serve_trace(&config(4, 16).with_telemetry(off), &trace).unwrap();
        assert_eq!(report, baseline);
        assert!(report.telemetry.is_none());
    }

    #[test]
    fn telemetry_observes_without_perturbing_placement() {
        // Enabling telemetry must change zero placement decisions: the
        // per-shard reports (latencies, placements, agent counters) stay
        // bit-identical; only the `telemetry` section appears.
        let trace = mixed_trace(1_000);
        let cfg = config(4, 16)
            .with_curve_every(4)
            .with_migrate(MigrateConfig::new(MigratePolicyKind::HotCold).with_scan_period(4));
        let baseline = serve_trace(&cfg, &trace).unwrap();
        let full =
            serve_trace(&cfg.clone().with_telemetry(TelemetryConfig::full()), &trace).unwrap();
        assert_eq!(full.shards, baseline.shards);
        let telemetry = full.telemetry.as_ref().expect("telemetry section");
        assert_eq!(telemetry.shards.len(), 4);
        for (shard, report) in telemetry.shards.iter().zip(&full.shards) {
            assert_eq!(shard.shard, report.shard);
            assert!(shard.recorded_events > 0, "shard {} silent", shard.shard);
            assert_eq!(shard.registry.counter("serve.requests"), report.requests);
            assert_eq!(shard.registry.counter("serve.batches"), report.batches);
            assert_eq!(
                shard.registry.counter("hss.requests"),
                report.stats.total_requests
            );
            let latency = shard.registry.histogram("serve.latency_us").unwrap();
            assert_eq!(latency.count(), report.requests);
            assert_eq!(
                shard.registry.counter("migrate.promoted_pages")
                    + shard.registry.counter("migrate.demoted_pages"),
                report.migrations
            );
            // Full level samples the RL probe at the curve cadence and
            // drains the agent's internal loss series.
            assert!(shard.registry.series("rl.epsilon").is_some());
            assert!(shard.registry.series("rl.train_loss").is_some());
            assert!(shard.registry.histogram("rl.replay_age").is_some());
            assert_eq!(
                shard.registry.series("curve.avg_latency_us").unwrap().len(),
                report.curve.len()
            );
            // The wall-clock total lives in the measured namespace only.
            assert!(shard.registry.counter("measured.shard_run_ns") > 0);
        }
        // Events level records the trace and counters but no histograms.
        let events = serve_trace(
            &cfg.clone().with_telemetry(TelemetryConfig::events()),
            &trace,
        )
        .unwrap();
        assert_eq!(events.shards, baseline.shards);
        for shard in &events.telemetry.as_ref().unwrap().shards {
            assert!(shard.registry.histogram("serve.latency_us").is_none());
            assert!(shard.recorded_events > 0);
        }
    }

    #[test]
    fn telemetry_event_trace_covers_the_taxonomy() {
        let trace = mixed_trace(1_000);
        let cfg = config(2, 8)
            .with_nn_ns_per_mac(10.0)
            .with_migrate(MigrateConfig::new(MigratePolicyKind::HotCold).with_scan_period(4))
            .with_coop(CoopConfig::new(CoopMode::SharedReplay).with_sync_period(4))
            .with_telemetry(TelemetryConfig::full());
        let report = serve_trace(&cfg, &trace).unwrap();
        let telemetry = report.telemetry.unwrap();
        let kinds: std::collections::BTreeSet<&str> = telemetry
            .shards
            .iter()
            .flat_map(|s| s.events.iter().map(|e| e.event.kind()))
            .collect();
        for expected in [
            "batch_decided",
            "request_served",
            "train_step",
            "migration_tick",
            "coop_sync",
        ] {
            assert!(kinds.contains(expected), "no {expected} event recorded");
        }
        // Sequence numbers are per-shard and strictly increasing.
        for shard in &telemetry.shards {
            for w in shard.events.windows(2) {
                assert!(w[0].seq < w[1].seq);
            }
            assert_eq!(shard.registry.counter("coop.syncs"), {
                report
                    .shards
                    .iter()
                    .find(|s| s.shard == shard.shard)
                    .unwrap()
                    .coop_syncs
            });
        }
    }

    #[test]
    fn two_term_decide_cost_reduces_to_per_mac_when_flat() {
        // A TwoTerm fit with `setup_us = macs × ns/MAC / 1000` and zero
        // per-row slope prices batches exactly like the analytic model,
        // so the two configurations must produce bit-identical reports.
        let trace = mixed_trace(800);
        let per_mac = serve_trace(&config(2, 8).with_nn_ns_per_mac(10.0), &trace).unwrap();
        let flat = config(2, 8)
            .with_nn_ns_per_mac(10.0) // training is still billed per MAC
            .with_decide_cost(DecideCost::TwoTerm {
                setup_us: 1_380.0 * 10.0 / 1_000.0,
                per_row_us: 0.0,
            });
        assert_eq!(serve_trace(&flat, &trace).unwrap(), per_mac);
        // A positive per-row slope bills more than the flat fit.
        let sloped = config(2, 8)
            .with_nn_ns_per_mac(10.0)
            .with_decide_cost(DecideCost::TwoTerm {
                setup_us: 1_380.0 * 10.0 / 1_000.0,
                per_row_us: 0.5,
            });
        let sloped_report = serve_trace(&sloped, &trace).unwrap();
        let flat_busy: f64 = per_mac.shards.iter().map(|s| s.nn_busy_us).sum();
        let sloped_busy: f64 = sloped_report.shards.iter().map(|s| s.nn_busy_us).sum();
        assert!(
            sloped_busy > flat_busy,
            "per-row slope must add decide cost: {sloped_busy} vs {flat_busy}"
        );
    }

    #[test]
    fn xray_off_is_bit_identical_to_baseline_engine() {
        // XrayConfig::Off must take the exact pre-subsystem code path:
        // no tracer, no observations — so its report matches a config
        // that never mentions xray, bit for bit, across shard/batch
        // geometries.
        let trace = mixed_trace(1_000);
        for (shards, max_batch) in [(4usize, 16usize), (2, 8)] {
            let baseline = serve_trace(&config(shards, max_batch), &trace).unwrap();
            let explicit = config(shards, max_batch).with_xray(XrayConfig::Off);
            let report = serve_trace(&explicit, &trace).unwrap();
            assert_eq!(report, baseline, "{shards} shards × batch {max_batch}");
            assert!(report.xray.is_none());
        }
    }

    #[test]
    fn xray_observes_without_perturbing_placement() {
        // Enabling span tracing must change zero placement decisions:
        // the per-shard reports stay bit-identical; only the `xray`
        // section appears — with exact critical-path sums.
        let trace = mixed_trace(1_000);
        let cfg = config(4, 16)
            .with_nn_ns_per_mac(10.0)
            .with_migrate(MigrateConfig::new(MigratePolicyKind::HotCold).with_scan_period(4));
        let baseline = serve_trace(&cfg, &trace).unwrap();
        let traced = serve_trace(&cfg.clone().with_xray(XrayConfig::Sampled(2)), &trace).unwrap();
        assert_eq!(traced.shards, baseline.shards);
        let xray = traced.xray.as_ref().expect("xray section");
        assert_eq!(xray.requests_seen(), trace.len() as u64);
        assert!(
            xray.sampled() > 0 && xray.sampled() < xray.requests_seen(),
            "1/4 sampling must trace a strict subset: {}/{}",
            xray.sampled(),
            xray.requests_seen()
        );
        let merged = xray.merged_totals();
        let comp_sum: u64 = merged.components().iter().map(|(_, ns)| ns).sum();
        assert_eq!(comp_sum, merged.latency_ns, "shares must sum to 100%");
        assert!(merged.decide_ns > 0, "charged NN time must be attributed");
        assert!(merged.transfer_ns > 0, "device time must be attributed");
        assert!(
            xray.shards.iter().map(|s| s.migrate_ticks).sum::<u64>() > 0,
            "migration ticks must be observed"
        );
        // Tail forensics: every retained span tree decomposes exactly.
        let tail = xray.tail(5);
        assert!(!tail.is_empty());
        for t in &tail {
            let path = sibyl_xray::critical_path(t);
            assert_eq!(path.total_ns, t.latency_ns);
            let sum: u64 = path.components.iter().map(|(_, ns)| ns).sum();
            assert_eq!(sum, t.latency_ns, "tail trace must decompose exactly");
        }
        assert!(traced
            .xray
            .as_ref()
            .unwrap()
            .breakdown_table()
            .contains("merged"));
    }

    #[test]
    fn xray_sampled_runs_reproduce_identical_folded_exports() {
        let trace = mixed_trace(800);
        let cfg = config(2, 8).with_xray(XrayConfig::Sampled(1));
        let a = serve_trace(&cfg, &trace).unwrap();
        let b = serve_trace(&cfg, &trace).unwrap();
        assert_eq!(a, b, "traced runs must be deterministic");
        let folded = a.xray.as_ref().unwrap().xray_folded();
        assert_eq!(
            folded,
            b.xray.as_ref().unwrap().xray_folded(),
            "folded-stacks exports must be byte-identical"
        );
        assert!(folded.contains("request;hss.access;device.transfer"));
    }

    #[test]
    fn xray_spans_feed_telemetry_histograms() {
        let trace = mixed_trace(800);
        let cfg = config(2, 8)
            .with_nn_ns_per_mac(10.0)
            .with_telemetry(TelemetryConfig::full())
            .with_xray(XrayConfig::Sampled(0));
        let report = serve_trace(&cfg, &trace).unwrap();
        let xray = report.xray.as_ref().expect("xray section");
        let telemetry = report.telemetry.as_ref().expect("telemetry section");
        for (ts, xs) in telemetry.shards.iter().zip(&xray.shards) {
            let lat = ts.registry.histogram("xray.latency_ns").expect("histogram");
            assert_eq!(lat.count(), xs.totals.sampled);
            for name in ["xray.decide_ns", "xray.queue_wait_ns", "xray.transfer_ns"] {
                assert_eq!(
                    ts.registry.histogram(name).expect(name).count(),
                    xs.totals.sampled
                );
            }
        }
    }

    #[test]
    fn degenerate_xray_config_is_an_error_not_a_panic() {
        let trace = mixed_trace(10);
        let cfg = config(2, 8).with_xray(XrayConfig::Sampled(64));
        assert!(matches!(
            serve_trace(&cfg, &trace),
            Err(ServeError::Xray(_))
        ));
    }

    #[test]
    fn learning_curve_sampling_is_cumulative_and_optional() {
        let trace = mixed_trace(800);
        let off = serve_trace(&config(2, 16), &trace).unwrap();
        assert!(off.shards.iter().all(|s| s.curve.is_empty()));
        let on = serve_trace(&config(2, 16).with_curve_every(4), &trace).unwrap();
        for s in &on.shards {
            assert!(!s.curve.is_empty(), "shard {} sampled no points", s.shard);
            for w in s.curve.windows(2) {
                assert!(w[0].requests < w[1].requests, "curve must move forward");
            }
            assert_eq!(s.curve.len() as u64, s.batches / 4);
        }
    }
}
