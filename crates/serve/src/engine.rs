//! The sharded serving engine: LBA-hash routing, per-shard workers, and
//! batched-inference request draining.

use crossbeam::channel::{bounded, Receiver};

use sibyl_core::SibylAgent;
use sibyl_hss::{AccessOutcome, StorageManager};
use sibyl_trace::{IoRequest, Trace};

use crate::config::ServeConfig;
use crate::report::{ServeReport, ShardReport};

/// Errors from serving runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The trace contains no requests.
    EmptyTrace,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::EmptyTrace => write!(f, "trace contains no requests"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Pages per routing region (`2^REGION_BITS` = 64 pages, 256 KiB at 4 KiB
/// pages). Sized to the trace generators' maximum request size, so a
/// request's pages almost always share one region — and therefore one
/// shard.
pub const REGION_BITS: u32 = 6;

/// The shard a request routes to: a mixing hash of its starting LPN's
/// *region* (`lpn >> REGION_BITS`) modulo the shard count. Same LPN →
/// same region → same shard, so each shard's access-frequency features
/// stay meaningful, and whole regions colocate, so multi-page requests
/// land on the shard that owns (nearly all of) their pages.
///
/// Routing is by the request's *starting* LPN: a request that straddles
/// a region boundary carries its tail pages to the start region's shard,
/// so a page in the straddled tail can materialize in more than one
/// shard's private manager. Shard-private copies are modeled
/// independently (no cross-shard invalidation) — an approximation that
/// only occurs at region boundaries and is the price of stateless
/// routing; cross-shard migration is an open ROADMAP item.
pub fn shard_of(lpn: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    // splitmix64 finalizer — cheap, stateless, and avalanching, so
    // adjacent regions spread evenly across shards.
    let mut h = (lpn >> REGION_BITS).wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h % shards as u64) as usize
}

/// Serves a whole trace through the sharded engine and collects per-shard
/// reports.
///
/// The caller thread acts as the router: it walks the trace in timestamp
/// order, compresses timestamps by [`ServeConfig::time_scale`], and sends
/// each request over a bounded channel to the shard selected by
/// [`shard_of`]. Each worker shard owns a private
/// [`StorageManager`] + [`SibylAgent`] pair and repeatedly blocks until
/// it has accumulated [`ServeConfig::max_batch`] requests (or the trace
/// is exhausted), decides the whole batch with one
/// [`SibylAgent::place_batch`] call — batched C51 inference — then
/// serves the batch and feeds the outcomes back.
///
/// Because shards fill batches by blocking on their queue rather than
/// draining opportunistically, batch boundaries are fixed chunks of each
/// shard's request subsequence. With the default
/// [`TrainingMode::Synchronous`](sibyl_core::TrainingMode), results are
/// therefore bit-identical across runs for a given config and trace,
/// regardless of thread scheduling.
/// [`TrainingMode::Background`](sibyl_core::TrainingMode) keeps the
/// trainer off the decision path instead: weight adoption then depends
/// on trainer-thread timing, so run-to-run metric drift is expected, not
/// a bug.
///
/// # Errors
///
/// Returns [`ServeError::EmptyTrace`] for an empty trace.
///
/// # Panics
///
/// Panics if `config` is invalid (see [`ServeConfig::validate`]) or a
/// worker thread cannot be spawned.
pub fn serve_trace(config: &ServeConfig, trace: &Trace) -> Result<ServeReport, ServeError> {
    config.validate();
    if trace.is_empty() {
        return Err(ServeError::EmptyTrace);
    }

    // Pre-compute each shard's footprint so fraction-mode capacities
    // resolve against the data that shard will actually hold. Sets keep
    // this O(unique pages), not O(total request pages).
    let mut shard_pages: Vec<std::collections::HashSet<u64>> =
        vec![std::collections::HashSet::new(); config.shards];
    for req in trace.iter() {
        let s = shard_of(req.lpn, config.shards);
        shard_pages[s].extend(req.pages());
    }
    let footprints: Vec<u64> = shard_pages.iter().map(|pages| pages.len() as u64).collect();
    drop(shard_pages);

    let mut senders = Vec::with_capacity(config.shards);
    let mut workers = Vec::with_capacity(config.shards);
    for (shard, &footprint) in footprints.iter().enumerate() {
        let (tx, rx) = bounded::<IoRequest>(config.queue_capacity);
        senders.push(tx);
        let resolved = config.hss.resolved(footprint.max(1));
        let mut sibyl = config.sibyl.clone();
        sibyl.seed = config.shard_seed(shard);
        let max_batch = config.max_batch;
        let handle = std::thread::Builder::new()
            .name(format!("sibyl-shard-{shard}"))
            .spawn(move || run_shard(shard, rx, &resolved, sibyl, max_batch))
            .expect("failed to spawn shard worker");
        workers.push(handle);
    }

    // Route. Bounded channels give backpressure: the router stalls when a
    // shard's queue is full instead of buffering the whole trace.
    for req in trace.iter() {
        let mut routed = *req;
        if config.time_scale != 1.0 {
            routed.timestamp_us = (req.timestamp_us as f64 / config.time_scale) as u64;
        }
        let s = shard_of(routed.lpn, config.shards);
        senders[s].send(routed).expect("shard worker disconnected");
    }
    drop(senders); // end-of-trace: workers drain and exit

    let mut shards: Vec<ShardReport> = workers
        .into_iter()
        .map(|h| h.join().expect("shard worker panicked"))
        .collect();
    shards.sort_by_key(|s| s.shard);
    Ok(ServeReport { shards })
}

/// One worker shard's lifetime: fill a batch (blocking), decide it with
/// batched inference, serve it, feed rewards back; repeat until the
/// router hangs up.
fn run_shard(
    shard: usize,
    rx: Receiver<IoRequest>,
    resolved: &sibyl_hss::HssConfig,
    sibyl: sibyl_core::SibylConfig,
    max_batch: usize,
) -> ShardReport {
    let mut manager = StorageManager::new(resolved);
    let mut agent = SibylAgent::new(sibyl);
    let mut batch: Vec<IoRequest> = Vec::with_capacity(max_batch);
    let mut outcomes: Vec<AccessOutcome> = Vec::with_capacity(max_batch);
    let mut batches = 0u64;
    let mut requests = 0u64;
    let mut disconnected = false;
    while !disconnected {
        batch.clear();
        match rx.recv() {
            Ok(req) => batch.push(req),
            Err(_) => break,
        }
        while batch.len() < max_batch {
            match rx.recv() {
                Ok(req) => batch.push(req),
                Err(_) => {
                    disconnected = true;
                    break;
                }
            }
        }
        let targets = agent.place_batch(&batch, &manager);
        outcomes.clear();
        for (req, &target) in batch.iter().zip(&targets) {
            outcomes.push(manager.access(req, target));
        }
        agent.feedback_batch(&outcomes);
        batches += 1;
        requests += batch.len() as u64;
    }
    ShardReport {
        shard,
        requests,
        batches,
        stats: manager.stats().clone(),
        agent: agent.stats().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_core::SibylConfig;
    use sibyl_hss::{DeviceSpec, HssConfig};
    use sibyl_trace::{mix, msrc};

    fn fast_sibyl() -> SibylConfig {
        SibylConfig {
            buffer_capacity: 256,
            train_interval: 128,
            batch_size: 32,
            batches_per_step: 2,
            n_atoms: 11,
            exploration: 0.05,
            exploration_initial: 0.3,
            exploration_decay_requests: 500,
            ..Default::default()
        }
    }

    fn config(shards: usize, max_batch: usize) -> ServeConfig {
        let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
        ServeConfig::new(hss)
            .with_shards(shards)
            .with_max_batch(max_batch)
            .with_sibyl(fast_sibyl())
    }

    fn mixed_trace(n_per_component: usize) -> sibyl_trace::Trace {
        mix::Mix::Mix2.generate(n_per_component, 7)
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for lpn in [0u64, 1, 4096, u64::MAX] {
            let s = shard_of(lpn, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(lpn, 4));
        }
        assert_eq!(shard_of(12345, 1), 0);
    }

    #[test]
    fn shard_of_keeps_a_region_together() {
        // All 64 pages of one region — the span of the largest generated
        // request — route to the same shard.
        let region_shard = shard_of(0, 8);
        for lpn in 0..(1u64 << REGION_BITS) {
            assert_eq!(shard_of(lpn, 8), region_shard);
        }
    }

    #[test]
    fn shard_of_spreads_adjacent_regions() {
        let mut hit = vec![false; 8];
        for region in 0..64u64 {
            hit[shard_of(region << REGION_BITS, 8)] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never hit: {hit:?}");
    }

    #[test]
    fn every_request_is_served_exactly_once() {
        let trace = mixed_trace(1_000);
        let report = serve_trace(&config(4, 16), &trace).unwrap();
        assert_eq!(report.shards.len(), 4);
        assert_eq!(report.total_requests(), trace.len() as u64);
        for s in &report.shards {
            assert_eq!(s.stats.total_requests, s.requests);
            assert_eq!(s.agent.decisions, s.requests);
            assert!(s.batches >= s.requests.div_ceil(16));
        }
    }

    #[test]
    fn seeded_run_reproduces_identical_metrics() {
        let trace = mixed_trace(1_000);
        let cfg = config(4, 32);
        let a = serve_trace(&cfg, &trace).unwrap();
        let b = serve_trace(&cfg, &trace).unwrap();
        assert_eq!(a, b, "sharded serving must be deterministic");
        assert_eq!(a.aggregate(), b.aggregate());
    }

    #[test]
    fn more_shards_increase_aggregate_iops() {
        let trace = mixed_trace(1_500);
        let one = serve_trace(&config(1, 16).with_time_scale(40.0), &trace).unwrap();
        let four = serve_trace(&config(4, 16).with_time_scale(40.0), &trace).unwrap();
        let (i1, i4) = (one.aggregate().iops, four.aggregate().iops);
        assert!(
            i4 > i1,
            "4 shards ({i4:.0} IOPS) should out-serve 1 shard ({i1:.0} IOPS)"
        );
    }

    #[test]
    fn single_shard_single_batch_matches_sequential_structure() {
        // max_batch = 1 degenerates to the sequential decision path: one
        // request per inference round.
        let trace = msrc::generate(msrc::Workload::Rsrch0, 300, 3);
        let report = serve_trace(&config(1, 1), &trace).unwrap();
        assert_eq!(report.shards[0].batches, 300);
        assert!((report.shards[0].avg_batch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_an_error() {
        let trace = sibyl_trace::Trace::from_requests("empty", vec![]);
        assert_eq!(
            serve_trace(&config(2, 8), &trace),
            Err(ServeError::EmptyTrace)
        );
        assert_eq!(
            ServeError::EmptyTrace.to_string(),
            "trace contains no requests"
        );
    }

    #[test]
    fn background_training_mode_serves_and_shuts_down() {
        let mut cfg = config(2, 16);
        cfg.sibyl.training_mode = sibyl_core::TrainingMode::Background;
        let trace = mixed_trace(500);
        let report = serve_trace(&cfg, &trace).unwrap();
        assert_eq!(report.total_requests(), trace.len() as u64);
    }
}
