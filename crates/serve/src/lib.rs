//! # sibyl-serve
//!
//! A sharded placement-serving engine for the Sibyl reproduction: the
//! step from *one agent on one thread* toward the production-scale
//! serving layer the ROADMAP targets.
//!
//! The engine spawns `N` worker shards. Each shard owns a private
//! [`sibyl_hss::StorageManager`] and [`sibyl_core::SibylAgent`] —
//! modeling a scale-out deployment of independent hybrid-storage nodes —
//! and requests are routed to shards by a hash of their starting LBA's
//! 64-page region over bounded `crossbeam` channels ([`shard_of`];
//! requests straddling a region boundary follow their start region, see
//! there for the modeling consequence). Each shard drains
//! its queue in batches of up to [`ServeConfig::max_batch`] requests and
//! decides the whole batch with **one batched C51 inference pass**
//! (`Mlp::infer_batch`): one matrix-matrix product per layer instead
//! of a matrix-vector product per request, bit-identical to per-request
//! inference.
//!
//! Shard agents can **cooperate** through the `sibyl-coop` layer
//! ([`ServeConfig::coop`]): under [`CoopMode::SharedReplay`] each shard
//! publishes a fraction of its experiences into a pool redistributed at
//! sync rounds, under [`CoopMode::WeightAverage`] all shards
//! federated-average their training networks at a barrier every
//! `sync_period` batches, and [`CoopMode::Both`] combines the two.
//! Sync rounds sit at logical batch-count boundaries — never wall-clock
//! time — so cooperation preserves the engine's determinism guarantee.
//! The `sibyl-migrate` background-migration subsystem rides the same
//! discipline ([`ServeConfig::migrate`]): each shard ticks a private
//! migrator every `scan_period` of its own batches, and migration I/O
//! is charged against the shard's device clocks.
//! When [`ServeConfig::nn_ns_per_mac`] is set, the §10 overhead model
//! charges each batch one amortized NN forward pass, so the batching win
//! shows up in latency, not just IOPS.
//!
//! Determinism survives sharding — in the default
//! `TrainingMode::Synchronous`: batch boundaries are fixed chunks of
//! each shard's request subsequence (shards block until a batch fills or
//! the trace ends), and every shard's RNG is seeded from the base seed
//! and the shard index — so a seeded synchronous run reproduces
//! identical per-shard and aggregate metrics regardless of thread
//! scheduling, in every cooperation mode. `TrainingMode::Background`
//! trades that reproducibility for an off-critical-path trainer per
//! shard: weight adoption depends on trainer timing, so metrics drift
//! run to run by design (cooperative modes therefore reject it).
//!
//! ## Quickstart
//!
//! ```rust
//! use sibyl_hss::{DeviceSpec, HssConfig};
//! use sibyl_serve::{serve_trace, ServeConfig};
//! use sibyl_trace::msrc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Serve an MSRC-like workload across 2 shards with batches of 16.
//! let trace = msrc::generate(msrc::Workload::Rsrch0, 2_000, 42);
//! let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
//! let config = ServeConfig::new(hss).with_shards(2).with_max_batch(16);
//! let report = serve_trace(&config, &trace)?;
//! assert_eq!(report.total_requests(), 2_000);
//! let agg = report.aggregate();
//! println!(
//!     "{} requests, {:.0} aggregate IOPS, {:.1} µs mean latency",
//!     agg.total_requests, agg.iops, agg.avg_latency_us,
//! );
//! # Ok(())
//! # }
//! ```
//!
//! For experiment-style results in the paper's metric vocabulary
//! (normalized latency/IOPS per shard), use `sibyl_sim::ServeExperiment`,
//! which wraps this engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;
mod report;

pub use config::{DecideCost, ServeConfig};
pub use engine::{serve_stream, serve_trace, shard_of, ServeError, REGION_BITS};
pub use report::{Aggregate, CurvePoint, ServeReport, ShardReport};

// Re-exported so engine users can configure cooperation, background
// migration, decide-path precision, telemetry, and span tracing without
// direct `sibyl-coop`/`sibyl-migrate`/`sibyl-core`/`sibyl-telemetry`/
// `sibyl-xray` dependencies.
pub use sibyl_coop::{CoopConfig, CoopConfigError, CoopMode};
pub use sibyl_core::QuantMode;
pub use sibyl_migrate::{MigrateConfig, MigrateConfigError, MigratePolicyKind};
pub use sibyl_telemetry::{
    ShardTelemetry, TelemetryConfig, TelemetryConfigError, TelemetryLevel, TelemetryReport,
    TraceEvent,
};
pub use sibyl_xray::{ShardXray, XrayConfig, XrayConfigError, XrayReport};
