//! Per-shard and aggregate results of a serving run.

use sibyl_core::AgentStats;
use sibyl_hss::HssStats;
use sibyl_telemetry::TelemetryReport;
use sibyl_xray::XrayReport;

/// One cumulative learning-curve sample, taken every
/// [`ServeConfig::curve_every`](crate::ServeConfig::curve_every) batches
/// of a shard's run. Values are running totals up to the sample point,
/// so a curve of falling `avg_latency_us` (or rising
/// `fast_placement_fraction`) shows the agent learning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Requests served by the shard up to this sample.
    pub requests: u64,
    /// Cumulative average request latency (µs) up to this sample.
    pub avg_latency_us: f64,
    /// Cumulative fraction of requests placed on the fastest device.
    pub fast_placement_fraction: f64,
}

impl CurvePoint {
    /// Snapshots a manager's running statistics into a sample.
    pub fn from_stats(stats: &HssStats) -> Self {
        CurvePoint {
            requests: stats.total_requests,
            avg_latency_us: stats.avg_latency_us(),
            fast_placement_fraction: stats.placement_fraction(0),
        }
    }
}

/// What one worker shard did during a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// The shard's index (its position in the LBA-hash partition).
    pub shard: usize,
    /// Requests routed to — and served by — this shard.
    pub requests: u64,
    /// Batched-inference rounds the shard executed.
    pub batches: u64,
    /// Resident bytes of the shard's compact page directory at the end of
    /// the run. The directory is append-only (pages move between devices
    /// but are never forgotten), so this is also the run's peak — and it
    /// scales with the shard's unique-page *footprint*, not the number of
    /// requests served, which is the invariant the `sec14_scale` bench
    /// pins for 10M-request streamed runs.
    pub directory_bytes: u64,
    /// Distinct logical pages the shard's directory tracks (ever placed
    /// on any device).
    pub directory_pages: u64,
    /// Cooperative sync rounds this shard participated in (0 in
    /// [`CoopMode::Independent`](sibyl_coop::CoopMode)).
    pub coop_syncs: u64,
    /// Simulated NN-inference time charged to this shard's requests (µs;
    /// 0 when [`ServeConfig::nn_ns_per_mac`](crate::ServeConfig) is 0).
    pub nn_busy_us: f64,
    /// Simulated NN-*training* time charged through the same §10 cost
    /// model (µs): each train step is billed `batches_per_step` batched
    /// forward+backward weight streams at
    /// [`ServeConfig::nn_ns_per_mac`](crate::ServeConfig), and the charge
    /// delays the shard's next batch. 0 when the cost model is off or
    /// training runs on a background thread (concurrent, not charged).
    pub train_busy_us: f64,
    /// Pages moved by the shard's background-migration ticks (promotions
    /// plus demotions; 0 when
    /// [`ServeConfig::migrate`](crate::ServeConfig) runs no policy).
    pub migrations: u64,
    /// Device time the shard's background-migration I/O consumed (µs).
    /// Charged against the shard's device clocks, so foreground requests
    /// queue behind it — this is contention, not free background work.
    pub migration_busy_us: f64,
    /// Learning-curve samples (empty unless
    /// [`ServeConfig::curve_every`](crate::ServeConfig) is set).
    pub curve: Vec<CurvePoint>,
    /// The shard's storage-manager statistics (latency, IOPS, evictions).
    pub stats: HssStats,
    /// The shard's agent counters (decisions, explorations, train steps).
    pub agent: AgentStats,
}

impl ShardReport {
    /// Mean requests per batched-inference round.
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// Aggregate metrics across all shards of a serving run.
///
/// Shards run in parallel over the same simulated clock, so aggregate
/// throughput uses the union of the shards' busy spans: total requests
/// divided by `max(last completion) − min(first arrival)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Requests served across all shards.
    pub total_requests: u64,
    /// Request-weighted mean latency in microseconds.
    pub avg_latency_us: f64,
    /// Largest single-request latency across shards (µs).
    pub max_latency_us: f64,
    /// Aggregate throughput in I/O operations per second.
    pub iops: f64,
    /// Pages evicted across all shards.
    pub evicted_pages: u64,
    /// Pages migrated toward policy targets across all shards.
    pub migrated_pages: u64,
    /// Fraction of requests placed on the fastest device, across shards.
    pub fast_placement_fraction: f64,
}

/// The result of one [`crate::serve_trace`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// One report per shard, ordered by shard index.
    pub shards: Vec<ShardReport>,
    /// Per-shard telemetry (registries and event traces), present only
    /// when [`ServeConfig::telemetry`](crate::ServeConfig) is enabled.
    /// `measured.*` wall-clock entries inside are excluded from this
    /// report's `PartialEq`, so two identically-seeded enabled runs still
    /// compare equal.
    pub telemetry: Option<TelemetryReport>,
    /// Per-request span-tracing results (critical-path breakdown, folded
    /// stacks, tail forensics), present only when
    /// [`ServeConfig::xray`](crate::ServeConfig) samples. Spans live in
    /// logical (simulated) time, so this section is part of the
    /// deterministic result: two identically-seeded runs produce equal
    /// reports — tracing included.
    pub xray: Option<XrayReport>,
}

impl ServeReport {
    /// Requests served across all shards.
    pub fn total_requests(&self) -> u64 {
        self.shards.iter().map(|s| s.requests).sum()
    }

    /// The largest single shard's resident directory bytes — the run's
    /// peak per-shard metadata footprint (each shard's directory already
    /// reports its own peak; see [`ShardReport::directory_bytes`]).
    pub fn peak_directory_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.directory_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total resident directory bytes across all shards.
    pub fn total_directory_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.directory_bytes).sum()
    }

    /// Total distinct pages tracked across all shards' directories.
    pub fn total_directory_pages(&self) -> u64 {
        self.shards.iter().map(|s| s.directory_pages).sum()
    }

    /// Folds the per-shard statistics into aggregate metrics.
    pub fn aggregate(&self) -> Aggregate {
        let mut total_requests = 0u64;
        let mut sum_latency = 0.0f64;
        let mut max_latency = 0.0f64;
        let mut evicted = 0u64;
        let mut migrated = 0u64;
        let mut fast_placements = 0u64;
        let mut first_arrival = f64::INFINITY;
        let mut last_completion = f64::NEG_INFINITY;
        for s in &self.shards {
            if s.stats.total_requests == 0 {
                continue;
            }
            total_requests += s.stats.total_requests;
            sum_latency += s.stats.sum_latency_us;
            max_latency = max_latency.max(s.stats.max_latency_us);
            evicted += s.stats.evicted_pages;
            migrated += s.stats.migrated_pages;
            fast_placements += s.stats.placements.first().copied().unwrap_or(0);
            first_arrival = first_arrival.min(s.stats.first_arrival_us);
            last_completion = last_completion.max(s.stats.last_completion_us);
        }
        let span = last_completion - first_arrival;
        Aggregate {
            total_requests,
            avg_latency_us: if total_requests == 0 {
                0.0
            } else {
                sum_latency / total_requests as f64
            },
            max_latency_us: max_latency,
            iops: if total_requests == 0 || span <= 0.0 {
                0.0
            } else {
                total_requests as f64 / span * 1e6
            },
            evicted_pages: evicted,
            migrated_pages: migrated,
            fast_placement_fraction: if total_requests == 0 {
                0.0
            } else {
                fast_placements as f64 / total_requests as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(shard: usize, requests: u64, sum_lat: f64, span: (f64, f64)) -> ShardReport {
        let mut stats = HssStats::new(2);
        stats.total_requests = requests;
        stats.sum_latency_us = sum_lat;
        stats.max_latency_us = sum_lat / requests.max(1) as f64 * 2.0;
        stats.first_arrival_us = span.0;
        stats.last_completion_us = span.1;
        stats.placements = vec![requests / 2, requests - requests / 2];
        ShardReport {
            shard,
            requests,
            batches: requests.div_ceil(8),
            directory_bytes: 0,
            directory_pages: 0,
            coop_syncs: 0,
            nn_busy_us: 0.0,
            train_busy_us: 0.0,
            migrations: 0,
            migration_busy_us: 0.0,
            curve: Vec::new(),
            stats,
            agent: AgentStats::default(),
        }
    }

    #[test]
    fn aggregate_weights_by_requests() {
        let report = ServeReport {
            shards: vec![
                shard(0, 100, 1_000.0, (0.0, 1e6)),
                shard(1, 300, 9_000.0, (0.0, 2e6)),
            ],
            telemetry: None,
            xray: None,
        };
        let agg = report.aggregate();
        assert_eq!(agg.total_requests, 400);
        assert!((agg.avg_latency_us - 25.0).abs() < 1e-9);
        // Span = overlap of parallel shards: 2 seconds → 200 IOPS.
        assert!((agg.iops - 200.0).abs() < 1e-9);
        assert!((agg.fast_placement_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let report = ServeReport {
            shards: vec![],
            telemetry: None,
            xray: None,
        };
        let agg = report.aggregate();
        assert_eq!(agg.total_requests, 0);
        assert_eq!(agg.iops, 0.0);
        assert_eq!(agg.avg_latency_us, 0.0);
    }

    #[test]
    fn avg_batch_divides() {
        let s = shard(0, 100, 1_000.0, (0.0, 1e6));
        assert!((s.avg_batch() - 100.0 / 13.0).abs() < 1e-9);
    }
}
