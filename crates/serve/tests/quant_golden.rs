//! End-to-end golden pins for the `QuantMode` decide-path knob.
//!
//! The f16 inference fast path quantizes the inference network's weight
//! *storage* to binary16; the claim the serving layer needs is stronger
//! than an error bound — on a real trace, quantization must change
//! **zero** placement decisions, or divergence compounds request by
//! request. Because the engine is deterministic and its modeled NN bill
//! is precision-independent (`nn_ns_per_mac` charges MACs, not bits), an
//! identical decision sequence implies an identical [`ServeReport`] —
//! hit rates, latencies, learning curves, everything — so these tests
//! assert full-report equality, the strongest available form of the pin.

use sibyl_core::SibylConfig;
use sibyl_hss::{DeviceSpec, HssConfig};
use sibyl_serve::{serve_trace, QuantMode, ServeConfig};
use sibyl_trace::mix;

fn fast_sibyl() -> SibylConfig {
    SibylConfig {
        buffer_capacity: 256,
        train_interval: 128,
        batch_size: 32,
        batches_per_step: 2,
        n_atoms: 11,
        exploration: 0.05,
        exploration_initial: 0.3,
        exploration_decay_requests: 500,
        ..Default::default()
    }
}

fn config(shards: usize, max_batch: usize) -> ServeConfig {
    let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
    ServeConfig::new(hss)
        .with_shards(shards)
        .with_max_batch(max_batch)
        .with_nn_ns_per_mac(20.0)
        .with_sibyl(fast_sibyl())
}

fn mixed_trace(n_per_component: usize) -> sibyl_trace::Trace {
    mix::Mix::Mix2.generate(n_per_component, 7)
}

/// The golden pin: serving the fixed-seed reference trace with
/// `QuantMode::F16` produces the identical placement sequence — and
/// therefore the identical full report (per-shard hit rates, latency
/// aggregates, training counters) — as full-f32 serving. Binary16 weight
/// rounding perturbs Q-values by ~2⁻¹¹ relative; this pins that no greedy
/// decision on the trace sat close enough to a tie to flip.
#[test]
fn f16_serving_changes_zero_placement_decisions() {
    let trace = mixed_trace(1_000);
    let f32_report = serve_trace(&config(4, 16), &trace).unwrap();
    let f16_report = serve_trace(&config(4, 16).with_quant(QuantMode::F16), &trace).unwrap();
    assert_eq!(f16_report, f32_report);
    // The run must have exercised the learning path, not degenerated into
    // a no-op comparison.
    assert!(f32_report.aggregate().total_requests >= 2_000);
    let trained: u64 = f32_report.shards.iter().map(|s| s.agent.train_steps).sum();
    assert!(trained > 0, "golden trace never trained");
}

/// `QuantMode::Off` takes the exact pre-quantization code path: a config
/// that sets it explicitly is bit-identical to one that never mentions
/// the knob — the same shape of pin the cooperation and migration
/// subsystems carry for their own "disabled" modes.
#[test]
fn quant_off_is_bit_identical_to_default_config() {
    let trace = mixed_trace(800);
    let baseline = serve_trace(&config(2, 8), &trace).unwrap();
    let explicit = serve_trace(&config(2, 8).with_quant(QuantMode::Off), &trace).unwrap();
    assert_eq!(explicit, baseline);
}

/// The pin holds across engine shapes, not just the reference geometry:
/// single-shard serving with deep batches is also decision-identical
/// under f16.
#[test]
fn f16_pin_holds_single_shard_deep_batches() {
    let trace = mixed_trace(600);
    let f32_report = serve_trace(&config(1, 32), &trace).unwrap();
    let f16_report = serve_trace(&config(1, 32).with_quant(QuantMode::F16), &trace).unwrap();
    assert_eq!(f16_report, f32_report);
}
