//! End-to-end golden pins for the telemetry subsystem's determinism
//! contract.
//!
//! Two claims, pinned across the same shard geometries the quantization
//! goldens cover (4×16, 2×8, 1×32 on the Mix2 reference trace):
//!
//! 1. **Disabled ⇒ invisible.** `TelemetryConfig::off()` allocates no
//!    sink and produces a [`ServeReport`] bit-identical to a config that
//!    never mentions telemetry.
//! 2. **Enabled ⇒ reproducible and non-perturbing.** Two enabled runs
//!    export *byte-identical* JSONL (everything deterministic lives on
//!    logical time; wall-clock totals are confined to the `measured.*`
//!    namespace, which the export excludes), and enabling telemetry
//!    changes zero placement decisions — the per-shard reports match the
//!    disabled run's exactly.

use sibyl_core::SibylConfig;
use sibyl_hss::{DeviceSpec, HssConfig};
use sibyl_serve::{serve_trace, ServeConfig, TelemetryConfig};
use sibyl_trace::mix;

fn fast_sibyl() -> SibylConfig {
    SibylConfig {
        buffer_capacity: 256,
        train_interval: 128,
        batch_size: 32,
        batches_per_step: 2,
        n_atoms: 11,
        exploration: 0.05,
        exploration_initial: 0.3,
        exploration_decay_requests: 500,
        ..Default::default()
    }
}

fn config(shards: usize, max_batch: usize) -> ServeConfig {
    let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
    ServeConfig::new(hss)
        .with_shards(shards)
        .with_max_batch(max_batch)
        .with_nn_ns_per_mac(20.0)
        .with_curve_every(8)
        .with_sibyl(fast_sibyl())
}

/// The reference geometries: (shards, max_batch, requests per trace
/// component) — matching the quantization goldens.
const GEOMETRIES: [(usize, usize, usize); 3] = [(4, 16, 1_000), (2, 8, 800), (1, 32, 600)];

#[test]
fn telemetry_off_is_bit_identical_to_default_config() {
    for (shards, max_batch, n) in GEOMETRIES {
        let trace = mix::Mix::Mix2.generate(n, 7);
        let baseline = serve_trace(&config(shards, max_batch), &trace).unwrap();
        let explicit = serve_trace(
            &config(shards, max_batch).with_telemetry(TelemetryConfig::off()),
            &trace,
        )
        .unwrap();
        assert_eq!(explicit, baseline, "{shards}x{max_batch}");
        assert!(baseline.telemetry.is_none());
    }
}

#[test]
fn enabled_exports_are_byte_identical_across_runs() {
    for (shards, max_batch, n) in GEOMETRIES {
        let trace = mix::Mix::Mix2.generate(n, 7);
        let cfg = config(shards, max_batch).with_telemetry(TelemetryConfig::full());
        let a = serve_trace(&cfg, &trace).unwrap();
        let b = serve_trace(&cfg, &trace).unwrap();
        let jsonl_a = a.telemetry.as_ref().unwrap().export_jsonl();
        let jsonl_b = b.telemetry.as_ref().unwrap().export_jsonl();
        assert_eq!(
            jsonl_a, jsonl_b,
            "{shards}x{max_batch}: telemetry export must be byte-identical"
        );
        // The deterministic export never leaks a wall-clock value.
        assert!(!jsonl_a.contains("measured."), "{shards}x{max_batch}");
        // And the reports — with measured values excluded from equality —
        // compare equal too.
        assert_eq!(a, b, "{shards}x{max_batch}");
    }
}

#[test]
fn enabling_telemetry_changes_zero_placement_decisions() {
    for (shards, max_batch, n) in GEOMETRIES {
        let trace = mix::Mix::Mix2.generate(n, 7);
        let off = serve_trace(&config(shards, max_batch), &trace).unwrap();
        for telemetry in [TelemetryConfig::events(), TelemetryConfig::full()] {
            let on =
                serve_trace(&config(shards, max_batch).with_telemetry(telemetry), &trace).unwrap();
            assert_eq!(
                on.shards, off.shards,
                "{shards}x{max_batch} {telemetry:?}: placement or accounting drifted"
            );
        }
        // The runs exercised learning, so the pin is not vacuous.
        let trained: u64 = off.shards.iter().map(|s| s.agent.train_steps).sum();
        assert!(
            trained > 0,
            "{shards}x{max_batch}: golden trace never trained"
        );
    }
}
