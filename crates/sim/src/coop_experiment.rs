//! The cooperation experiment driver: one workload, one serving
//! configuration, all four cooperation modes — per-mode learning curves
//! and aggregate metrics, ready for `sec12_coop`.

use sibyl_serve::{serve_trace, Aggregate, CoopMode, CurvePoint, ServeConfig, ServeReport};
use sibyl_trace::Trace;

use crate::experiment::SimError;
use crate::metrics::Metrics;

/// Result of serving one workload under one [`CoopMode`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoopOutcome {
    /// The cooperation mode this outcome was produced under.
    pub mode: CoopMode,
    /// Per-shard metrics, ordered by shard index.
    pub shard_metrics: Vec<Metrics>,
    /// Aggregate metrics across shards.
    pub aggregate: Aggregate,
    /// The aggregate learning curve: per sample index, the
    /// request-weighted combination of every shard's cumulative sample
    /// (empty unless the base config enables
    /// [`ServeConfig::curve_every`]).
    pub curve: Vec<CurvePoint>,
    /// The engine's full report (per-shard curves, sync/batch counters).
    pub report: ServeReport,
}

/// All four modes' outcomes for one workload/configuration, in
/// [`CoopMode::ALL`] order (baseline first).
#[derive(Debug, Clone, PartialEq)]
pub struct CoopReport {
    /// One outcome per mode.
    pub outcomes: Vec<CoopOutcome>,
}

impl CoopReport {
    /// The outcome of one mode, or `None` if the mode was not part of
    /// the sweep (cannot happen for reports built by
    /// [`CoopExperiment::run_all`], which covers [`CoopMode::ALL`]).
    pub fn outcome(&self, mode: CoopMode) -> Option<&CoopOutcome> {
        self.outcomes.iter().find(|o| o.mode == mode)
    }

    /// A mode's aggregate average latency normalized to the
    /// [`CoopMode::Independent`] baseline — below 1.0 means cooperation
    /// served the same workload faster. `0.0` when either the mode or
    /// the baseline is absent from the sweep (or the baseline latency is
    /// degenerate).
    pub fn normalized_latency(&self, mode: CoopMode) -> f64 {
        let (Some(base), Some(run)) = (self.outcome(CoopMode::Independent), self.outcome(mode))
        else {
            return 0.0;
        };
        if base.aggregate.avg_latency_us <= 0.0 {
            0.0
        } else {
            run.aggregate.avg_latency_us / base.aggregate.avg_latency_us
        }
    }

    /// A mode's aggregate fast-placement fraction minus the baseline's —
    /// above 0.0 means cooperation kept more of the working set fast
    /// (the hit-rate gap the Harmonia comparison cares about). `0.0`
    /// when either side is absent from the sweep.
    pub fn hit_rate_gain(&self, mode: CoopMode) -> f64 {
        let (Some(base), Some(run)) = (self.outcome(CoopMode::Independent), self.outcome(mode))
        else {
            return 0.0;
        };
        run.aggregate.fast_placement_fraction - base.aggregate.fast_placement_fraction
    }

    /// The cooperative mode with the lowest aggregate latency.
    pub fn best_cooperative_mode(&self) -> CoopMode {
        self.outcomes
            .iter()
            .filter(|o| o.mode.is_cooperative())
            .min_by(|a, b| {
                a.aggregate
                    .avg_latency_us
                    .total_cmp(&b.aggregate.avg_latency_us)
            })
            .map(|o| o.mode)
            .unwrap_or(CoopMode::Independent)
    }
}

/// A reusable cooperation experiment: one workload served through the
/// sharded engine under each [`CoopMode`], everything else held fixed.
///
/// The base configuration's [`ServeConfig::coop`] carries the sync
/// period and share fraction; only its mode is swept.
///
/// # Examples
///
/// ```
/// use sibyl_hss::{DeviceSpec, HssConfig};
/// use sibyl_serve::{CoopMode, ServeConfig};
/// use sibyl_sim::CoopExperiment;
/// use sibyl_trace::msrc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = msrc::generate(msrc::Workload::Hm1, 2_000, 42);
/// let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
/// let exp = CoopExperiment::new(ServeConfig::new(hss).with_shards(2), trace);
/// let outcome = exp.run_mode(CoopMode::WeightAverage)?;
/// assert_eq!(outcome.aggregate.total_requests, 2_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CoopExperiment {
    base: ServeConfig,
    trace: Trace,
}

impl CoopExperiment {
    /// Creates a cooperation experiment over a base serving
    /// configuration and a workload.
    pub fn new(base: ServeConfig, trace: Trace) -> Self {
        CoopExperiment { base, trace }
    }

    /// The base serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.base
    }

    /// The workload.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Serves the workload under one cooperation mode.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyTrace`] for an empty trace and
    /// [`SimError::Serve`] for a degenerate configuration.
    pub fn run_mode(&self, mode: CoopMode) -> Result<CoopOutcome, SimError> {
        let mut config = self.base.clone();
        config.coop = config.coop.with_mode(mode);
        let report = serve_trace(&config, &self.trace).map_err(SimError::from)?;
        let shard_metrics = report
            .shards
            .iter()
            .map(|s| Metrics::from_stats(&s.stats))
            .collect();
        let aggregate = report.aggregate();
        let curve = aggregate_curve(&report);
        Ok(CoopOutcome {
            mode,
            shard_metrics,
            aggregate,
            curve,
            report,
        })
    }

    /// Serves the workload under all four modes ([`CoopMode::ALL`]
    /// order).
    ///
    /// # Errors
    ///
    /// Propagates the first failing mode's error.
    pub fn run_all(&self) -> Result<CoopReport, SimError> {
        let outcomes = CoopMode::ALL
            .iter()
            .map(|&mode| self.run_mode(mode))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CoopReport { outcomes })
    }
}

/// Combines per-shard cumulative curves into one aggregate curve:
/// sample k is the request-weighted mean of every shard's k-th sample.
/// The aggregate is truncated to the *shortest* shard curve so every
/// sample combines the same shard set — without that, shards dropping
/// out of the tail would make the aggregate non-monotonic in requests.
fn aggregate_curve(report: &ServeReport) -> Vec<CurvePoint> {
    let samples = report
        .shards
        .iter()
        .map(|s| s.curve.len())
        .min()
        .unwrap_or(0);
    (0..samples)
        .map(|k| {
            let mut requests = 0u64;
            let mut latency_sum = 0.0;
            let mut fast_sum = 0.0;
            for shard in &report.shards {
                let p = &shard.curve[k];
                requests += p.requests;
                latency_sum += p.avg_latency_us * p.requests as f64;
                fast_sum += p.fast_placement_fraction * p.requests as f64;
            }
            let denom = requests.max(1) as f64;
            CurvePoint {
                requests,
                avg_latency_us: latency_sum / denom,
                fast_placement_fraction: fast_sum / denom,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_core::SibylConfig;
    use sibyl_hss::{DeviceSpec, HssConfig};
    use sibyl_serve::CoopConfig;
    use sibyl_trace::mix::Mix;

    fn base(shards: usize) -> ServeConfig {
        let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
        ServeConfig::new(hss)
            .with_shards(shards)
            .with_max_batch(16)
            .with_curve_every(4)
            .with_coop(CoopConfig::default().with_sync_period(4))
            .with_sibyl(SibylConfig {
                buffer_capacity: 256,
                train_interval: 128,
                batch_size: 32,
                batches_per_step: 2,
                n_atoms: 11,
                exploration: 0.05,
                exploration_initial: 0.3,
                exploration_decay_requests: 500,
                ..Default::default()
            })
    }

    #[test]
    fn run_all_covers_every_mode_in_order() {
        let exp = CoopExperiment::new(base(2), Mix::Mix2.generate(400, 5));
        let report = exp.run_all().unwrap();
        let modes: Vec<CoopMode> = report.outcomes.iter().map(|o| o.mode).collect();
        assert_eq!(modes, CoopMode::ALL.to_vec());
        for o in &report.outcomes {
            assert_eq!(o.aggregate.total_requests, 800);
            assert!(!o.curve.is_empty(), "{}: no aggregate curve", o.mode);
            for w in o.curve.windows(2) {
                assert!(w[0].requests <= w[1].requests);
            }
        }
        assert!(report.normalized_latency(CoopMode::Independent) == 1.0);
        let _ = report.best_cooperative_mode();
        let _ = report.hit_rate_gain(CoopMode::Both);
        assert_eq!(exp.config().shards, 2);
        assert_eq!(exp.trace().len(), 800);
    }

    /// Two seeded runs of every mode must produce identical reports —
    /// the cooperation layer's hard design constraint.
    #[test]
    fn coop_experiment_is_deterministic_in_every_mode() {
        let exp = CoopExperiment::new(base(4), Mix::Mix2.generate(300, 9));
        let a = exp.run_all().unwrap();
        let b = exp.run_all().unwrap();
        assert_eq!(a, b, "seeded cooperation sweeps must be bit-identical");
    }

    #[test]
    fn empty_trace_maps_to_sim_error() {
        let exp = CoopExperiment::new(base(2), Trace::from_requests("e", vec![]));
        assert!(matches!(
            exp.run_mode(CoopMode::Both),
            Err(SimError::EmptyTrace)
        ));
    }

    #[test]
    fn degenerate_config_maps_to_serve_error() {
        let mut cfg = base(2);
        cfg.coop = cfg.coop.with_sync_period(0);
        let exp = CoopExperiment::new(cfg, Mix::Mix2.generate(50, 5));
        assert!(matches!(
            exp.run_mode(CoopMode::Both),
            Err(SimError::Serve(_))
        ));
        // ... while the inert baseline tolerates the knob.
        assert!(exp.run_mode(CoopMode::Independent).is_ok());
    }
}
