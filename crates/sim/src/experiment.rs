//! The experiment driver: trace × HSS configuration × policy → metrics.

use sibyl_hss::{HssConfig, PlacementContext, PlacementPolicy, StorageManager};
use sibyl_trace::Trace;

use crate::metrics::Metrics;
use crate::policy_kind::PolicyKind;

/// Errors from experiment runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The trace contains no requests.
    EmptyTrace,
    /// The serving engine rejected its configuration
    /// (see [`sibyl_serve::ServeError`]).
    Serve(sibyl_serve::ServeError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::EmptyTrace => write!(f, "trace contains no requests"),
            SimError::Serve(e) => write!(f, "serving engine: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<sibyl_serve::ServeError> for SimError {
    /// An empty trace keeps its sim-level meaning; every other engine
    /// error is carried verbatim.
    fn from(e: sibyl_serve::ServeError) -> Self {
        match e {
            sibyl_serve::ServeError::EmptyTrace => SimError::EmptyTrace,
            other => SimError::Serve(other),
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The policy's display name.
    pub policy: String,
    /// Collected metrics.
    pub metrics: Metrics,
}

/// A reusable experiment: one workload replayed against one HSS
/// configuration under different policies.
///
/// # Examples
///
/// ```
/// use sibyl_sim::{Experiment, PolicyKind};
/// use sibyl_hss::{DeviceSpec, HssConfig};
/// use sibyl_trace::msrc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = msrc::generate(msrc::Workload::Rsrch0, 2_000, 7);
/// let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
/// let exp = Experiment::new(hss, trace);
/// let slow = exp.run(PolicyKind::SlowOnly)?;
/// let fast = exp.run(PolicyKind::FastOnly)?;
/// assert!(slow.metrics.avg_latency_us > fast.metrics.avg_latency_us);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    hss: HssConfig,
    trace: Trace,
    time_scale: f64,
}

impl Experiment {
    /// Creates an experiment from a (possibly fraction-mode) HSS config
    /// and a trace.
    pub fn new(hss: HssConfig, trace: Trace) -> Self {
        Experiment {
            hss,
            trace,
            time_scale: 1.0,
        }
    }

    /// Accelerates trace replay by dividing every timestamp by `scale`
    /// (>1 compresses think time). Throughput comparisons (the paper's
    /// Fig. 10) replay under load so device capacity, not arrival rate,
    /// bounds IOPS.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "time scale must be positive"
        );
        self.time_scale = scale;
        self
    }

    /// The workload.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The HSS configuration (before footprint resolution).
    pub fn hss_config(&self) -> &HssConfig {
        &self.hss
    }

    /// Runs one policy over the whole trace.
    ///
    /// Fast-Only automatically gets unlimited capacities (§7). Policies
    /// that provide a victim policy (Oracle) have it installed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyTrace`] for an empty trace.
    pub fn run(&self, kind: PolicyKind) -> Result<Outcome, SimError> {
        let mut policy = kind.build();
        let config = if kind.wants_unlimited_capacity() {
            self.hss.clone().with_unlimited_capacities()
        } else {
            self.hss.clone()
        };
        self.run_boxed(&mut *policy, &config)
    }

    /// Runs an externally constructed policy (for custom configurations
    /// and ablations).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyTrace`] for an empty trace.
    pub fn run_policy(&self, policy: &mut dyn PlacementPolicy) -> Result<Outcome, SimError> {
        let config = self.hss.clone();
        self.run_boxed(policy, &config)
    }

    fn run_boxed(
        &self,
        policy: &mut dyn PlacementPolicy,
        config: &HssConfig,
    ) -> Result<Outcome, SimError> {
        if self.trace.is_empty() {
            return Err(SimError::EmptyTrace);
        }
        let footprint = self.trace.footprint_pages();
        let resolved = config.resolved(footprint);
        let mut manager = StorageManager::new(&resolved);
        policy.prepare(manager.num_devices(), &self.trace);
        if let Some(victim) = policy.victim_policy() {
            manager.set_victim_policy(victim);
        }
        manager.set_read_demotion(policy.wants_read_demotion());
        for (seq, orig) in self.trace.iter().enumerate() {
            let mut req = *orig;
            if self.time_scale != 1.0 {
                req.timestamp_us = (orig.timestamp_us as f64 / self.time_scale) as u64;
            }
            let target = {
                let ctx = PlacementContext {
                    manager: &manager,
                    seq: seq as u64,
                };
                policy.place(&req, &ctx)
            };
            let outcome = manager.access(&req, target);
            let ctx = PlacementContext {
                manager: &manager,
                seq: seq as u64,
            };
            policy.feedback(&req, &outcome, &ctx);
        }
        Ok(Outcome {
            policy: policy.name().to_string(),
            metrics: Metrics::from_stats(manager.stats()),
        })
    }
}

/// A full comparison on one workload: every requested policy plus the
/// Fast-Only normalization baseline.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// The workload name.
    pub workload: String,
    /// The Fast-Only baseline outcome.
    pub fast_only: Outcome,
    /// Outcomes in the order the policies were given.
    pub outcomes: Vec<Outcome>,
}

impl SuiteResult {
    /// Average latency of outcome `i` normalized to Fast-Only (the
    /// paper's y-axis in Figs. 2, 9, 11, 12, 15, 16).
    pub fn normalized_latency(&self, i: usize) -> f64 {
        self.outcomes[i]
            .metrics
            .normalized_latency(&self.fast_only.metrics)
    }

    /// IOPS of outcome `i` normalized to Fast-Only (Fig. 10).
    pub fn normalized_iops(&self, i: usize) -> f64 {
        self.outcomes[i]
            .metrics
            .normalized_iops(&self.fast_only.metrics)
    }

    /// Looks up an outcome by policy name.
    pub fn by_name(&self, name: &str) -> Option<&Outcome> {
        self.outcomes.iter().find(|o| o.policy == name)
    }
}

/// Runs `policies` and the Fast-Only baseline on one workload.
///
/// # Errors
///
/// Returns [`SimError::EmptyTrace`] for an empty trace.
pub fn run_suite(
    hss: &HssConfig,
    trace: &Trace,
    policies: &[PolicyKind],
) -> Result<SuiteResult, SimError> {
    let exp = Experiment::new(hss.clone(), trace.clone());
    let fast_only = exp.run(PolicyKind::FastOnly)?;
    let mut outcomes = Vec::with_capacity(policies.len());
    for p in policies {
        outcomes.push(exp.run(p.clone())?);
    }
    Ok(SuiteResult {
        workload: trace.name().to_string(),
        fast_only,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_hss::DeviceSpec;
    use sibyl_trace::msrc;

    fn hm() -> HssConfig {
        HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd())
    }

    #[test]
    fn empty_trace_is_an_error() {
        let exp = Experiment::new(hm(), Trace::from_requests("e", vec![]));
        assert_eq!(exp.run(PolicyKind::SlowOnly), Err(SimError::EmptyTrace));
        assert_eq!(
            SimError::EmptyTrace.to_string(),
            "trace contains no requests"
        );
    }

    #[test]
    fn fast_only_beats_slow_only() {
        let trace = msrc::generate(msrc::Workload::Prxy1, 3_000, 1);
        let exp = Experiment::new(hm(), trace);
        let fast = exp.run(PolicyKind::FastOnly).unwrap();
        let slow = exp.run(PolicyKind::SlowOnly).unwrap();
        assert!(fast.metrics.avg_latency_us < slow.metrics.avg_latency_us);
        assert!(fast.metrics.iops > slow.metrics.iops);
    }

    #[test]
    fn suite_normalizes_against_fast_only() {
        let trace = msrc::generate(msrc::Workload::Rsrch0, 2_000, 2);
        let suite = run_suite(&hm(), &trace, &[PolicyKind::SlowOnly]).unwrap();
        let n = suite.normalized_latency(0);
        assert!(n > 1.0, "Slow-Only normalized latency {n} must exceed 1");
        assert!(suite.normalized_iops(0) <= 1.0);
        assert!(suite.by_name("Slow-Only").is_some());
        assert!(suite.by_name("nonexistent").is_none());
    }

    #[test]
    fn suite_outcomes_align_with_caller_policy_list() {
        // Regression: the Fast-Only baseline lives in `fast_only`, never
        // in `outcomes`, so `normalized_latency(i)` must line up with the
        // caller's policy list — including when the caller asks for
        // Fast-Only itself, which then normalizes to exactly 1.
        let trace = msrc::generate(msrc::Workload::Rsrch0, 2_000, 5);
        let policies = [PolicyKind::SlowOnly, PolicyKind::FastOnly, PolicyKind::Cde];
        let suite = run_suite(&hm(), &trace, &policies).unwrap();
        assert_eq!(suite.outcomes.len(), policies.len());
        assert_eq!(suite.fast_only.policy, "Fast-Only");
        for (i, p) in policies.iter().enumerate() {
            assert_eq!(suite.outcomes[i].policy, p.name());
        }
        let fast_norm = suite.normalized_latency(1);
        assert!(
            (fast_norm - 1.0).abs() < 1e-9,
            "Fast-Only vs the Fast-Only baseline must be 1.0, got {fast_norm}"
        );
        assert!(suite.normalized_latency(0) > 1.0);
    }

    #[test]
    fn oracle_victim_policy_is_installed_and_runs() {
        let trace = msrc::generate(msrc::Workload::Hm1, 2_000, 3);
        let exp = Experiment::new(hm(), trace);
        let oracle = exp.run(PolicyKind::Oracle).unwrap();
        assert_eq!(oracle.policy, "Oracle");
        assert!(oracle.metrics.total_requests == 2_000);
    }

    #[test]
    fn outcome_totals_match_trace_length() {
        let trace = msrc::generate(msrc::Workload::Web1, 1_500, 4);
        let exp = Experiment::new(hm(), trace);
        for kind in [PolicyKind::Cde, PolicyKind::Hps, PolicyKind::sibyl()] {
            let out = exp.run(kind).unwrap();
            assert_eq!(out.metrics.total_requests, 1_500);
            assert_eq!(out.metrics.placements.iter().sum::<u64>(), 1_500);
        }
    }
}
