//! # sibyl-sim
//!
//! The experiment harness for the Sibyl reproduction: it wires a workload
//! ([`sibyl_trace::Trace`]), a hybrid-storage configuration
//! ([`sibyl_hss::HssConfig`]), and a placement policy ([`PolicyKind`])
//! into one run and reports [`Metrics`] in the paper's vocabulary
//! (average request latency, IOPS, eviction fraction, fast-device
//! preference).
//!
//! - [`Experiment`] — run one policy on one workload.
//! - [`ServeExperiment`] — run the [`sibyl_serve`] sharded serving
//!   engine on one workload and collect per-shard + aggregate metrics.
//! - [`CoopExperiment`] — sweep the cooperation modes (independent /
//!   shared replay / weight averaging / both) over one workload and
//!   report per-mode learning curves and aggregate metrics.
//! - [`MigrationExperiment`] — sweep the background-migration policies
//!   (none / hot-cold heuristic / RL) over one workload and report
//!   per-policy aggregates plus migration accounting.
//! - [`run_suite`] — run a set of policies plus the Fast-Only baseline
//!   and normalize (every latency figure in the paper is normalized to
//!   Fast-Only).
//! - [`sweeps`] — capacity and hyper-parameter sweeps (Figs. 8, 14, 15).
//! - [`report`] — aligned table / CSV rendering for the bench targets.
//!
//! ## Example
//!
//! ```rust
//! use sibyl_sim::{run_suite, PolicyKind};
//! use sibyl_hss::{DeviceSpec, HssConfig};
//! use sibyl_trace::msrc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = msrc::generate(msrc::Workload::Hm1, 2_000, 42);
//! let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
//! let suite = run_suite(&hss, &trace, &[PolicyKind::SlowOnly, PolicyKind::sibyl()])?;
//! // Normalized latency > 1 means slower than Fast-Only.
//! assert!(suite.normalized_latency(0) >= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coop_experiment;
mod experiment;
mod metrics;
mod migration_experiment;
mod policy_kind;
pub mod report;
mod serve_experiment;
pub mod sweeps;

pub use coop_experiment::{CoopExperiment, CoopOutcome, CoopReport};
pub use experiment::{run_suite, Experiment, Outcome, SimError, SuiteResult};
pub use metrics::Metrics;
pub use migration_experiment::{MigrationExperiment, MigrationReport, MigrationRun};
pub use policy_kind::PolicyKind;
pub use serve_experiment::{ServeExperiment, ServeOutcome};
