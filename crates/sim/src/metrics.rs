//! Run metrics in the paper's vocabulary.

use serde::{Deserialize, Serialize};

use sibyl_hss::HssStats;

/// The measurements a single simulation run produces — the paper's two
/// primary metrics (average request latency §8.1, request throughput
/// Fig. 10) plus the explainability counters of §9 (fast-device
/// preference, eviction fraction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Requests served.
    pub total_requests: u64,
    /// Average request latency in microseconds.
    pub avg_latency_us: f64,
    /// Maximum request latency in microseconds.
    pub max_latency_us: f64,
    /// Approximate median latency (µs).
    pub p50_latency_us: f64,
    /// Approximate 99th-percentile latency (µs).
    pub p99_latency_us: f64,
    /// Request throughput in I/O operations per second.
    pub iops: f64,
    /// Eviction events as a fraction of all requests (Fig. 18).
    pub eviction_fraction: f64,
    /// Pages evicted in total.
    pub evicted_pages: u64,
    /// Pages migrated toward policy targets (promotions/demotions).
    pub migrated_pages: u64,
    /// Fraction of requests placed on the fastest device (Fig. 17's
    /// "preference for fast storage").
    pub fast_placement_fraction: f64,
    /// Per-device placement counts.
    pub placements: Vec<u64>,
}

impl Metrics {
    /// Extracts metrics from a finished manager's statistics.
    pub fn from_stats(stats: &HssStats) -> Self {
        Metrics {
            total_requests: stats.total_requests,
            avg_latency_us: stats.avg_latency_us(),
            max_latency_us: stats.max_latency_us,
            p50_latency_us: stats.histogram.percentile_us(50.0),
            p99_latency_us: stats.histogram.percentile_us(99.0),
            iops: stats.iops(),
            eviction_fraction: stats.eviction_fraction(),
            evicted_pages: stats.evicted_pages,
            migrated_pages: stats.migrated_pages,
            fast_placement_fraction: stats.placement_fraction(0),
            placements: stats.placements.clone(),
        }
    }

    /// This run's average latency normalized to a baseline's (the paper
    /// normalizes every latency figure to Fast-Only).
    pub fn normalized_latency(&self, baseline: &Metrics) -> f64 {
        if baseline.avg_latency_us <= 0.0 {
            0.0
        } else {
            self.avg_latency_us / baseline.avg_latency_us
        }
    }

    /// This run's IOPS normalized to a baseline's.
    pub fn normalized_iops(&self, baseline: &Metrics) -> f64 {
        if baseline.iops <= 0.0 {
            0.0
        } else {
            self.iops / baseline.iops
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> HssStats {
        let mut s = HssStats::new(2);
        s.total_requests = 10;
        s.sum_latency_us = 1_000.0;
        s.max_latency_us = 400.0;
        s.first_arrival_us = 0.0;
        s.last_completion_us = 1e6;
        s.eviction_events = 2;
        s.evicted_pages = 8;
        s.placements = vec![7, 3];
        s
    }

    #[test]
    fn from_stats_extracts_fields() {
        let m = Metrics::from_stats(&stats());
        assert_eq!(m.total_requests, 10);
        assert!((m.avg_latency_us - 100.0).abs() < 1e-9);
        assert!((m.iops - 10.0).abs() < 1e-9);
        assert!((m.eviction_fraction - 0.2).abs() < 1e-9);
        assert!((m.fast_placement_fraction - 0.7).abs() < 1e-9);
    }

    #[test]
    fn normalization_is_ratio() {
        let a = Metrics::from_stats(&stats());
        let mut s2 = stats();
        s2.sum_latency_us = 500.0;
        let b = Metrics::from_stats(&s2);
        assert!((a.normalized_latency(&b) - 2.0).abs() < 1e-9);
        assert!((b.normalized_latency(&a) - 0.5).abs() < 1e-9);
        assert!((a.normalized_iops(&b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_is_safe() {
        let a = Metrics::from_stats(&stats());
        let zero = Metrics::from_stats(&HssStats::new(2));
        assert_eq!(a.normalized_latency(&zero), 0.0);
        assert_eq!(a.normalized_iops(&zero), 0.0);
    }
}
