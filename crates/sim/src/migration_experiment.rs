//! The migration experiment driver: one workload, one serving
//! configuration, all three background-migration policies — per-policy
//! aggregates and migration accounting, ready for `sec13_migration`.

use sibyl_serve::{serve_trace, Aggregate, MigratePolicyKind, ServeConfig, ServeReport};
use sibyl_trace::Trace;

use crate::experiment::SimError;
use crate::metrics::Metrics;

/// Result of serving one workload under one [`MigratePolicyKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRun {
    /// The migration policy this run was produced under.
    pub policy: MigratePolicyKind,
    /// Per-shard metrics, ordered by shard index.
    pub shard_metrics: Vec<Metrics>,
    /// Aggregate metrics across shards.
    pub aggregate: Aggregate,
    /// Pages promoted by background migration, across shards.
    pub promoted_pages: u64,
    /// Pages demoted by background migration, across shards.
    pub demoted_pages: u64,
    /// Device time consumed by background-migration I/O (µs), across
    /// shards.
    pub migration_busy_us: f64,
    /// The engine's full report.
    pub report: ServeReport,
}

/// All three policies' runs for one workload/configuration, in
/// [`MigratePolicyKind::ALL`] order (baseline first).
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// One run per policy.
    pub runs: Vec<MigrationRun>,
}

impl MigrationReport {
    /// The run of one policy, or `None` if the policy was not part of
    /// the sweep (cannot happen for reports built by
    /// [`MigrationExperiment::run_all`], which covers
    /// [`MigratePolicyKind::ALL`]).
    pub fn run(&self, policy: MigratePolicyKind) -> Option<&MigrationRun> {
        self.runs.iter().find(|r| r.policy == policy)
    }

    /// A policy's aggregate average latency normalized to the
    /// [`MigratePolicyKind::None`] baseline — below 1.0 means background
    /// migration served the same workload faster than placement alone.
    /// `0.0` when either the policy or the baseline is absent from the
    /// sweep (or the baseline latency is degenerate).
    pub fn normalized_latency(&self, policy: MigratePolicyKind) -> f64 {
        let (Some(base), Some(run)) = (self.run(MigratePolicyKind::None), self.run(policy)) else {
            return 0.0;
        };
        if base.aggregate.avg_latency_us <= 0.0 {
            0.0
        } else {
            run.aggregate.avg_latency_us / base.aggregate.avg_latency_us
        }
    }

    /// A policy's aggregate fast-placement fraction minus the baseline's.
    /// `0.0` when either side is absent from the sweep.
    pub fn hit_rate_gain(&self, policy: MigratePolicyKind) -> f64 {
        let (Some(base), Some(run)) = (self.run(MigratePolicyKind::None), self.run(policy)) else {
            return 0.0;
        };
        run.aggregate.fast_placement_fraction - base.aggregate.fast_placement_fraction
    }

    /// The active policy with the lowest aggregate latency.
    pub fn best_active_policy(&self) -> MigratePolicyKind {
        self.runs
            .iter()
            .filter(|r| r.policy.is_active())
            .min_by(|a, b| {
                a.aggregate
                    .avg_latency_us
                    .total_cmp(&b.aggregate.avg_latency_us)
            })
            .map(|r| r.policy)
            .unwrap_or(MigratePolicyKind::None)
    }
}

/// A reusable migration experiment: one workload served through the
/// sharded engine under each [`MigratePolicyKind`], everything else held
/// fixed.
///
/// The base configuration's [`ServeConfig::migrate`] carries the tick
/// period, move budget, and thresholds; only its policy is swept.
///
/// # Examples
///
/// ```
/// use sibyl_hss::{DeviceSpec, HssConfig};
/// use sibyl_serve::{MigratePolicyKind, ServeConfig};
/// use sibyl_sim::MigrationExperiment;
/// use sibyl_trace::synth;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = synth::diurnal(2_000, 2, 42);
/// let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
/// let exp = MigrationExperiment::new(ServeConfig::new(hss).with_shards(2), trace);
/// let run = exp.run_policy(MigratePolicyKind::HotCold)?;
/// assert_eq!(run.aggregate.total_requests, 2_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MigrationExperiment {
    base: ServeConfig,
    trace: Trace,
}

impl MigrationExperiment {
    /// Creates a migration experiment over a base serving configuration
    /// and a workload.
    pub fn new(base: ServeConfig, trace: Trace) -> Self {
        MigrationExperiment { base, trace }
    }

    /// The base serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.base
    }

    /// The workload.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Serves the workload under one migration policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyTrace`] for an empty trace and
    /// [`SimError::Serve`] for a degenerate configuration or a dead
    /// shard.
    pub fn run_policy(&self, policy: MigratePolicyKind) -> Result<MigrationRun, SimError> {
        let mut config = self.base.clone();
        config.migrate = config.migrate.clone().with_policy(policy);
        let report = serve_trace(&config, &self.trace).map_err(SimError::from)?;
        let shard_metrics = report
            .shards
            .iter()
            .map(|s| Metrics::from_stats(&s.stats))
            .collect();
        let aggregate = report.aggregate();
        let promoted_pages = report
            .shards
            .iter()
            .map(|s| s.stats.bg_promoted_pages)
            .sum();
        let demoted_pages = report.shards.iter().map(|s| s.stats.bg_demoted_pages).sum();
        let migration_busy_us = report.shards.iter().map(|s| s.migration_busy_us).sum();
        Ok(MigrationRun {
            policy,
            shard_metrics,
            aggregate,
            promoted_pages,
            demoted_pages,
            migration_busy_us,
            report,
        })
    }

    /// Serves the workload under all three policies
    /// ([`MigratePolicyKind::ALL`] order).
    ///
    /// # Errors
    ///
    /// Propagates the first failing policy's error.
    pub fn run_all(&self) -> Result<MigrationReport, SimError> {
        let runs = MigratePolicyKind::ALL
            .iter()
            .map(|&policy| self.run_policy(policy))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MigrationReport { runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sibyl_core::SibylConfig;
    use sibyl_hss::{DeviceSpec, HssConfig};
    use sibyl_serve::MigrateConfig;
    use sibyl_trace::synth;

    fn base(shards: usize) -> ServeConfig {
        let hss = HssConfig::dual(DeviceSpec::optane_ssd(), DeviceSpec::tlc_ssd());
        ServeConfig::new(hss)
            .with_shards(shards)
            .with_max_batch(16)
            .with_migrate(MigrateConfig::default().with_scan_period(4))
            .with_sibyl(SibylConfig {
                buffer_capacity: 256,
                train_interval: 128,
                batch_size: 32,
                batches_per_step: 2,
                n_atoms: 11,
                exploration: 0.05,
                exploration_initial: 0.3,
                exploration_decay_requests: 500,
                ..Default::default()
            })
    }

    #[test]
    fn run_all_covers_every_policy_in_order() {
        let exp = MigrationExperiment::new(base(2), synth::diurnal(1_200, 3, 5));
        let report = exp.run_all().unwrap();
        let policies: Vec<MigratePolicyKind> = report.runs.iter().map(|r| r.policy).collect();
        assert_eq!(policies, MigratePolicyKind::ALL.to_vec());
        for r in &report.runs {
            assert_eq!(r.aggregate.total_requests, 1_200, "{}", r.policy);
            if r.policy.is_active() {
                assert!(r.promoted_pages > 0, "{}: nothing promoted", r.policy);
                assert!(r.migration_busy_us > 0.0, "{}: free migration", r.policy);
            } else {
                assert_eq!(r.promoted_pages + r.demoted_pages, 0);
                assert_eq!(r.migration_busy_us, 0.0);
            }
        }
        assert_eq!(report.normalized_latency(MigratePolicyKind::None), 1.0);
        let _ = report.best_active_policy();
        let _ = report.hit_rate_gain(MigratePolicyKind::Rl);
        assert_eq!(exp.config().shards, 2);
        assert_eq!(exp.trace().len(), 1_200);
    }

    /// The no-migration run of the sweep must be bit-identical to a plain
    /// serve run whose config never mentions migration.
    #[test]
    fn baseline_run_matches_migration_free_engine() {
        let trace = synth::diurnal(800, 2, 9);
        let exp = MigrationExperiment::new(base(2), trace.clone());
        let baseline = exp.run_policy(MigratePolicyKind::None).unwrap();
        let mut plain_cfg = base(2);
        plain_cfg.migrate = MigrateConfig::default();
        let plain = sibyl_serve::serve_trace(&plain_cfg, &trace).unwrap();
        assert_eq!(baseline.report, plain);
    }

    #[test]
    fn migration_sweeps_are_deterministic() {
        let exp = MigrationExperiment::new(base(2), synth::diurnal(800, 2, 11));
        let a = exp.run_all().unwrap();
        let b = exp.run_all().unwrap();
        assert_eq!(a, b, "seeded migration sweeps must be bit-identical");
    }

    #[test]
    fn empty_trace_maps_to_sim_error() {
        let exp = MigrationExperiment::new(base(2), Trace::from_requests("e", vec![]));
        assert!(matches!(
            exp.run_policy(MigratePolicyKind::HotCold),
            Err(SimError::EmptyTrace)
        ));
    }
}
