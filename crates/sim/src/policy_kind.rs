//! Enumerated policy constructors for the experiment runner.

use sibyl_core::{SibylAgent, SibylConfig};
use sibyl_hss::PlacementPolicy;
use sibyl_policies::{Archivist, Cde, FastOnly, Hps, Oracle, RnnHss, SlowOnly, TriHybridHeuristic};

/// A buildable description of a placement policy — what the figures'
/// legends enumerate.
#[derive(Debug, Clone)]
pub enum PolicyKind {
    /// All data on the slowest device.
    SlowOnly,
    /// All data on the fastest device (run with unlimited capacity; the
    /// normalization baseline).
    FastOnly,
    /// Cold-data eviction heuristic.
    Cde,
    /// History-based page selection heuristic.
    Hps,
    /// Supervised NN classifier.
    Archivist,
    /// RNN hotness predictor (Kleio-style).
    RnnHss,
    /// Future-knowledge oracle.
    Oracle,
    /// Hot/cold/frozen tri-device heuristic (§8.7 baseline).
    TriHybridHeuristic,
    /// The RL agent, with its full configuration.
    Sibyl(Box<SibylConfig>),
}

impl PolicyKind {
    /// Sibyl with the paper's default hyper-parameters (Table 2).
    pub fn sibyl() -> Self {
        PolicyKind::Sibyl(Box::default())
    }

    /// Sibyl with an explicit configuration.
    pub fn sibyl_with(config: SibylConfig) -> Self {
        PolicyKind::Sibyl(Box::new(config))
    }

    /// The `Sibyl_Opt` mixed-workload variant (§8.3).
    pub fn sibyl_opt() -> Self {
        PolicyKind::Sibyl(Box::new(SibylConfig::mixed_workload_optimized()))
    }

    /// The display name used in figures.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::SlowOnly => "Slow-Only",
            PolicyKind::FastOnly => "Fast-Only",
            PolicyKind::Cde => "CDE",
            PolicyKind::Hps => "HPS",
            PolicyKind::Archivist => "Archivist",
            PolicyKind::RnnHss => "RNN-HSS",
            PolicyKind::Oracle => "Oracle",
            PolicyKind::TriHybridHeuristic => "Heuristic-Tri-Hybrid",
            PolicyKind::Sibyl(_) => "Sibyl",
        }
    }

    /// `true` for the Fast-Only baseline, which runs with unlimited
    /// capacities (§7: all data resides in the fast storage).
    pub fn wants_unlimited_capacity(&self) -> bool {
        matches!(self, PolicyKind::FastOnly)
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn PlacementPolicy + Send> {
        match self {
            PolicyKind::SlowOnly => Box::new(SlowOnly),
            PolicyKind::FastOnly => Box::new(FastOnly),
            PolicyKind::Cde => Box::new(Cde::default()),
            PolicyKind::Hps => Box::new(Hps::default()),
            PolicyKind::Archivist => Box::new(Archivist::default()),
            PolicyKind::RnnHss => Box::new(RnnHss::default()),
            PolicyKind::Oracle => Box::new(Oracle::default()),
            PolicyKind::TriHybridHeuristic => Box::new(TriHybridHeuristic::default()),
            PolicyKind::Sibyl(cfg) => Box::new(SibylAgent::new((**cfg).clone())),
        }
    }

    /// The policies of the paper's main comparison (Fig. 9/10 legends,
    /// minus the Fast-Only normalization baseline).
    pub fn standard_suite() -> Vec<PolicyKind> {
        vec![
            PolicyKind::SlowOnly,
            PolicyKind::Cde,
            PolicyKind::Hps,
            PolicyKind::Archivist,
            PolicyKind::RnnHss,
            PolicyKind::sibyl(),
            PolicyKind::Oracle,
        ]
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_figure_legends() {
        assert_eq!(PolicyKind::SlowOnly.name(), "Slow-Only");
        assert_eq!(PolicyKind::sibyl().name(), "Sibyl");
        assert_eq!(PolicyKind::Oracle.name(), "Oracle");
    }

    #[test]
    fn standard_suite_has_seven_policies() {
        let suite = PolicyKind::standard_suite();
        assert_eq!(suite.len(), 7);
        assert!(suite.iter().any(|p| matches!(p, PolicyKind::Sibyl(_))));
        assert!(!suite.iter().any(|p| matches!(p, PolicyKind::FastOnly)));
    }

    #[test]
    fn all_kinds_build() {
        for kind in [
            PolicyKind::SlowOnly,
            PolicyKind::FastOnly,
            PolicyKind::Cde,
            PolicyKind::Hps,
            PolicyKind::Archivist,
            PolicyKind::RnnHss,
            PolicyKind::Oracle,
            PolicyKind::TriHybridHeuristic,
            PolicyKind::sibyl(),
        ] {
            let policy = kind.build();
            assert_eq!(policy.name(), kind.name());
        }
    }

    #[test]
    fn only_fast_only_wants_unlimited_capacity() {
        assert!(PolicyKind::FastOnly.wants_unlimited_capacity());
        assert!(!PolicyKind::sibyl().wants_unlimited_capacity());
        assert!(!PolicyKind::Oracle.wants_unlimited_capacity());
    }

    #[test]
    fn sibyl_opt_uses_lower_learning_rate() {
        if let PolicyKind::Sibyl(cfg) = PolicyKind::sibyl_opt() {
            assert_eq!(cfg.learning_rate, 1e-5);
        } else {
            panic!("sibyl_opt should be a Sibyl kind");
        }
    }
}
